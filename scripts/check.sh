#!/usr/bin/env bash
# Repo health check: configure + build + run the full test suite, optionally
# under ASan/UBSan.
#
# Usage:
#   scripts/check.sh            # release build + ctest
#   scripts/check.sh --asan     # ASan+UBSan build + ctest
#   scripts/check.sh --all      # both, in sequence
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${ROOT}"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_preset() {
  local preset="$1"
  echo "==> configure (${preset})"
  cmake --preset "${preset}" >/dev/null
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "${JOBS}"
}

case "${1:-}" in
  "")     run_preset release ;;
  --asan) run_preset asan ;;
  --all)  run_preset release; run_preset asan ;;
  *)      echo "usage: scripts/check.sh [--asan|--all]" >&2; exit 2 ;;
esac

echo "OK"
