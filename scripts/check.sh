#!/usr/bin/env bash
# Repo health check: configure + build + run the full test suite, optionally
# under ASan/UBSan or TSan, plus the point-lookup bench as a smoke test.
#
# Usage:
#   scripts/check.sh            # release build + ctest + bench/scenario smoke
#   scripts/check.sh --asan     # ASan+UBSan build + ctest
#   scripts/check.sh --tsan     # TSan build + storage/kv suites
#   scripts/check.sh --full     # default path + full-mode scenario snapshots
#                               # (BENCH_<scenario>.json into the repo root)
#   scripts/check.sh --all      # release, asan, tsan in sequence
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${ROOT}"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_preset() {
  local preset="$1"
  echo "==> configure (${preset})"
  cmake --preset "${preset}" >/dev/null
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "${JOBS}"
}

# Runs the point-lookup, write-path, and SQL-exec benches end to end and
# asserts each completed (exit 0 enforces their internal speedup gates:
# >= 2x for the KV benches, >= 5x vectorized on q1_lite) and emitted
# parseable JSON.
bench_smoke() {
  echo "==> bench smoke (bench_point_lookup)"
  local out="build/bench-smoke"
  mkdir -p "${out}"
  (cd "${out}" && ../bench/bench_point_lookup)
  local json="${out}/BENCH_point_lookup.json"
  [[ -s "${json}" ]] || { echo "missing ${json}" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${json}"
  else
    grep -q '"uniform_cold_speedup"' "${json}"
  fi
  echo "==> bench smoke (bench_write_path)"
  (cd "${out}" && ../bench/bench_write_path)
  json="${out}/BENCH_write_path.json"
  [[ -s "${json}" ]] || { echo "missing ${json}" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${json}"
  else
    grep -q '"multi_writer_speedup"' "${json}"
  fi
  echo "==> bench smoke (bench_txn_throughput)"
  (cd "${out}" && ../bench/bench_txn_throughput)  # exit 0 enforces the >= 3x gate
  json="${out}/BENCH_txn_throughput.json"
  [[ -s "${json}" ]] || { echo "missing ${json}" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${json}"
  else
    grep -q '"uncontended_speedup_8t"' "${json}"
  fi
  echo "==> bench smoke (bench_sql_exec)"
  (cd "${out}" && ../bench/bench_sql_exec)  # exit 0 enforces the >= 5x gate
  json="${out}/BENCH_sql_exec.json"
  [[ -s "${json}" ]] || { echo "missing ${json}" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${json}"
  else
    grep -q '"q1_lite_speedup"' "${json}"
  fi
  echo "bench smoke OK"
}

# Chaos smoke: the seeded crash-injection harness (fault-labeled suite) at a
# fixed seed with a bounded iteration count, so every check.sh run exercises
# crash recovery end to end without depending on the suite's default scale.
chaos_smoke() {
  echo "==> chaos smoke (fault suite, fixed seed)"
  VELOCE_CHAOS_SEED=0xC4A05 VELOCE_CHAOS_ITERS=200 \
    ctest --test-dir build -L '^fault$' --output-on-failure -j "${JOBS}"
  echo "chaos smoke OK"
}

# Partition-chaos smoke: the netfault suite (ReplicaTransport seam, seeded
# FaultyMesh, epoch leases, replica catch-up, linearizability checker) with
# the seeded partition-chaos harness pinned to a fixed seed and a bounded
# iteration count.
netfault_smoke() {
  echo "==> partition-chaos smoke (netfault suite, fixed seed)"
  VELOCE_NETFAULT_SEED=0x9E7F VELOCE_NETFAULT_ITERS=100 \
    ctest --test-dir build -L '^netfault$' --output-on-failure -j "${JOBS}"
  echo "partition-chaos smoke OK"
}

# Range-storm smoke: the rangestorm-labeled suite (load splits, cooldown
# merges, directory cache, pipelined moves) at a fixed seed with a bounded
# seed sweep, so the composed split/merge/rebalance invariants run on every
# check.sh pass without the suite's default 100-seed scale.
rangestorm_smoke() {
  echo "==> range-storm smoke (rangestorm suite, fixed seed)"
  VELOCE_RANGESTORM_SEEDS=20 VELOCE_RANGESTORM_ITERS=8 \
    ctest --test-dir build -L '^rangestorm$' --output-on-failure -j "${JOBS}"
  echo "range-storm smoke OK"
}

# Scenario smoke: all six built-in "cluster weather" scenarios at a fixed
# seed in fast mode (compressed timelines), each asserting its invariants
# and emitting a parseable BENCH_<scenario>.json; plus the scenario-labeled
# test suite (determinism + snapshot schema).
scenario_smoke() {
  echo "==> scenario smoke (all scenarios, fixed seed, fast mode)"
  local out="build/bench-smoke"
  mkdir -p "${out}"
  ./build/bench/bench_scenarios --fast --seed=0xC10D --out="${out}"
  local name
  for name in black-friday tenant-stampede az-outage rolling-upgrade-under-chaos gray-partition range-storm; do
    local json="${out}/BENCH_${name}.json"
    [[ -s "${json}" ]] || { echo "missing ${json}" >&2; exit 1; }
    if command -v python3 >/dev/null 2>&1; then
      python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${json}"
    else
      grep -q '"passed":true' "${json}"
    fi
  done
  ctest --test-dir build -L '^scenario$' --output-on-failure -j "${JOBS}"
  echo "scenario smoke OK"
}

# Full scenario run: uncompressed timelines at the default seed, snapshots
# committed-to-repo-root BENCH_<scenario>.json (the trajectory artifacts).
scenario_full() {
  echo "==> scenario full run (default seed, repo root snapshots)"
  ./build/bench/bench_scenarios --out="${ROOT}"
  echo "scenario full OK"
}

# Range-storm scale bench: 10k tenants / >= 100k ranges through the full
# split/merge/move/directory data plane. Exit 0 enforces the bench's
# internal gates (peak >= 100k ranges, load splits and merges fire,
# wall-clock p99 bound). Unlike the scenario snapshots this one carries
# wall-clock timings, so it stays in build/bench-smoke, not the repo root.
rangestorm_full() {
  echo "==> range-storm scale bench (10k tenants)"
  local out="build/bench-smoke"
  mkdir -p "${out}"
  (cd "${out}" && ../bench/bench_range_storm)
  local json="${out}/BENCH_range_storm_scale.json"
  [[ -s "${json}" ]] || { echo "missing ${json}" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${json}"
  else
    grep -q '"passed":true' "${json}"
  fi
  echo "range-storm scale OK"
}

case "${1:-}" in
  "")     run_preset release; bench_smoke; chaos_smoke; netfault_smoke; rangestorm_smoke; scenario_smoke ;;
  --asan) run_preset asan ;;
  --tsan) run_preset tsan ;;
  --full) run_preset release; bench_smoke; chaos_smoke; netfault_smoke; rangestorm_smoke; scenario_smoke; scenario_full; rangestorm_full ;;
  --all)  run_preset release; bench_smoke; chaos_smoke; netfault_smoke; rangestorm_smoke; scenario_smoke; run_preset asan; run_preset tsan ;;
  *)      echo "usage: scripts/check.sh [--asan|--tsan|--full|--all]" >&2; exit 2 ;;
esac

echo "OK"
