#ifndef VELOCE_STORAGE_WRITE_BATCH_H_
#define VELOCE_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"

namespace veloce::storage {

/// An atomic group of Put/Delete operations. The KV layer applies each
/// replicated Raft command as one WriteBatch so a range's state machine
/// moves atomically. Serialized form (also the WAL record payload):
///   count: varint32
///   per record: type(1) | keylen varint | key | [vallen varint | val]
class WriteBatch {
 public:
  WriteBatch() { Clear(); }

  void Put(Slice key, Slice value);
  void Delete(Slice key);
  void Clear();
  /// Appends all of `other`'s operations after this batch's (group commit:
  /// the leader concatenates follower batches into one WAL record).
  void Append(const WriteBatch& other);

  uint32_t Count() const;
  size_t ByteSize() const { return rep_.size(); }
  /// Total bytes of user payload (keys + values) — the "x" in admission
  /// control's per-write linear model.
  size_t PayloadBytes() const { return payload_bytes_; }

  const std::string& rep() const { return rep_; }
  /// Replaces contents with a serialized representation (WAL recovery).
  Status SetContents(Slice contents);

  /// Visitor for iteration; returns first non-OK status from the handler.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(Slice key, Slice value) = 0;
    virtual void Delete(Slice key) = 0;
  };
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;
  std::string rep_;
  size_t payload_bytes_ = 0;
};

/// Test/replay backdoor mirroring LevelDB's WriteBatchInternal: installs a
/// serialized representation without validating it, so tests can hand the
/// engine a batch that fails mid-Iterate and prove writes are
/// all-or-nothing.
class WriteBatchInternal {
 public:
  static void SetContentsUnchecked(WriteBatch* batch, Slice contents) {
    batch->rep_.assign(contents.data(), contents.size());
  }
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_WRITE_BATCH_H_
