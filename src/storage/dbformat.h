#ifndef VELOCE_STORAGE_DBFORMAT_H_
#define VELOCE_STORAGE_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "common/codec.h"
#include "common/slice.h"

namespace veloce::storage {

/// Sequence number assigned to each write; monotonically increasing per
/// engine. The top byte is reserved for the value type tag.
using SequenceNumber = uint64_t;
constexpr SequenceNumber kMaxSequenceNumber = (1ULL << 56) - 1;

enum class ValueType : uint8_t {
  kDeletion = 0,
  kValue = 1,
};

/// Internal keys are `user_key . tag` where tag packs (sequence << 8 | type)
/// as a little-endian fixed64. Ordering: user keys ascending, then sequence
/// numbers DESCENDING (newest version first), then type descending — the
/// LevelDB/Pebble layout, which makes "latest visible version" the first
/// match of a seek.
inline uint64_t PackTag(SequenceNumber seq, ValueType type) {
  return (seq << 8) | static_cast<uint64_t>(type);
}

inline void AppendInternalKey(std::string* dst, Slice user_key,
                              SequenceNumber seq, ValueType type) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, PackTag(seq, type));
}

inline std::string MakeInternalKey(Slice user_key, SequenceNumber seq,
                                   ValueType type) {
  std::string out;
  AppendInternalKey(&out, user_key, seq, type);
  return out;
}

/// Extracts the user key portion of an internal key.
inline Slice ExtractUserKey(Slice internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

/// Extracts the packed tag.
inline uint64_t ExtractTag(Slice internal_key) {
  Slice tag(internal_key.data() + internal_key.size() - 8, 8);
  uint64_t packed = 0;
  GetFixed64(&tag, &packed);
  return packed;
}

inline SequenceNumber ExtractSequence(Slice internal_key) {
  return ExtractTag(internal_key) >> 8;
}

inline ValueType ExtractValueType(Slice internal_key) {
  return static_cast<ValueType>(ExtractTag(internal_key) & 0xFF);
}

/// Three-way comparison of internal keys (see ordering note above).
inline int CompareInternalKey(Slice a, Slice b) {
  const int r = ExtractUserKey(a).Compare(ExtractUserKey(b));
  if (r != 0) return r;
  const uint64_t ta = ExtractTag(a);
  const uint64_t tb = ExtractTag(b);
  if (ta > tb) return -1;  // higher seq sorts first
  if (ta < tb) return 1;
  return 0;
}

/// Iterator over internal keys. The standard LevelDB-shaped interface used
/// by memtable, SSTable, and merging iterators.
class InternalIterator {
 public:
  virtual ~InternalIterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with internal key >= target.
  virtual void Seek(Slice target) = 0;
  virtual void Next() = 0;
  virtual Slice key() const = 0;    // internal key
  virtual Slice value() const = 0;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_DBFORMAT_H_
