#include "storage/fault_env.h"

#include <utility>

namespace veloce::storage {

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kAppend: return "append";
    case FaultOp::kSync:   return "sync";
    case FaultOp::kRead:   return "read";
    case FaultOp::kRename: return "rename";
    default:               return "unknown";
  }
}

namespace {

/// Write handle that mirrors every append into the env's shadow copy and
/// records sync points. The base file still receives all bytes immediately —
/// only CrashAndDropUnsynced makes the unsynced suffix actually disappear.
class FaultWritableFileImpl final : public WritableFile {
 public:
  FaultWritableFileImpl(FaultInjectionEnv* env, std::string fname,
                        std::unique_ptr<WritableFile> base,
                        Status (FaultInjectionEnv::*on_append)(const std::string&,
                                                               WritableFile*, Slice),
                        Status (FaultInjectionEnv::*on_sync)(const std::string&,
                                                             WritableFile*))
      : env_(env),
        fname_(std::move(fname)),
        base_(std::move(base)),
        on_append_(on_append),
        on_sync_(on_sync) {}

  Status Append(Slice data) override {
    return (env_->*on_append_)(fname_, base_.get(), data);
  }
  Status Sync() override { return (env_->*on_sync_)(fname_, base_.get()); }
  Status Close() override { return base_->Close(); }
  uint64_t Size() const override { return base_->Size(); }

 private:
  FaultInjectionEnv* env_;
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
  Status (FaultInjectionEnv::*on_append_)(const std::string&, WritableFile*, Slice);
  Status (FaultInjectionEnv::*on_sync_)(const std::string&, WritableFile*);
};

class FaultRandomAccessFileImpl final : public RandomAccessFile {
 public:
  FaultRandomAccessFileImpl(
      FaultInjectionEnv* env, std::string fname,
      std::unique_ptr<RandomAccessFile> base,
      Status (FaultInjectionEnv::*on_read)(const std::string&,
                                           const RandomAccessFile*, uint64_t,
                                           size_t, std::string*))
      : env_(env), fname_(std::move(fname)), base_(std::move(base)),
        on_read_(on_read) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    return (env_->*on_read_)(fname_, base_.get(), offset, n, out);
  }
  uint64_t Size() const override { return base_->Size(); }

 private:
  FaultInjectionEnv* env_;
  std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
  Status (FaultInjectionEnv::*on_read_)(const std::string&,
                                        const RandomAccessFile*, uint64_t,
                                        size_t, std::string*);
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed,
                                     obs::MetricsRegistry* metrics)
    : base_(base), metrics_(metrics), rng_(seed) {
  if (metrics_ != nullptr) {
    for (int i = 0; i < static_cast<int>(FaultOp::kNumOps); ++i) {
      injected_c_[i] = metrics_->counter(
          "veloce_storage_injected_faults_total",
          {{"kind", FaultOpName(static_cast<FaultOp>(i))}});
    }
  }
}

int FaultInjectionEnv::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> l(mu_);
  RuleState rs;
  rs.id = next_rule_id_++;
  rs.rule = std::move(rule);
  rules_.push_back(std::move(rs));
  return rules_.back().id;
}

void FaultInjectionEnv::RemoveRule(int id) {
  std::lock_guard<std::mutex> l(mu_);
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      rules_.erase(it);
      return;
    }
  }
}

void FaultInjectionEnv::ClearRules() {
  std::lock_guard<std::mutex> l(mu_);
  rules_.clear();
}

void FaultInjectionEnv::SetDown(bool down) {
  std::lock_guard<std::mutex> l(mu_);
  down_ = down;
}

bool FaultInjectionEnv::down() const {
  std::lock_guard<std::mutex> l(mu_);
  return down_;
}

void FaultInjectionEnv::CountFaultLocked(FaultOp op) {
  ++injected_total_;
  ++injected_by_op_[static_cast<int>(op)];
  if (injected_c_[static_cast<int>(op)] != nullptr) {
    injected_c_[static_cast<int>(op)]->Inc();
  }
}

const FaultRule* FaultInjectionEnv::MatchLocked(FaultOp op,
                                                const std::string& fname) {
  for (auto& rs : rules_) {
    if (rs.rule.op != op) continue;
    if (!rs.rule.path_substr.empty() &&
        fname.find(rs.rule.path_substr) == std::string::npos) {
      continue;
    }
    ++rs.seen;
    if (rs.seen <= rs.rule.skip) continue;
    if (rs.rule.count >= 0 && rs.fired >= rs.rule.count) continue;
    ++rs.fired;
    CountFaultLocked(op);
    return &rs.rule;
  }
  return nullptr;
}

Status FaultInjectionEnv::CheckFault(FaultOp op, const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  if (down_) {
    CountFaultLocked(op);
    return Status::Unavailable("injected: storage unreachable");
  }
  if (const FaultRule* r = MatchLocked(op, fname)) {
    if (!r->bit_flip) return r->error;
    // A bit-flip rule on a non-read op degenerates to its error status.
    if (op != FaultOp::kRead) return r->error;
  }
  return Status::OK();
}

Status FaultInjectionEnv::OnAppend(const std::string& fname, WritableFile* base,
                                   Slice data) {
  VELOCE_RETURN_IF_ERROR(CheckFault(FaultOp::kAppend, fname));
  VELOCE_RETURN_IF_ERROR(base->Append(data));
  std::lock_guard<std::mutex> l(mu_);
  files_[fname].data.append(data.data(), data.size());
  return Status::OK();
}

Status FaultInjectionEnv::OnSync(const std::string& fname, WritableFile* base) {
  VELOCE_RETURN_IF_ERROR(CheckFault(FaultOp::kSync, fname));
  VELOCE_RETURN_IF_ERROR(base->Sync());
  std::lock_guard<std::mutex> l(mu_);
  FileState& fs = files_[fname];
  fs.synced = fs.data.size();
  ++sync_count_;
  return Status::OK();
}

Status FaultInjectionEnv::OnRead(const std::string& fname,
                                 const RandomAccessFile* base, uint64_t offset,
                                 size_t n, std::string* out) {
  bool flip = false;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (down_) {
      CountFaultLocked(FaultOp::kRead);
      return Status::Unavailable("injected: storage unreachable");
    }
    if (const FaultRule* r = MatchLocked(FaultOp::kRead, fname)) {
      if (!r->bit_flip) return r->error;
      flip = true;
    }
  }
  VELOCE_RETURN_IF_ERROR(base->Read(offset, n, out));
  if (flip && !out->empty()) {
    std::lock_guard<std::mutex> l(mu_);
    const size_t byte = rng_.Uniform(out->size());
    (*out)[byte] = static_cast<char>((*out)[byte] ^ (1u << rng_.Uniform(8)));
  }
  return Status::OK();
}

void FaultInjectionEnv::CrashAndDropUnsynced(bool torn_tail) {
  std::map<std::string, std::string> post;
  {
    std::lock_guard<std::mutex> l(mu_);
    ++crash_count_;
    for (auto& [fname, fs] : files_) {
      size_t keep = fs.synced;
      if (torn_tail && fs.data.size() > fs.synced) {
        // A strict prefix of the unsynced suffix survives: some pages made
        // it to the platter before power loss, the rest tore off.
        keep += rng_.Uniform(fs.data.size() - fs.synced);
      }
      fs.data.resize(keep);
      fs.synced = keep;
      post[fname] = fs.data;
    }
  }
  // Rewrite the base files outside our lock (the base env locks internally).
  for (const auto& [fname, content] : post) {
    if (base_->FileExists(fname)) base_->DeleteFile(fname);
    std::unique_ptr<WritableFile> f;
    if (!base_->NewWritableFile(fname, &f).ok()) continue;
    f->Append(Slice(content));
    f->Sync();
    f->Close();
  }
}

uint64_t FaultInjectionEnv::injected_faults() const {
  std::lock_guard<std::mutex> l(mu_);
  return injected_total_;
}

uint64_t FaultInjectionEnv::injected(FaultOp op) const {
  std::lock_guard<std::mutex> l(mu_);
  return injected_by_op_[static_cast<int>(op)];
}

uint64_t FaultInjectionEnv::sync_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return sync_count_;
}

uint64_t FaultInjectionEnv::crash_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return crash_count_;
}

Status FaultInjectionEnv::NewWritableFile(const std::string& fname,
                                          std::unique_ptr<WritableFile>* file) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (down_) {
      CountFaultLocked(FaultOp::kAppend);
      return Status::Unavailable("injected: storage unreachable");
    }
  }
  std::unique_ptr<WritableFile> base_file;
  VELOCE_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  {
    // Creation truncates: reset the shadow state for this name.
    std::lock_guard<std::mutex> l(mu_);
    files_[fname] = FileState{};
  }
  *file = std::make_unique<FaultWritableFileImpl>(
      this, fname, std::move(base_file), &FaultInjectionEnv::OnAppend,
      &FaultInjectionEnv::OnSync);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* file) {
  std::unique_ptr<RandomAccessFile> base_file;
  VELOCE_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base_file));
  *file = std::make_unique<FaultRandomAccessFileImpl>(
      this, fname, std::move(base_file), &FaultInjectionEnv::OnRead);
  return Status::OK();
}

Status FaultInjectionEnv::DeleteFile(const std::string& fname) {
  VELOCE_RETURN_IF_ERROR(base_->DeleteFile(fname));
  std::lock_guard<std::mutex> l(mu_);
  files_.erase(fname);
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* out) {
  return base_->GetChildren(dir, out);
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dir) {
  return base_->CreateDirIfMissing(dir);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  VELOCE_RETURN_IF_ERROR(CheckFault(FaultOp::kRename, src));
  VELOCE_RETURN_IF_ERROR(base_->RenameFile(src, target));
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(src);
  if (it != files_.end()) {
    // Rename is metadata-durable in our model: the target inherits the
    // source's synced prefix.
    files_[target] = std::move(it->second);
    files_.erase(it);
  }
  return Status::OK();
}

}  // namespace veloce::storage
