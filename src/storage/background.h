#ifndef VELOCE_STORAGE_BACKGROUND_H_
#define VELOCE_STORAGE_BACKGROUND_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace veloce::storage {

/// Executes the engine's background work (memtable flushes, compactions).
///
/// Two families of implementations exist:
///  * ThreadPoolExecutor — real OS threads; flush and compaction overlap
///    foreground writes, which is what the multi-threaded write benches and
///    the TSan stress test exercise.
///  * sim::SimExecutor (src/sim/sim_executor.h) — enqueues work on the
///    discrete-event loop, so background work interleaves with simulated
///    time deterministically and the paper-figure benches stay
///    bit-reproducible.
///
/// Contract: Schedule() must NOT run `fn` inline on the calling thread (the
/// engine schedules while holding its mutex). A null executor on the engine
/// means fully synchronous flush/compaction inside the triggering write —
/// the legacy deterministic mode.
class BackgroundExecutor {
 public:
  virtual ~BackgroundExecutor() = default;

  /// Enqueues `fn` to run later. Never runs it inline.
  virtual void Schedule(std::function<void()> fn) = 0;

  /// Enqueues `fn` to run roughly `delay_ns` from now — the engine's
  /// backoff between retries of a transiently failing flush/compaction.
  /// The default ignores the delay and schedules promptly, which is
  /// acceptable for thread pools (the retry just happens sooner); the sim
  /// executor overrides this to burn simulated time deterministically.
  virtual void ScheduleAfter(uint64_t delay_ns, std::function<void()> fn) {
    (void)delay_ns;
    Schedule(std::move(fn));
  }

  /// True when scheduled work cannot progress while the caller blocks
  /// (single-threaded executors). Stalled writers then assist by calling
  /// RunQueued() instead of sleeping on a condition variable — blocking
  /// would deadlock a single-threaded sim.
  virtual bool single_threaded() const = 0;

  /// Runs queued tasks on the calling thread; returns how many ran.
  /// Multi-threaded executors may return 0 (their workers make progress on
  /// their own).
  virtual size_t RunQueued() = 0;

  /// Tasks queued or running — exported as veloce_storage_bg_queue_depth.
  virtual size_t queue_depth() const = 0;
};

/// Fixed-size pool of worker threads draining a FIFO queue. Destruction
/// finishes every queued task before joining (engine background closures
/// no-op once their owner is gone, so drain is cheap and safe).
class ThreadPoolExecutor final : public BackgroundExecutor {
 public:
  explicit ThreadPoolExecutor(int num_threads = 2);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void Schedule(std::function<void()> fn) override;
  bool single_threaded() const override { return false; }
  size_t RunQueued() override { return 0; }
  size_t queue_depth() const override;

  /// Blocks until the queue is empty and no task is running.
  void Drain();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for tasks
  std::condition_variable drain_cv_;  ///< Drain() waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_BACKGROUND_H_
