#include "storage/sstable.h"

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/logging.h"

namespace veloce::storage {

namespace {
constexpr uint64_t kTableMagic = 0x76656c6f63655354ULL;    // "veloceST"
constexpr uint64_t kTableMagicV2 = 0x76656c6f63655432ULL;  // "veloceT2"
constexpr uint64_t kFormatV2 = 2;
constexpr size_t kFooterV1Size = 24;
constexpr size_t kFooterV2Size = 48;
}  // namespace

TableBuilder::TableBuilder(std::unique_ptr<WritableFile> file, TableOptions options)
    : file_(std::move(file)),
      options_(options),
      bloom_(options.bloom_bits_per_key) {}

TableBuilder::TableBuilder(std::unique_ptr<WritableFile> file, size_t block_size)
    : TableBuilder(std::move(file), TableOptions{.block_size = block_size}) {}

Status TableBuilder::Add(Slice internal_key, Slice value) {
  VELOCE_CHECK(!finished_);
  if (!last_key_.empty()) {
    VELOCE_CHECK(CompareInternalKey(internal_key, Slice(last_key_)) > 0)
        << "keys added out of order";
  }
  if (smallest_.empty()) smallest_.assign(internal_key.data(), internal_key.size());
  largest_.assign(internal_key.data(), internal_key.size());
  last_key_.assign(internal_key.data(), internal_key.size());

  if (options_.bloom_filter) {
    const Slice user_key = ExtractUserKey(internal_key);
    bloom_.AddKey(options_.prefix_extractor != nullptr
                      ? options_.prefix_extractor(user_key)
                      : user_key);
  }

  PutVarint64(&block_buf_, internal_key.size());
  block_buf_.append(internal_key.data(), internal_key.size());
  PutVarint64(&block_buf_, value.size());
  block_buf_.append(value.data(), value.size());
  ++num_entries_;

  if (block_buf_.size() >= options_.block_size) {
    return FlushBlock();
  }
  return Status::OK();
}

Status TableBuilder::FlushBlock() {
  if (block_buf_.empty()) return Status::OK();
  // Index entry: last key of this block, offset, payload size (sans crc).
  PutVarint64(&index_, last_key_.size());
  index_.append(last_key_);
  PutFixed64(&index_, block_start_);
  PutFixed64(&index_, block_buf_.size());

  std::string crc;
  PutFixed32(&crc, crc32c::Mask(crc32c::Value(block_buf_.data(), block_buf_.size())));
  VELOCE_RETURN_IF_ERROR(file_->Append(Slice(block_buf_)));
  VELOCE_RETURN_IF_ERROR(file_->Append(Slice(crc)));
  offset_ += block_buf_.size() + 4;
  block_start_ = offset_;
  block_buf_.clear();
  return Status::OK();
}

Status TableBuilder::Finish() {
  VELOCE_CHECK(!finished_);
  finished_ = true;
  VELOCE_RETURN_IF_ERROR(FlushBlock());

  uint64_t filter_offset = 0, filter_size = 0;
  if (options_.bloom_filter) {
    const std::string filter = bloom_.Finish();
    filter_offset = offset_;
    filter_size = filter.size();
    std::string crc;
    PutFixed32(&crc, crc32c::Mask(crc32c::Value(filter.data(), filter.size())));
    VELOCE_RETURN_IF_ERROR(file_->Append(Slice(filter)));
    VELOCE_RETURN_IF_ERROR(file_->Append(Slice(crc)));
    offset_ += filter.size() + 4;
  }

  const uint64_t index_offset = offset_;
  VELOCE_RETURN_IF_ERROR(file_->Append(Slice(index_)));
  offset_ += index_.size();

  std::string footer;
  if (options_.bloom_filter) {
    PutFixed64(&footer, filter_offset);
    PutFixed64(&footer, filter_size);
    PutFixed64(&footer, index_offset);
    PutFixed64(&footer, index_.size());
    PutFixed64(&footer, kFormatV2);
    PutFixed64(&footer, kTableMagicV2);
  } else {
    // Legacy v1 footer: identical to pre-filter tables, so the backward
    // compatibility path stays exercised by every bloom-disabled build.
    PutFixed64(&footer, index_offset);
    PutFixed64(&footer, index_.size());
    PutFixed64(&footer, kTableMagic);
  }
  VELOCE_RETURN_IF_ERROR(file_->Append(Slice(footer)));
  offset_ += footer.size();
  VELOCE_RETURN_IF_ERROR(file_->Sync());
  return file_->Close();
}

StatusOr<std::shared_ptr<Table>> Table::Open(std::unique_ptr<RandomAccessFile> file,
                                             BlockCache* cache,
                                             uint64_t file_number) {
  const uint64_t size = file->Size();
  if (size < kFooterV1Size) return Status::Corruption("table too small");
  std::string magic_buf;
  VELOCE_RETURN_IF_ERROR(file->Read(size - 8, 8, &magic_buf));
  Slice m(magic_buf);
  uint64_t magic = 0;
  GetFixed64(&m, &magic);

  auto table = std::shared_ptr<Table>(new Table());
  uint64_t index_offset = 0, index_size = 0;
  if (magic == kTableMagicV2) {
    if (size < kFooterV2Size) return Status::Corruption("v2 table too small");
    std::string footer;
    VELOCE_RETURN_IF_ERROR(file->Read(size - kFooterV2Size, kFooterV2Size, &footer));
    Slice f(footer);
    uint64_t version = 0, magic2 = 0;
    GetFixed64(&f, &table->filter_offset_);
    GetFixed64(&f, &table->filter_size_);
    GetFixed64(&f, &index_offset);
    GetFixed64(&f, &index_size);
    GetFixed64(&f, &version);
    GetFixed64(&f, &magic2);
    if (version < kFormatV2) return Status::Corruption("bad v2 table version");
    table->format_version_ = version;
    if (table->filter_offset_ + table->filter_size_ + 4 > size) {
      return Status::Corruption("bad filter location");
    }
  } else if (magic == kTableMagic) {
    std::string footer;
    VELOCE_RETURN_IF_ERROR(file->Read(size - kFooterV1Size, kFooterV1Size, &footer));
    Slice f(footer);
    uint64_t magic1 = 0;
    GetFixed64(&f, &index_offset);
    GetFixed64(&f, &index_size);
    GetFixed64(&f, &magic1);
    table->format_version_ = 1;
  } else {
    return Status::Corruption("bad table magic");
  }
  if (index_offset + index_size + kFooterV1Size > size) {
    return Status::Corruption("bad index location");
  }
  std::string index;
  VELOCE_RETURN_IF_ERROR(file->Read(index_offset, index_size, &index));

  table->file_ = std::move(file);
  table->cache_ = cache;
  table->file_number_ = file_number;
  Slice in(index);
  while (!in.empty()) {
    uint64_t klen = 0;
    if (!GetVarint64(&in, &klen) || in.size() < klen + 16) {
      return Status::Corruption("bad index entry");
    }
    IndexEntry e;
    e.last_key.assign(in.data(), klen);
    in.RemovePrefix(klen);
    GetFixed64(&in, &e.offset);
    GetFixed64(&in, &e.size);
    table->index_entries_.push_back(std::move(e));
  }
  return table;
}

void Table::EnsureFilterLoaded() const {
  std::call_once(filter_once_, [this] {
    std::string raw;
    if (!file_->Read(filter_offset_, filter_size_ + 4, &raw).ok() ||
        raw.size() != filter_size_ + 4) {
      return;  // unreadable filter: fall back to probing data blocks
    }
    Slice crc_slice(raw.data() + filter_size_, 4);
    uint32_t masked = 0;
    GetFixed32(&crc_slice, &masked);
    if (crc32c::Unmask(masked) != crc32c::Value(raw.data(), filter_size_)) {
      return;  // corrupt filter: treat as absent, reads stay correct
    }
    raw.resize(filter_size_);
    filter_ = std::move(raw);
  });
}

bool Table::MayContainPrefix(Slice prefix) const {
  if (filter_size_ == 0) return true;
  EnsureFilterLoaded();
  if (filter_.empty()) return true;
  return BloomKeyMayMatch(prefix, Slice(filter_));
}

Status Table::ReadBlock(size_t block_idx,
                        std::shared_ptr<const std::string>* out) const {
  if (cache_ != nullptr) {
    if (auto cached = cache_->Lookup(file_number_, block_idx)) {
      *out = std::move(cached);
      return Status::OK();
    }
  }
  const IndexEntry& e = index_entries_[block_idx];
  std::string raw;
  VELOCE_RETURN_IF_ERROR(file_->Read(e.offset, e.size + 4, &raw));
  if (raw.size() != e.size + 4) return Status::Corruption("short block read");
  Slice crc_slice(raw.data() + e.size, 4);
  uint32_t masked = 0;
  GetFixed32(&crc_slice, &masked);
  if (crc32c::Unmask(masked) != crc32c::Value(raw.data(), e.size)) {
    return Status::Corruption("block checksum mismatch");
  }
  raw.resize(e.size);
  if (cache_ != nullptr) {
    cache_->Insert(file_number_, block_idx, raw);
    *out = cache_->Lookup(file_number_, block_idx);
    if (*out != nullptr) return Status::OK();
  }
  *out = std::make_shared<const std::string>(std::move(raw));
  return Status::OK();
}

int Table::FindBlock(Slice target) const {
  // Binary search for the first block whose last key >= target.
  int lo = 0, hi = static_cast<int>(index_entries_.size()) - 1, ans = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (CompareInternalKey(Slice(index_entries_[mid].last_key), target) >= 0) {
      ans = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return ans;
}

Status Table::SeekEntry(Slice lookup_key, std::string* found_key,
                        std::string* found_value) const {
  const int block = FindBlock(lookup_key);
  if (block < 0) return Status::NotFound("past end of table");
  std::shared_ptr<const std::string> data;
  VELOCE_RETURN_IF_ERROR(ReadBlock(static_cast<size_t>(block), &data));
  Slice in(*data);
  while (!in.empty()) {
    Slice key, value;
    uint64_t klen = 0, vlen = 0;
    if (!GetVarint64(&in, &klen) || in.size() < klen) {
      return Status::Corruption("bad block entry");
    }
    key = Slice(in.data(), klen);
    in.RemovePrefix(klen);
    if (!GetVarint64(&in, &vlen) || in.size() < vlen) {
      return Status::Corruption("bad block entry");
    }
    value = Slice(in.data(), vlen);
    in.RemovePrefix(vlen);
    if (CompareInternalKey(key, lookup_key) >= 0) {
      found_key->assign(key.data(), key.size());
      found_value->assign(value.data(), value.size());
      return Status::OK();
    }
  }
  // Target is greater than every key in this block; by the index invariant
  // this can't happen unless the table is corrupt.
  return Status::NotFound("not in block");
}

/// Iterator: walks blocks lazily, materializing one block at a time.
class Table::Iter final : public InternalIterator {
 public:
  explicit Iter(const Table* table) : table_(table) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    block_idx_ = 0;
    LoadBlockAndPosition(Slice());
  }

  void Seek(Slice target) override {
    const int b = table_->FindBlock(target);
    if (b < 0) {
      valid_ = false;
      return;
    }
    block_idx_ = static_cast<size_t>(b);
    LoadBlockAndPosition(target);
  }

  void Next() override {
    ParseNext();
    while (!valid_ && block_idx_ + 1 < table_->index_entries_.size()) {
      ++block_idx_;
      LoadBlockAndPosition(Slice());
    }
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }

 private:
  // Loads block_idx_ and positions at the first entry >= target (or first
  // entry when target is empty).
  void LoadBlockAndPosition(Slice target) {
    valid_ = false;
    if (block_idx_ >= table_->index_entries_.size()) return;
    if (!table_->ReadBlock(block_idx_, &block_).ok()) return;
    pos_ = 0;
    ParseNext();
    if (!target.empty()) {
      while (valid_ && CompareInternalKey(Slice(key_), target) < 0) ParseNext();
    }
    // If we ran off this block while seeking, spill into the next ones.
    while (!valid_ && block_idx_ + 1 < table_->index_entries_.size()) {
      ++block_idx_;
      if (!table_->ReadBlock(block_idx_, &block_).ok()) return;
      pos_ = 0;
      ParseNext();
      if (!target.empty()) {
        while (valid_ && CompareInternalKey(Slice(key_), target) < 0) ParseNext();
      }
    }
  }

  void ParseNext() {
    if (block_ == nullptr || pos_ >= block_->size()) {
      valid_ = false;
      return;
    }
    Slice in(block_->data() + pos_, block_->size() - pos_);
    const char* start = in.data();
    uint64_t klen = 0, vlen = 0;
    if (!GetVarint64(&in, &klen) || in.size() < klen) {
      valid_ = false;
      return;
    }
    key_.assign(in.data(), klen);
    in.RemovePrefix(klen);
    if (!GetVarint64(&in, &vlen) || in.size() < vlen) {
      valid_ = false;
      return;
    }
    value_.assign(in.data(), vlen);
    in.RemovePrefix(vlen);
    pos_ += static_cast<size_t>(in.data() - start);
    valid_ = true;
  }

  const Table* table_;
  size_t block_idx_ = 0;
  std::shared_ptr<const std::string> block_;
  size_t pos_ = 0;
  std::string key_, value_;
  bool valid_ = false;
};

std::unique_ptr<InternalIterator> Table::NewIterator() const {
  return std::make_unique<Iter>(this);
}

}  // namespace veloce::storage
