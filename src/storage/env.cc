#include "storage/env.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>

namespace veloce::storage {

Status Env::ReadFileToString(const std::string& fname, std::string* out) {
  std::unique_ptr<RandomAccessFile> file;
  VELOCE_RETURN_IF_ERROR(NewRandomAccessFile(fname, &file));
  return file->Read(0, static_cast<size_t>(file->Size()), out);
}

Status Env::WriteStringToFile(const std::string& fname, Slice data) {
  // Temp-file + rename so the target is never observable half-written: a
  // crash mid-write leaves at worst a stray "*.tmp" that recovery ignores.
  const std::string tmp = fname + ".tmp";
  std::unique_ptr<WritableFile> file;
  VELOCE_RETURN_IF_ERROR(NewWritableFile(tmp, &file));
  Status s = file->Append(data);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) {
    DeleteFile(tmp);  // best effort; ignore secondary failure
    return s;
  }
  return RenameFile(tmp, fname);
}

namespace {

// ---------------------------------------------------------------------------
// MemEnv: a shared map of filename -> contents, guarded by one mutex.
// ---------------------------------------------------------------------------

struct MemFileSystem {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<std::string>> files;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<std::string> content)
      : content_(std::move(content)) {}

  Status Append(Slice data) override {
    content_->append(data.data(), data.size());
    return Status::OK();
  }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  uint64_t Size() const override { return content_->size(); }

 private:
  std::shared_ptr<std::string> content_;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<std::string> content)
      : content_(std::move(content)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->clear();
    if (offset > content_->size()) {
      return Status::IOError("read past end of file");
    }
    const size_t avail = content_->size() - static_cast<size_t>(offset);
    out->assign(*content_, static_cast<size_t>(offset), n < avail ? n : avail);
    return Status::OK();
  }
  uint64_t Size() const override { return content_->size(); }

 private:
  std::shared_ptr<std::string> content_;
};

class MemEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::lock_guard<std::mutex> l(fs_.mu);
    auto content = std::make_shared<std::string>();
    fs_.files[fname] = content;
    *file = std::make_unique<MemWritableFile>(std::move(content));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override {
    std::lock_guard<std::mutex> l(fs_.mu);
    auto it = fs_.files.find(fname);
    if (it == fs_.files.end()) return Status::NotFound(fname);
    *file = std::make_unique<MemRandomAccessFile>(it->second);
    return Status::OK();
  }

  Status DeleteFile(const std::string& fname) override {
    std::lock_guard<std::mutex> l(fs_.mu);
    if (fs_.files.erase(fname) == 0) return Status::NotFound(fname);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::lock_guard<std::mutex> l(fs_.mu);
    return fs_.files.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir, std::vector<std::string>* out) override {
    out->clear();
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    std::lock_guard<std::mutex> l(fs_.mu);
    for (const auto& [name, _] : fs_.files) {
      if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
        const std::string rest = name.substr(prefix.size());
        if (rest.find('/') == std::string::npos) out->push_back(rest);
      }
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string&) override { return Status::OK(); }

  Status RenameFile(const std::string& src, const std::string& target) override {
    std::lock_guard<std::mutex> l(fs_.mu);
    auto it = fs_.files.find(src);
    if (it == fs_.files.end()) return Status::NotFound(src);
    fs_.files[target] = it->second;
    fs_.files.erase(it);
    return Status::OK();
  }

 private:
  MemFileSystem fs_;
};

// ---------------------------------------------------------------------------
// PosixEnv: thin stdio wrapper; sufficient for examples that want real files.
// ---------------------------------------------------------------------------

class PosixWritableFile final : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f) : f_(f) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(Slice data) override {
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::IOError(std::strerror(errno));
    }
    size_ += data.size();
    return Status::OK();
  }
  Status Sync() override {
    if (std::fflush(f_) != 0) return Status::IOError(std::strerror(errno));
    return Status::OK();
  }
  Status Close() override {
    if (f_ != nullptr) {
      if (std::fclose(f_) != 0) {
        f_ = nullptr;
        return Status::IOError(std::strerror(errno));
      }
      f_ = nullptr;
    }
    return Status::OK();
  }
  uint64_t Size() const override { return size_; }

 private:
  std::FILE* f_;
  uint64_t size_ = 0;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::FILE* f, uint64_t size) : f_(f), size_(size) {}
  ~PosixRandomAccessFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError(std::strerror(errno));
    }
    const size_t got = std::fread(out->data(), 1, n, f_);
    out->resize(got);
    return Status::OK();
  }
  uint64_t Size() const override { return size_; }

 private:
  std::FILE* f_;
  uint64_t size_;
};

class PosixEnvImpl final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::FILE* f = std::fopen(fname.c_str(), "wb");
    if (f == nullptr) return Status::IOError(fname + ": " + std::strerror(errno));
    *file = std::make_unique<PosixWritableFile>(f);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override {
    std::FILE* f = std::fopen(fname.c_str(), "rb");
    if (f == nullptr) return Status::NotFound(fname + ": " + std::strerror(errno));
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    *file = std::make_unique<PosixRandomAccessFile>(f, static_cast<uint64_t>(size));
    return Status::OK();
  }

  Status DeleteFile(const std::string& fname) override {
    if (std::remove(fname.c_str()) != 0) return Status::IOError(std::strerror(errno));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    struct stat st;
    return ::stat(fname.c_str(), &st) == 0;
  }

  Status GetChildren(const std::string& dir, std::vector<std::string>* out) override {
    out->clear();
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      out->push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError(ec.message());
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return Status::IOError(ec.message());
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    // std::rename replaces an existing target atomically on POSIX.
    if (std::rename(src.c_str(), target.c_str()) != 0) {
      return Status::IOError(src + " -> " + target + ": " + std::strerror(errno));
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

Env* PosixEnv() {
  static PosixEnvImpl* env = new PosixEnvImpl();
  return env;
}

}  // namespace veloce::storage
