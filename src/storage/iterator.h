#ifndef VELOCE_STORAGE_ITERATOR_H_
#define VELOCE_STORAGE_ITERATOR_H_

#include <memory>
#include <vector>

#include "storage/dbformat.h"

namespace veloce::storage {

/// Merges N sorted internal iterators into one sorted stream. Ties (same
/// internal key) break toward the lower child index, so callers order
/// children newest-first.
std::unique_ptr<InternalIterator> NewMergingIterator(
    std::vector<std::unique_ptr<InternalIterator>> children);

/// Public-facing iterator over user keys and values: collapses the internal
/// multi-version stream to the newest visible version of each user key at
/// `snapshot_seq`, hiding tombstones.
class Iterator {
 public:
  virtual ~Iterator() = default;
  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first visible user key >= target.
  virtual void Seek(Slice target) = 0;
  virtual void Next() = 0;
  virtual Slice key() const = 0;    // user key
  virtual Slice value() const = 0;
};

/// Wraps an internal iterator (already merged) into a user-facing Iterator.
std::unique_ptr<Iterator> NewUserIterator(std::unique_ptr<InternalIterator> internal,
                                          SequenceNumber snapshot_seq);

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_ITERATOR_H_
