#include "storage/engine.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/codec.h"
#include "common/logging.h"
#include "storage/background.h"

namespace veloce::storage {

namespace {

// Applies a WriteBatch to a memtable, assigning consecutive sequence numbers
// starting at base_seq.
class MemTableInserter : public WriteBatch::Handler {
 public:
  MemTableInserter(MemTable* mem, SequenceNumber base_seq)
      : mem_(mem), seq_(base_seq) {}

  void Put(Slice key, Slice value) override {
    mem_->Add(seq_++, ValueType::kValue, key, value);
  }
  void Delete(Slice key) override {
    mem_->Add(seq_++, ValueType::kDeletion, key, Slice());
  }

  SequenceNumber next_seq() const { return seq_; }

 private:
  MemTable* mem_;
  SequenceNumber seq_;
};

}  // namespace

std::string Engine::TableFileName(uint64_t number) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06" PRIu64 ".sst", number);
  return options_.dir + buf;
}

std::string Engine::WalFileName(uint64_t number) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/wal-%06" PRIu64 ".log", number);
  return options_.dir + buf;
}

std::string Engine::ManifestFileName() const { return options_.dir + "/MANIFEST"; }

namespace {
TableOptions MakeTableOptions(const EngineOptions& options) {
  return TableOptions{.block_size = options.block_bytes,
                      .bloom_filter = options.bloom_filters,
                      .bloom_bits_per_key = options.bloom_bits_per_key,
                      .prefix_extractor = options.prefix_extractor};
}
}  // namespace

StatusOr<std::unique_ptr<Engine>> Engine::Open(EngineOptions options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;
  if (options.env == nullptr) {
    engine->owned_env_ = NewMemEnv();
    engine->env_ = engine->owned_env_.get();
  } else {
    engine->env_ = options.env;
  }
  VELOCE_RETURN_IF_ERROR(engine->env_->CreateDirIfMissing(options.dir));
  if (options.block_cache_bytes > 0) {
    engine->block_cache_ = std::make_unique<BlockCache>(options.block_cache_bytes,
                                                        options.block_cache_shards);
  }
  engine->executor_ = options.background_executor;
  if (engine->executor_ != nullptr) {
    engine->bg_token_ = std::make_shared<BgToken>();
  }
  engine->mem_ = std::make_shared<MemTable>();
  engine->InitMetrics();
  VELOCE_RETURN_IF_ERROR(engine->Recover());
  return engine;
}

void Engine::InitMetrics() {
  if (options_.obs.metrics != nullptr) {
    metrics_ = options_.obs.metrics;
  } else {
    // Private registry: keeps stats() per-instance-correct with zero wiring.
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::Labels labels;
  if (!options_.metrics_instance.empty()) {
    labels.emplace_back("node", options_.metrics_instance);
  }
  ingest_bytes_c_ = metrics_->counter("veloce_storage_ingest_bytes", labels);
  wal_bytes_c_ = metrics_->counter("veloce_storage_wal_bytes", labels);
  flush_bytes_c_ = metrics_->counter("veloce_storage_flush_bytes", labels);
  compact_read_bytes_c_ = metrics_->counter("veloce_storage_compact_read_bytes", labels);
  compact_write_bytes_c_ =
      metrics_->counter("veloce_storage_compact_write_bytes", labels);
  flushes_c_ = metrics_->counter("veloce_storage_flushes_total", labels);
  compactions_c_ = metrics_->counter("veloce_storage_compactions_total", labels);
  // Point-read fast path: bloom and pruning effectiveness.
  bloom_checked_c_ = metrics_->counter("veloce_storage_bloom_checked_total", labels);
  bloom_useful_c_ = metrics_->counter("veloce_storage_bloom_useful_total", labels);
  bloom_false_positive_c_ =
      metrics_->counter("veloce_storage_bloom_false_positive_total", labels);
  tables_pruned_c_ =
      metrics_->counter("veloce_storage_read_tables_pruned_total", labels);
  // Write path: backpressure and group commit effectiveness. Stall seconds
  // is a Gauge fed with cumulative Add() because stalls are fractional.
  write_stalls_c_ = metrics_->counter("veloce_storage_write_stalls_total", labels);
  stall_seconds_g_ =
      metrics_->gauge("veloce_storage_write_stall_seconds_total", labels);
  commit_group_size_h_ =
      metrics_->histogram("veloce_storage_commit_group_size", labels);
  // Fault tolerance: degraded-mode state machine + background retry churn.
  degraded_g_ = metrics_->gauge("veloce_storage_degraded_mode", labels);
  degraded_entries_c_ =
      metrics_->counter("veloce_storage_degraded_entries_total", labels);
  degraded_exits_c_ =
      metrics_->counter("veloce_storage_degraded_exits_total", labels);
  bg_retries_c_ = metrics_->counter("veloce_storage_bg_retries_total", labels);
  bg_retry_backoff_h_ =
      metrics_->histogram("veloce_storage_bg_retry_backoff_ns", labels);
  wal_truncated_c_ =
      metrics_->counter("veloce_storage_wal_truncated_records_total", labels);
  // Pull-style gauges: L0/flush backlog and block-cache hit ratio inputs.
  obs::Gauge* l0 = metrics_->gauge("veloce_storage_l0_files", labels);
  obs::Gauge* bg_depth = metrics_->gauge("veloce_storage_bg_queue_depth", labels);
  obs::Gauge* imm = metrics_->gauge("veloce_storage_imm_memtables", labels);
  obs::Gauge* hits = metrics_->gauge("veloce_storage_block_cache_hits", labels);
  obs::Gauge* misses = metrics_->gauge("veloce_storage_block_cache_misses", labels);
  obs::Gauge* ratio = metrics_->gauge("veloce_storage_block_cache_hit_ratio", labels);
  // Per-shard series expose lock-contention hot spots in the sharded cache.
  std::vector<std::pair<obs::Gauge*, obs::Gauge*>> shard_gauges;
  if (block_cache_ != nullptr) {
    for (size_t i = 0; i < block_cache_->num_shards(); ++i) {
      obs::Labels shard_labels = labels;
      shard_labels.emplace_back("shard", std::to_string(i));
      shard_gauges.emplace_back(
          metrics_->gauge("veloce_storage_block_cache_shard_hits", shard_labels),
          metrics_->gauge("veloce_storage_block_cache_shard_misses", shard_labels));
    }
  }
  gauge_callback_ = metrics_->AddCollectCallback(
      [this, l0, bg_depth, imm, hits, misses, ratio,
       shard_gauges = std::move(shard_gauges)] {
        l0->Set(NumFilesAtLevel(0));
        bg_depth->Set(executor_ != nullptr
                          ? static_cast<double>(executor_->queue_depth())
                          : 0);
        imm->Set(static_cast<double>(imm_count_.load(std::memory_order_relaxed)));
        if (block_cache_ != nullptr) {
          const double h = static_cast<double>(block_cache_->hits());
          const double m = static_cast<double>(block_cache_->misses());
          hits->Set(h);
          misses->Set(m);
          ratio->Set(h + m > 0 ? h / (h + m) : 0);
          for (size_t i = 0; i < shard_gauges.size(); ++i) {
            shard_gauges[i].first->Set(
                static_cast<double>(block_cache_->shard_hits(i)));
            shard_gauges[i].second->Set(
                static_cast<double>(block_cache_->shard_misses(i)));
          }
        }
      });
}

const EngineStats& Engine::stats() const {
  stats_snapshot_.ingest_bytes = ingest_bytes_c_->value();
  stats_snapshot_.wal_bytes = wal_bytes_c_->value();
  stats_snapshot_.flush_bytes = flush_bytes_c_->value();
  stats_snapshot_.compact_read_bytes = compact_read_bytes_c_->value();
  stats_snapshot_.compact_write_bytes = compact_write_bytes_c_->value();
  stats_snapshot_.num_flushes = flushes_c_->value();
  stats_snapshot_.num_compactions = compactions_c_->value();
  stats_snapshot_.bloom_checked = bloom_checked_c_->value();
  stats_snapshot_.bloom_useful = bloom_useful_c_->value();
  stats_snapshot_.bloom_false_positive = bloom_false_positive_c_->value();
  stats_snapshot_.tables_pruned = tables_pruned_c_->value();
  stats_snapshot_.write_stalls = write_stalls_c_->value();
  stats_snapshot_.stall_seconds = stall_seconds_g_->value();
  return stats_snapshot_;
}

Engine::~Engine() {
  if (executor_ == nullptr) return;
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  // Taking the token mutex waits out an in-flight background task; queued
  // tasks that run later see !alive and no-op. Anything still buffered in
  // mem_/imm_ is covered by retained WALs and replays on reopen — the same
  // crash-consistency contract the synchronous mode has always had.
  std::lock_guard<std::mutex> tl(bg_token_->mu);
  bg_token_->alive = false;
}

Status Engine::Recover() {
  if (env_->FileExists(ManifestFileName())) {
    VELOCE_RETURN_IF_ERROR(LoadManifest());
  }
  // Replay any WALs present, in number order, into the memtable. A crash
  // can leave several: the active WAL plus one per sealed memtable that
  // was still waiting on its background flush.
  std::vector<std::string> children;
  VELOCE_RETURN_IF_ERROR(env_->GetChildren(options_.dir, &children));
  std::vector<std::string> wals;
  for (const auto& name : children) {
    if (name.rfind("wal-", 0) == 0) wals.push_back(name);
  }
  std::sort(wals.begin(), wals.end());
  for (const auto& name : wals) {
    VELOCE_RETURN_IF_ERROR(ReplayWal(options_.dir + "/" + name));
  }
  if (mem_->num_entries() > 0) {
    std::unique_lock<std::mutex> l(mu_);
    VELOCE_RETURN_IF_ERROR(FlushMemTableLocked());
  }
  for (const auto& name : wals) {
    VELOCE_RETURN_IF_ERROR(env_->DeleteFile(options_.dir + "/" + name));
  }
  return NewWal();
}

Status Engine::ReplayWal(const std::string& fname) {
  std::string contents;
  VELOCE_RETURN_IF_ERROR(env_->ReadFileToString(fname, &contents));
  LogReader reader(std::move(contents));
  std::string record;
  bool corruption = false;
  while (reader.ReadRecord(&record, &corruption)) {
    Slice payload(record);
    uint64_t base_seq = 0;
    if (!GetFixed64(&payload, &base_seq)) {
      return Status::Corruption(
          "WAL record #" + std::to_string(reader.records_read()) +
          " (ending at offset " + std::to_string(reader.offset()) +
          ") missing sequence in " + fname);
    }
    WriteBatch batch;
    VELOCE_RETURN_IF_ERROR(batch.SetContents(payload));
    MemTableInserter inserter(mem_.get(), base_seq);
    VELOCE_RETURN_IF_ERROR(batch.Iterate(&inserter));
    if (inserter.next_seq() - 1 > last_seq_.load(std::memory_order_relaxed)) {
      last_seq_.store(inserter.next_seq() - 1, std::memory_order_relaxed);
    }
  }
  if (corruption) {
    // Damage with intact records after it cannot be a torn write — refusing
    // to continue beats silently dropping acked writes.
    return Status::Corruption(
        "corrupt WAL record #" + std::to_string(reader.records_read() + 1) +
        " at offset " + std::to_string(reader.offset()) + " in " + fname +
        " (mid-log damage, not a torn tail)");
  }
  if (reader.tail_truncated()) {
    // Torn tail: the final record never fully persisted, so it was never
    // acked as durable. Drop it and carry on.
    wal_truncated_c_->Inc();
    VLOG_WARN << "storage: dropped torn WAL tail in " << fname << " ("
              << reader.truncated_bytes() << " bytes after record #"
              << reader.records_read() << ", offset " << reader.offset() << ")";
  }
  return Status::OK();
}

Status Engine::NewWal() {
  wal_number_ = next_file_number_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<WritableFile> file;
  VELOCE_RETURN_IF_ERROR(env_->NewWritableFile(WalFileName(wal_number_), &file));
  wal_ = std::make_unique<LogWriter>(std::move(file));
  return Status::OK();
}

Status Engine::WriteManifest() {
  std::string out;
  PutFixed64(&out, next_file_number_.load(std::memory_order_relaxed));
  PutFixed64(&out, last_seq_.load(std::memory_order_relaxed));
  uint32_t num_files = 0;
  for (int level = 0; level < kNumLevels; ++level) {
    num_files += static_cast<uint32_t>(levels_[level].size());
  }
  PutFixed32(&out, num_files);
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_[level]) {
      PutFixed32(&out, static_cast<uint32_t>(level));
      PutFixed64(&out, f->number);
      PutFixed64(&out, f->file_size);
      PutLengthPrefixed(&out, Slice(f->smallest));
      PutLengthPrefixed(&out, Slice(f->largest));
    }
  }
  return env_->WriteStringToFile(ManifestFileName(), Slice(out));
}

Status Engine::LoadManifest() {
  std::string contents;
  VELOCE_RETURN_IF_ERROR(env_->ReadFileToString(ManifestFileName(), &contents));
  Slice in(contents);
  uint32_t num_files = 0;
  uint64_t next_file = 0, last_seq = 0;
  if (!GetFixed64(&in, &next_file) || !GetFixed64(&in, &last_seq) ||
      !GetFixed32(&in, &num_files)) {
    return Status::Corruption("bad manifest header");
  }
  next_file_number_.store(next_file, std::memory_order_relaxed);
  last_seq_.store(last_seq, std::memory_order_relaxed);
  for (uint32_t i = 0; i < num_files; ++i) {
    uint32_t level = 0;
    auto meta = std::make_shared<FileMeta>();
    Slice smallest, largest;
    if (!GetFixed32(&in, &level) || !GetFixed64(&in, &meta->number) ||
        !GetFixed64(&in, &meta->file_size) || !GetLengthPrefixed(&in, &smallest) ||
        !GetLengthPrefixed(&in, &largest) || level >= kNumLevels) {
      return Status::Corruption("bad manifest entry");
    }
    meta->smallest = smallest.ToString();
    meta->largest = largest.ToString();
    std::unique_ptr<RandomAccessFile> file;
    VELOCE_RETURN_IF_ERROR(env_->NewRandomAccessFile(TableFileName(meta->number), &file));
    VELOCE_ASSIGN_OR_RETURN(meta->table,
                            Table::Open(std::move(file), block_cache_.get(), meta->number));
    levels_[level].push_back(std::move(meta));
  }
  // L0 must be newest-first (higher file number = newer flush).
  std::sort(levels_[0].begin(), levels_[0].end(),
            [](const auto& a, const auto& b) { return a->number > b->number; });
  for (int level = 1; level < kNumLevels; ++level) {
    std::sort(levels_[level].begin(), levels_[level].end(),
              [](const auto& a, const auto& b) {
                return Slice(a->smallest) < Slice(b->smallest);
              });
  }
  return Status::OK();
}

Status Engine::Put(Slice key, Slice value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch);
}

Status Engine::Delete(Slice key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status Engine::Write(const WriteBatch& batch) {
  if (batch.Count() == 0) return Status::OK();
  // Validate the batch before it touches any engine state, so a malformed
  // batch leaves no WAL record, no memtable entries, and the sequence
  // counter unmoved (writes are all-or-nothing).
  {
    struct Validator : WriteBatch::Handler {
      void Put(Slice, Slice) override {}
      void Delete(Slice) override {}
    } validator;
    VELOCE_RETURN_IF_ERROR(batch.Iterate(&validator));
  }
  std::unique_lock<std::mutex> l(mu_);
  if (!options_.group_commit) {
    return WriteLegacyLocked(l, batch);
  }
  Writer w(&batch);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.wait(l);
  }
  if (w.done) return w.status;  // a leader committed us as a follower
  return WriteGroupCommit(l, &w);
}

bool Engine::IsTransientError(const Status& s) {
  // I/O flakes and unreachable storage are worth retrying; corruption and
  // logic errors are not — retrying cannot repair damaged bytes.
  return s.code() == Code::kIOError || s.code() == Code::kUnavailable;
}

bool Engine::degraded() const {
  std::lock_guard<std::mutex> l(mu_);
  return !bg_error_.ok();
}

Status Engine::background_error() const {
  std::lock_guard<std::mutex> l(mu_);
  return bg_error_;
}

Status Engine::DegradedStatusLocked() const {
  if (bg_error_.ok()) return Status::OK();
  return Status::Unavailable("engine degraded (read-only): " +
                             bg_error_.ToString());
}

void Engine::EnterDegradedLocked(const Status& s) {
  if (!bg_error_.ok()) return;  // already degraded; keep the first cause
  bg_error_ = s;
  degraded_entries_c_->Inc();
  degraded_g_->Set(1);
  VLOG_WARN << "storage: entering read-only degraded mode: " << s.ToString();
}

Status Engine::HandleForegroundFailureLocked(Status s) {
  if (!s.ok() && !IsTransientError(s)) EnterDegradedLocked(s);
  return s;
}

Status Engine::Resume() {
  std::unique_lock<std::mutex> l(mu_);
  if (bg_error_.ok()) return Status::OK();
  if (executor_ != nullptr) {
    // Degraded mode schedules no new work, but an in-flight task may still
    // be winding down; quiesce before re-driving the backlog ourselves.
    while (!writers_.empty() || bg_scheduled_) {
      WaitWritersIdleLocked(l);
      WaitBackgroundIdleLocked(l);
    }
  }
  // Retry the work that failed. If the fault has not cleared, stay degraded
  // (with the fresh cause) so reads keep working and Resume() can be tried
  // again later.
  Status s;
  while (s.ok() && !imm_.empty()) {
    s = FlushOldestImm(l, /*unlock=*/false);
  }
  if (s.ok()) s = CompactOneStep(nullptr);
  if (!s.ok()) {
    bg_error_ = s;
    return DegradedStatusLocked();
  }
  bg_error_ = Status::OK();
  bg_retry_attempts_ = 0;
  degraded_exits_c_->Inc();
  degraded_g_->Set(0);
  VLOG_INFO << "storage: resumed from degraded mode";
  MaybeScheduleBackgroundLocked();
  return Status::OK();
}

Status Engine::WriteLegacyLocked(std::unique_lock<std::mutex>& l,
                                 const WriteBatch& batch) {
  VELOCE_RETURN_IF_ERROR(DegradedStatusLocked());
  VELOCE_RETURN_IF_ERROR(MakeRoomForWriteLocked(l));
  const SequenceNumber base_seq = last_seq_.load(std::memory_order_relaxed) + 1;
  std::string record;
  PutFixed64(&record, base_seq);
  record.append(batch.rep());
  VELOCE_RETURN_IF_ERROR(wal_->AddRecord(Slice(record)));
  if (options_.sync_wal) VELOCE_RETURN_IF_ERROR(wal_->Sync());
  wal_bytes_c_->Inc(record.size() + 8);  // payload + frame header
  ingest_bytes_c_->Inc(batch.PayloadBytes());

  MemTableInserter inserter(mem_.get(), base_seq);
  VELOCE_RETURN_IF_ERROR(batch.Iterate(&inserter));  // pre-validated
  last_seq_.store(base_seq + batch.Count() - 1, std::memory_order_release);

  if (executor_ == nullptr) {
    if (mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
      // Synchronous mode: a transient flush failure surfaces to this writer
      // and the (still full) memtable retries on the next write; hard
      // failures degrade the engine.
      VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(FlushMemTableLocked()));
      VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(MaybeCompactLocked()));
    }
  } else {
    MaybeScheduleBackgroundLocked();
  }
  return Status::OK();
}

Status Engine::WriteGroupCommit(std::unique_lock<std::mutex>& l, Writer* w) {
  Status s = DegradedStatusLocked();
  if (s.ok()) s = MakeRoomForWriteLocked(l);  // we stay the front writer

  // Merge queued followers into one group: one WAL record, one optional
  // sync, one memtable-insert pass for the whole group. Capped so a huge
  // group cannot hold its tail writers up for too long.
  Writer* last_writer = w;
  const WriteBatch* gbatch = w->batch;
  size_t group_size = 1;
  if (s.ok()) {
    constexpr size_t kMaxGroupBytes = 1 << 20;
    size_t bytes = gbatch->ByteSize();
    auto it = writers_.begin();
    ++it;  // skip self
    for (; it != writers_.end(); ++it) {
      Writer* follower = *it;
      if (bytes + follower->batch->ByteSize() > kMaxGroupBytes) break;
      if (gbatch == w->batch) {
        tmp_batch_.Clear();
        tmp_batch_.Append(*w->batch);
        gbatch = &tmp_batch_;
      }
      tmp_batch_.Append(*follower->batch);
      bytes += follower->batch->ByteSize();
      last_writer = follower;
      ++group_size;
    }
  }

  if (s.ok()) {
    const SequenceNumber base_seq = last_seq_.load(std::memory_order_relaxed) + 1;
    std::shared_ptr<MemTable> mem = mem_;
    LogWriter* wal = wal_.get();
    // Commit I/O runs with the engine unlocked: we remain the front writer,
    // so no one else appends to the WAL or rotates the memtable, while
    // reads and background flush/compaction proceed concurrently.
    l.unlock();
    std::string record;
    PutFixed64(&record, base_seq);
    record.append(gbatch->rep());
    s = wal->AddRecord(Slice(record));
    if (s.ok() && options_.sync_wal) s = wal->Sync();
    if (s.ok()) {
      wal_bytes_c_->Inc(record.size() + 8);  // payload + frame header
      ingest_bytes_c_->Inc(gbatch->PayloadBytes());
      MemTableInserter inserter(mem.get(), base_seq);
      s = gbatch->Iterate(&inserter);  // every batch was pre-validated
      if (s.ok()) {
        // Publish. Entries inserted above were invisible until this store:
        // readers snapshot last_seq_ and filter newer sequence numbers.
        last_seq_.store(base_seq + gbatch->Count() - 1, std::memory_order_release);
      }
    }
    l.lock();
  }
  commit_group_size_h_->Record(static_cast<int64_t>(group_size));

  // Synchronous mode keeps the legacy flush-inside-the-write timing.
  if (s.ok() && executor_ == nullptr &&
      mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    Status fs = FlushMemTableLocked();
    if (fs.ok()) fs = MaybeCompactLocked();
    if (!fs.ok()) s = HandleForegroundFailureLocked(std::move(fs));
  }

  // Pop the whole group, waking followers with the shared status.
  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != w) {
      ready->status = s;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();  // promote the next leader
  } else {
    writers_empty_cv_.notify_all();
  }
  return s;
}

Status Engine::MakeRoomForWriteLocked(std::unique_lock<std::mutex>& l) {
  if (executor_ == nullptr) return Status::OK();
  Clock* clock = options_.obs.clock_or_real();
  bool stalled = false;
  Nanos stall_start = 0;
  Status s;
  while (s.ok()) {
    if (!bg_error_.ok()) {
      s = DegradedStatusLocked();
      break;
    }
    if (mem_->ApproximateMemoryUsage() < options_.memtable_bytes) break;
    const bool imm_full =
        static_cast<int>(imm_.size()) >= options_.max_immutable_memtables;
    const bool l0_full =
        static_cast<int>(levels_[0].size()) >= options_.l0_stall_files;
    if (!imm_full && !l0_full) {
      s = RotateMemtableLocked();
      if (s.ok()) MaybeScheduleBackgroundLocked();
      break;
    }
    // Backpressure: too many sealed memtables or L0 files — delay this
    // writer until background work catches up. The delay is surfaced via
    // write_stalls/stall_seconds, which admission control reads as "the
    // engine is past its sustainable write capacity".
    if (!stalled) {
      stalled = true;
      write_stalls_c_->Inc();
      stall_start = clock->Now();
    }
    if (executor_->single_threaded()) {
      l.unlock();
      const size_t ran = executor_->RunQueued();
      l.lock();
      if (ran == 0) {
        // Nothing runnable here (e.g. a deferring test executor): do one
        // unit inline rather than spin forever.
        if (!imm_.empty()) {
          s = HandleForegroundFailureLocked(FlushOldestImm(l, /*unlock=*/false));
        } else {
          s = HandleForegroundFailureLocked(CompactOneStep(nullptr));
        }
      }
    } else {
      bg_cv_.wait(l);
    }
  }
  if (stalled) {
    stall_seconds_g_->Add(static_cast<double>(clock->Now() - stall_start) /
                          static_cast<double>(kSecond));
  }
  return s;
}

Status Engine::RotateMemtableLocked() {
  // The sealed memtable keeps its WAL: recovery replays WALs in number
  // order, so a crash before the flush still restores it.
  imm_.push_back(ImmMem{mem_, wal_number_});
  imm_count_.store(imm_.size(), std::memory_order_relaxed);
  mem_ = std::make_shared<MemTable>();
  return NewWal();
}

bool Engine::HasBackgroundWorkLocked() const {
  if (!imm_.empty()) return true;
  if (static_cast<int>(levels_[0].size()) >= options_.l0_compaction_trigger) {
    return true;
  }
  for (int level = 1; level < kNumLevels - 1; ++level) {
    if (LevelBytesLocked(level) > MaxBytesForLevel(level)) return true;
  }
  return false;
}

void Engine::MaybeScheduleBackgroundLocked() {
  if (executor_ == nullptr || shutting_down_ || bg_scheduled_) return;
  if (!bg_error_.ok()) return;
  if (!HasBackgroundWorkLocked()) return;
  bg_scheduled_ = true;
  auto token = bg_token_;
  Engine* self = this;
  executor_->Schedule([self, token] {
    // Holding the token mutex while working makes ~Engine block until an
    // in-flight task finishes; tasks arriving after shutdown no-op.
    std::lock_guard<std::mutex> tl(token->mu);
    if (!token->alive) return;
    self->BackgroundWork();
  });
}

void Engine::BackgroundWork() {
  std::unique_lock<std::mutex> l(mu_);
  Status s;
  if (!shutting_down_) {
    if (!imm_.empty()) {
      s = FlushOldestImm(l, /*unlock=*/true);
    } else {
      s = CompactOneStep(&l);
    }
  }
  if (!s.ok() && !shutting_down_ && bg_error_.ok()) {
    if (IsTransientError(s) && bg_retry_attempts_ < options_.max_bg_retries) {
      // Transient failure (I/O flake): retry the same unit of work after
      // capped exponential backoff. bg_scheduled_ stays true so nothing
      // double-schedules while the retry is pending.
      ++bg_retry_attempts_;
      bg_retries_c_->Inc();
      Nanos backoff = options_.bg_retry_base_backoff;
      for (int i = 1;
           i < bg_retry_attempts_ && backoff < options_.bg_retry_max_backoff;
           ++i) {
        backoff *= 2;
      }
      if (backoff > options_.bg_retry_max_backoff) {
        backoff = options_.bg_retry_max_backoff;
      }
      bg_retry_backoff_h_->Record(backoff);
      VLOG_WARN << "storage: background work failed transiently (attempt "
                << bg_retry_attempts_ << "/" << options_.max_bg_retries
                << ", retrying in " << backoff << "ns): " << s.ToString();
      auto token = bg_token_;
      Engine* self = this;
      executor_->ScheduleAfter(static_cast<uint64_t>(backoff), [self, token] {
        std::lock_guard<std::mutex> tl(token->mu);
        if (!token->alive) return;
        self->BackgroundWork();
      });
      bg_cv_.notify_all();
      return;
    }
    // Hard error, or the transient-retry budget is spent: latch it and go
    // read-only. Resume() is the only way out.
    EnterDegradedLocked(s);
  } else if (s.ok()) {
    bg_retry_attempts_ = 0;
  }
  bg_scheduled_ = false;
  MaybeScheduleBackgroundLocked();  // more work? chain the next unit
  bg_cv_.notify_all();
}

Status Engine::FlushOldestImm(std::unique_lock<std::mutex>& l, bool unlock) {
  if (imm_.empty()) return Status::OK();
  ImmMem target = imm_.front();
  auto meta = std::make_shared<FileMeta>();
  meta->number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
  Status s;
  if (unlock) {
    // Build the L0 table unlocked: the sealed memtable is frozen and pinned
    // by the shared_ptr, and flushes are serialized (one background task at
    // a time; foreground drains quiesce first), so imm_.front() is stable.
    l.unlock();
    s = BuildMemTable(*target.mem, meta.get());
    l.lock();
  } else {
    s = BuildMemTable(*target.mem, meta.get());
  }
  VELOCE_RETURN_IF_ERROR(s);
  levels_[0].insert(levels_[0].begin(), meta);  // newest first
  flush_bytes_c_->Inc(meta->file_size);
  flushes_c_->Inc();
  imm_.pop_front();
  imm_count_.store(imm_.size(), std::memory_order_relaxed);
  VELOCE_RETURN_IF_ERROR(WriteManifest());
  // The sealed memtable is durable in L0; retire the WAL that covered it.
  (void)env_->DeleteFile(WalFileName(target.wal_number));
  return Status::OK();
}

void Engine::WaitWritersIdleLocked(std::unique_lock<std::mutex>& l) {
  while (!writers_.empty()) {
    writers_empty_cv_.wait(l);
  }
}

void Engine::WaitBackgroundIdleLocked(std::unique_lock<std::mutex>& l) {
  while (bg_scheduled_) {
    if (executor_->single_threaded()) {
      l.unlock();
      const size_t ran = executor_->RunQueued();
      l.lock();
      if (ran == 0) {
        // The queued task is deferred beyond our reach (test executors);
        // it re-checks engine state whenever it does run, so treating the
        // engine as idle here is safe.
        bg_scheduled_ = false;
      }
    } else {
      bg_cv_.wait(l);
    }
  }
}

Status Engine::BuildMemTable(const MemTable& mem, FileMeta* meta) {
  const std::string fname = TableFileName(meta->number);
  {
    std::unique_ptr<WritableFile> file;
    VELOCE_RETURN_IF_ERROR(env_->NewWritableFile(fname, &file));
    TableBuilder builder(std::move(file), MakeTableOptions(options_));
    auto it = mem.NewIterator();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      VELOCE_RETURN_IF_ERROR(builder.Add(it->key(), it->value()));
    }
    VELOCE_RETURN_IF_ERROR(builder.Finish());
    meta->file_size = builder.file_size();
    meta->smallest = builder.smallest();
    meta->largest = builder.largest();
  }
  std::unique_ptr<RandomAccessFile> file;
  VELOCE_RETURN_IF_ERROR(env_->NewRandomAccessFile(fname, &file));
  VELOCE_ASSIGN_OR_RETURN(meta->table,
                          Table::Open(std::move(file), block_cache_.get(), meta->number));
  return Status::OK();
}

Status Engine::Flush() {
  std::unique_lock<std::mutex> l(mu_);
  if (executor_ == nullptr) {
    if (mem_->num_entries() == 0) return Status::OK();
    VELOCE_RETURN_IF_ERROR(DegradedStatusLocked());
    VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(FlushMemTableLocked()));
    return HandleForegroundFailureLocked(MaybeCompactLocked());
  }
  VELOCE_RETURN_IF_ERROR(DegradedStatusLocked());
  // Quiesce: no queued writers (mem_ stable) and no in-flight background
  // task (no concurrent flush of the same sealed memtable). Both waits
  // drop the lock, so loop until both hold at once.
  while (!writers_.empty() || bg_scheduled_) {
    WaitWritersIdleLocked(l);
    WaitBackgroundIdleLocked(l);
  }
  while (!imm_.empty()) {
    VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(
        FlushOldestImm(l, /*unlock=*/false)));
  }
  if (mem_->num_entries() > 0) {
    VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(FlushMemTableLocked()));
  }
  MaybeScheduleBackgroundLocked();  // L0 may now be over its trigger
  return Status::OK();
}

Status Engine::FlushMemTableLocked() {
  if (mem_->num_entries() == 0) return Status::OK();
  auto meta = std::make_shared<FileMeta>();
  meta->number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
  VELOCE_RETURN_IF_ERROR(BuildMemTable(*mem_, meta.get()));

  levels_[0].insert(levels_[0].begin(), meta);  // newest first
  flush_bytes_c_->Inc(meta->file_size);
  flushes_c_->Inc();

  mem_ = std::make_shared<MemTable>();
  // Retire the old WAL: its contents are now durable in the L0 file.
  const uint64_t old_wal = wal_number_;
  VELOCE_RETURN_IF_ERROR(NewWal());
  VELOCE_RETURN_IF_ERROR(WriteManifest());
  (void)env_->DeleteFile(WalFileName(old_wal));
  return Status::OK();
}

uint64_t Engine::MaxBytesForLevel(int level) const {
  uint64_t max = options_.level_base_bytes;
  for (int i = 1; i < level; ++i) max *= 10;
  return max;
}

Status Engine::MaybeCompactLocked() {
  bool did_work = true;
  while (did_work) {
    did_work = false;
    if (static_cast<int>(levels_[0].size()) >= options_.l0_compaction_trigger) {
      VELOCE_RETURN_IF_ERROR(CompactL0(nullptr));
      did_work = true;
      continue;
    }
    for (int level = 1; level < kNumLevels - 1; ++level) {
      if (LevelBytesLocked(level) > MaxBytesForLevel(level)) {
        VELOCE_RETURN_IF_ERROR(CompactLevel(level, nullptr));
        did_work = true;
        break;
      }
    }
  }
  return Status::OK();
}

Status Engine::CompactOneStep(std::unique_lock<std::mutex>* l) {
  if (static_cast<int>(levels_[0].size()) >= options_.l0_compaction_trigger) {
    return CompactL0(l);
  }
  for (int level = 1; level < kNumLevels - 1; ++level) {
    if (LevelBytesLocked(level) > MaxBytesForLevel(level)) {
      return CompactLevel(level, l);
    }
  }
  return Status::OK();
}

Status Engine::CompactAll() {
  std::unique_lock<std::mutex> l(mu_);
  VELOCE_RETURN_IF_ERROR(DegradedStatusLocked());
  if (executor_ != nullptr) {
    while (!writers_.empty() || bg_scheduled_) {
      WaitWritersIdleLocked(l);
      WaitBackgroundIdleLocked(l);
    }
    while (!imm_.empty()) {
      VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(
          FlushOldestImm(l, /*unlock=*/false)));
    }
  }
  VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(FlushMemTableLocked()));
  if (!levels_[0].empty()) {
    VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(CompactL0(nullptr)));
  }
  for (int level = 1; level < kNumLevels - 1; ++level) {
    while (LevelBytesLocked(level) > MaxBytesForLevel(level)) {
      VELOCE_RETURN_IF_ERROR(HandleForegroundFailureLocked(CompactLevel(level, nullptr)));
    }
  }
  return Status::OK();
}

Engine::FileList Engine::OverlappingFiles(int level, Slice smallest_user,
                                          Slice largest_user) const {
  FileList out;
  for (const auto& f : levels_[level]) {
    const Slice file_small = ExtractUserKey(Slice(f->smallest));
    const Slice file_large = ExtractUserKey(Slice(f->largest));
    if (file_large < smallest_user || file_small > largest_user) continue;
    out.push_back(f);
  }
  return out;
}

Status Engine::CompactL0(std::unique_lock<std::mutex>* l) {
  if (levels_[0].empty()) return Status::OK();
  FileList upper = levels_[0];
  std::string smallest, largest;
  for (const auto& f : upper) {
    const std::string su = ExtractUserKey(Slice(f->smallest)).ToString();
    const std::string lu = ExtractUserKey(Slice(f->largest)).ToString();
    if (smallest.empty() || su < smallest) smallest = su;
    if (largest.empty() || lu > largest) largest = lu;
  }
  FileList lower = OverlappingFiles(1, Slice(smallest), Slice(largest));
  return DoCompaction(upper, 0, lower, 1, l);
}

Status Engine::CompactLevel(int level, std::unique_lock<std::mutex>* l) {
  if (levels_[level].empty()) return Status::OK();
  // Round-robin file pick within the level.
  const size_t idx = compact_pointer_[level] % levels_[level].size();
  compact_pointer_[level] = idx + 1;
  FileList upper = {levels_[level][idx]};
  const Slice su = ExtractUserKey(Slice(upper[0]->smallest));
  const Slice lu = ExtractUserKey(Slice(upper[0]->largest));
  FileList lower = OverlappingFiles(level + 1, su, lu);
  return DoCompaction(upper, level, lower, level + 1, l);
}

SequenceNumber Engine::OldestPinnedSeqLocked() const {
  return pinned_seqs_.empty() ? kMaxSequenceNumber : *pinned_seqs_.begin();
}

Status Engine::DoCompaction(const FileList& inputs_upper, int upper_level,
                            const FileList& inputs_lower, int output_level,
                            std::unique_lock<std::mutex>* l) {
  compactions_c_->Inc();
  const SequenceNumber oldest_pinned = OldestPinnedSeqLocked();
  const bool bottom = output_level == kNumLevels - 1;

  std::vector<std::unique_ptr<InternalIterator>> children;
  for (const auto& f : inputs_upper) {
    children.push_back(f->table->NewIterator());
    compact_read_bytes_c_->Inc(f->file_size);
  }
  for (const auto& f : inputs_lower) {
    children.push_back(f->table->NewIterator());
    compact_read_bytes_c_->Inc(f->file_size);
  }
  auto merged = NewMergingIterator(std::move(children));

  // Merge/build phase. With `l` supplied it runs unlocked: the inputs are
  // pinned by shared_ptr, compactions are serialized with other background
  // work, and oldest_pinned captured above stays conservative — iterators
  // pinned after the unlock only see snapshots at least as new.
  if (l != nullptr) l->unlock();
  FileList outputs;
  std::unique_ptr<TableBuilder> builder;
  auto merge_status = [&]() -> Status {
    auto finish_output = [&]() -> Status {
      if (builder == nullptr) return Status::OK();
      auto meta = outputs.back();
      VELOCE_RETURN_IF_ERROR(builder->Finish());
      meta->file_size = builder->file_size();
      meta->smallest = builder->smallest();
      meta->largest = builder->largest();
      compact_write_bytes_c_->Inc(meta->file_size);
      std::unique_ptr<RandomAccessFile> file;
      VELOCE_RETURN_IF_ERROR(env_->NewRandomAccessFile(TableFileName(meta->number), &file));
      VELOCE_ASSIGN_OR_RETURN(meta->table,
                              Table::Open(std::move(file), block_cache_.get(), meta->number));
      builder.reset();
      return Status::OK();
    };

    std::string prev_user_key;
    bool has_prev = false;
    bool prev_dropped_boundary = false;  // newest version <= oldest_pinned seen
    for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
      const Slice ikey = merged->key();
      const Slice user_key = ExtractUserKey(ikey);
      const SequenceNumber seq = ExtractSequence(ikey);
      const ValueType type = ExtractValueType(ikey);

      bool drop = false;
      if (has_prev && user_key == Slice(prev_user_key)) {
        // An earlier (newer) version of this user key was already emitted or
        // established as the visible version for all pinned snapshots.
        if (prev_dropped_boundary) drop = true;
      }
      if (!drop) {
        prev_user_key.assign(user_key.data(), user_key.size());
        has_prev = true;
        prev_dropped_boundary = seq <= oldest_pinned;
        if (type == ValueType::kDeletion && bottom && seq <= oldest_pinned) {
          // Tombstone at the bottom: nothing deeper can resurrect the key.
          drop = true;
        }
      }
      if (drop) continue;

      if (builder == nullptr) {
        auto meta = std::make_shared<FileMeta>();
        meta->number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
        std::unique_ptr<WritableFile> file;
        VELOCE_RETURN_IF_ERROR(env_->NewWritableFile(TableFileName(meta->number), &file));
        builder = std::make_unique<TableBuilder>(std::move(file), MakeTableOptions(options_));
        outputs.push_back(std::move(meta));
      }
      VELOCE_RETURN_IF_ERROR(builder->Add(ikey, merged->value()));
      if (builder->file_size() + options_.block_bytes >= options_.sstable_target_bytes) {
        VELOCE_RETURN_IF_ERROR(finish_output());
      }
    }
    return finish_output();
  }();
  if (l != nullptr) l->lock();
  VELOCE_RETURN_IF_ERROR(merge_status);

  // Install (locked): remove inputs from their levels, add outputs.
  auto remove_from = [](FileList* list, const FileList& gone) {
    list->erase(std::remove_if(list->begin(), list->end(),
                               [&](const std::shared_ptr<FileMeta>& f) {
                                 for (const auto& g : gone) {
                                   if (g->number == f->number) return true;
                                 }
                                 return false;
                               }),
                list->end());
  };
  remove_from(&levels_[upper_level], inputs_upper);
  remove_from(&levels_[output_level], inputs_lower);
  for (const auto& f : outputs) levels_[output_level].push_back(f);
  std::sort(levels_[output_level].begin(), levels_[output_level].end(),
            [](const auto& a, const auto& b) {
              return Slice(a->smallest) < Slice(b->smallest);
            });
  VELOCE_RETURN_IF_ERROR(WriteManifest());
  for (const auto& f : inputs_upper) {
    (void)env_->DeleteFile(TableFileName(f->number));
    if (block_cache_ != nullptr) block_cache_->EvictFile(f->number);
  }
  for (const auto& f : inputs_lower) {
    (void)env_->DeleteFile(TableFileName(f->number));
    if (block_cache_ != nullptr) block_cache_->EvictFile(f->number);
  }
  return Status::OK();
}

Status Engine::Get(Slice key, std::string* value) {
  bool found = false;
  return GetVisible(key, value, &found);
}

Status Engine::GetVisible(Slice key, std::string* value, bool* found) {
  std::lock_guard<std::mutex> l(mu_);
  return GetLocked(key, last_seq_.load(std::memory_order_acquire), value, found);
}

Status Engine::GetLocked(Slice key, SequenceNumber snapshot, std::string* value,
                         bool* found) {
  *found = false;
  bool is_deleted = false;
  if (mem_->Get(key, snapshot, value, &is_deleted)) {
    *found = true;
    if (is_deleted) return Status::NotFound("deleted");
    return Status::OK();
  }
  // Sealed memtables hold data newer than any SSTable; newest first.
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    if (it->mem->Get(key, snapshot, value, &is_deleted)) {
      *found = true;
      if (is_deleted) return Status::NotFound("deleted");
      return Status::OK();
    }
  }
  // L0: newest file first; first hit wins (files are seq-ordered). Deeper
  // levels hold strictly older data, so the first hit at any level ends the
  // search — no cross-level merge on the point-read path.
  VELOCE_RETURN_IF_ERROR(SearchFileList(levels_[0], /*overlapping=*/true, key,
                                        Slice(), snapshot, value, found));
  if (*found) return Status::OK();
  for (int level = 1; level < kNumLevels; ++level) {
    VELOCE_RETURN_IF_ERROR(
        SearchFileList(levels_[level], false, key, Slice(), snapshot, value, found));
    if (*found) return Status::OK();
  }
  return Status::NotFound("key not found");
}

Status Engine::SearchFileList(const FileList& files, bool overlapping, Slice user_key,
                              Slice bloom_prefix, SequenceNumber snapshot,
                              std::string* value, bool* found) {
  *found = false;
  const std::string lookup = MakeInternalKey(user_key, snapshot, ValueType::kValue);
  if (bloom_prefix.empty()) {
    bloom_prefix = options_.prefix_extractor != nullptr
                       ? options_.prefix_extractor(user_key)
                       : user_key;
  }
  for (const auto& f : files) {
    const Slice file_small = ExtractUserKey(Slice(f->smallest));
    const Slice file_large = ExtractUserKey(Slice(f->largest));
    if (user_key < file_small || user_key > file_large) {
      tables_pruned_c_->Inc();
      continue;
    }
    const bool has_filter = f->table->has_filter();
    if (has_filter) {
      bloom_checked_c_->Inc();
      if (!f->table->MayContainPrefix(bloom_prefix)) {
        bloom_useful_c_->Inc();
        if (!overlapping) return Status::OK();  // sorted level: key absent
        continue;
      }
    }
    std::string fkey, fvalue;
    Status s = f->table->SeekEntry(Slice(lookup), &fkey, &fvalue);
    const bool miss = s.IsNotFound() ||
                      (s.ok() && ExtractUserKey(Slice(fkey)) != user_key);
    if (miss) {
      // The filter passed this table yet no version of the key exists here:
      // a bloom false positive (only chargeable when the extractor maps the
      // probe prefix 1:1 to this user key, which it does for exact keys).
      if (has_filter) bloom_false_positive_c_->Inc();
      if (!overlapping) return Status::OK();
      continue;
    }
    VELOCE_RETURN_IF_ERROR(s);
    *found = true;
    if (ExtractValueType(Slice(fkey)) == ValueType::kDeletion) {
      return Status::NotFound("deleted");
    }
    *value = std::move(fvalue);
    return Status::OK();
  }
  return Status::OK();
}

/// Iterator wrapper that pins a sequence number for snapshot-consistent
/// reads and unpins on destruction.
class Engine::PinnedIterator final : public Iterator {
 public:
  PinnedIterator(Engine* engine, std::unique_ptr<Iterator> inner, SequenceNumber seq)
      : engine_(engine), inner_(std::move(inner)), seq_(seq) {}

  ~PinnedIterator() override {
    std::lock_guard<std::mutex> l(engine_->mu_);
    engine_->pinned_seqs_.erase(engine_->pinned_seqs_.find(seq_));
  }

  bool Valid() const override { return inner_->Valid(); }
  void SeekToFirst() override { inner_->SeekToFirst(); }
  void Seek(Slice target) override { inner_->Seek(target); }
  void Next() override { inner_->Next(); }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }

 private:
  Engine* engine_;
  std::unique_ptr<Iterator> inner_;
  SequenceNumber seq_;
};

/// InternalIterator over one SSTable that defers opening a table iterator
/// (and therefore any block read) until the table is actually positioned.
/// A Seek whose target sorts past the table's largest key is rejected on
/// manifest metadata alone — the table contributes nothing at or after the
/// target, so it never gets opened at all.
class Engine::LazyTableIterator final : public InternalIterator {
 public:
  explicit LazyTableIterator(std::shared_ptr<FileMeta> meta)
      : meta_(std::move(meta)) {}

  bool Valid() const override { return it_ != nullptr && it_->Valid(); }
  void SeekToFirst() override {
    Materialize();
    it_->SeekToFirst();
  }
  void Seek(Slice target) override {
    if (it_ == nullptr && CompareInternalKey(target, Slice(meta_->largest)) > 0) {
      return;  // stays !Valid(); the table is never opened
    }
    Materialize();
    it_->Seek(target);
  }
  void Next() override { it_->Next(); }
  Slice key() const override { return it_->key(); }
  Slice value() const override { return it_->value(); }

 private:
  void Materialize() {
    if (it_ == nullptr) it_ = meta_->table->NewIterator();
  }

  std::shared_ptr<FileMeta> meta_;  // keeps the Table alive
  std::unique_ptr<InternalIterator> it_;
};

/// User-level iterator that confines its inner iterator to [lower, upper):
/// SeekToFirst positions at lower, Seek clamps into the bounds, and Valid
/// turns false once a key reaches upper (empty upper = unbounded).
class Engine::BoundedIterator final : public Iterator {
 public:
  BoundedIterator(std::unique_ptr<Iterator> inner, std::string lower,
                  std::string upper)
      : inner_(std::move(inner)), lower_(std::move(lower)),
        upper_(std::move(upper)) {}

  bool Valid() const override {
    return inner_->Valid() && (upper_.empty() || inner_->key() < Slice(upper_));
  }
  void SeekToFirst() override { inner_->Seek(Slice(lower_)); }
  void Seek(Slice target) override {
    inner_->Seek(target < Slice(lower_) ? Slice(lower_) : target);
  }
  void Next() override { inner_->Next(); }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }

 private:
  std::unique_ptr<Iterator> inner_;
  const std::string lower_;
  const std::string upper_;
};

std::unique_ptr<Iterator> Engine::NewIterator() {
  return NewBoundedIterator(Slice(), Slice());
}

std::unique_ptr<Iterator> Engine::NewBoundedIterator(Slice lower, Slice upper,
                                                     Slice bloom_prefix) {
  std::lock_guard<std::mutex> l(mu_);
  const SequenceNumber snapshot = last_seq_.load(std::memory_order_acquire);
  pinned_seqs_.insert(snapshot);

  std::vector<std::unique_ptr<InternalIterator>> children;
  // Memtables hold the newest data; shared_ptr keeps each alive while the
  // iterator exists even if the engine seals/flushes and swaps them out.
  struct MemHolderIter final : public InternalIterator {
    std::shared_ptr<MemTable> mem;
    std::unique_ptr<InternalIterator> it;
    bool Valid() const override { return it->Valid(); }
    void SeekToFirst() override { it->SeekToFirst(); }
    void Seek(Slice target) override { it->Seek(target); }
    void Next() override { it->Next(); }
    Slice key() const override { return it->key(); }
    Slice value() const override { return it->value(); }
  };
  auto add_mem = [&children](const std::shared_ptr<MemTable>& mem) {
    auto holder = std::make_unique<MemHolderIter>();
    holder->mem = mem;
    holder->it = mem->NewIterator();
    children.push_back(std::move(holder));
  };
  add_mem(mem_);
  // Sealed memtables, newest first (merge ties break toward lower index).
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    add_mem(it->mem);
  }

  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_[level]) {
      // Key-range pruning: a table whose [smallest, largest] user-key span
      // does not intersect [lower, upper) can never contribute an entry.
      if (!lower.empty() && ExtractUserKey(Slice(f->largest)) < lower) {
        tables_pruned_c_->Inc();
        continue;
      }
      if (!upper.empty() && ExtractUserKey(Slice(f->smallest)) >= upper) {
        tables_pruned_c_->Inc();
        continue;
      }
      // For single-prefix reads the caller passes the extracted bloom
      // prefix; a negative filter probe proves the table holds no slot of
      // that logical key, so it is dropped before any I/O.
      if (!bloom_prefix.empty() && f->table->has_filter()) {
        bloom_checked_c_->Inc();
        if (!f->table->MayContainPrefix(bloom_prefix)) {
          bloom_useful_c_->Inc();
          continue;
        }
      }
      children.push_back(std::make_unique<LazyTableIterator>(f));
    }
  }
  auto user_iter = NewUserIterator(NewMergingIterator(std::move(children)), snapshot);
  auto bounded = std::make_unique<BoundedIterator>(
      std::move(user_iter), lower.ToString(), upper.ToString());
  return std::make_unique<PinnedIterator>(this, std::move(bounded), snapshot);
}

int Engine::NumFilesAtLevel(int level) const {
  std::lock_guard<std::mutex> l(mu_);
  return static_cast<int>(levels_[level].size());
}

uint64_t Engine::LevelBytesLocked(int level) const {
  uint64_t total = 0;
  for (const auto& f : levels_[level]) total += f->file_size;
  return total;
}

uint64_t Engine::LevelBytes(int level) const {
  std::lock_guard<std::mutex> l(mu_);
  return LevelBytesLocked(level);
}

uint64_t Engine::ApproximateSize() const {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t total = mem_->ApproximateMemoryUsage();
  for (const auto& imm : imm_) total += imm.mem->ApproximateMemoryUsage();
  for (int level = 0; level < kNumLevels; ++level) total += LevelBytesLocked(level);
  return total;
}

}  // namespace veloce::storage
