#include "storage/wal.h"

#include "common/codec.h"
#include "common/crc32c.h"

namespace veloce::storage {

Status LogWriter::AddRecord(Slice payload) {
  std::string header;
  PutFixed32(&header, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  VELOCE_RETURN_IF_ERROR(file_->Append(Slice(header)));
  return file_->Append(payload);
}

bool LogReader::ReadRecord(std::string* payload, bool* corruption) {
  *corruption = false;
  if (pos_ + 8 > contents_.size()) {
    tail_truncated_ = pos_ < contents_.size();  // partial header = torn tail
    return false;
  }
  Slice header(contents_.data() + pos_, 8);
  uint32_t masked_crc = 0, length = 0;
  GetFixed32(&header, &masked_crc);
  GetFixed32(&header, &length);
  if (pos_ + 8 + length > contents_.size()) {
    tail_truncated_ = true;  // payload cut off mid-record
    return false;
  }
  const char* data = contents_.data() + pos_ + 8;
  const uint32_t actual = crc32c::Value(data, length);
  if (crc32c::Unmask(masked_crc) != actual) {
    if (pos_ + 8 + length == contents_.size()) {
      // The damaged record is the last thing in the log: indistinguishable
      // from a torn final write, so drop it rather than fail recovery.
      tail_truncated_ = true;
      return false;
    }
    *corruption = true;
    return false;
  }
  payload->assign(data, length);
  pos_ += 8 + length;
  ++records_read_;
  return true;
}

}  // namespace veloce::storage
