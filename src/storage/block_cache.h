#ifndef VELOCE_STORAGE_BLOCK_CACHE_H_
#define VELOCE_STORAGE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace veloce::storage {

/// Sharded LRU cache for decoded (checksum-verified) SSTable data blocks,
/// keyed by (file number, block index). Point reads dominate OLTP; without
/// this every Get re-reads and re-CRCs a block from the Env.
///
/// The key hash picks one of `num_shards` independent LRU shards, each with
/// its own mutex and capacity_bytes/num_shards budget, so concurrent point
/// reads on different blocks do not serialize on a single lock. Hit/miss/
/// usage counters are relaxed atomics: they are read by the metrics
/// collector without taking any shard lock.
///
/// Thread-safe.
class BlockCache {
 public:
  static constexpr size_t kDefaultShards = 16;

  explicit BlockCache(size_t capacity_bytes, size_t num_shards = kDefaultShards);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the cached block contents, or nullptr on miss. The returned
  /// shared_ptr stays valid even if the entry is evicted afterwards.
  std::shared_ptr<const std::string> Lookup(uint64_t file_number, uint64_t block_idx);

  /// Inserts (or refreshes) a block. A block larger than the shard capacity
  /// is rejected outright: admitting it could never be paid for by evicting
  /// others, and would otherwise pin the cache over capacity forever.
  void Insert(uint64_t file_number, uint64_t block_idx, std::string contents);

  /// Drops every block of a file (after compaction deletes it).
  void EvictFile(uint64_t file_number);

  size_t usage_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;

  size_t num_shards() const { return shards_.size(); }
  /// Per-shard counters, exported as labelled series by the engine.
  uint64_t shard_hits(size_t shard) const;
  uint64_t shard_misses(size_t shard) const;
  size_t shard_usage_bytes(size_t shard) const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.first * 0x9E3779B97F4A7C15ULL ^ k.second);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const std::string> block;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::atomic<size_t> usage{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash()(key) % shards_.size()];
  }
  void EvictIfNeededLocked(Shard& shard);

  const size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_BLOCK_CACHE_H_
