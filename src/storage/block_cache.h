#ifndef VELOCE_STORAGE_BLOCK_CACHE_H_
#define VELOCE_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace veloce::storage {

/// Sharded-nothing LRU cache for decoded (checksum-verified) SSTable data
/// blocks, keyed by (file number, block index). Point reads dominate OLTP;
/// without this every Get re-reads and re-CRCs a block from the Env.
/// Thread-safe.
class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the cached block contents, or nullptr on miss. The returned
  /// shared_ptr stays valid even if the entry is evicted afterwards.
  std::shared_ptr<const std::string> Lookup(uint64_t file_number, uint64_t block_idx);

  /// Inserts (or refreshes) a block.
  void Insert(uint64_t file_number, uint64_t block_idx, std::string contents);

  /// Drops every block of a file (after compaction deletes it).
  void EvictFile(uint64_t file_number);

  size_t usage_bytes() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.first * 0x9E3779B97F4A7C15ULL ^ k.second);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const std::string> block;
  };

  void EvictIfNeededLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  size_t usage_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_BLOCK_CACHE_H_
