#ifndef VELOCE_STORAGE_FAULT_ENV_H_
#define VELOCE_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/env.h"

namespace veloce::storage {

/// Which file operation a FaultRule triggers on.
enum class FaultOp : int {
  kAppend = 0,
  kSync = 1,
  kRead = 2,
  kRename = 3,
  kNumOps = 4,
};

const char* FaultOpName(FaultOp op);

/// One entry in the programmable fault schedule. A rule matches operations of
/// its `op` kind on files whose name contains `path_substr` (empty matches
/// everything). The first `skip` matching operations pass through untouched;
/// after that the rule fires on every match until it has fired `count` times
/// (count < 0 fires forever). A firing rule either returns `error` to the
/// caller, or — when `bit_flip` is set on a read rule — lets the read succeed
/// but flips one pseudo-random bit in the returned buffer, modeling silent
/// media corruption that only a checksum can catch.
struct FaultRule {
  FaultOp op = FaultOp::kSync;
  std::string path_substr;
  int skip = 0;
  int count = 1;
  Status error = Status::IOError("injected fault");
  bool bit_flip = false;
};

/// FaultInjectionEnv wraps any Env and injects storage faults on a
/// programmable, deterministic schedule (seeded PRNG decides torn-tail
/// lengths and which bit a read flip corrupts). Modeled on RocksDB's
/// FaultInjectionTestEnv: every write is mirrored into a shadow copy that
/// tracks the synced prefix of each file, so `CrashAndDropUnsynced()` can
/// simulate a machine crash by truncating every file back to its durable
/// bytes — optionally keeping a partial ("torn") unsynced tail, which is
/// what a real kernel page-cache loss produces.
///
/// All methods are thread-safe. Crash simulation rewrites the base Env's
/// files in place, so the engine using this Env must be destroyed before
/// calling CrashAndDropUnsynced() and reopened afterwards.
class FaultInjectionEnv final : public Env {
 public:
  /// `base` must outlive this object. `metrics` (optional) receives
  /// veloce_storage_injected_faults_total{kind=...} counters.
  explicit FaultInjectionEnv(Env* base, uint64_t seed = 0x5EEDull,
                             obs::MetricsRegistry* metrics = nullptr);

  // --- Programmable fault schedule -----------------------------------------

  /// Installs a rule and returns an id usable with RemoveRule.
  int AddRule(FaultRule rule);
  void RemoveRule(int id);
  void ClearRules();

  /// While down, every Append/Sync/Read/Rename returns a transient
  /// Unavailable — the disk is unreachable but not damaged. Clearing it
  /// models the fault healing (e.g. a remounted volume).
  void SetDown(bool down);
  bool down() const;

  // --- Crash simulation ----------------------------------------------------

  /// Simulates a whole-process crash: every tracked file is truncated to its
  /// last-synced prefix. With `torn_tail`, a pseudo-random strict prefix of
  /// the unsynced suffix survives instead of none of it — the classic torn
  /// write that WAL replay must detect and drop. Close the engine first.
  void CrashAndDropUnsynced(bool torn_tail = true);

  // --- Introspection -------------------------------------------------------

  uint64_t injected_faults() const;
  uint64_t injected(FaultOp op) const;
  /// Number of successful Sync() calls observed (crash points for tests).
  uint64_t sync_count() const;
  uint64_t crash_count() const;

  // --- Env interface -------------------------------------------------------

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status DeleteFile(const std::string& fname) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status RenameFile(const std::string& src, const std::string& target) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  struct FileState {
    std::string data;    // full logical content, including unsynced bytes
    size_t synced = 0;   // prefix guaranteed to survive a crash
  };
  struct RuleState {
    int id = 0;
    FaultRule rule;
    int seen = 0;   // matching ops observed so far
    int fired = 0;  // times this rule has injected
  };

  // Returns the rule that fires for this operation, or nullptr. Must be
  // called with mu_ held; bumps fault counters when a rule fires.
  const FaultRule* MatchLocked(FaultOp op, const std::string& fname);
  // Status-only fault check (down state + error rules). Returns OK when the
  // operation should proceed.
  Status CheckFault(FaultOp op, const std::string& fname);
  void CountFaultLocked(FaultOp op);

  // Hooks called by the file wrappers.
  Status OnAppend(const std::string& fname, WritableFile* base, Slice data);
  Status OnSync(const std::string& fname, WritableFile* base);
  Status OnRead(const std::string& fname, const RandomAccessFile* base,
                uint64_t offset, size_t n, std::string* out);

  Env* const base_;
  obs::MetricsRegistry* const metrics_;
  obs::Counter* injected_c_[static_cast<int>(FaultOp::kNumOps)] = {};

  mutable std::mutex mu_;
  Random rng_;
  bool down_ = false;
  int next_rule_id_ = 1;
  std::vector<RuleState> rules_;
  std::map<std::string, FileState> files_;
  uint64_t injected_total_ = 0;
  uint64_t injected_by_op_[static_cast<int>(FaultOp::kNumOps)] = {};
  uint64_t sync_count_ = 0;
  uint64_t crash_count_ = 0;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_FAULT_ENV_H_
