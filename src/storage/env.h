#ifndef VELOCE_STORAGE_ENV_H_
#define VELOCE_STORAGE_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace veloce::storage {

/// Append-only file handle used by the WAL and SSTable builders.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(Slice data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

/// Positional-read file handle used by SSTable readers.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at `offset` into *out (resized to bytes read).
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Env abstracts the filesystem so the engine can run against an in-memory
/// filesystem in tests/benches (deterministic, fast) or the real one.
/// Mirrors the LevelDB/RocksDB Env pattern.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* file) = 0;
  virtual Status DeleteFile(const std::string& fname) = 0;
  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* out) = 0;
  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  /// Atomically renames `src` to `target`, replacing any existing target.
  /// The write-temp-then-rename idiom relies on this being all-or-nothing.
  virtual Status RenameFile(const std::string& src, const std::string& target) = 0;

  /// Reads an entire file into *out.
  Status ReadFileToString(const std::string& fname, std::string* out);
  /// Atomically writes `data` as the content of fname: the bytes land in
  /// `fname + ".tmp"`, are synced, and the temp file is renamed over the
  /// target — a reader (or a crash-recovery pass) sees either the old
  /// content or the new content, never a half-written file.
  Status WriteStringToFile(const std::string& fname, Slice data);
};

/// Creates an in-memory Env. All state dies with the object.
std::unique_ptr<Env> NewMemEnv();

/// Returns a process-wide Env backed by the local filesystem.
Env* PosixEnv();

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_ENV_H_
