#ifndef VELOCE_STORAGE_BLOOM_H_
#define VELOCE_STORAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace veloce::storage {

/// Bloom filter over SSTable point-read prefixes (LevelDB-style double
/// hashing). A table's filter block is built from the prefix of every added
/// key (see EngineOptions::prefix_extractor); point reads probe it before
/// touching any data block, so a negative answer skips the table entirely.
///
/// Filter encoding: bit array bytes followed by one trailer byte holding the
/// number of probes k. An empty filter matches everything (never wrong, just
/// useless), which keeps readers of filterless tables trivially correct.
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10);

  /// Registers a key. Consecutive duplicates are skipped (keys arrive in
  /// sorted order, so MVCC versions sharing a prefix dedupe for free).
  void AddKey(Slice key);

  /// Serialized filter for all added keys. The builder is reusable after a
  /// call (hashes are cleared).
  std::string Finish();

  size_t num_keys() const { return hashes_.size(); }

 private:
  const int bits_per_key_;
  std::vector<uint32_t> hashes_;
  std::string last_key_;
  bool has_last_ = false;
};

/// Probes a serialized filter. Returns true if `key` may have been added
/// (false positives possible, false negatives never).
bool BloomKeyMayMatch(Slice key, Slice filter);

/// The hash shared by builder and probe; exposed for tests.
uint32_t BloomHash(Slice key);

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_BLOOM_H_
