#include "storage/bloom.h"

namespace veloce::storage {

namespace {

uint32_t Hash32(const char* data, size_t n, uint32_t seed) {
  // Murmur-inspired byte hash (the LevelDB bloom hash): cheap, decent
  // avalanche, stable across platforms (the filter is an on-disk format).
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w = static_cast<uint8_t>(data[0]) |
                 (static_cast<uint8_t>(data[1]) << 8) |
                 (static_cast<uint8_t>(data[2]) << 16) |
                 (static_cast<uint8_t>(data[3]) << 24);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }
  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

}  // namespace

uint32_t BloomHash(Slice key) { return Hash32(key.data(), key.size(), 0xbc9f1d34); }

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key < 1 ? 1 : bits_per_key) {}

void BloomFilterBuilder::AddKey(Slice key) {
  if (has_last_ && Slice(last_key_) == key) return;
  last_key_.assign(key.data(), key.size());
  has_last_ = true;
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  // k = bits_per_key * ln(2), clamped to a sane probe count.
  int k = static_cast<int>(bits_per_key_ * 0.69);
  if (k < 1) k = 1;
  if (k > 30) k = 30;

  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;  // tiny tables: avoid a high-FPR sliver
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (uint32_t h : hashes_) {
    uint32_t delta = (h >> 17) | (h << 15);  // rotate right 17 bits
    for (int j = 0; j < k; ++j) {
      const size_t bitpos = h % bits;
      filter[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
      h += delta;
    }
  }
  filter.push_back(static_cast<char>(k));
  hashes_.clear();
  last_key_.clear();
  has_last_ = false;
  return filter;
}

bool BloomKeyMayMatch(Slice key, Slice filter) {
  if (filter.size() < 2) return true;  // empty/absent filter: never exclude
  const size_t bytes = filter.size() - 1;
  const size_t bits = bytes * 8;
  const int k = static_cast<uint8_t>(filter[bytes]);
  if (k > 30) return true;  // reserved for future encodings

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; ++j) {
    const size_t bitpos = h % bits;
    if ((filter[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace veloce::storage
