#ifndef VELOCE_STORAGE_ENGINE_H_
#define VELOCE_STORAGE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "obs/obs_context.h"
#include "storage/dbformat.h"
#include "storage/block_cache.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace veloce::storage {

class BackgroundExecutor;

/// Cumulative counters exposed for admission control's capacity estimation
/// (Section 5.1.3): the WQ token bucket refill rate is derived from flush
/// and compaction throughput, and the per-write linear models (a*x + b) are
/// fit against total_bytes_written vs ingest_bytes.
///
/// This struct is a read-only snapshot view: the source of truth is the
/// engine's `veloce_storage_*` series in its obs::MetricsRegistry, and
/// Engine::stats() materializes them here for typed consumers.
struct EngineStats {
  uint64_t ingest_bytes = 0;         ///< user payload accepted into the engine
  uint64_t wal_bytes = 0;            ///< bytes appended to the write-ahead log
  uint64_t flush_bytes = 0;          ///< bytes written flushing memtables to L0
  uint64_t compact_read_bytes = 0;
  uint64_t compact_write_bytes = 0;
  uint64_t num_flushes = 0;
  uint64_t num_compactions = 0;
  // Point-read fast path: filter and pruning effectiveness.
  uint64_t bloom_checked = 0;         ///< bloom probes issued
  uint64_t bloom_useful = 0;          ///< tables skipped by a negative probe
  uint64_t bloom_false_positive = 0;  ///< probes that passed but found nothing
  uint64_t tables_pruned = 0;         ///< tables skipped by key-range pruning
  // Write path backpressure: writers delayed because background flush or
  // compaction could not keep up. Admission control discounts its capacity
  // estimate by stall time (a stalling engine is past its real capacity).
  uint64_t write_stalls = 0;   ///< writes that hit a stall
  double stall_seconds = 0;    ///< cumulative seconds writers spent stalled

  uint64_t total_bytes_written() const {
    return wal_bytes + flush_bytes + compact_write_bytes;
  }
};

struct EngineOptions {
  /// Filesystem to use; nullptr means a private in-memory Env.
  Env* env = nullptr;
  std::string dir = "veloce-db";
  size_t memtable_bytes = 4 << 20;
  size_t sstable_target_bytes = 2 << 20;
  size_t block_bytes = 4096;
  /// L0 file count that triggers an L0->L1 compaction.
  int l0_compaction_trigger = 4;
  /// Capacity of the verified-data-block LRU cache (0 disables it).
  size_t block_cache_bytes = 8 << 20;
  /// Lock shards in the block cache (each gets block_cache_bytes/N budget).
  size_t block_cache_shards = BlockCache::kDefaultShards;
  /// Build bloom filter blocks in new SSTables and consult them on point
  /// reads. Off = legacy v1 tables, every point read probes data blocks.
  bool bloom_filters = true;
  int bloom_bits_per_key = 10;
  /// Maps engine user keys to the prefix blooms are built over and probed
  /// with (see sstable.h). The KV layer installs an extractor that strips
  /// the MVCC timestamp suffix so one probe covers a logical key's intent
  /// slot and every version. nullptr = whole user key.
  PrefixExtractor prefix_extractor = nullptr;
  /// Size of L1 before leveled compaction kicks in; each deeper level is
  /// 10x larger.
  uint64_t level_base_bytes = 8ull << 20;

  // ---- Concurrent write path ----
  /// Runs flushes and compactions off the write path. Not owned; must
  /// outlive the engine. nullptr = legacy mode: flush/compaction run
  /// synchronously inside the triggering write (deterministic without any
  /// event loop, and what the discrete benches used before sim executors).
  BackgroundExecutor* background_executor = nullptr;
  /// Group commit: concurrent writers queue, the front writer becomes the
  /// leader and commits the whole group with one WAL append (+ one Sync)
  /// outside the engine lock. Off = every write holds the lock across its
  /// own WAL append, the pre-group-commit behaviour (kept for ablation).
  bool group_commit = true;
  /// Sync the WAL file on every commit. Group commit amortizes the sync
  /// over the whole group, which is where its multi-writer win comes from.
  bool sync_wal = false;
  /// Sealed memtables allowed to queue for flush before writers stall.
  int max_immutable_memtables = 2;
  /// L0 file count at which writers stall until compaction catches up.
  int l0_stall_files = 12;

  // ---- Fault tolerance (docs/ROBUSTNESS.md) ----
  /// Background flush/compaction failures classified transient (I/O flakes,
  /// unreachable storage) are retried with capped exponential backoff; after
  /// this many failed retries the engine enters read-only degraded mode.
  int max_bg_retries = 5;
  /// First retry delay; doubles per attempt up to the cap.
  Nanos bg_retry_base_backoff = 10 * kMilli;
  Nanos bg_retry_max_backoff = 2 * kSecond;

  /// Telemetry injection. When obs.metrics is null the engine owns a
  /// private registry, so stats() stays per-instance-correct without any
  /// wiring. When several engines share an injected registry, set a
  /// distinct `metrics_instance` per engine (exported as label node=...).
  obs::ObsContext obs;
  std::string metrics_instance;
};

/// Engine is the LSM storage engine underlying every KV node — the
/// from-scratch stand-in for Pebble. Writes go WAL -> memtable -> sealed
/// (immutable) memtables -> flushed L0 SSTables -> leveled compactions (L0
/// may overlap; L1+ are sorted runs).
///
/// Write path (docs/STORAGE.md has the full protocol):
///  * Group commit: writers queue under the engine mutex; the front writer
///    leads, concatenates the group's batches, and performs the WAL append,
///    optional sync, and memtable insert with the mutex RELEASED, so reads
///    and background work proceed during commit I/O.
///  * When the memtable fills it is sealed into the immutable list together
///    with its WAL and a fresh memtable+WAL take over; a background task
///    flushes sealed memtables to L0 and runs compactions through the
///    pluggable BackgroundExecutor. Reads merge mem + immutables + levels.
///  * Writers stall (with the delay surfaced to admission control) when
///    sealed memtables or L0 files pile past their thresholds.
/// With a null executor all of this degenerates to the legacy synchronous
/// mode: flush and compaction run inside the triggering write, which keeps
/// behaviour deterministic with zero wiring.
///
/// Thread-safe. One mutex guards engine state; commit I/O and background
/// table builds run outside it.
class Engine {
 public:
  /// Opens (and recovers) an engine. If options.env is null the engine owns
  /// a fresh in-memory Env.
  static StatusOr<std::unique_ptr<Engine>> Open(EngineOptions options);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  /// Applies all operations in the batch atomically: the batch is validated
  /// up front, so a malformed batch changes nothing (no WAL record, no
  /// memtable entries, sequence numbers unconsumed).
  Status Write(const WriteBatch& batch);

  /// Reads the newest visible version of `key`. NotFound if absent/deleted.
  Status Get(Slice key, std::string* value);

  /// Point-read fast path: like Get, but reports "present as a tombstone"
  /// and "absent" distinctly via *found (value reads that need to tell the
  /// difference avoid a second probe). Prunes tables by key range, consults
  /// bloom filters, and stops at the first hit instead of merging levels.
  Status GetVisible(Slice key, std::string* value, bool* found);

  /// Point-in-time iterator over user keys (hides tombstones and shadowed
  /// versions). Pins the current sequence number until destroyed.
  std::unique_ptr<Iterator> NewIterator();

  /// Bounded point-in-time iterator over user keys in [lower, upper) —
  /// empty upper means unbounded. Only tables whose [smallest, largest]
  /// range overlaps the bounds contribute, and their iterators materialize
  /// lazily so tables that never get positioned read no blocks. When
  /// `bloom_prefix` is non-empty (an already-extracted point-read prefix,
  /// e.g. one MVCC logical key), each candidate table's filter is consulted
  /// first and negative tables are skipped entirely. SeekToFirst positions
  /// at `lower`; Seek clamps its target into the bounds.
  std::unique_ptr<Iterator> NewBoundedIterator(Slice lower, Slice upper,
                                               Slice bloom_prefix = Slice());

  /// Forces everything buffered (sealed memtables, then the active
  /// memtable) to L0. Waits out in-flight background work first.
  Status Flush();
  /// Runs compactions until no level is over its trigger.
  Status CompactAll();

  // ---- Error handling (RocksDB-ErrorHandler-style; docs/ROBUSTNESS.md) ----
  /// Severity classification: transient errors (I/O flakes, unreachable
  /// storage) are worth retrying; anything else (corruption, logic errors)
  /// is hard and forces degraded mode.
  static bool IsTransientError(const Status& s);
  /// True while the engine is in read-only degraded mode: reads and
  /// iterators keep working off the installed state, writes return
  /// Unavailable. Entered when background work fails hard (or exhausts its
  /// transient-retry budget).
  bool degraded() const;
  /// The error that put the engine into degraded mode (OK when healthy).
  Status background_error() const;
  /// Attempts to leave degraded mode: re-drives the pending flush/compaction
  /// work synchronously and, on success, clears the error and resumes
  /// background scheduling. Returns the (still) failing status if the fault
  /// has not cleared — the engine stays degraded and Resume() can be called
  /// again.
  Status Resume();

  /// Cumulative engine counters, materialized from the metrics registry.
  const EngineStats& stats() const;
  /// The registry this engine's `veloce_storage_*` series live in (the
  /// injected one, or the engine's private default).
  obs::MetricsRegistry* metrics() const { return metrics_; }
  const BlockCache* block_cache() const { return block_cache_.get(); }
  int NumFilesAtLevel(int level) const;
  uint64_t LevelBytes(int level) const;
  /// Sealed memtables awaiting background flush.
  int NumImmutableMemTables() const {
    return static_cast<int>(imm_count_.load(std::memory_order_relaxed));
  }
  /// Approximate total on-disk + memtable footprint.
  uint64_t ApproximateSize() const;
  SequenceNumber LastSequence() const {
    return last_seq_.load(std::memory_order_acquire);
  }

  static constexpr int kNumLevels = 7;

 private:
  struct FileMeta {
    uint64_t number = 0;
    uint64_t file_size = 0;
    std::string smallest, largest;  // internal keys
    std::shared_ptr<Table> table;
  };
  using FileList = std::vector<std::shared_ptr<FileMeta>>;

  /// One queued write. The front writer of `writers_` is the group leader.
  struct Writer {
    explicit Writer(const WriteBatch* b) : batch(b) {}
    const WriteBatch* batch;
    Status status;
    bool done = false;
    std::condition_variable cv;
  };

  /// A sealed memtable queued for flush, with the WAL that covers it (the
  /// WAL is deleted only after the memtable is durable in L0).
  struct ImmMem {
    std::shared_ptr<MemTable> mem;
    uint64_t wal_number = 0;
  };

  /// Cancellation token shared with scheduled background closures: the
  /// destructor flips `alive` so tasks that outlive the engine become
  /// no-ops (taking the token mutex also waits out an in-flight task).
  struct BgToken {
    std::mutex mu;
    bool alive = true;
  };

  Engine() = default;

  void InitMetrics();
  Status Recover();
  Status ReplayWal(const std::string& fname);
  Status NewWal();
  Status WriteManifest();
  Status LoadManifest();

  std::string TableFileName(uint64_t number) const;
  std::string WalFileName(uint64_t number) const;
  std::string ManifestFileName() const;

  // Write path.
  /// Maps bg_error_ to the status writes surface while degraded.
  Status DegradedStatusLocked() const;
  /// Latches `s` as the background error and flips the engine into
  /// read-only degraded mode (idempotent).
  void EnterDegradedLocked(const Status& s);
  /// Classifies a foreground flush/compaction failure: hard errors poison
  /// the engine into degraded mode before surfacing; transient ones pass
  /// through untouched (the caller's next attempt simply retries).
  Status HandleForegroundFailureLocked(Status s);

  Status WriteLegacyLocked(std::unique_lock<std::mutex>& l, const WriteBatch& batch);
  Status WriteGroupCommit(std::unique_lock<std::mutex>& l, Writer* w);
  /// Executor mode only: seals a full memtable, stalling first if the
  /// immutable list or L0 is over its threshold. May release+reacquire `l`;
  /// the caller must be the front writer (or hold writers idle) so the
  /// active memtable cannot change underneath it.
  Status MakeRoomForWriteLocked(std::unique_lock<std::mutex>& l);
  /// Seals mem_ (+ its WAL) into imm_ and starts a fresh memtable + WAL.
  Status RotateMemtableLocked();
  void MaybeScheduleBackgroundLocked();
  bool HasBackgroundWorkLocked() const;
  /// One unit of background work: flush the oldest sealed memtable, else
  /// one compaction step. Reschedules itself while work remains.
  void BackgroundWork();
  /// Flushes the oldest sealed memtable to L0. When `unlock` is set the
  /// table build runs with `l` released (only safe from the serialized
  /// background task).
  Status FlushOldestImm(std::unique_lock<std::mutex>& l, bool unlock);
  /// Waits until no write is queued (so mem_ is quiescent).
  void WaitWritersIdleLocked(std::unique_lock<std::mutex>& l);
  /// Waits until no background task is queued or running. Single-threaded
  /// executors are assisted (their queue is drained inline).
  void WaitBackgroundIdleLocked(std::unique_lock<std::mutex>& l);

  /// Builds one L0/compaction-output SSTable from a memtable.
  Status BuildMemTable(const MemTable& mem, FileMeta* meta);

  // Legacy synchronous flush/compaction (null-executor mode and Recover).
  Status FlushMemTableLocked();
  Status MaybeCompactLocked();
  /// One compaction step if any level is over its trigger.
  Status CompactOneStep(std::unique_lock<std::mutex>* l);
  /// Compacts L0 (all files) + overlapping L1 into L1.
  Status CompactL0(std::unique_lock<std::mutex>* l);
  /// Compacts one file from `level` into level+1.
  Status CompactLevel(int level, std::unique_lock<std::mutex>* l);
  /// When `l` is non-null the merge/build phase runs with it released
  /// (inputs are pinned by shared_ptr; install happens relocked).
  Status DoCompaction(const FileList& inputs_upper, int upper_level,
                      const FileList& inputs_lower, int output_level,
                      std::unique_lock<std::mutex>* l);
  FileList OverlappingFiles(int level, Slice smallest_user, Slice largest_user) const;
  uint64_t MaxBytesForLevel(int level) const;
  uint64_t LevelBytesLocked(int level) const;
  SequenceNumber OldestPinnedSeqLocked() const;

  Status GetLocked(Slice key, SequenceNumber snapshot, std::string* value,
                   bool* found);
  Status SearchFileList(const FileList& files, bool overlapping, Slice user_key,
                        Slice bloom_prefix, SequenceNumber snapshot,
                        std::string* value, bool* found);

  class PinnedIterator;
  class LazyTableIterator;
  class BoundedIterator;

  EngineOptions options_;
  std::unique_ptr<Env> owned_env_;
  Env* env_ = nullptr;
  std::unique_ptr<BlockCache> block_cache_;
  BackgroundExecutor* executor_ = nullptr;

  mutable std::mutex mu_;
  std::shared_ptr<MemTable> mem_;
  std::deque<ImmMem> imm_;  ///< sealed memtables, oldest first
  std::atomic<size_t> imm_count_{0};
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;
  std::atomic<uint64_t> next_file_number_{1};
  std::atomic<SequenceNumber> last_seq_{0};
  FileList levels_[kNumLevels];  // L0 newest-first; L1+ sorted by smallest
  size_t compact_pointer_[kNumLevels] = {};
  std::multiset<SequenceNumber> pinned_seqs_;

  // Group commit state.
  std::deque<Writer*> writers_;        ///< front = leader
  WriteBatch tmp_batch_;               ///< leader's scratch group batch
  std::condition_variable writers_empty_cv_;

  // Background state.
  bool bg_scheduled_ = false;  ///< a background task is queued or running
  bool shutting_down_ = false;
  /// Hard background error: while set the engine is in read-only degraded
  /// mode (writes return Unavailable, reads keep working). Cleared only by
  /// Resume(). Transient failures never land here until their retry budget
  /// (max_bg_retries, exponential backoff) is exhausted.
  Status bg_error_;
  int bg_retry_attempts_ = 0;  ///< consecutive transient bg failures
  std::condition_variable bg_cv_;  ///< signalled when background work completes
  std::shared_ptr<BgToken> bg_token_;

  // Metric handles (hot-path increments are lock-free; see obs/metrics.h).
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* ingest_bytes_c_ = nullptr;
  obs::Counter* wal_bytes_c_ = nullptr;
  obs::Counter* flush_bytes_c_ = nullptr;
  obs::Counter* compact_read_bytes_c_ = nullptr;
  obs::Counter* compact_write_bytes_c_ = nullptr;
  obs::Counter* flushes_c_ = nullptr;
  obs::Counter* compactions_c_ = nullptr;
  obs::Counter* bloom_checked_c_ = nullptr;
  obs::Counter* bloom_useful_c_ = nullptr;
  obs::Counter* bloom_false_positive_c_ = nullptr;
  obs::Counter* tables_pruned_c_ = nullptr;
  obs::Counter* write_stalls_c_ = nullptr;
  obs::Gauge* stall_seconds_g_ = nullptr;  ///< cumulative; Gauge for fractions
  obs::HistogramMetric* commit_group_size_h_ = nullptr;
  // Fault tolerance: degraded-mode transitions, bg retry churn, WAL repair.
  obs::Gauge* degraded_g_ = nullptr;
  obs::Counter* degraded_entries_c_ = nullptr;
  obs::Counter* degraded_exits_c_ = nullptr;
  obs::Counter* bg_retries_c_ = nullptr;
  obs::HistogramMetric* bg_retry_backoff_h_ = nullptr;
  obs::Counter* wal_truncated_c_ = nullptr;
  obs::MetricsRegistry::CallbackToken gauge_callback_;
  mutable EngineStats stats_snapshot_;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_ENGINE_H_
