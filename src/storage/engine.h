#ifndef VELOCE_STORAGE_ENGINE_H_
#define VELOCE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "obs/obs_context.h"
#include "storage/dbformat.h"
#include "storage/block_cache.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace veloce::storage {

/// Cumulative counters exposed for admission control's capacity estimation
/// (Section 5.1.3): the WQ token bucket refill rate is derived from flush
/// and compaction throughput, and the per-write linear models (a*x + b) are
/// fit against total_bytes_written vs ingest_bytes.
///
/// This struct is a read-only snapshot view: the source of truth is the
/// engine's `veloce_storage_*` series in its obs::MetricsRegistry, and
/// Engine::stats() materializes them here for typed consumers.
struct EngineStats {
  uint64_t ingest_bytes = 0;         ///< user payload accepted into the engine
  uint64_t wal_bytes = 0;            ///< bytes appended to the write-ahead log
  uint64_t flush_bytes = 0;          ///< bytes written flushing memtables to L0
  uint64_t compact_read_bytes = 0;
  uint64_t compact_write_bytes = 0;
  uint64_t num_flushes = 0;
  uint64_t num_compactions = 0;
  // Point-read fast path: filter and pruning effectiveness.
  uint64_t bloom_checked = 0;         ///< bloom probes issued
  uint64_t bloom_useful = 0;          ///< tables skipped by a negative probe
  uint64_t bloom_false_positive = 0;  ///< probes that passed but found nothing
  uint64_t tables_pruned = 0;         ///< tables skipped by key-range pruning

  uint64_t total_bytes_written() const {
    return wal_bytes + flush_bytes + compact_write_bytes;
  }
};

struct EngineOptions {
  /// Filesystem to use; nullptr means a private in-memory Env.
  Env* env = nullptr;
  std::string dir = "veloce-db";
  size_t memtable_bytes = 4 << 20;
  size_t sstable_target_bytes = 2 << 20;
  size_t block_bytes = 4096;
  /// L0 file count that triggers an L0->L1 compaction.
  int l0_compaction_trigger = 4;
  /// Capacity of the verified-data-block LRU cache (0 disables it).
  size_t block_cache_bytes = 8 << 20;
  /// Lock shards in the block cache (each gets block_cache_bytes/N budget).
  size_t block_cache_shards = BlockCache::kDefaultShards;
  /// Build bloom filter blocks in new SSTables and consult them on point
  /// reads. Off = legacy v1 tables, every point read probes data blocks.
  bool bloom_filters = true;
  int bloom_bits_per_key = 10;
  /// Maps engine user keys to the prefix blooms are built over and probed
  /// with (see sstable.h). The KV layer installs an extractor that strips
  /// the MVCC timestamp suffix so one probe covers a logical key's intent
  /// slot and every version. nullptr = whole user key.
  PrefixExtractor prefix_extractor = nullptr;
  /// Size of L1 before leveled compaction kicks in; each deeper level is
  /// 10x larger.
  uint64_t level_base_bytes = 8ull << 20;
  /// Telemetry injection. When obs.metrics is null the engine owns a
  /// private registry, so stats() stays per-instance-correct without any
  /// wiring. When several engines share an injected registry, set a
  /// distinct `metrics_instance` per engine (exported as label node=...).
  obs::ObsContext obs;
  std::string metrics_instance;
};

/// Engine is the LSM storage engine underlying every KV node — the
/// from-scratch stand-in for Pebble. Writes go WAL -> memtable -> flushed L0
/// SSTables -> leveled compactions (L0 may overlap; L1+ are sorted runs).
/// Flush and compaction run synchronously inside the triggering write, which
/// makes behaviour deterministic for tests and lets admission control's
/// token bucket see an honest bytes-in/bytes-compacted ledger.
///
/// Thread-safe: one mutex guards all state (adequate at this scale).
class Engine {
 public:
  /// Opens (and recovers) an engine. If options.env is null the engine owns
  /// a fresh in-memory Env.
  static StatusOr<std::unique_ptr<Engine>> Open(EngineOptions options);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  /// Applies all operations in the batch atomically.
  Status Write(const WriteBatch& batch);

  /// Reads the newest visible version of `key`. NotFound if absent/deleted.
  Status Get(Slice key, std::string* value);

  /// Point-read fast path: like Get, but reports "present as a tombstone"
  /// and "absent" distinctly via *found (value reads that need to tell the
  /// difference avoid a second probe). Prunes tables by key range, consults
  /// bloom filters, and stops at the first hit instead of merging levels.
  Status GetVisible(Slice key, std::string* value, bool* found);

  /// Point-in-time iterator over user keys (hides tombstones and shadowed
  /// versions). Pins the current sequence number until destroyed.
  std::unique_ptr<Iterator> NewIterator();

  /// Bounded point-in-time iterator over user keys in [lower, upper) —
  /// empty upper means unbounded. Only tables whose [smallest, largest]
  /// range overlaps the bounds contribute, and their iterators materialize
  /// lazily so tables that never get positioned read no blocks. When
  /// `bloom_prefix` is non-empty (an already-extracted point-read prefix,
  /// e.g. one MVCC logical key), each candidate table's filter is consulted
  /// first and negative tables are skipped entirely. SeekToFirst positions
  /// at `lower`; Seek clamps its target into the bounds.
  std::unique_ptr<Iterator> NewBoundedIterator(Slice lower, Slice upper,
                                               Slice bloom_prefix = Slice());

  /// Forces the memtable to L0.
  Status Flush();
  /// Runs compactions until no level is over its trigger.
  Status CompactAll();

  /// Cumulative engine counters, materialized from the metrics registry.
  const EngineStats& stats() const;
  /// The registry this engine's `veloce_storage_*` series live in (the
  /// injected one, or the engine's private default).
  obs::MetricsRegistry* metrics() const { return metrics_; }
  const BlockCache* block_cache() const { return block_cache_.get(); }
  int NumFilesAtLevel(int level) const;
  uint64_t LevelBytes(int level) const;
  /// Approximate total on-disk + memtable footprint.
  uint64_t ApproximateSize() const;
  SequenceNumber LastSequence() const { return last_seq_; }

  static constexpr int kNumLevels = 7;

 private:
  struct FileMeta {
    uint64_t number = 0;
    uint64_t file_size = 0;
    std::string smallest, largest;  // internal keys
    std::shared_ptr<Table> table;
  };
  using FileList = std::vector<std::shared_ptr<FileMeta>>;

  Engine() = default;

  void InitMetrics();
  Status Recover();
  Status ReplayWal(const std::string& fname);
  Status NewWal();
  Status WriteManifest();
  Status LoadManifest();

  std::string TableFileName(uint64_t number) const;
  std::string WalFileName(uint64_t number) const;
  std::string ManifestFileName() const;

  Status FlushMemTableLocked();
  Status MaybeCompactLocked();
  /// Compacts L0 (all files) + overlapping L1 into L1.
  Status CompactL0Locked();
  /// Compacts one file from `level` into level+1.
  Status CompactLevelLocked(int level);
  Status DoCompactionLocked(const FileList& inputs_upper, int upper_level,
                            const FileList& inputs_lower, int output_level);
  FileList OverlappingFiles(int level, Slice smallest_user, Slice largest_user) const;
  uint64_t MaxBytesForLevel(int level) const;
  SequenceNumber OldestPinnedSeqLocked() const;

  Status GetLocked(Slice key, SequenceNumber snapshot, std::string* value,
                   bool* found);
  Status SearchFileList(const FileList& files, bool overlapping, Slice user_key,
                        Slice bloom_prefix, SequenceNumber snapshot,
                        std::string* value, bool* found);

  class PinnedIterator;
  class LazyTableIterator;
  class BoundedIterator;

  EngineOptions options_;
  std::unique_ptr<Env> owned_env_;
  Env* env_ = nullptr;
  std::unique_ptr<BlockCache> block_cache_;

  mutable std::mutex mu_;
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;
  uint64_t next_file_number_ = 1;
  SequenceNumber last_seq_ = 0;
  FileList levels_[kNumLevels];  // L0 newest-first; L1+ sorted by smallest
  size_t compact_pointer_[kNumLevels] = {};
  std::multiset<SequenceNumber> pinned_seqs_;

  // Metric handles (hot-path increments are lock-free; see obs/metrics.h).
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* ingest_bytes_c_ = nullptr;
  obs::Counter* wal_bytes_c_ = nullptr;
  obs::Counter* flush_bytes_c_ = nullptr;
  obs::Counter* compact_read_bytes_c_ = nullptr;
  obs::Counter* compact_write_bytes_c_ = nullptr;
  obs::Counter* flushes_c_ = nullptr;
  obs::Counter* compactions_c_ = nullptr;
  obs::Counter* bloom_checked_c_ = nullptr;
  obs::Counter* bloom_useful_c_ = nullptr;
  obs::Counter* bloom_false_positive_c_ = nullptr;
  obs::Counter* tables_pruned_c_ = nullptr;
  obs::MetricsRegistry::CallbackToken gauge_callback_;
  mutable EngineStats stats_snapshot_;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_ENGINE_H_
