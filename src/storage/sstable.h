#ifndef VELOCE_STORAGE_SSTABLE_H_
#define VELOCE_STORAGE_SSTABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"
#include "storage/block_cache.h"
#include "storage/bloom.h"
#include "storage/env.h"

namespace veloce::storage {

/// Maps an engine user key to the prefix that point reads probe with (and
/// the bloom filter is built over). nullptr means "whole user key". The KV
/// layer installs an extractor that strips the MVCC timestamp suffix, so one
/// filter probe covers every version + the intent slot of a logical key.
using PrefixExtractor = Slice (*)(Slice user_key);

/// Build-time knobs for one SSTable.
struct TableOptions {
  size_t block_size = 4096;
  /// Build a bloom filter block over key prefixes (format v2 footer). When
  /// false the builder emits the legacy v1 footer with no filter block.
  bool bloom_filter = true;
  int bloom_bits_per_key = 10;
  PrefixExtractor prefix_extractor = nullptr;
};

/// Immutable sorted-string table: the on-disk unit of the LSM tree.
///
/// Format:
///   data blocks:  [varint klen | key | varint vlen | value]* , masked crc32
///   filter block: bloom bits | k (v2 only), masked crc32
///   index block:  [varint klen | last_key_of_block | offset u64 | size u64]*
///   footer v1:    index_offset u64 | index_size u64 | magic u64
///   footer v2:    filter_offset u64 | filter_size u64 |
///                 index_offset u64 | index_size u64 |
///                 format_version u64 | magic_v2 u64
///
/// Readers dispatch on the trailing magic, so v1 tables written before the
/// filter block existed still open.
///
/// Keys are internal keys, added in sorted order by the builder.
class TableBuilder {
 public:
  TableBuilder(std::unique_ptr<WritableFile> file, TableOptions options);
  /// Legacy convenience: block size only, defaults elsewhere.
  TableBuilder(std::unique_ptr<WritableFile> file, size_t block_size = 4096);

  /// Adds an entry; keys must arrive in strictly increasing internal-key
  /// order.
  Status Add(Slice internal_key, Slice value);

  /// Writes the filter (if enabled), index, and footer. The builder is
  /// unusable afterwards.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return offset_; }
  /// Smallest/largest internal keys added (valid after >= 1 Add).
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }

 private:
  Status FlushBlock();

  std::unique_ptr<WritableFile> file_;
  const TableOptions options_;
  BloomFilterBuilder bloom_;
  std::string block_buf_;
  std::string index_;        // accumulated index entries
  std::string last_key_;     // last key added (order check + index key)
  std::string smallest_, largest_;
  uint64_t offset_ = 0;      // bytes written so far
  uint64_t block_start_ = 0; // offset of current block
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

/// Reader for a finished table. Loads the index eagerly (tables are small in
/// this deployment); the filter block is read lazily on the first point-read
/// probe, and data blocks are read and checksummed on demand.
class Table {
 public:
  /// `cache` (nullable) holds verified data blocks keyed by `file_number`.
  static StatusOr<std::shared_ptr<Table>> Open(std::unique_ptr<RandomAccessFile> file,
                                               BlockCache* cache = nullptr,
                                               uint64_t file_number = 0);

  /// Point lookup: finds the first entry with internal key >= lookup_key and
  /// returns it via *found_key/*found_value. Returns NotFound if no entry in
  /// this table is >= lookup_key.
  Status SeekEntry(Slice lookup_key, std::string* found_key, std::string* found_value) const;

  std::unique_ptr<InternalIterator> NewIterator() const;

  /// True when the table carries a filter block (format v2 with a non-empty
  /// filter).
  bool has_filter() const { return filter_size_ > 0; }

  /// Bloom probe with an already-extracted prefix. True means "may contain";
  /// false is definitive. Filterless tables always return true. Loads the
  /// filter block on first use (thread-safe); a corrupt filter block is
  /// treated as absent rather than failing reads.
  bool MayContainPrefix(Slice prefix) const;

  uint64_t num_blocks() const { return index_entries_.size(); }
  uint64_t format_version() const { return format_version_; }

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };
  class Iter;

  Table() = default;

  Status ReadBlock(size_t block_idx, std::shared_ptr<const std::string>* out) const;
  /// Index of the first block whose last key >= target, or -1.
  int FindBlock(Slice target) const;
  void EnsureFilterLoaded() const;

  std::unique_ptr<RandomAccessFile> file_;
  std::vector<IndexEntry> index_entries_;
  BlockCache* cache_ = nullptr;
  uint64_t file_number_ = 0;
  uint64_t format_version_ = 1;
  uint64_t filter_offset_ = 0;
  uint64_t filter_size_ = 0;  // payload bytes, excluding the crc trailer

  mutable std::once_flag filter_once_;
  mutable std::string filter_;  // loaded lazily; empty until first probe
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_SSTABLE_H_
