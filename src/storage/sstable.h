#ifndef VELOCE_STORAGE_SSTABLE_H_
#define VELOCE_STORAGE_SSTABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"
#include "storage/block_cache.h"
#include "storage/env.h"

namespace veloce::storage {

/// Immutable sorted-string table: the on-disk unit of the LSM tree.
///
/// Format:
///   data blocks:  [varint klen | key | varint vlen | value]* , masked crc32
///   index block:  [varint klen | last_key_of_block | offset u64 | size u64]*
///   footer:       index_offset u64 | index_size u64 | magic u64
///
/// Keys are internal keys, added in sorted order by the builder.
class TableBuilder {
 public:
  TableBuilder(std::unique_ptr<WritableFile> file, size_t block_size = 4096);

  /// Adds an entry; keys must arrive in strictly increasing internal-key
  /// order.
  Status Add(Slice internal_key, Slice value);

  /// Writes the index and footer. The builder is unusable afterwards.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return offset_; }
  /// Smallest/largest internal keys added (valid after >= 1 Add).
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }

 private:
  Status FlushBlock();

  std::unique_ptr<WritableFile> file_;
  const size_t block_size_;
  std::string block_buf_;
  std::string index_;        // accumulated index entries
  std::string last_key_;     // last key added (order check + index key)
  std::string smallest_, largest_;
  uint64_t offset_ = 0;      // bytes written so far
  uint64_t block_start_ = 0; // offset of current block
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

/// Reader for a finished table. Loads the index eagerly (tables are small in
/// this deployment); data blocks are read and checksummed on demand.
class Table {
 public:
  /// `cache` (nullable) holds verified data blocks keyed by `file_number`.
  static StatusOr<std::shared_ptr<Table>> Open(std::unique_ptr<RandomAccessFile> file,
                                               BlockCache* cache = nullptr,
                                               uint64_t file_number = 0);

  /// Point lookup: finds the first entry with internal key >= lookup_key and
  /// returns it via *found_key/*found_value. Returns NotFound if no entry in
  /// this table is >= lookup_key.
  Status SeekEntry(Slice lookup_key, std::string* found_key, std::string* found_value) const;

  std::unique_ptr<InternalIterator> NewIterator() const;

  uint64_t num_blocks() const { return index_entries_.size(); }

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };
  class Iter;

  Table() = default;

  Status ReadBlock(size_t block_idx, std::shared_ptr<const std::string>* out) const;
  /// Index of the first block whose last key >= target, or -1.
  int FindBlock(Slice target) const;

  std::unique_ptr<RandomAccessFile> file_;
  std::vector<IndexEntry> index_entries_;
  BlockCache* cache_ = nullptr;
  uint64_t file_number_ = 0;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_SSTABLE_H_
