#include "storage/block_cache.h"

namespace veloce::storage {

std::shared_ptr<const std::string> BlockCache::Lookup(uint64_t file_number,
                                                      uint64_t block_idx) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = index_.find({file_number, block_idx});
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  // Move to front (most recently used).
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(uint64_t file_number, uint64_t block_idx,
                        std::string contents) {
  std::lock_guard<std::mutex> l(mu_);
  const Key key{file_number, block_idx};
  auto it = index_.find(key);
  if (it != index_.end()) {
    usage_ -= it->second->block->size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  auto block = std::make_shared<const std::string>(std::move(contents));
  usage_ += block->size();
  lru_.push_front(Entry{key, std::move(block)});
  index_[key] = lru_.begin();
  EvictIfNeededLocked();
}

void BlockCache::EvictFile(uint64_t file_number) {
  std::lock_guard<std::mutex> l(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.first == file_number) {
      usage_ -= it->block->size();
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::EvictIfNeededLocked() {
  while (usage_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    usage_ -= victim.block->size();
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

size_t BlockCache::usage_bytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return usage_;
}

}  // namespace veloce::storage
