#include "storage/block_cache.h"

namespace veloce::storage {

BlockCache::BlockCache(size_t capacity_bytes, size_t num_shards)
    : shard_capacity_(capacity_bytes / (num_shards == 0 ? 1 : num_shards)) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const std::string> BlockCache::Lookup(uint64_t file_number,
                                                      uint64_t block_idx) {
  const Key key{file_number, block_idx};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  // Move to front (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->block;
}

void BlockCache::Insert(uint64_t file_number, uint64_t block_idx,
                        std::string contents) {
  if (contents.size() > shard_capacity_) return;  // could never fit
  const Key key{file_number, block_idx};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.usage.fetch_sub(it->second->block->size(), std::memory_order_relaxed);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  auto block = std::make_shared<const std::string>(std::move(contents));
  shard.usage.fetch_add(block->size(), std::memory_order_relaxed);
  shard.lru.push_front(Entry{key, std::move(block)});
  shard.index[key] = shard.lru.begin();
  EvictIfNeededLocked(shard);
}

void BlockCache::EvictFile(uint64_t file_number) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> l(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.first == file_number) {
        shard.usage.fetch_sub(it->block->size(), std::memory_order_relaxed);
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::EvictIfNeededLocked(Shard& shard) {
  while (shard.usage.load(std::memory_order_relaxed) > shard_capacity_ &&
         !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.usage.fetch_sub(victim.block->size(), std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

size_t BlockCache::usage_bytes() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->usage.load(std::memory_order_relaxed);
  return total;
}

uint64_t BlockCache::hits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->hits.load(std::memory_order_relaxed);
  return total;
}

uint64_t BlockCache::misses() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->misses.load(std::memory_order_relaxed);
  return total;
}

uint64_t BlockCache::shard_hits(size_t shard) const {
  return shards_[shard]->hits.load(std::memory_order_relaxed);
}

uint64_t BlockCache::shard_misses(size_t shard) const {
  return shards_[shard]->misses.load(std::memory_order_relaxed);
}

size_t BlockCache::shard_usage_bytes(size_t shard) const {
  return shards_[shard]->usage.load(std::memory_order_relaxed);
}

}  // namespace veloce::storage
