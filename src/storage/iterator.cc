#include "storage/iterator.h"

#include <algorithm>

namespace veloce::storage {

namespace {

class MergingIterator final : public InternalIterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<InternalIterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ >= 0; }

  void SeekToFirst() override {
    for (auto& c : children_) c->SeekToFirst();
    FindSmallest();
  }

  void Seek(Slice target) override {
    for (auto& c : children_) c->Seek(target);
    FindSmallest();
  }

  void Next() override {
    children_[current_]->Next();
    FindSmallest();
  }

  Slice key() const override { return children_[current_]->key(); }
  Slice value() const override { return children_[current_]->value(); }

 private:
  void FindSmallest() {
    current_ = -1;
    for (int i = 0; i < static_cast<int>(children_.size()); ++i) {
      if (!children_[i]->Valid()) continue;
      if (current_ < 0 ||
          CompareInternalKey(children_[i]->key(), children_[current_]->key()) < 0) {
        current_ = i;
      }
    }
  }

  std::vector<std::unique_ptr<InternalIterator>> children_;
  int current_ = -1;
};

class UserIterator final : public Iterator {
 public:
  UserIterator(std::unique_ptr<InternalIterator> internal, SequenceNumber snapshot)
      : internal_(std::move(internal)), snapshot_(snapshot) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextVisible(/*skip_current_user_key=*/false);
  }

  void Seek(Slice target) override {
    internal_->Seek(Slice(MakeInternalKey(target, snapshot_, ValueType::kValue)));
    FindNextVisible(false);
  }

  void Next() override { FindNextVisible(/*skip_current_user_key=*/true); }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }

 private:
  // Advances until positioned at the newest visible, non-deleted version of
  // a user key. When skip_current_user_key, versions of key_ are passed over
  // first.
  void FindNextVisible(bool skip_current_user_key) {
    std::string skip = skip_current_user_key ? key_ : std::string();
    bool skipping = skip_current_user_key;
    valid_ = false;
    while (internal_->Valid()) {
      Slice ikey = internal_->key();
      const Slice user_key = ExtractUserKey(ikey);
      if (ExtractSequence(ikey) > snapshot_) {
        internal_->Next();
        continue;  // too new for this snapshot
      }
      if (skipping && user_key == Slice(skip)) {
        internal_->Next();
        continue;
      }
      if (ExtractValueType(ikey) == ValueType::kDeletion) {
        // Tombstone: every older version of this key is invisible.
        skipping = true;
        skip.assign(user_key.data(), user_key.size());
        internal_->Next();
        continue;
      }
      // Newest visible version of a fresh user key.
      key_.assign(user_key.data(), user_key.size());
      value_.assign(internal_->value().data(), internal_->value().size());
      valid_ = true;
      // Leave internal_ at this entry; Next() will skip the older versions.
      return;
    }
  }

  std::unique_ptr<InternalIterator> internal_;
  SequenceNumber snapshot_;
  std::string key_, value_;
  bool valid_ = false;
};

}  // namespace

std::unique_ptr<InternalIterator> NewMergingIterator(
    std::vector<std::unique_ptr<InternalIterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

std::unique_ptr<Iterator> NewUserIterator(std::unique_ptr<InternalIterator> internal,
                                          SequenceNumber snapshot_seq) {
  return std::make_unique<UserIterator>(std::move(internal), snapshot_seq);
}

}  // namespace veloce::storage
