#include "storage/background.h"

namespace veloce::storage {

ThreadPoolExecutor::ThreadPoolExecutor(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> l(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPoolExecutor::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> l(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

size_t ThreadPoolExecutor::queue_depth() const {
  std::lock_guard<std::mutex> l(mu_);
  return queue_.size() + active_;
}

void ThreadPoolExecutor::Drain() {
  std::unique_lock<std::mutex> l(mu_);
  drain_cv_.wait(l, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPoolExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    work_cv_.wait(l, [this] { return stopping_ || !queue_.empty(); });
    // Even when stopping, finish queued tasks: engine closures are
    // cancellation-token guarded, so this never touches dead objects.
    if (queue_.empty()) return;
    auto fn = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    l.unlock();
    fn();
    l.lock();
    --active_;
    if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
  }
}

}  // namespace veloce::storage
