#ifndef VELOCE_STORAGE_MEMTABLE_H_
#define VELOCE_STORAGE_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"

namespace veloce::storage {

/// In-memory write buffer: a skiplist of internal keys. Writes land here
/// first; when the memtable reaches the configured size it is frozen and
/// flushed to an L0 SSTable. The flush rate is one of the two write
/// bottlenecks admission control models (Section 5.1.3 of the paper).
///
/// Single-writer / multi-reader is coordinated by the engine's mutex; the
/// skiplist itself is not internally synchronized.
class MemTable {
 public:
  MemTable();
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts a (user_key, seq, type, value) entry.
  void Add(SequenceNumber seq, ValueType type, Slice user_key, Slice value);

  /// Looks up the newest version of user_key visible at `snapshot_seq`.
  /// Returns true if an entry was found: *found_value holds the value and
  /// *is_deleted reports a tombstone. Returns false if the key is absent.
  bool Get(Slice user_key, SequenceNumber snapshot_seq, std::string* found_value,
           bool* is_deleted) const;

  /// Approximate memory footprint of entries (keys + values + node overhead).
  size_t ApproximateMemoryUsage() const { return mem_usage_; }
  uint64_t num_entries() const { return num_entries_; }

  /// Iterator over the memtable's internal keys; remains valid while the
  /// memtable is alive (engines hold flushed memtables via shared_ptr until
  /// readers drain).
  std::unique_ptr<InternalIterator> NewIterator() const;

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    std::string key;    // internal key
    std::string value;
    int height;
    Node* next[1];      // variable length, allocated with the node
  };

  Node* NewNode(int height, Slice key, Slice value);
  int RandomHeight();
  /// First node with internal key >= target; prev[] filled when non-null.
  Node* FindGreaterOrEqual(Slice target, Node** prev) const;

  class Iter;

  Node* head_;
  int max_height_ = 1;
  Random rnd_;
  size_t mem_usage_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_MEMTABLE_H_
