#ifndef VELOCE_STORAGE_MEMTABLE_H_
#define VELOCE_STORAGE_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"

namespace veloce::storage {

/// In-memory write buffer: a skiplist of internal keys. Writes land here
/// first; when the memtable reaches the configured size it is sealed into
/// the engine's immutable list and flushed to an L0 SSTable by background
/// work. The flush rate is one of the two write bottlenecks admission
/// control models (Section 5.1.3 of the paper).
///
/// Concurrency: LevelDB-style single-writer / multi-reader skiplist. Next
/// pointers are atomics — an inserter publishes a node with a release store
/// after fully initializing it, and readers traverse with acquire loads, so
/// reads need no lock and never see a half-linked node. Writers must still
/// be externally serialized (the engine's group-commit leader is the single
/// writer). Sealed (immutable) memtables are trivially safe to read from
/// any thread.
class MemTable {
 public:
  MemTable();
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts a (user_key, seq, type, value) entry. Single writer at a time.
  void Add(SequenceNumber seq, ValueType type, Slice user_key, Slice value);

  /// Looks up the newest version of user_key visible at `snapshot_seq`.
  /// Returns true if an entry was found: *found_value holds the value and
  /// *is_deleted reports a tombstone. Returns false if the key is absent.
  /// Safe concurrently with one Add().
  bool Get(Slice user_key, SequenceNumber snapshot_seq, std::string* found_value,
           bool* is_deleted) const;

  /// Approximate memory footprint of entries (keys + values + node overhead).
  size_t ApproximateMemoryUsage() const {
    return mem_usage_.load(std::memory_order_relaxed);
  }
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  /// Iterator over the memtable's internal keys; remains valid while the
  /// memtable is alive (engines hold sealed memtables via shared_ptr until
  /// readers drain).
  std::unique_ptr<InternalIterator> NewIterator() const;

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    std::string key;    // internal key
    std::string value;
    int height;
    std::atomic<Node*> next[1];  // variable length, allocated with the node
  };

  Node* NewNode(int height, Slice key, Slice value);
  int RandomHeight();
  /// First node with internal key >= target; prev[] filled when non-null.
  Node* FindGreaterOrEqual(Slice target, Node** prev) const;

  class Iter;

  Node* head_;
  std::atomic<int> max_height_{1};
  Random rnd_;
  std::atomic<size_t> mem_usage_{0};
  std::atomic<uint64_t> num_entries_{0};
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_MEMTABLE_H_
