#include "storage/memtable.h"

#include <cstdlib>
#include <cstring>
#include <new>

namespace veloce::storage {

MemTable::MemTable() : rnd_(0xdecafbad) {
  head_ = NewNode(kMaxHeight, Slice(), Slice());
}

MemTable::~MemTable() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0].load(std::memory_order_relaxed);
    n->~Node();
    std::free(n);
    n = next;
  }
}

MemTable::Node* MemTable::NewNode(int height, Slice key, Slice value) {
  const size_t size = sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  void* mem = std::malloc(size);
  Node* node = new (mem) Node();
  node->key.assign(key.data(), key.size());
  node->value.assign(value.data(), value.size());
  node->height = height;
  // Node() constructed next[0]; the flexible tail slots need placement-new.
  node->next[0].store(nullptr, std::memory_order_relaxed);
  for (int i = 1; i < height; ++i) {
    new (&node->next[i]) std::atomic<Node*>(nullptr);
  }
  return node;
}

int MemTable::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && (rnd_.Next() & 3) == 0) ++height;
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(Slice target, Node** prev) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_acquire) - 1;
  while (true) {
    Node* next = x->next[level].load(std::memory_order_acquire);
    if (next != nullptr && CompareInternalKey(Slice(next->key), target) < 0) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void MemTable::Add(SequenceNumber seq, ValueType type, Slice user_key, Slice value) {
  const std::string ikey = MakeInternalKey(user_key, seq, type);
  Node* prev[kMaxHeight];
  FindGreaterOrEqual(Slice(ikey), prev);
  const int height = RandomHeight();
  if (height > max_height_.load(std::memory_order_relaxed)) {
    for (int i = max_height_.load(std::memory_order_relaxed); i < height; ++i) {
      prev[i] = head_;
    }
    // Readers racing this store either see the old height (they skip the
    // new levels, which only link through head_) or the new one.
    max_height_.store(height, std::memory_order_release);
  }
  Node* node = NewNode(height, Slice(ikey), value);
  for (int i = 0; i < height; ++i) {
    node->next[i].store(prev[i]->next[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    // Publish: after this release store a reader at level i can reach the
    // node, whose fields (and lower links) are fully initialized.
    prev[i]->next[i].store(node, std::memory_order_release);
  }
  mem_usage_.fetch_add(
      ikey.size() + value.size() + sizeof(Node) + sizeof(std::atomic<Node*>) * height,
      std::memory_order_relaxed);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(Slice user_key, SequenceNumber snapshot_seq,
                   std::string* found_value, bool* is_deleted) const {
  // Seek to the newest version visible at snapshot_seq: internal keys sort
  // by (user_key asc, seq desc), so the lookup key uses snapshot_seq.
  const std::string lookup = MakeInternalKey(user_key, snapshot_seq, ValueType::kValue);
  Node* n = FindGreaterOrEqual(Slice(lookup), nullptr);
  if (n == nullptr) return false;
  Slice ikey(n->key);
  if (ExtractUserKey(ikey) != user_key) return false;
  *is_deleted = ExtractValueType(ikey) == ValueType::kDeletion;
  if (!*is_deleted) *found_value = n->value;
  return true;
}

class MemTable::Iter final : public InternalIterator {
 public:
  explicit Iter(const MemTable* mem) : mem_(mem) {}

  bool Valid() const override { return node_ != nullptr; }
  void SeekToFirst() override {
    node_ = mem_->head_->next[0].load(std::memory_order_acquire);
  }
  void Seek(Slice target) override {
    node_ = mem_->FindGreaterOrEqual(target, nullptr);
  }
  void Next() override { node_ = node_->next[0].load(std::memory_order_acquire); }
  Slice key() const override { return Slice(node_->key); }
  Slice value() const override { return Slice(node_->value); }

 private:
  const MemTable* mem_;
  Node* node_ = nullptr;
};

std::unique_ptr<InternalIterator> MemTable::NewIterator() const {
  return std::make_unique<Iter>(this);
}

}  // namespace veloce::storage
