#include "storage/write_batch.h"

#include "common/codec.h"

namespace veloce::storage {

namespace {
constexpr char kPutTag = 1;
constexpr char kDeleteTag = 0;
}  // namespace

void WriteBatch::Clear() {
  rep_.clear();
  PutVarint32(&rep_, 0);
  payload_bytes_ = 0;
}

namespace {
void SetCount(std::string* rep, uint32_t count) {
  // The count varint lives at the head; rewrite the whole prefix. Counts are
  // small in practice; re-encode by rebuilding the header.
  std::string header;
  PutVarint32(&header, count);
  // Find current header length.
  Slice s(*rep);
  uint32_t old_count = 0;
  const char* start = s.data();
  GetVarint32(&s, &old_count);
  const size_t old_header = static_cast<size_t>(s.data() - start);
  rep->replace(0, old_header, header);
}

uint32_t GetCount(const std::string& rep) {
  Slice s(rep);
  uint32_t count = 0;
  GetVarint32(&s, &count);
  return count;
}
}  // namespace

void WriteBatch::Put(Slice key, Slice value) {
  SetCount(&rep_, GetCount(rep_) + 1);
  rep_.push_back(kPutTag);
  PutLengthPrefixed(&rep_, key);
  PutLengthPrefixed(&rep_, value);
  payload_bytes_ += key.size() + value.size();
}

void WriteBatch::Delete(Slice key) {
  SetCount(&rep_, GetCount(rep_) + 1);
  rep_.push_back(kDeleteTag);
  PutLengthPrefixed(&rep_, key);
  payload_bytes_ += key.size();
}

uint32_t WriteBatch::Count() const { return GetCount(rep_); }

void WriteBatch::Append(const WriteBatch& other) {
  SetCount(&rep_, GetCount(rep_) + GetCount(other.rep_));
  // Strip the other batch's count header; records concatenate as-is.
  Slice records(other.rep_);
  uint32_t other_count = 0;
  GetVarint32(&records, &other_count);
  rep_.append(records.data(), records.size());
  payload_bytes_ += other.payload_bytes_;
}

Status WriteBatch::SetContents(Slice contents) {
  rep_.assign(contents.data(), contents.size());
  payload_bytes_ = 0;
  // Validate and recompute payload bytes.
  class Counter : public Handler {
   public:
    explicit Counter(size_t* bytes) : bytes_(bytes) {}
    void Put(Slice key, Slice value) override { *bytes_ += key.size() + value.size(); }
    void Delete(Slice key) override { *bytes_ += key.size(); }

   private:
    size_t* bytes_;
  };
  Counter counter(&payload_bytes_);
  return Iterate(&counter);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  uint32_t count = 0;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("write batch missing count");
  }
  uint32_t found = 0;
  while (!input.empty()) {
    const char tag = input[0];
    input.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixed(&input, &key)) {
      return Status::Corruption("write batch bad key");
    }
    if (tag == kPutTag) {
      if (!GetLengthPrefixed(&input, &value)) {
        return Status::Corruption("write batch bad value");
      }
      handler->Put(key, value);
    } else if (tag == kDeleteTag) {
      handler->Delete(key);
    } else {
      return Status::Corruption("write batch unknown tag");
    }
    ++found;
  }
  if (found != count) return Status::Corruption("write batch count mismatch");
  return Status::OK();
}

}  // namespace veloce::storage
