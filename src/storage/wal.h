#ifndef VELOCE_STORAGE_WAL_H_
#define VELOCE_STORAGE_WAL_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"

namespace veloce::storage {

/// Write-ahead log. Each record is framed as
///   masked_crc32c(fixed32) | length(fixed32) | payload
/// Readers stop cleanly at a truncated or corrupt tail (the crash case) and
/// report corruption in the middle of the log. Record payloads are
/// serialized WriteBatches tagged with their starting sequence number.
class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  Status AddRecord(Slice payload);
  Status Sync() { return file_->Sync(); }
  uint64_t Size() const { return file_->Size(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

class LogReader {
 public:
  explicit LogReader(std::string contents) : contents_(std::move(contents)) {}

  /// Reads the next record into *payload. Returns true on success, false at
  /// end of log (including a truncated tail). *corruption is set if a CRC
  /// mismatch was found mid-log.
  bool ReadRecord(std::string* payload, bool* corruption);

 private:
  std::string contents_;
  size_t pos_ = 0;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_WAL_H_
