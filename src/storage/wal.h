#ifndef VELOCE_STORAGE_WAL_H_
#define VELOCE_STORAGE_WAL_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"

namespace veloce::storage {

/// Write-ahead log. Each record is framed as
///   masked_crc32c(fixed32) | length(fixed32) | payload
/// Readers stop cleanly at a truncated or corrupt tail (the crash case) and
/// report corruption in the middle of the log. Record payloads are
/// serialized WriteBatches tagged with their starting sequence number.
class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file) : file_(std::move(file)) {}

  Status AddRecord(Slice payload);
  Status Sync() { return file_->Sync(); }
  uint64_t Size() const { return file_->Size(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

class LogReader {
 public:
  explicit LogReader(std::string contents) : contents_(std::move(contents)) {}

  /// Reads the next record into *payload. Returns true on success, false at
  /// end of log (including a truncated tail). *corruption is set if a CRC
  /// mismatch was found mid-log — a mismatch on a record whose frame ends
  /// exactly at EOF is instead classified as a torn tail (a partially
  /// persisted final write), which is expected after a crash and safe to
  /// drop.
  bool ReadRecord(std::string* payload, bool* corruption);

  /// Byte offset of the next unread record (== the failing offset after
  /// ReadRecord returns false).
  size_t offset() const { return pos_; }
  /// Records successfully returned so far.
  uint64_t records_read() const { return records_read_; }
  /// True once ReadRecord stopped at a torn tail: a truncated header,
  /// truncated payload, or CRC-mismatched record extending exactly to EOF.
  bool tail_truncated() const { return tail_truncated_; }
  /// Bytes dropped at the tail (0 unless tail_truncated()).
  size_t truncated_bytes() const { return contents_.size() - pos_; }

 private:
  std::string contents_;
  size_t pos_ = 0;
  uint64_t records_read_ = 0;
  bool tail_truncated_ = false;
};

}  // namespace veloce::storage

#endif  // VELOCE_STORAGE_WAL_H_
