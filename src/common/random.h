#ifndef VELOCE_COMMON_RANDOM_H_
#define VELOCE_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace veloce {

/// Derives an independent sub-seed from one master seed and a stream name
/// (FNV-1a over the name, mixed through splitmix64). Every randomness
/// source in a seeded scenario — load-pattern noise, fault schedules,
/// proxy failover jitter, workload key pickers, pod-start jitter — draws
/// its seed through this, so a single scenario seed reproduces the whole
/// event trace while distinct streams stay decorrelated.
inline uint64_t DeriveSeed(uint64_t base, std::string_view stream) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  uint64_t z = base ^ h;
  z += 0x9E3779B97F4A7C15ULL;  // splitmix64 finalizer
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Fast deterministic PRNG (xorshift128+). Workloads and simulations need
/// reproducible randomness; std::mt19937_64 is heavier than necessary for
/// per-operation draws in benches.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    s0_ = seed ^ 0x853C49E6748FEA9BULL;
    s1_ = (seed << 1) | 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed with the given mean (for think times and
  /// inter-arrival gaps in open-loop workloads).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Random printable-ASCII string of the given length.
  std::string String(size_t len) {
    std::string out(len, '\0');
    for (size_t i = 0; i < len; ++i) out[i] = static_cast<char>('a' + Uniform(26));
    return out;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian generator over [0, n) with parameter theta, per the YCSB
/// formulation (Gray et al.). Used by the YCSB workload and hot-key tests.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 7)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace veloce

#endif  // VELOCE_COMMON_RANDOM_H_
