#include "common/codec.h"

#include <cstring>

namespace veloce {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v);
  buf[1] = static_cast<char>(v >> 8);
  buf[2] = static_cast<char>(v >> 16);
  buf[3] = static_cast<char>(v >> 24);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

void OrderedPutUint64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * (7 - i)));
  dst->append(buf, 8);
}

void OrderedPutInt64(std::string* dst, int64_t v) {
  OrderedPutUint64(dst, static_cast<uint64_t>(v) ^ (1ULL << 63));
}

void OrderedPutString(std::string* dst, Slice s) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\x00') {
      dst->push_back('\x00');
      dst->push_back('\xFF');
    } else {
      dst->push_back(s[i]);
    }
  }
  dst->push_back('\x00');
  dst->push_back('\x01');
}

void OrderedPutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  // Positive doubles: flip the sign bit so they sort above negatives.
  // Negative doubles: flip all bits so magnitude order reverses correctly.
  if (bits & (1ULL << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ULL << 63);
  }
  OrderedPutUint64(dst, bits);
}

bool OrderedGetString(Slice* input, std::string* s) {
  s->clear();
  size_t i = 0;
  while (i < input->size()) {
    const char c = (*input)[i];
    if (c != '\x00') {
      s->push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= input->size()) return false;
    const char next = (*input)[i + 1];
    if (next == '\x01') {  // terminator
      input->RemovePrefix(i + 2);
      return true;
    }
    if (next == '\xFF') {  // escaped 0x00
      s->push_back('\x00');
      i += 2;
      continue;
    }
    return false;
  }
  return false;
}

std::string PrefixEnd(Slice prefix) {
  std::string end = prefix.ToString();
  while (!end.empty()) {
    const unsigned char c = static_cast<unsigned char>(end.back());
    if (c != 0xFF) {
      end.back() = static_cast<char>(c + 1);
      return end;
    }
    end.pop_back();
  }
  return end;  // empty: unbounded
}

}  // namespace veloce
