#ifndef VELOCE_COMMON_SYSINFO_H_
#define VELOCE_COMMON_SYSINFO_H_

#include <cstdint>

#include "common/clock.h"

namespace veloce {

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID). The
/// benches use deltas of this to measure real SQL/KV CPU cost — the
/// "actual CPU" side of the estimated-CPU model evaluation.
Nanos ThreadCpuNanos();

/// CPU time consumed by the whole process.
Nanos ProcessCpuNanos();

/// Resident set size of the process in bytes (from /proc/self/statm); 0 if
/// unavailable. Used for the per-tenant memory overhead measurements.
uint64_t CurrentRssBytes();

/// Bytes currently allocated from the heap (mallinfo2); unlike RSS this is
/// not confused by allocator page caching, so small per-object deltas are
/// visible. 0 if unavailable.
uint64_t CurrentHeapBytes();

}  // namespace veloce

#endif  // VELOCE_COMMON_SYSINFO_H_
