#include "common/status.h"

namespace veloce {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NotFound";
    case Code::kAlreadyExists: return "AlreadyExists";
    case Code::kInvalidArgument: return "InvalidArgument";
    case Code::kCorruption: return "Corruption";
    case Code::kIOError: return "IOError";
    case Code::kUnauthorized: return "Unauthorized";
    case Code::kUnavailable: return "Unavailable";
    case Code::kRangeKeyMismatch: return "RangeKeyMismatch";
    case Code::kTransactionRetry: return "TransactionRetry";
    case Code::kTransactionAborted: return "TransactionAborted";
    case Code::kWriteIntentError: return "WriteIntentError";
    case Code::kResourceExhausted: return "ResourceExhausted";
    case Code::kDeadlineExceeded: return "DeadlineExceeded";
    case Code::kNotSupported: return "NotSupported";
    case Code::kInternal: return "Internal";
    case Code::kLeaseEpochMismatch: return "LeaseEpochMismatch";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(CodeName(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace veloce
