#ifndef VELOCE_COMMON_STATUS_H_
#define VELOCE_COMMON_STATUS_H_

#include <cassert>
#include <new>
#include <string>
#include <string_view>
#include <utility>

namespace veloce {

/// Error codes used across the library. The set mirrors the failure domains
/// of the system: storage, KV routing/transactions, tenancy/authorization,
/// SQL, and resource control.
enum class Code : int {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kCorruption = 4,
  kIOError = 5,
  kUnauthorized = 6,         // tenant keyspace violation, bad credential
  kUnavailable = 7,          // node down, lease not held, draining
  kRangeKeyMismatch = 8,     // request routed to wrong range; retry with fresh directory
  kTransactionRetry = 9,     // serializability conflict; client must retry
  kTransactionAborted = 10,  // txn record aborted by a conflicting pusher
  kWriteIntentError = 11,    // blocked on another txn's intent
  kResourceExhausted = 12,   // quota exceeded / admission rejection
  kDeadlineExceeded = 13,
  kNotSupported = 14,
  kInternal = 15,
  kLeaseEpochMismatch = 16,  // write at a replica whose lease epoch expired;
                             // retry against the current leaseholder
};

/// Human-readable name of a code ("NotFound", "Unauthorized", ...).
std::string_view CodeName(Code code);

/// Status is the library-wide error type: a cheap value type carrying a Code
/// and, for errors, a message. OK statuses allocate nothing. The library is
/// built without exceptions; every fallible operation returns Status or
/// StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) { return Status(Code::kNotFound, msg); }
  static Status AlreadyExists(std::string_view msg) { return Status(Code::kAlreadyExists, msg); }
  static Status InvalidArgument(std::string_view msg) { return Status(Code::kInvalidArgument, msg); }
  static Status Corruption(std::string_view msg) { return Status(Code::kCorruption, msg); }
  static Status IOError(std::string_view msg) { return Status(Code::kIOError, msg); }
  static Status Unauthorized(std::string_view msg) { return Status(Code::kUnauthorized, msg); }
  static Status Unavailable(std::string_view msg) { return Status(Code::kUnavailable, msg); }
  static Status RangeKeyMismatch(std::string_view msg) { return Status(Code::kRangeKeyMismatch, msg); }
  static Status TransactionRetry(std::string_view msg) { return Status(Code::kTransactionRetry, msg); }
  static Status TransactionAborted(std::string_view msg) { return Status(Code::kTransactionAborted, msg); }
  static Status WriteIntentError(std::string_view msg) { return Status(Code::kWriteIntentError, msg); }
  static Status ResourceExhausted(std::string_view msg) { return Status(Code::kResourceExhausted, msg); }
  static Status DeadlineExceeded(std::string_view msg) { return Status(Code::kDeadlineExceeded, msg); }
  static Status NotSupported(std::string_view msg) { return Status(Code::kNotSupported, msg); }
  static Status Internal(std::string_view msg) { return Status(Code::kInternal, msg); }
  static Status LeaseEpochMismatch(std::string_view msg) { return Status(Code::kLeaseEpochMismatch, msg); }

  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsUnauthorized() const { return code_ == Code::kUnauthorized; }
  bool IsRangeKeyMismatch() const { return code_ == Code::kRangeKeyMismatch; }
  bool IsTransactionRetry() const { return code_ == Code::kTransactionRetry; }
  bool IsWriteIntentError() const { return code_ == Code::kWriteIntentError; }
  bool IsResourceExhausted() const { return code_ == Code::kResourceExhausted; }
  bool IsLeaseEpochMismatch() const { return code_ == Code::kLeaseEpochMismatch; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_;
  std::string msg_;
};

/// StatusOr<T> holds either a value or an error status. Mirrors
/// absl::StatusOr in spirit: check ok() (or status()) before dereferencing.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok());
  }
  /// Constructs from a value; the result is OK.
  StatusOr(T value) : status_(Status::OK()) {  // NOLINT(google-explicit-constructor)
    new (&storage_) T(std::move(value));
  }
  StatusOr(const StatusOr& other) : status_(other.status_) {
    if (status_.ok()) new (&storage_) T(other.value());
  }
  StatusOr(StatusOr&& other) noexcept : status_(std::move(other.status_)) {
    if (status_.ok()) new (&storage_) T(std::move(other.MutableValue()));
  }
  StatusOr& operator=(const StatusOr& other) {
    if (this != &other) {
      Destroy();
      status_ = other.status_;
      if (status_.ok()) new (&storage_) T(other.value());
    }
    return *this;
  }
  StatusOr& operator=(StatusOr&& other) noexcept {
    if (this != &other) {
      Destroy();
      status_ = std::move(other.status_);
      if (status_.ok()) new (&storage_) T(std::move(other.MutableValue()));
    }
    return *this;
  }
  ~StatusOr() { Destroy(); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(status_.ok());
    return *Ptr();
  }
  T& value() & {
    assert(status_.ok());
    return *Ptr();
  }
  T&& value() && {
    assert(status_.ok());
    return std::move(*Ptr());
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  T* Ptr() { return std::launder(reinterpret_cast<T*>(&storage_)); }
  const T* Ptr() const { return std::launder(reinterpret_cast<const T*>(&storage_)); }
  T& MutableValue() { return *Ptr(); }
  void Destroy() {
    if (status_.ok()) Ptr()->~T();
  }

  Status status_;
  alignas(T) unsigned char storage_[sizeof(T)];
};

/// Propagates a non-OK Status from an expression to the caller.
#define VELOCE_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::veloce::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// assigns the value to `lhs`. `lhs` may include a declaration.
#define VELOCE_ASSIGN_OR_RETURN(lhs, expr)                      \
  VELOCE_ASSIGN_OR_RETURN_IMPL_(                                \
      VELOCE_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)
#define VELOCE_STATUS_CONCAT_INNER_(a, b) a##b
#define VELOCE_STATUS_CONCAT_(a, b) VELOCE_STATUS_CONCAT_INNER_(a, b)
#define VELOCE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace veloce

#endif  // VELOCE_COMMON_STATUS_H_
