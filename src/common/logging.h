#ifndef VELOCE_COMMON_LOGGING_H_
#define VELOCE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/status.h"

namespace veloce {
namespace log_internal {

enum class Severity { kInfo, kWarning, kError, kFatal };

/// Minimum severity that is actually emitted; default drops kInfo so tests
/// and benches stay quiet. Not thread-safe to mutate concurrently with logs.
Severity& MinLogSeverity();

/// Stream-style log sink. Fatal severity aborts the process on destruction
/// (programmer-error invariants only; operational errors use Status).
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  Severity severity_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define VLOG_INFO \
  ::veloce::log_internal::LogMessage(::veloce::log_internal::Severity::kInfo, __FILE__, __LINE__).stream()
#define VLOG_WARN \
  ::veloce::log_internal::LogMessage(::veloce::log_internal::Severity::kWarning, __FILE__, __LINE__).stream()
#define VLOG_ERROR \
  ::veloce::log_internal::LogMessage(::veloce::log_internal::Severity::kError, __FILE__, __LINE__).stream()

/// Invariant check: aborts with a message if `cond` is false. For programmer
/// errors, never for data-dependent failures (those return Status).
#define VELOCE_CHECK(cond)                                                   \
  if (!(cond))                                                               \
  ::veloce::log_internal::LogMessage(::veloce::log_internal::Severity::kFatal, \
                                     __FILE__, __LINE__)                     \
          .stream()                                                          \
      << "Check failed: " #cond " "

#define VELOCE_CHECK_OK(expr)                                   \
  do {                                                          \
    ::veloce::Status _chk = (expr);                             \
    VELOCE_CHECK(_chk.ok()) << _chk.ToString();                 \
  } while (0)

}  // namespace veloce

#endif  // VELOCE_COMMON_LOGGING_H_
