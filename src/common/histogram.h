#ifndef VELOCE_COMMON_HISTOGRAM_H_
#define VELOCE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace veloce {

/// Log-bucketed latency histogram (HDR-style) used to report the p50/p99
/// numbers that the paper's tables quote. Values are recorded in nanoseconds;
/// buckets grow geometrically so relative error is bounded (~4%) across nine
/// orders of magnitude. Not thread-safe; shard per-thread and Merge().
class Histogram {
 public:
  Histogram();

  void Record(int64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const;

  /// Value at quantile q in [0, 1], e.g. 0.50, 0.99. Returns the upper bound
  /// of the containing bucket.
  int64_t Quantile(double q) const;

  int64_t P50() const { return Quantile(0.50); }
  int64_t P95() const { return Quantile(0.95); }
  int64_t P99() const { return Quantile(0.99); }

  /// One-line summary like "n=1000 mean=1.2ms p50=1.1ms p99=4.0ms".
  std::string ToString() const;

  /// Formats a nanosecond duration with an adaptive unit.
  static std::string FormatNanos(int64_t ns);

 private:
  static constexpr int kSubBuckets = 16;  // per power of two
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  static int BucketFor(int64_t v);
  static int64_t BucketUpperBound(int b);

  std::vector<uint32_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace veloce

#endif  // VELOCE_COMMON_HISTOGRAM_H_
