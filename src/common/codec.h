#ifndef VELOCE_COMMON_CODEC_H_
#define VELOCE_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace veloce {

/// Byte-level encoders shared by the storage, KV, and SQL layers.
///
/// Two families live here:
///  * Plain encoders (fixed/varint/length-prefixed) for file formats and the
///    wire protocol — compact, not order-preserving.
///  * Ordered encoders for keys — the encoded bytes sort in the same order as
///    the source values, which is what lets the SQL layer map table rows onto
///    the KV layer's single linear keyspace (Fig 2 of the paper).

// ---------------------------------------------------------------------------
// Plain encoders.
// ---------------------------------------------------------------------------

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Varint length followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Each Get* consumes from the front of *input. Returns false on malformed
/// or truncated input (callers translate to Status::Corruption). Defined
/// inline: these run once per column per row in the scan decode loops, where
/// out-of-line call overhead is measurable.
inline bool GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  input->RemovePrefix(4);
  return true;
}

inline bool GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  uint64_t out;
  std::memcpy(&out, input->data(), 8);  // encoding is little-endian bytes
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  out = __builtin_bswap64(out);
#endif
  *v = out;
  input->RemovePrefix(8);
  return true;
}

inline bool GetVarint64(Slice* input, uint64_t* v) {
  // Fast path: single-byte varints dominate row-value headers.
  if (!input->empty() &&
      !(static_cast<unsigned char>((*input)[0]) & 0x80)) {
    *v = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    return true;
  }
  uint64_t out = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      out |= static_cast<uint64_t>(byte) << shift;
      *v = out;
      return true;
    }
  }
  return false;
}

inline bool GetVarint32(Slice* input, uint32_t* v) {
  uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *v = static_cast<uint32_t>(v64);
  return true;
}

inline bool GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *value = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return true;
}

// ---------------------------------------------------------------------------
// Ordered (key) encoders. memcmp order of the encoding == value order.
// ---------------------------------------------------------------------------

/// Big-endian unsigned 64-bit: natural memcmp order.
void OrderedPutUint64(std::string* dst, uint64_t v);
/// Sign-flipped big-endian: negative < positive in memcmp order.
void OrderedPutInt64(std::string* dst, int64_t v);
/// Escaped string: 0x00 bytes become {0x00, 0xFF}; terminated by
/// {0x00, 0x01}. Order-preserving and self-delimiting, so strings can be
/// followed by further key components (the CockroachDB scheme).
void OrderedPutString(std::string* dst, Slice s);
/// IEEE-754 double mapped to an order-preserving 64-bit pattern.
void OrderedPutDouble(std::string* dst, double v);

// Inline for the same reason as the plain getters: every decoded key runs
// one of these per PK column.
inline bool OrderedGetUint64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  uint64_t out;
  std::memcpy(&out, input->data(), 8);  // encoding is big-endian bytes
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  out = __builtin_bswap64(out);
#endif
  *v = out;
  input->RemovePrefix(8);
  return true;
}

inline bool OrderedGetInt64(Slice* input, int64_t* v) {
  uint64_t u;
  if (!OrderedGetUint64(input, &u)) return false;
  *v = static_cast<int64_t>(u ^ (1ULL << 63));
  return true;
}

bool OrderedGetString(Slice* input, std::string* s);

inline bool OrderedGetDouble(Slice* input, double* v) {
  uint64_t bits;
  if (!OrderedGetUint64(input, &bits)) return false;
  if (bits & (1ULL << 63)) {
    bits &= ~(1ULL << 63);
  } else {
    bits = ~bits;
  }
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

/// Returns the smallest key strictly greater than every key having `prefix`
/// as a prefix (the exclusive end of the prefix's keyspan). Empty result
/// means "no upper bound" (prefix was all 0xFF).
std::string PrefixEnd(Slice prefix);

}  // namespace veloce

#endif  // VELOCE_COMMON_CODEC_H_
