#ifndef VELOCE_COMMON_CODEC_H_
#define VELOCE_COMMON_CODEC_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace veloce {

/// Byte-level encoders shared by the storage, KV, and SQL layers.
///
/// Two families live here:
///  * Plain encoders (fixed/varint/length-prefixed) for file formats and the
///    wire protocol — compact, not order-preserving.
///  * Ordered encoders for keys — the encoded bytes sort in the same order as
///    the source values, which is what lets the SQL layer map table rows onto
///    the KV layer's single linear keyspace (Fig 2 of the paper).

// ---------------------------------------------------------------------------
// Plain encoders.
// ---------------------------------------------------------------------------

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Varint length followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Each Get* consumes from the front of *input. Returns false on malformed
/// or truncated input (callers translate to Status::Corruption).
bool GetFixed32(Slice* input, uint32_t* v);
bool GetFixed64(Slice* input, uint64_t* v);
bool GetVarint32(Slice* input, uint32_t* v);
bool GetVarint64(Slice* input, uint64_t* v);
bool GetLengthPrefixed(Slice* input, Slice* value);

// ---------------------------------------------------------------------------
// Ordered (key) encoders. memcmp order of the encoding == value order.
// ---------------------------------------------------------------------------

/// Big-endian unsigned 64-bit: natural memcmp order.
void OrderedPutUint64(std::string* dst, uint64_t v);
/// Sign-flipped big-endian: negative < positive in memcmp order.
void OrderedPutInt64(std::string* dst, int64_t v);
/// Escaped string: 0x00 bytes become {0x00, 0xFF}; terminated by
/// {0x00, 0x01}. Order-preserving and self-delimiting, so strings can be
/// followed by further key components (the CockroachDB scheme).
void OrderedPutString(std::string* dst, Slice s);
/// IEEE-754 double mapped to an order-preserving 64-bit pattern.
void OrderedPutDouble(std::string* dst, double v);

bool OrderedGetUint64(Slice* input, uint64_t* v);
bool OrderedGetInt64(Slice* input, int64_t* v);
bool OrderedGetString(Slice* input, std::string* s);
bool OrderedGetDouble(Slice* input, double* v);

/// Returns the smallest key strictly greater than every key having `prefix`
/// as a prefix (the exclusive end of the prefix's keyspan). Empty result
/// means "no upper bound" (prefix was all 0xFF).
std::string PrefixEnd(Slice prefix);

}  // namespace veloce

#endif  // VELOCE_COMMON_CODEC_H_
