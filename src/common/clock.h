#ifndef VELOCE_COMMON_CLOCK_H_
#define VELOCE_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace veloce {

/// Monotonic time in nanoseconds since an arbitrary epoch.
using Nanos = int64_t;

constexpr Nanos kMicro = 1000;
constexpr Nanos kMilli = 1000 * kMicro;
constexpr Nanos kSecond = 1000 * kMilli;
constexpr Nanos kMinute = 60 * kSecond;
constexpr Nanos kHour = 60 * kMinute;

/// Clock abstracts the passage of time so that every time-dependent component
/// (leases, autoscaler windows, token buckets, latency measurement) can run
/// either against the real monotonic clock or against a simulated clock that
/// a test or bench advances explicitly. This is the substitution that lets
/// the paper's "hours of production load" experiments run in milliseconds.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in nanoseconds.
  virtual Nanos Now() const = 0;
};

/// Wall/monotonic clock backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  Nanos Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance for call sites that don't need injection.
  static RealClock* Instance();
};

/// A clock that only moves when told to. Thread-safe.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = 0) : now_(start) {}

  Nanos Now() const override { return now_.load(std::memory_order_acquire); }

  void Advance(Nanos delta) { now_.fetch_add(delta, std::memory_order_acq_rel); }
  void SetTime(Nanos t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Nanos> now_;
};

}  // namespace veloce

#endif  // VELOCE_COMMON_CLOCK_H_
