#ifndef VELOCE_COMMON_CRC32C_H_
#define VELOCE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace veloce::crc32c {

/// Computes the CRC-32C (Castagnoli) of data[0, n), extending `init_crc`.
/// Used to detect corruption in WAL records and SSTable blocks.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masked CRCs are stored in files so that computing the CRC of a string
/// containing embedded CRCs doesn't trivially collide (the LevelDB trick).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace veloce::crc32c

#endif  // VELOCE_COMMON_CRC32C_H_
