#include "common/logging.h"

namespace veloce {
namespace log_internal {

Severity& MinLogSeverity() {
  static Severity severity = Severity::kWarning;
  return severity;
}

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == Severity::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (severity_ == Severity::kFatal) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace veloce
