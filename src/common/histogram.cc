#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace veloce {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(int64_t v) {
  if (v < 0) v = 0;
  if (v < 32) return static_cast<int>(v);  // exact buckets for tiny values
  const uint64_t uv = static_cast<uint64_t>(v);
  const int e = 63 - std::countl_zero(uv);  // floor(log2(v)), e >= 5 here
  const int sub = static_cast<int>((uv >> (e - 4)) & 15);
  int idx = 32 + (e - 5) * kSubBuckets + sub;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

int64_t Histogram::BucketUpperBound(int b) {
  if (b < 32) return b;
  const int e = 5 + (b - 32) / kSubBuckets;
  const int sub = (b - 32) % kSubBuckets;
  return ((static_cast<int64_t>(16 + sub + 1)) << (e - 4)) - 1;
}

void Histogram::Record(int64_t v) {
  if (v < 0) v = 0;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += static_cast<double>(v);
  ++buckets_[BucketFor(v)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0u);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::FormatNanos(int64_t ns) {
  char buf[64];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%s p50=%s p95=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                FormatNanos(static_cast<int64_t>(Mean())).c_str(),
                FormatNanos(P50()).c_str(), FormatNanos(P95()).c_str(),
                FormatNanos(P99()).c_str(), FormatNanos(max_).c_str());
  return buf;
}

}  // namespace veloce
