#ifndef VELOCE_COMMON_SLICE_H_
#define VELOCE_COMMON_SLICE_H_

#include <cstring>
#include <string>
#include <string_view>

namespace veloce {

/// Slice is a non-owning view of a byte sequence, used throughout the KV and
/// storage layers for keys and values. It is a thin alias layer over
/// std::string_view with byte-oriented helpers; callers own the backing
/// memory and must keep it alive while the Slice is in use.
class Slice {
 public:
  Slice() = default;
  Slice(const char* data, size_t size) : view_(data, size) {}
  Slice(const std::string& s) : view_(s) {}        // NOLINT(google-explicit-constructor)
  Slice(std::string_view v) : view_(v) {}          // NOLINT(google-explicit-constructor)
  Slice(const char* cstr) : view_(cstr) {}         // NOLINT(google-explicit-constructor)

  const char* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  char operator[](size_t i) const { return view_[i]; }

  std::string_view view() const { return view_; }
  std::string ToString() const { return std::string(view_); }

  /// Drops the first n bytes (n must be <= size()).
  void RemovePrefix(size_t n) { view_.remove_prefix(n); }

  bool StartsWith(Slice prefix) const {
    return view_.size() >= prefix.size() &&
           memcmp(view_.data(), prefix.data(), prefix.size()) == 0;
  }

  /// Three-way bytewise comparison: <0, 0, >0.
  int Compare(Slice other) const {
    int r = view_.compare(other.view_);
    return r < 0 ? -1 : (r > 0 ? 1 : 0);
  }

  friend bool operator==(Slice a, Slice b) { return a.view_ == b.view_; }
  friend bool operator!=(Slice a, Slice b) { return a.view_ != b.view_; }
  friend bool operator<(Slice a, Slice b) { return a.view_ < b.view_; }
  friend bool operator<=(Slice a, Slice b) { return a.view_ <= b.view_; }
  friend bool operator>(Slice a, Slice b) { return a.view_ > b.view_; }
  friend bool operator>=(Slice a, Slice b) { return a.view_ >= b.view_; }

 private:
  std::string_view view_;
};

}  // namespace veloce

#endif  // VELOCE_COMMON_SLICE_H_
