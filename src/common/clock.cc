#include "common/clock.h"

namespace veloce {

RealClock* RealClock::Instance() {
  static RealClock* clock = new RealClock();
  return clock;
}

}  // namespace veloce
