#include "common/sysinfo.h"

#include <malloc.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>

namespace veloce {

namespace {
Nanos ClockNanos(clockid_t id) {
  struct timespec ts;
  if (clock_gettime(id, &ts) != 0) return 0;
  return static_cast<Nanos>(ts.tv_sec) * kSecond + ts.tv_nsec;
}
}  // namespace

Nanos ThreadCpuNanos() { return ClockNanos(CLOCK_THREAD_CPUTIME_ID); }

Nanos ProcessCpuNanos() { return ClockNanos(CLOCK_PROCESS_CPUTIME_ID); }

uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size = 0, resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

uint64_t CurrentHeapBytes() {
#if defined(__GLIBC__)
  struct mallinfo2 info = mallinfo2();
  return static_cast<uint64_t>(info.uordblks) + static_cast<uint64_t>(info.hblkhd);
#else
  return 0;
#endif
}

}  // namespace veloce
