#ifndef VELOCE_KV_CLUSTER_H_
#define VELOCE_KV_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "kv/batch.h"
#include "obs/obs_context.h"
#include "kv/keys.h"
#include "kv/node.h"
#include "kv/range.h"
#include "kv/replica_transport.h"
#include "kv/timestamp_oracle.h"
#include "kv/txn.h"

namespace veloce::kv {

struct KVClusterOptions {
  int num_nodes = 3;
  int replication_factor = 3;
  /// Clock for HLC, txn expiration, leases. Null = process RealClock.
  Clock* clock = nullptr;
  /// Ranges larger than this (approximate ingested bytes) are split by
  /// MaybeSplitRanges().
  uint64_t range_split_bytes = 64ull << 20;
  /// Load-based splits: a range whose decayed QPS exceeds this is split at
  /// a sampled hot-key boundary by MaybeSplitRanges(). 0 disables (size
  /// splits only — the pre-existing behaviour).
  double load_split_qps = 0;
  /// Cooldown merges: a range counts as "cooled" while its decayed QPS
  /// stays below this threshold.
  double merge_qps_threshold = 32.0;
  /// How long both neighbours must stay cooled before MaybeMergeRanges()
  /// fuses them (hysteresis against split/merge flapping).
  Nanos merge_dwell = 10 * kSecond;
  /// Merged ranges must stay below this (0 = half of range_split_bytes),
  /// so a merge never immediately re-triggers a size split.
  uint64_t merge_max_bytes = 0;
  /// Region per node; sized to num_nodes or empty (all "local").
  std::vector<std::string> node_regions;
  /// Template for each node's engine (dir is overridden per node).
  storage::EngineOptions engine_options;
  /// Reads at or below now - this interval are "closed" and may be served
  /// by follower replicas; writes are always pushed above the closed
  /// timestamp so follower reads stay consistent.
  Nanos closed_timestamp_interval = 3 * kSecond;
  /// Batched timestamp oracle: HLC timestamps reserved per refill and the
  /// cache level that triggers an async prefetch (on
  /// engine_options.background_executor when one is configured).
  uint32_t timestamp_batch_size = 256;
  uint32_t timestamp_refill_threshold = 64;
  /// Telemetry injection shared by the cluster, its nodes and their
  /// engines (per-node series carry a node=<id> label). When obs.metrics
  /// is null the cluster owns a private registry. obs.clock is a fallback
  /// for `clock` above.
  obs::ObsContext obs;
  /// Heartbeat-driven liveness: how long a node's liveness record stays
  /// valid past its last successful heartbeat round. Epoch-based lease
  /// enforcement arms on the first TickHeartbeats() call; until then
  /// leases behave exactly as before (no epochs, test-flipped liveness).
  Nanos liveness_duration = 3 * kSecond;
  /// Seam for leaseholder→replica deliveries and node heartbeats (see
  /// kv/replica_transport.h). Null = in-process passthrough, bit-identical
  /// to direct engine writes. Swappable later with set_transport().
  ReplicaTransport* transport = nullptr;
};

/// Hook invoked for every batch executed at a leaseholder, before the work
/// runs. Admission control and the eCPU metering attach here. Returning a
/// non-OK status rejects the batch.
using BatchInterceptor =
    std::function<Status(NodeId leaseholder, const BatchRequest&)>;

/// Row filter/projection evaluator for pushdown scans (the paper's
/// future-work Section 8). Invoked at the KV node for every visible scan
/// row when the request carries a spec. Returns:
///   * nullopt            — the row is filtered out (not returned);
///   * a (possibly projected/trimmed) value to return instead.
/// The spec format is owned by whoever registers the hook (the SQL layer
/// in this repository), keeping the KV layer schema-agnostic — in
/// production both layers ship in the same binary, as here.
using ScanPushdownHook = std::function<StatusOr<std::optional<std::string>>(
    Slice row_value, Slice spec)>;

/// Batch fragment evaluator for pushdown scans: invoked once per range
/// segment with all visible rows, it returns the entries to ship back.
/// Strictly more general than ScanPushdownHook — besides per-row filter
/// and projection it can run whole query fragments (e.g. partial
/// aggregation, returning one entry per group). Preferred over the
/// per-row hook when both are registered.
using ScanFragmentHook = std::function<StatusOr<std::vector<MvccScanEntry>>(
    std::vector<MvccScanEntry> rows, Slice spec)>;

/// KVCluster is the shared, multi-tenant KV layer: nodes, ranges, the range
/// directory, the transaction registry, and the client routing logic
/// (DistSender). In production these are separate processes exchanging
/// RPCs; here they are one object graph, with the process boundary's
/// marshaling cost modeled explicitly at the SQL/KV connector.
class KVCluster {
 public:
  explicit KVCluster(KVClusterOptions options);
  ~KVCluster();

  KVCluster(const KVCluster&) = delete;
  KVCluster& operator=(const KVCluster&) = delete;

  // --- Topology -----------------------------------------------------------
  size_t num_nodes() const { return nodes_.size(); }
  KVNode* node(NodeId id) { return nodes_[id].get(); }
  Clock* clock() const { return clock_; }
  /// Registry holding the cluster's `veloce_kv_*` / `veloce_storage_*`
  /// series (the injected one, or the cluster's private default).
  obs::MetricsRegistry* metrics() const { return metrics_; }
  HybridLogicalClock* hlc() { return &hlc_; }
  TxnRegistry* txn_registry() { return &txn_registry_; }
  TimestampOracle* timestamp_oracle() { return oracle_.get(); }
  /// The executor shared with the storage engines (null = none configured).
  storage::BackgroundExecutor* background_executor() const {
    return options_.engine_options.background_executor;
  }

  /// Adds a KV node at runtime (the paper's future-work automatic KV
  /// scaling, Section 8). The node starts empty; move replicas onto it
  /// with MoveReplica/RebalanceReplicas.
  StatusOr<NodeId> AddNode(const std::string& region = "local");

  /// Moves one replica of `range_id` from node `from` to node `to`:
  /// streams the range's keyspan into the target engine (snapshot
  /// transfer), then swaps the descriptor entry. The leaseholder moves too
  /// if it was `from`. Implemented as Start/Step*/Finish below, driven to
  /// completion in one call.
  Status MoveReplica(RangeId range_id, NodeId from, NodeId to);

  // --- Pipelined replica moves --------------------------------------------
  /// Begins a snapshot-pipelined replica move: records the committed log
  /// position as the snapshot floor (pinning log truncation there) and
  /// selects a caught-up source replica. The range keeps serving reads and
  /// writes for the whole copy; only Finish's cutover is atomic. One move
  /// per range at a time; splits and merges skip ranges mid-move.
  Status StartReplicaMove(RangeId range_id, NodeId from, NodeId to);
  /// Copies the next ~`max_bytes` of the span (after first clearing the
  /// target's stale span, also chunked). Returns true when the copy is
  /// complete and FinishReplicaMove may run. Callers release the cluster
  /// between calls, so writes interleave with the stream; every mutation
  /// after the snapshot floor is re-delivered by Finish's delta replay
  /// (records are idempotent, so overlap with streamed state is safe).
  StatusOr<bool> StepReplicaMove(RangeId range_id, size_t max_bytes = 1 << 20);
  /// Atomic cutover: replays the log delta above the snapshot floor to the
  /// target (falling back to a full snapshot if retention caps truncated
  /// past it), swaps the descriptor entry, and unpins the log.
  Status FinishReplicaMove(RangeId range_id);
  /// Cancels an in-flight move: unpins the log and wipes the partially
  /// streamed span from the target engine.
  Status AbortReplicaMove(RangeId range_id);

  /// Spreads replicas across all live nodes: ranges on overloaded nodes
  /// move one replica each toward the emptiest nodes. Returns moves made.
  StatusOr<int> RebalanceReplicas();

  // --- Tenant keyspaces ---------------------------------------------------
  /// Carves out the tenant's keyspan as dedicated ranges (ranges never span
  /// tenants). Idempotent.
  Status CreateTenantKeyspace(TenantId id);
  /// Drops directory entries and data for a tenant's keyspan.
  Status DestroyTenantKeyspace(TenantId id);

  // --- Data path ----------------------------------------------------------
  /// Executes a batch. `req.tenant_id` is the *authenticated* identity (the
  /// transport validated the tenant's certificate); the KV boundary check
  /// rejects any key outside that tenant's keyspace unless the identity is
  /// the system tenant. Scans may span ranges transparently.
  StatusOr<BatchResponse> Send(const BatchRequest& req);

  /// Current HLC time (helper for clients).
  Timestamp Now() { return hlc_.Now(); }

  /// Highest timestamp at which follower reads are allowed (Section
  /// 3.2.5): writes may no longer commit at or below this.
  Timestamp ClosedTimestamp() const {
    return Timestamp{clock_->Now() - options_.closed_timestamp_interval, 0};
  }

  // --- Transactions (client-side coordination) -----------------------------
  TxnRecord BeginTxn(int32_t priority = 0);
  /// Parallel commit, phase 1: moves the record to STAGING at its current
  /// write timestamp with `in_flight_keys` as the commit condition. The
  /// staged timestamp is returned; once every in-flight write is proven to
  /// have succeeded at or below it, the txn is committed and the client may
  /// be acknowledged before intent resolution.
  ///
  /// Staging makes the commit a distributed fact — a concurrent recovery
  /// may finalize the txn the moment the last declared intent lands — so
  /// the coordinator must have validated its reads up to the staged
  /// timestamp BEFORE staging. Pass the refreshed read timestamp as
  /// `validated_ts`: if the record's write timestamp has moved above it
  /// (an in-flight write bump or a reader's push), nothing is staged,
  /// `*staged_ts` receives the timestamp to refresh to, and
  /// TransactionRetry is returned. nullopt skips the check (the txn
  /// performed no reads).
  Status StageTxn(TxnId id, const std::vector<std::string>& in_flight_keys,
                  Timestamp* staged_ts,
                  std::optional<Timestamp> validated_ts = std::nullopt);
  /// Commits: finalizes the record (at staged_ts when staging), then
  /// resolves the given intents. commit_ts (optional) receives the final
  /// commit timestamp. For a pending record, `validated_ts` guards the
  /// same race as in StageTxn: if the write timestamp moved above it,
  /// nothing commits, `*commit_ts` receives the refresh target, and
  /// TransactionRetry is returned.
  Status CommitTxn(TxnId id, const std::vector<std::string>& intent_keys,
                   Timestamp* commit_ts,
                   std::optional<Timestamp> validated_ts = std::nullopt);
  Status AbortTxn(TxnId id, const std::vector<std::string>& intent_keys);
  /// A coordinator abandoning its own parallel commit (a pipelined batch
  /// failed after the record was staged, so whether the writes applied is
  /// unknown) runs the recovery check instead of blindly aborting: the
  /// result states whether the txn is committed (every declared write
  /// present at or below staged_ts) or was safely aborted. The record must
  /// be staging or already finalized.
  StatusOr<PushResult> ResolveAbandonedStaging(TxnId id);
  /// Txn-record GC: runs the recovery procedure on expired STAGING records
  /// (finalizing them as implicitly-committed or aborted), then reaps old
  /// finalized records. Returns records removed. Abandoned coordinators
  /// therefore cannot leak staging records forever.
  size_t GarbageCollectTxns();
  /// True if any key in [start,end) has a committed version in (after, upto]
  /// — the read-refresh check used to move a txn's read timestamp forward.
  StatusOr<bool> AnyNewerVersions(TenantId tenant, Slice start, Slice end,
                                  Timestamp after, Timestamp upto);

  // --- Ranges / leases (introspection & experiment control) ---------------
  std::vector<RangeDescriptor> Ranges() const;
  StatusOr<RangeDescriptor> LookupRange(Slice key) const;
  int CountLeases(NodeId node) const;
  uint64_t RangeLogCommittedIndex(RangeId id) const;
  /// Highest contiguously applied log index of one replica of `id`
  /// (partition-tolerance introspection; 0 for unknown range/replica).
  uint64_t RangeReplicaApplied(RangeId id, NodeId node) const;
  void SetNodeLive(NodeId id, bool live);

  // --- Heartbeat liveness / epoch leases / catch-up ------------------------
  /// Swaps the replica transport (null restores the passthrough). Not
  /// thread-safe to set while serving.
  void set_transport(ReplicaTransport* transport);
  /// Runs one heartbeat round: every up node that can reach a majority of
  /// its peers (through the transport) refreshes its liveness record;
  /// nodes that cannot expire and have their epoch bumped, invalidating
  /// every lease granted under the old epoch. Expired or orphaned leases
  /// move to a caught-up replica with valid liveness, and lagging-but-
  /// reachable replicas are caught up. The first call arms epoch-based
  /// lease enforcement for the rest of the cluster's lifetime.
  void TickHeartbeats();
  bool liveness_enabled() const;
  /// Current liveness epoch of a node (1 until its first expiry).
  uint64_t NodeLivenessEpoch(NodeId id) const;
  /// Whether the node's liveness record is valid right now (always true
  /// before TickHeartbeats arms enforcement).
  bool NodeLivenessValid(NodeId id) const;
  /// Replays (or snapshots) every range replica on `id` up to its range's
  /// committed log position — the heal/restart convergence path. Bypasses
  /// the transport: healing is an explicit admin/recovery action.
  Status CatchUpNode(NodeId id);
  /// Moves leases off `node` to another live replica (liveness failure).
  void ShedLeases(NodeId id);
  /// Rebalances leases evenly across live nodes (round-robin).
  void BalanceLeases();
  /// Splits the range containing `split_key` at that key.
  Status SplitRange(Slice split_key);
  /// Size-triggered splits across all ranges, plus — when
  /// options.load_split_qps > 0 — load-triggered splits of hot ranges at a
  /// sampled hot-key boundary. Returns number of splits.
  StatusOr<int> MaybeSplitRanges();
  /// Merges `left_id` with its right neighbour (admin/test path). Refuses
  /// to fuse across tenant boundaries, over an invalid lease, or while
  /// either side has a replica move in flight.
  Status MergeRanges(RangeId left_id);
  /// Cooldown sweep: adjacent ranges of one tenant whose load stayed below
  /// merge_qps_threshold for merge_dwell are fused, so scale-to-zero
  /// shrinks the range count. Replica sets are aligned (via replica moves)
  /// when they drifted apart; unreachable replicas veto the merge. Returns
  /// merges performed.
  StatusOr<int> MaybeMergeRanges();
  /// Decayed QPS of the range owning `key` (introspection; 0 when absent).
  double RangeQps(Slice key) const;

  /// Garbage-collects MVCC versions older than `threshold` across the
  /// tenant's keyspace, on every node's engine. Returns versions removed
  /// (summed across replicas).
  StatusOr<uint64_t> GarbageCollectTenant(TenantId tenant, Timestamp threshold);

  /// Interceptor called before every per-range execution (see
  /// BatchInterceptor). Not thread-safe to set while serving.
  void set_batch_interceptor(BatchInterceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }

  /// Registers the scan pushdown evaluator (see ScanPushdownHook). Scans
  /// carrying a spec while no hook is registered fail with NotSupported.
  void set_scan_pushdown_hook(ScanPushdownHook hook) {
    pushdown_hook_ = std::move(hook);
  }

  /// Registers the batch fragment evaluator (see ScanFragmentHook). Takes
  /// precedence over the per-row hook for scans carrying a spec.
  void set_scan_fragment_hook(ScanFragmentHook hook) {
    fragment_hook_ = std::move(hook);
  }

  /// Transaction hot-path telemetry, shared with client-side coordinators
  /// (kv::Transaction increments the per-path commit counters and records
  /// commit latency; the cluster itself counts pushes and recoveries).
  struct TxnMetricSet {
    obs::Counter* commits_1pc = nullptr;       ///< veloce_txn_commits_total{path=1pc}
    obs::Counter* commits_parallel = nullptr;  ///< {path=parallel}
    obs::Counter* commits_classic = nullptr;   ///< {path=classic}
    obs::Counter* retries = nullptr;           ///< veloce_txn_retries_total
    obs::Counter* pushes = nullptr;            ///< veloce_txn_pushes_total
    obs::Counter* recoveries = nullptr;        ///< veloce_txn_staging_recoveries_total
    obs::HistogramMetric* commit_latency = nullptr;  ///< veloce_txn_commit_latency_ns
  };
  const TxnMetricSet& txn_metrics() const { return txn_metrics_; }

 private:
  /// In-flight pipelined replica move (one per range). The snapshot floor
  /// pins log truncation so Finish can replay the delta; the cursor resumes
  /// the chunked span copy across Step calls.
  struct PendingMove {
    NodeId from = 0;
    NodeId to = 0;
    NodeId source = 0;
    uint64_t snapshot_floor = 0;
    std::string cursor;      ///< next engine key to process ("" = span start)
    bool clearing = true;    ///< phase 1 wipes the target's stale span
    bool copy_done = false;
  };

  struct RangeState {
    RangeDescriptor desc;
    TimestampCache tscache;
    ReplicationLog log;
    uint64_t approx_bytes = 0;
    RangeLoadTracker load;
    /// Clock time the range's load first dropped below the merge threshold
    /// (-1 = currently hot); MaybeMergeRanges maintains it.
    Nanos cooled_since = -1;
    std::optional<PendingMove> pending_move;
  };

  enum class SplitReason { kManual, kSize, kLoad };

  // All Locked methods require mu_.
  RangeState* LookupRangeLocked(Slice key);
  Status CheckTenantBoundsLocked(const BatchRequest& req, Slice key,
                                 Slice end_key) const;
  Status ExecuteReadLocked(RangeState* range, const BatchRequest& req,
                           const RequestUnion& r, ResponseUnion* out,
                           NodeId serving_node);
  /// Picks the node to serve a read: the leaseholder, or — for follower-
  /// eligible stale reads — any live replica. NotFound when unservable.
  StatusOr<NodeId> PickReadNodeLocked(const RangeState& range,
                                      const BatchRequest& req,
                                      const RequestUnion& r) const;
  Status ExecuteWriteLocked(RangeState* range, const BatchRequest& req,
                            const RequestUnion& r, BatchResponse* resp,
                            Timestamp* applied_ts);
  /// Executes a contiguous run of transactional writes landing on one range
  /// as a single unit: one timestamp for the group, one BumpWriteTimestamp,
  /// one storage WriteBatch, one replication round — the server half of
  /// pipelined intent batches.
  Status ExecuteTxnWriteGroupLocked(RangeState* range, const BatchRequest& req,
                                    const std::vector<const RequestUnion*>& writes,
                                    BatchResponse* resp);
  /// One-phase commit: the batch carries the txn's entire buffered write
  /// set; commits at a single timestamp with committed versions written
  /// directly (no intents, no separate record round). NotSupported when the
  /// writes span ranges (the client falls back to the general path).
  StatusOr<BatchResponse> ExecuteOnePhaseLocked(const BatchRequest& req);
  /// Parallel-commit status recovery: a pusher found `id` in STAGING. If
  /// every declared in-flight write holds an intent at or below staged_ts
  /// the txn is implicitly committed and is finalized here; if a write is
  /// missing and the record expired, the txn is aborted (with the missing
  /// keys' timestamps poisoned in the tscache so a late write cannot
  /// retroactively satisfy the stale staging); otherwise the pusher backs
  /// off (WriteIntentError). `coordinator_abandoned` skips the liveness
  /// backoff: the coordinator itself gave up on the commit (equivalent to
  /// an expired record), so a missing write aborts immediately.
  StatusOr<PushResult> RecoverStagedTxnLocked(TxnId id,
                                              bool coordinator_abandoned = false);
  /// Replicates a storage batch to the range's replicas through the
  /// transport (quorum of acks required). Attributes payload bytes to the
  /// tenant on each node that applies.
  Status ReplicateLocked(RangeState* range, const storage::WriteBatch& batch,
                         TenantId tenant);
  /// The general replication path: appends `rec` to the range log and
  /// delivers it per the transport's link decisions. The leaseholder
  /// applies first (a local failure rejects the round with nothing
  /// logged); remotes that the round does not reach, or whose engines
  /// fail, are demoted to needs-catch-up instead of failing the batch —
  /// as long as an ack quorum holds. `require_quorum=false` (intent
  /// resolutions) logs and applies best-effort like the pre-epoch
  /// behaviour. `batch` optionally carries the already-parsed WriteBatch
  /// for kBatch records so the hot path skips re-decoding rec.payload.
  Status ReplicateRecordLocked(RangeState* range, LogRecord rec,
                               const storage::WriteBatch* batch,
                               bool require_quorum);
  /// Applies one log record to one node's engine `copies` times
  /// (duplicates model the network; every record kind is idempotent).
  /// `charge_tenant` is false on catch-up replay: a replayed record may
  /// already have been applied (delivered but unacked), and its bytes were
  /// attributed at original delivery.
  Status ApplyRecordLocked(KVNode* node, const LogRecord& rec,
                           const storage::WriteBatch* batch, uint32_t copies,
                           bool charge_tenant = true);
  /// Brings one replica's applied position up to min(limit, committed) by
  /// in-order replay, or by snapshot transfer when the log has been
  /// truncated past its position.
  Status CatchUpReplicaLocked(RangeState* range, NodeId node, uint64_t limit);
  /// Snapshot transfer: clears the target's engine keyspan for the range
  /// and copies it from a fully-applied replica.
  Status SnapshotReplicaLocked(RangeState* range, NodeId to);
  /// Drops fully-applied log prefixes (bounded retention while lagging).
  void TruncateLogLocked(RangeState* range);
  /// True while the leaseholder's lease is valid: liveness enforcement off,
  /// or epoch matches and the holder's liveness has not expired.
  bool LeaseValidLocked(const RangeState& range) const;
  /// LeaseValidLocked as a Status (LeaseEpochMismatch + counter on reject).
  Status CheckLeaseLocked(const RangeState& range);
  /// Moves an invalid/orphaned lease to a caught-up replica whose liveness
  /// is valid (catching it up first if needed).
  void MaybeReassignLeaseLocked(RangeState* range);
  bool NodeUpLocked(NodeId id) const {
    return nodes_[id]->live() && nodes_[id]->engine() != nullptr;
  }
  /// Handles a foreign intent encountered by a read/write. Pushes the owner
  /// and resolves the intent if the push succeeds. Returns OK if the caller
  /// should retry its operation, WriteIntentError if it must back off.
  Status HandleConflictLocked(RangeState* range, Slice key,
                              const IntentMeta& intent, const BatchRequest& req,
                              bool for_write);
  Status AddRangeLocked(RangeDescriptor desc);
  Status SplitRangeLocked(Slice split_key,
                          SplitReason reason = SplitReason::kManual);
  /// Resolves an addressed batch (req.range_id != 0) against the directory:
  /// the range must still exist and contain `key`, else RangeKeyMismatch
  /// (the client invalidates its cache entry and retries).
  StatusOr<RangeState*> ResolveRangeLocked(const BatchRequest& req, Slice key);
  /// Fuses `right` into `left` (spans must be adjacent, tenants equal,
  /// replica sets identical and fully caught up on both logs).
  Status MergeRangesLocked(RangeState* left, RangeState* right,
                           obs::Counter* reason_counter);
  /// Merge eligibility under the cooldown policy (MaybeMergeRanges).
  bool CanMergeLocked(const RangeState& left, const RangeState& right,
                      Nanos now) const;
  storage::Engine* LeaseholderEngineLocked(const RangeState& range);

  KVClusterOptions options_;
  Clock* clock_;
  HybridLogicalClock hlc_;
  TxnRegistry txn_registry_;
  std::unique_ptr<TimestampOracle> oracle_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::ObsContext obs_;  // resolved context handed to nodes/engines
  std::vector<std::unique_ptr<KVNode>> nodes_;

  mutable std::recursive_mutex mu_;
  std::map<RangeId, std::unique_ptr<RangeState>> ranges_;
  std::map<std::string, RangeId> by_start_;  // start_key -> range
  RangeId next_range_id_ = 1;
  NodeId next_replica_target_ = 0;  // round-robin placement
  BatchInterceptor interceptor_;
  ScanPushdownHook pushdown_hook_;
  ScanFragmentHook fragment_hook_;

  /// Per-node liveness record driven by TickHeartbeats. The epoch bumps
  /// once per expiry; leases remember the epoch they were granted under.
  struct NodeLiveness {
    uint64_t epoch = 1;
    Nanos last_heartbeat = 0;
    bool expired = false;  ///< epoch already bumped for the current expiry
  };
  std::vector<NodeLiveness> liveness_;
  bool liveness_enabled_ = false;
  PassthroughTransport passthrough_;
  ReplicaTransport* transport_ = nullptr;  // resolved in the constructor

  obs::Counter* lease_moves_c_ = nullptr;
  obs::Counter* replica_moves_c_ = nullptr;
  /// Split/merge counters, labeled by trigger; incremented only after the
  /// directory mutation committed (aborted splits/merges are never counted).
  obs::Counter* splits_manual_c_ = nullptr;
  obs::Counter* splits_size_c_ = nullptr;
  obs::Counter* splits_load_c_ = nullptr;
  obs::Counter* merges_manual_c_ = nullptr;
  obs::Counter* merges_cooldown_c_ = nullptr;
  obs::Counter* range_mismatch_c_ = nullptr;
  obs::Counter* intent_conflicts_c_ = nullptr;
  obs::Counter* replica_catchups_replay_c_ = nullptr;
  obs::Counter* replica_catchups_snapshot_c_ = nullptr;
  obs::Counter* replica_demotions_c_ = nullptr;
  obs::Counter* catchup_records_c_ = nullptr;
  obs::Counter* lease_epoch_mismatch_c_ = nullptr;
  obs::Counter* epoch_bumps_c_ = nullptr;
  obs::Counter* heartbeat_failures_c_ = nullptr;
  obs::HistogramMetric* replication_delay_h_ = nullptr;
  TxnMetricSet txn_metrics_;
  // Declared last: unregisters (and stops touching cluster state) before
  // any other member is destroyed.
  obs::MetricsRegistry::CallbackToken lease_gauge_cb_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_CLUSTER_H_
