#ifndef VELOCE_KV_RANGE_H_
#define VELOCE_KV_RANGE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "kv/batch.h"
#include "kv/timestamp.h"

namespace veloce::kv {

using RangeId = uint64_t;
using NodeId = uint32_t;

/// Descriptor of one range (shard): its keyspan, replica placement, and
/// current leaseholder. Ranges never span tenant boundaries (the KV layer
/// enforces this at creation/split time) — the storage-partitioning
/// invariant of cluster virtualization.
struct RangeDescriptor {
  RangeId range_id = 0;
  std::string start_key;  ///< inclusive
  std::string end_key;    ///< exclusive; empty = +infinity
  TenantId tenant_id = 0; ///< owning tenant (0 for pre-tenant system ranges)
  std::vector<NodeId> replicas;
  NodeId leaseholder = 0;
  /// Liveness epoch of the leaseholder when the lease was granted. Once
  /// heartbeat-driven liveness is armed (KVCluster::TickHeartbeats), a
  /// lease is valid only while the holder's epoch still matches: an
  /// isolated leaseholder's epoch bumps on expiry, so its stale lease
  /// rejects writes with LeaseEpochMismatch instead of serving split-brain.
  uint64_t lease_epoch = 1;

  bool Contains(Slice key) const {
    if (Slice(key) < Slice(start_key)) return false;
    return end_key.empty() || Slice(key) < Slice(end_key);
  }
  bool HasReplica(NodeId node) const {
    for (NodeId n : replicas) {
      if (n == node) return true;
    }
    return false;
  }
};

/// One replicated mutation of a range. Everything that touches a replica's
/// engine flows through a record so a lagging replica can replay the exact
/// same sequence and converge byte-identically — including intent
/// resolutions, which previously bypassed the log and diverged dead
/// replicas forever.
struct LogRecord {
  enum class Kind : uint8_t {
    kBatch = 0,           ///< serialized storage::WriteBatch (payload)
    kResolveIntent = 1,   ///< MvccResolveIntent(key, txn_id, commit, ts)
    kUpdateIntentTs = 2,  ///< MvccUpdateIntentTimestamp(key, txn_id, ts)
  };
  Kind kind = Kind::kBatch;
  uint64_t index = 0;
  std::string payload;  ///< kBatch: WriteBatch::rep()
  std::string key;      ///< resolve/update target
  uint64_t txn_id = 0;
  bool commit = false;
  Timestamp ts;
  TenantId tenant = 0;  ///< kBatch: tenant charged for write bytes (0 = none)

  size_t ApproxBytes() const { return payload.size() + key.size() + 64; }
};

/// The replication log of one range — a deliberately compact Raft: a single
/// stable leader (the leaseholder), a term that bumps on lease transfer,
/// and synchronous quorum commit. Records are retained (bounded) with a
/// per-replica applied position so replicas cut off by a partition or crash
/// can catch up by in-order replay; replicas that fall behind the retained
/// window take a snapshot transfer instead. Documented as a substitution in
/// DESIGN.md.
class ReplicationLog {
 public:
  /// Retention caps: a fully-applied prefix is always truncated eagerly,
  /// but while some replica lags the log keeps at most this much before
  /// forcing that replica onto the snapshot path.
  static constexpr size_t kMaxRetainedRecords = 4096;
  static constexpr size_t kMaxRetainedBytes = 4ull << 20;

  uint64_t Append(LogRecord rec) {
    entries_committed_++;
    bytes_committed_ += rec.payload.size();
    rec.index = entries_committed_;
    retained_bytes_ += rec.ApproxBytes();
    records_.push_back(std::move(rec));
    return entries_committed_;
  }
  void BumpTerm() { ++term_; }

  /// Highest contiguously applied index for one replica (0 = nothing).
  uint64_t Applied(NodeId node) const {
    auto it = applied_.find(node);
    return it == applied_.end() ? 0 : it->second;
  }
  void SetApplied(NodeId node, uint64_t index) { applied_[node] = index; }
  void EraseReplica(NodeId node) { applied_.erase(node); }

  /// Index of the oldest retained record (committed_index()+1 when empty).
  uint64_t first_index() const {
    return records_.empty() ? entries_committed_ + 1 : records_.front().index;
  }

  /// True when replay can serve a replica at `applied` (no truncation gap).
  bool CanReplayFrom(uint64_t applied) const {
    return applied + 1 >= first_index();
  }

  /// Records with index > `applied`, oldest first.
  const std::deque<LogRecord>& records() const { return records_; }

  /// Drops every record at or below `floor` (the minimum applied position
  /// across the replica set), then enforces the retention caps; replicas
  /// whose position falls before first_index() must snapshot.
  void TruncateTo(uint64_t floor) {
    while (!records_.empty() && records_.front().index <= floor) {
      retained_bytes_ -= records_.front().ApproxBytes();
      records_.pop_front();
    }
    while (records_.size() > kMaxRetainedRecords ||
           (retained_bytes_ > kMaxRetainedBytes && !records_.empty())) {
      retained_bytes_ -= records_.front().ApproxBytes();
      records_.pop_front();
    }
  }

  uint64_t term() const { return term_; }
  uint64_t committed_index() const { return entries_committed_; }
  uint64_t committed_bytes() const { return bytes_committed_; }

 private:
  uint64_t term_ = 1;
  uint64_t entries_committed_ = 0;
  uint64_t bytes_committed_ = 0;
  size_t retained_bytes_ = 0;
  std::deque<LogRecord> records_;
  std::map<NodeId, uint64_t> applied_;
};

/// Read-timestamp cache for one range: remembers the maximum timestamp at
/// which each key (or span) was read, so later writes below that timestamp
/// are pushed forward — the mechanism that gives serializable isolation for
/// read-write conflicts.
class TimestampCache {
 public:
  /// Spans are folded into a range-wide low-water mark once the list grows
  /// past this, trading precision (spurious pushes) for bounded memory.
  static constexpr size_t kMaxSpans = 128;
  static constexpr size_t kMaxPoints = 4096;

  void RecordRead(Slice key, Timestamp ts);
  void RecordReadSpan(Slice start, Slice end, Timestamp ts);

  /// Highest read timestamp recorded for `key`.
  Timestamp MaxReadTimestamp(Slice key) const;

  Timestamp low_water() const { return low_water_; }

 private:
  struct SpanRead {
    std::string start, end;
    Timestamp ts;
  };

  std::map<std::string, Timestamp, std::less<>> points_;
  std::vector<SpanRead> spans_;
  Timestamp low_water_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_RANGE_H_
