#ifndef VELOCE_KV_RANGE_H_
#define VELOCE_KV_RANGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "kv/batch.h"
#include "kv/timestamp.h"

namespace veloce::kv {

using RangeId = uint64_t;
using NodeId = uint32_t;

/// Descriptor of one range (shard): its keyspan, replica placement, and
/// current leaseholder. Ranges never span tenant boundaries (the KV layer
/// enforces this at creation/split time) — the storage-partitioning
/// invariant of cluster virtualization.
struct RangeDescriptor {
  RangeId range_id = 0;
  std::string start_key;  ///< inclusive
  std::string end_key;    ///< exclusive; empty = +infinity
  TenantId tenant_id = 0; ///< owning tenant (0 for pre-tenant system ranges)
  std::vector<NodeId> replicas;
  NodeId leaseholder = 0;

  bool Contains(Slice key) const {
    if (Slice(key) < Slice(start_key)) return false;
    return end_key.empty() || Slice(key) < Slice(end_key);
  }
  bool HasReplica(NodeId node) const {
    for (NodeId n : replicas) {
      if (n == node) return true;
    }
    return false;
  }
};

/// The replication log of one range — a deliberately compact Raft: a single
/// stable leader (the leaseholder), a term that bumps on lease transfer,
/// and synchronous quorum commit. Enough structure to exercise lease
/// movement and per-node lease counting (Fig 12) without full Raft
/// machinery; documented as a substitution in DESIGN.md.
class ReplicationLog {
 public:
  uint64_t Append(const std::string& payload) {
    entries_committed_++;
    bytes_committed_ += payload.size();
    return entries_committed_;
  }
  void BumpTerm() { ++term_; }

  uint64_t term() const { return term_; }
  uint64_t committed_index() const { return entries_committed_; }
  uint64_t committed_bytes() const { return bytes_committed_; }

 private:
  uint64_t term_ = 1;
  uint64_t entries_committed_ = 0;
  uint64_t bytes_committed_ = 0;
};

/// Read-timestamp cache for one range: remembers the maximum timestamp at
/// which each key (or span) was read, so later writes below that timestamp
/// are pushed forward — the mechanism that gives serializable isolation for
/// read-write conflicts.
class TimestampCache {
 public:
  /// Spans are folded into a range-wide low-water mark once the list grows
  /// past this, trading precision (spurious pushes) for bounded memory.
  static constexpr size_t kMaxSpans = 128;
  static constexpr size_t kMaxPoints = 4096;

  void RecordRead(Slice key, Timestamp ts);
  void RecordReadSpan(Slice start, Slice end, Timestamp ts);

  /// Highest read timestamp recorded for `key`.
  Timestamp MaxReadTimestamp(Slice key) const;

  Timestamp low_water() const { return low_water_; }

 private:
  struct SpanRead {
    std::string start, end;
    Timestamp ts;
  };

  std::map<std::string, Timestamp, std::less<>> points_;
  std::vector<SpanRead> spans_;
  Timestamp low_water_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_RANGE_H_
