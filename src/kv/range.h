#ifndef VELOCE_KV_RANGE_H_
#define VELOCE_KV_RANGE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "kv/batch.h"
#include "kv/timestamp.h"

namespace veloce::kv {

using NodeId = uint32_t;  // RangeId lives in kv/batch.h (range addressing)

/// Descriptor of one range (shard): its keyspan, replica placement, and
/// current leaseholder. Ranges never span tenant boundaries (the KV layer
/// enforces this at creation/split time) — the storage-partitioning
/// invariant of cluster virtualization.
struct RangeDescriptor {
  RangeId range_id = 0;
  std::string start_key;  ///< inclusive
  std::string end_key;    ///< exclusive; empty = +infinity
  TenantId tenant_id = 0; ///< owning tenant (0 for pre-tenant system ranges)
  std::vector<NodeId> replicas;
  NodeId leaseholder = 0;
  /// Liveness epoch of the leaseholder when the lease was granted. Once
  /// heartbeat-driven liveness is armed (KVCluster::TickHeartbeats), a
  /// lease is valid only while the holder's epoch still matches: an
  /// isolated leaseholder's epoch bumps on expiry, so its stale lease
  /// rejects writes with LeaseEpochMismatch instead of serving split-brain.
  uint64_t lease_epoch = 1;
  /// Bumped whenever the range's span or replica set changes (split, merge,
  /// replica move). Directory caches key their entries on it: an addressed
  /// request whose key no longer falls in the range redirects with
  /// RangeKeyMismatch, and the refreshed descriptor's higher generation
  /// supersedes any overlapping cached entry.
  uint64_t generation = 1;

  bool Contains(Slice key) const {
    if (Slice(key) < Slice(start_key)) return false;
    return end_key.empty() || Slice(key) < Slice(end_key);
  }
  bool HasReplica(NodeId node) const {
    for (NodeId n : replicas) {
      if (n == node) return true;
    }
    return false;
  }
};

/// Per-range load statistics: exponentially-decayed request and CPU-cost
/// rates plus a small reservoir of recently-touched keys. The rates drive
/// load-based splits (hot ranges divide at a sampled key boundary) and
/// cooldown merges (adjacent cold ranges of one tenant re-fuse); the
/// reservoir supplies the split point without scanning the engine, which is
/// what keeps split decisions O(1) at 100k ranges.
///
/// Decay is half-life based and evaluated lazily on access, so the tracker
/// is exact under a manual/sim clock and needs no background timer.
class RangeLoadTracker {
 public:
  static constexpr Nanos kHalfLife = 2 * kSecond;
  static constexpr size_t kMaxKeySamples = 16;

  /// Records `count` requests costing `cost` abstract CPU units touching
  /// `key` at time `now`.
  void Record(Nanos now, Slice key, double count, double cost) {
    DecayTo(now);
    requests_ += count;
    cost_ += cost;
    // Deterministic reservoir sampling: the n-th observation replaces a
    // slot with probability k/n, using a counter-seeded xorshift so two
    // identical op sequences sample identical split keys.
    ++observations_;
    if (samples_.size() < kMaxKeySamples) {
      samples_.push_back(key.ToString());
    } else {
      const uint64_t r = Mix(observations_);
      if (r % observations_ < kMaxKeySamples) {
        samples_[r % kMaxKeySamples] = key.ToString();
      }
    }
  }

  /// Decayed requests/second as of `now`.
  double Qps(Nanos now) const {
    const_cast<RangeLoadTracker*>(this)->DecayTo(now);
    // The EWMA holds "requests in the trailing half-life window"; divide by
    // the window to express a rate.
    return requests_ / (static_cast<double>(kHalfLife) / kSecond);
  }
  /// Decayed CPU cost units/second as of `now`.
  double CpuRate(Nanos now) const {
    const_cast<RangeLoadTracker*>(this)->DecayTo(now);
    return cost_ / (static_cast<double>(kHalfLife) / kSecond);
  }

  /// A key strictly inside (start, +inf) splitting the sampled keys roughly
  /// in half; empty when the samples cannot produce a valid boundary.
  std::string SuggestSplitKey(Slice start) const {
    std::vector<std::string> keys;
    keys.reserve(samples_.size());
    for (const std::string& k : samples_) {
      if (Slice(k) > start) keys.push_back(k);
    }
    if (keys.size() < 2) return "";
    std::sort(keys.begin(), keys.end());
    const std::string& mid = keys[keys.size() / 2];
    // A midpoint equal to the smallest sample would make an empty left half.
    if (mid == keys.front()) return "";
    return mid;
  }

  /// Split/merge bookkeeping: restarts sampling (rates persist — a freshly
  /// split hot range is still hot, but its old samples may lie outside the
  /// new span).
  void ResetSamples() {
    samples_.clear();
    observations_ = 0;
  }

  /// Range split: each half keeps half the parent's decayed rates and
  /// restarts sampling. The caller copies the tracker to the right half
  /// after calling this on the left.
  void OnSplit() {
    requests_ /= 2;
    cost_ /= 2;
    ResetSamples();
  }

  /// Folds another tracker in (range merge): rates add, samples interleave.
  void Absorb(const RangeLoadTracker& other, Nanos now) {
    DecayTo(now);
    const_cast<RangeLoadTracker&>(other).DecayTo(now);
    requests_ += other.requests_;
    cost_ += other.cost_;
    for (const std::string& k : other.samples_) {
      if (samples_.size() < kMaxKeySamples) samples_.push_back(k);
    }
  }

 private:
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
  }
  void DecayTo(Nanos now) {
    if (now <= last_decay_) return;
    const double halves =
        static_cast<double>(now - last_decay_) / static_cast<double>(kHalfLife);
    const double factor = std::pow(0.5, halves);
    requests_ *= factor;
    cost_ *= factor;
    last_decay_ = now;
  }

  double requests_ = 0;
  double cost_ = 0;
  Nanos last_decay_ = 0;
  uint64_t observations_ = 0;
  std::vector<std::string> samples_;
};

/// One replicated mutation of a range. Everything that touches a replica's
/// engine flows through a record so a lagging replica can replay the exact
/// same sequence and converge byte-identically — including intent
/// resolutions, which previously bypassed the log and diverged dead
/// replicas forever.
struct LogRecord {
  enum class Kind : uint8_t {
    kBatch = 0,           ///< serialized storage::WriteBatch (payload)
    kResolveIntent = 1,   ///< MvccResolveIntent(key, txn_id, commit, ts)
    kUpdateIntentTs = 2,  ///< MvccUpdateIntentTimestamp(key, txn_id, ts)
  };
  Kind kind = Kind::kBatch;
  uint64_t index = 0;
  std::string payload;  ///< kBatch: WriteBatch::rep()
  std::string key;      ///< resolve/update target
  uint64_t txn_id = 0;
  bool commit = false;
  Timestamp ts;
  TenantId tenant = 0;  ///< kBatch: tenant charged for write bytes (0 = none)

  size_t ApproxBytes() const { return payload.size() + key.size() + 64; }
};

/// The replication log of one range — a deliberately compact Raft: a single
/// stable leader (the leaseholder), a term that bumps on lease transfer,
/// and synchronous quorum commit. Records are retained (bounded) with a
/// per-replica applied position so replicas cut off by a partition or crash
/// can catch up by in-order replay; replicas that fall behind the retained
/// window take a snapshot transfer instead. Documented as a substitution in
/// DESIGN.md.
class ReplicationLog {
 public:
  /// Retention caps: a fully-applied prefix is always truncated eagerly,
  /// but while some replica lags the log keeps at most this much before
  /// forcing that replica onto the snapshot path.
  static constexpr size_t kMaxRetainedRecords = 4096;
  static constexpr size_t kMaxRetainedBytes = 4ull << 20;

  uint64_t Append(LogRecord rec) {
    entries_committed_++;
    bytes_committed_ += rec.payload.size();
    rec.index = entries_committed_;
    retained_bytes_ += rec.ApproxBytes();
    records_.push_back(std::move(rec));
    return entries_committed_;
  }
  void BumpTerm() { ++term_; }

  /// Highest contiguously applied index for one replica (0 = nothing).
  uint64_t Applied(NodeId node) const {
    auto it = applied_.find(node);
    return it == applied_.end() ? 0 : it->second;
  }
  void SetApplied(NodeId node, uint64_t index) { applied_[node] = index; }
  void EraseReplica(NodeId node) { applied_.erase(node); }

  /// Index of the oldest retained record (committed_index()+1 when empty).
  uint64_t first_index() const {
    return records_.empty() ? entries_committed_ + 1 : records_.front().index;
  }

  /// True when replay can serve a replica at `applied` (no truncation gap).
  bool CanReplayFrom(uint64_t applied) const {
    return applied + 1 >= first_index();
  }

  /// Records with index > `applied`, oldest first.
  const std::deque<LogRecord>& records() const { return records_; }

  /// Drops every record at or below `floor` (the minimum applied position
  /// across the replica set), then enforces the retention caps; replicas
  /// whose position falls before first_index() must snapshot.
  void TruncateTo(uint64_t floor) {
    while (!records_.empty() && records_.front().index <= floor) {
      retained_bytes_ -= records_.front().ApproxBytes();
      records_.pop_front();
    }
    while (records_.size() > kMaxRetainedRecords ||
           (retained_bytes_ > kMaxRetainedBytes && !records_.empty())) {
      retained_bytes_ -= records_.front().ApproxBytes();
      records_.pop_front();
    }
  }

  uint64_t term() const { return term_; }
  uint64_t committed_index() const { return entries_committed_; }
  uint64_t committed_bytes() const { return bytes_committed_; }

 private:
  uint64_t term_ = 1;
  uint64_t entries_committed_ = 0;
  uint64_t bytes_committed_ = 0;
  size_t retained_bytes_ = 0;
  std::deque<LogRecord> records_;
  std::map<NodeId, uint64_t> applied_;
};

/// Read-timestamp cache for one range: remembers the maximum timestamp at
/// which each key (or span) was read, so later writes below that timestamp
/// are pushed forward — the mechanism that gives serializable isolation for
/// read-write conflicts.
class TimestampCache {
 public:
  /// Spans are folded into a range-wide low-water mark once the list grows
  /// past this, trading precision (spurious pushes) for bounded memory.
  static constexpr size_t kMaxSpans = 128;
  static constexpr size_t kMaxPoints = 4096;

  void RecordRead(Slice key, Timestamp ts);
  void RecordReadSpan(Slice start, Slice end, Timestamp ts);

  /// Folds another range's cache in (range merge): every point and span is
  /// carried over so no read constraint is lost; cap overflow degrades to
  /// the low-water mark exactly as organic growth does.
  void MergeFrom(const TimestampCache& other);

  /// Highest read timestamp recorded for `key`.
  Timestamp MaxReadTimestamp(Slice key) const;

  Timestamp low_water() const { return low_water_; }

 private:
  struct SpanRead {
    std::string start, end;
    Timestamp ts;
  };

  std::map<std::string, Timestamp, std::less<>> points_;
  std::vector<SpanRead> spans_;
  Timestamp low_water_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_RANGE_H_
