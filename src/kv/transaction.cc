#include "kv/transaction.h"

#include <utility>

namespace veloce::kv {

namespace {

// Read-span ends are exclusive; the empty string means +infinity.
bool EndReaches(const std::string& end, const std::string& key) {
  return end.empty() || end >= key;
}

std::string MaxEnd(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) return std::string();
  return a > b ? a : b;
}

}  // namespace

Transaction::Transaction(KVCluster* cluster, TenantId tenant, int32_t priority,
                         Sender sender, TxnOptions options)
    : cluster_(cluster),
      sender_(std::move(sender)),
      options_(options),
      tenant_(tenant) {
  executor_ = options_.executor != nullptr ? options_.executor
                                           : cluster_->background_executor();
  record_ = cluster_->BeginTxn(priority);
  max_write_ts_ = record_.write_ts;
}

Transaction::~Transaction() {
  if (!finalized_) (void)Rollback();
}

BatchRequest Transaction::MakeRequest() const {
  BatchRequest req;
  req.tenant_id = tenant_;
  req.ts = record_.read_ts;
  req.txn_id = record_.id;
  req.txn_priority = record_.priority;
  req.trace = trace_;
  return req;
}

StatusOr<BatchResponse> Transaction::SendTracked(const BatchRequest& req) {
  ++batches_sent_;
  auto resp = sender_ ? sender_(req) : cluster_->Send(req);
  if (resp.ok() && max_write_ts_ < resp->bumped_write_ts) {
    max_write_ts_ = resp->bumped_write_ts;
  }
  return resp;
}

void Transaction::AddReadSpan(const std::string& start, const std::string& end) {
  std::string s = start;
  std::string e = end;
  // Merge with a predecessor span that reaches s (overlapping or adjacent).
  auto it = read_spans_.upper_bound(s);
  if (it != read_spans_.begin()) {
    auto prev = std::prev(it);
    if (EndReaches(prev->second, s)) {
      s = prev->first;
      e = MaxEnd(e, prev->second);
      read_spans_.erase(prev);
    }
  }
  // Absorb successor spans the merged span now reaches.
  for (auto nit = read_spans_.lower_bound(s);
       nit != read_spans_.end() && EndReaches(e, nit->first);) {
    e = MaxEnd(e, nit->second);
    nit = read_spans_.erase(nit);
  }
  read_spans_[std::move(s)] = std::move(e);
}

bool Transaction::AnyKeyInSpan(const std::set<std::string>& keys, Slice start,
                               Slice end) {
  auto it = keys.lower_bound(start.ToString());
  return it != keys.end() && (end.empty() || Slice(*it) < end);
}

Status Transaction::Get(Slice key, std::optional<std::string>* value) {
  if (finalized_) return Status::Internal("txn already finalized");
  // Read-your-writes from the buffer: the value does not depend on database
  // state, so no read span is needed.
  auto bit = buffer_.find(key.ToString());
  if (bit != buffer_.end()) {
    if (bit->second.tombstone) {
      value->reset();
    } else {
      *value = bit->second.value;
    }
    return Status::OK();
  }
  // Reading a key we flushed requires the pipelined intent to be applied.
  if (intent_keys_.count(key.ToString()) != 0) {
    VELOCE_RETURN_IF_ERROR(WaitPipeline());
  }
  BatchRequest req = MakeRequest();
  req.AddGet(key);
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  AddReadSpan(key.ToString(), key.ToString() + std::string(1, '\0'));
  if (resp.responses[0].found) {
    *value = std::move(resp.responses[0].value);
  } else {
    value->reset();
  }
  return Status::OK();
}

Status Transaction::Put(Slice key, Slice value) {
  if (finalized_) return Status::Internal("txn already finalized");
  if (options_.buffer_writes) {
    buffer_[key.ToString()] = {value.ToString(), false};
    if (buffer_.size() >= options_.max_buffered_writes) return Flush();
    return Status::OK();
  }
  BatchRequest req = MakeRequest();
  req.AddPut(key, value);
  intent_keys_.insert(key.ToString());
  if (options_.pipeline_writes && executor_ != nullptr) {
    req.trace = nullptr;  // pipelined batches run on executor threads
    EnqueuePipelined(std::move(req));
    return Status::OK();
  }
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  (void)resp;
  return Status::OK();
}

Status Transaction::Delete(Slice key) {
  if (finalized_) return Status::Internal("txn already finalized");
  if (options_.buffer_writes) {
    buffer_[key.ToString()] = {std::string(), true};
    if (buffer_.size() >= options_.max_buffered_writes) return Flush();
    return Status::OK();
  }
  BatchRequest req = MakeRequest();
  req.AddDelete(key);
  intent_keys_.insert(key.ToString());
  if (options_.pipeline_writes && executor_ != nullptr) {
    req.trace = nullptr;
    EnqueuePipelined(std::move(req));
    return Status::OK();
  }
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  (void)resp;
  return Status::OK();
}

Status Transaction::Scan(Slice start, Slice end, uint64_t limit,
                         std::vector<MvccScanEntry>* rows, std::string* resume_key) {
  if (finalized_) return Status::Internal("txn already finalized");
  // Buffered writes in the span must become intents to be visible to the
  // MVCC scan; flushed ones must have been applied.
  auto bit = buffer_.lower_bound(start.ToString());
  if (bit != buffer_.end() && (end.empty() || Slice(bit->first) < end)) {
    VELOCE_RETURN_IF_ERROR(Flush());
  }
  if (AnyKeyInSpan(intent_keys_, start, end)) {
    VELOCE_RETURN_IF_ERROR(WaitPipeline());
  }
  BatchRequest req = MakeRequest();
  req.AddScan(start, end, limit);
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  AddReadSpan(start.ToString(), end.ToString());
  *rows = std::move(resp.responses[0].rows);
  if (resume_key != nullptr) *resume_key = resp.responses[0].resume_key;
  return Status::OK();
}

Status Transaction::Flush() {
  if (buffer_.empty()) return Status::OK();
  BatchRequest req = MakeRequest();
  for (auto& [key, w] : buffer_) {
    if (w.tombstone) {
      req.AddDelete(key);
    } else {
      req.AddPut(key, w.value);
    }
    intent_keys_.insert(key);
  }
  buffer_.clear();
  if (options_.pipeline_writes && executor_ != nullptr) {
    req.trace = nullptr;
    EnqueuePipelined(std::move(req));
    return Status::OK();
  }
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  (void)resp;
  return Status::OK();
}

void Transaction::EnqueuePipelined(BatchRequest req) {
  ++batches_sent_;
  if (pipeline_ == nullptr) pipeline_ = std::make_shared<PipelineState>();
  auto st = pipeline_;
  bool need_drainer = false;
  {
    std::lock_guard<std::mutex> l(st->mu);
    st->queue.push_back(std::move(req));
    ++st->outstanding;
    if (!st->draining) {
      st->draining = true;
      need_drainer = true;
    }
  }
  if (need_drainer) {
    // One drainer at a time keeps batches strictly FIFO (intent ordering)
    // and bounds executor usage to a single slot per transaction.
    Sender send = sender_;
    if (!send) {
      KVCluster* cluster = cluster_;
      send = [cluster](const BatchRequest& r) { return cluster->Send(r); };
    }
    executor_->Schedule(
        [st, send = std::move(send)] { DrainPipeline(st, send); });
  }
}

void Transaction::DrainPipeline(std::shared_ptr<PipelineState> st, Sender send) {
  for (;;) {
    BatchRequest req;
    {
      std::lock_guard<std::mutex> l(st->mu);
      if (st->queue.empty()) {
        st->draining = false;
        st->cv.notify_all();
        return;
      }
      req = std::move(st->queue.front());
      st->queue.pop_front();
    }
    StatusOr<BatchResponse> resp = send(req);
    std::lock_guard<std::mutex> l(st->mu);
    if (resp.ok()) {
      if (st->max_bump < resp->bumped_write_ts) st->max_bump = resp->bumped_write_ts;
    } else if (st->first_error.ok()) {
      st->first_error = resp.status();
    }
    --st->outstanding;
    st->cv.notify_all();
  }
}

Status Transaction::WaitPipeline() {
  if (pipeline_ == nullptr) return Status::OK();
  auto st = pipeline_;
  std::unique_lock<std::mutex> l(st->mu);
  if (executor_ != nullptr && executor_->single_threaded()) {
    // Blocking would deadlock a single-threaded executor; assist instead.
    while (st->outstanding > 0) {
      l.unlock();
      executor_->RunQueued();
      l.lock();
    }
  } else {
    st->cv.wait(l, [&] { return st->outstanding == 0; });
  }
  if (max_write_ts_ < st->max_bump) max_write_ts_ = st->max_bump;
  return st->first_error;
}

Status Transaction::RefreshReads(Timestamp to) {
  if (!(record_.read_ts < to)) return Status::OK();
  for (const auto& [start, end] : read_spans_) {
    VELOCE_ASSIGN_OR_RETURN(bool changed,
                            cluster_->AnyNewerVersions(tenant_, start, end,
                                                       record_.read_ts, to));
    if (changed) return Status::TransactionRetry("read refresh failed; retry txn");
  }
  record_.read_ts = to;
  return Status::OK();
}

Status Transaction::TryOnePhaseCommit(Nanos start_ns) {
  const KVCluster::TxnMetricSet& m = cluster_->txn_metrics();
  for (int attempt = 0; attempt < 3; ++attempt) {
    BatchRequest req = MakeRequest();
    req.commit_txn = true;
    req.can_forward_ts = read_spans_.empty();
    for (const auto& [key, w] : buffer_) {
      if (w.tombstone) {
        req.AddDelete(key);
      } else {
        req.AddPut(key, w.value);
      }
    }
    VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
    if (!resp.one_pc_rejected_ts.IsEmpty()) {
      // The commit timestamp must move and we performed reads: refresh up
      // to the rejected timestamp and retry at it.
      m.retries->Inc();
      VELOCE_RETURN_IF_ERROR(RefreshReads(resp.one_pc_rejected_ts));
      continue;
    }
    commit_ts_ = resp.commit_ts;
    finalized_ = true;
    buffer_.clear();
    RecordCommit(m.commits_1pc, start_ns);
    return Status::OK();
  }
  return Status::NotSupported("1pc commit kept getting pushed");
}

Status Transaction::Commit() {
  if (finalized_) return Status::Internal("txn already finalized");
  const KVCluster::TxnMetricSet& m = cluster_->txn_metrics();
  const Nanos start_ns = cluster_->clock()->Now();

  // One-phase fast path: every write is still buffered (no intents laid),
  // so the whole write set can commit server-side in one batch.
  if (options_.one_phase_commit && intent_keys_.empty() && !buffer_.empty()) {
    Status s = TryOnePhaseCommit(start_ns);
    if (s.ok()) return s;
    if (s.code() == Code::kTransactionAborted || s.IsTransactionRetry()) {
      (void)Rollback();
      return s;
    }
    if (s.code() != Code::kNotSupported) return s;
    // NotSupported: multi-range write set, or 1PC raced out. Fall through
    // to the general path.
  }

  Status fs = Flush();
  if (!fs.ok()) {
    (void)Rollback();
    return fs;
  }
  std::vector<std::string> keys(intent_keys_.begin(), intent_keys_.end());

  if (options_.parallel_commit && !keys.empty()) {
    // Parallel commit: stage while pipelined intent writes may still be in
    // flight. STAGING + all declared writes proven present IS the commit —
    // a concurrent pusher's recovery may finalize the txn the moment the
    // last intent lands — so reads MUST be validated up to the staged
    // timestamp BEFORE staging. StageTxn enforces this: it refuses to
    // stage above the validated timestamp and hands back the refresh
    // target instead.
    Timestamp staged;
    Status ss;
    for (int attempt = 0;; ++attempt) {
      const Timestamp intended =
          record_.read_ts < max_write_ts_ ? max_write_ts_ : record_.read_ts;
      if (record_.read_ts < intended) {
        Status rs = RefreshReads(intended);
        if (!rs.ok()) {
          // Never staged: the record is still pending, so aborting cannot
          // contradict a recovery.
          (void)Rollback();
          return rs;
        }
      }
      ss = cluster_->StageTxn(record_.id, keys, &staged, record_.read_ts);
      if (ss.IsTransactionRetry() && attempt < 3) {
        // The server-side write timestamp moved above what we validated
        // (an in-flight write bump or a reader's push); `staged` carries
        // the target to refresh to.
        m.retries->Inc();
        if (max_write_ts_ < staged) max_write_ts_ = staged;
        continue;
      }
      break;
    }
    if (!ss.ok()) {
      // Nothing was staged; the txn is pending (or already aborted by a
      // pusher), so rolling back is safe.
      if (ss.code() == Code::kTransactionAborted || ss.IsTransactionRetry()) {
        (void)Rollback();
      }
      return ss;
    }
    Status ps = WaitPipeline();
    if (!ps.ok()) {
      // A batch failed after the txn was staged; its writes may still have
      // applied server-side. Settle the outcome via the recovery check —
      // never a blind rollback, which could race a recovery that proves
      // the commit condition.
      return ResolveIndeterminateCommit(ps, keys, start_ns);
    }
    if (max_write_ts_ > staged) {
      // A late in-flight write landed above the staged timestamp. Its
      // intent sits above `staged`, so the commit condition there provably
      // fails and no recovery can have committed the record; refreshing
      // and re-staging (or aborting) is still safe.
      m.retries->Inc();
      Status rs = RefreshReads(max_write_ts_);
      if (!rs.ok()) {
        (void)Rollback();
        return rs;
      }
      ss = cluster_->StageTxn(record_.id, keys, &staged, record_.read_ts);
      if (!ss.ok()) {
        if (ss.code() == Code::kTransactionAborted || ss.IsTransactionRetry()) {
          (void)Rollback();
        }
        return ss;
      }
    }
    // Implicitly committed, with reads validated at the staged timestamp:
    // ack the client now; resolution follows.
    commit_ts_ = staged;
    finalized_ = true;
    RecordCommit(m.commits_parallel, start_ns);
    if (options_.async_finalize && executor_ != nullptr) {
      KVCluster* cluster = cluster_;
      const TxnId txn_id = record_.id;
      executor_->Schedule([cluster, txn_id, keys] {
        (void)cluster->CommitTxn(txn_id, keys, nullptr);
      });
    } else {
      // Already acked; a concurrent recovery may have finalized the record
      // for us, in which case this is an idempotent no-op.
      (void)cluster_->CommitTxn(record_.id, keys, nullptr);
    }
    return Status::OK();
  }

  // Classic path (and read-only commits): drain the pipeline, refresh if
  // our write timestamp moved above our read timestamp, then commit and
  // resolve before acking. CommitTxn re-checks that nothing pushed the
  // write timestamp past what was validated (a reader's push can race the
  // refresh) and sends us around the loop again when it did.
  Status ps = WaitPipeline();
  if (!ps.ok()) {
    (void)Rollback();
    return ps;
  }
  Status s;
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (max_write_ts_ > record_.read_ts && !read_spans_.empty()) {
      Status rs = RefreshReads(max_write_ts_);
      if (!rs.ok()) {
        (void)Rollback();
        return rs;
      }
    }
    Timestamp committed;
    s = cluster_->CommitTxn(record_.id, keys, &committed,
                            read_spans_.empty()
                                ? std::nullopt
                                : std::optional<Timestamp>(record_.read_ts));
    if (s.IsTransactionRetry() && !committed.IsEmpty()) {
      // `committed` carries the bumped write timestamp to validate up to.
      m.retries->Inc();
      if (max_write_ts_ < committed) max_write_ts_ = committed;
      continue;
    }
    if (s.ok()) commit_ts_ = committed;
    break;
  }
  if (!s.ok()) {
    if (s.code() == Code::kTransactionAborted || s.IsTransactionRetry()) {
      (void)Rollback();
    }
    return s;
  }
  finalized_ = true;
  RecordCommit(m.commits_classic, start_ns);
  return Status::OK();
}

Status Transaction::ResolveIndeterminateCommit(const Status& pipeline_error,
                                               const std::vector<std::string>& keys,
                                               Nanos start_ns) {
  const KVCluster::TxnMetricSet& m = cluster_->txn_metrics();
  // Whatever the outcome, this coordinator is done driving the commit; the
  // destructor must not issue another rollback.
  finalized_ = true;
  StatusOr<PushResult> pr = cluster_->ResolveAbandonedStaging(record_.id);
  if (pr.ok() && pr->pushee_status == TxnStatus::kCommitted) {
    // Every declared write is present at or below the staged timestamp —
    // the "failed" batch did apply, and reads were validated there before
    // staging. The txn IS committed; resolve intents and ack.
    commit_ts_ = pr->commit_ts;
    (void)cluster_->CommitTxn(record_.id, keys, nullptr);
    RecordCommit(m.commits_parallel, start_ns);
    return Status::OK();
  }
  if (pr.ok() && pr->pushee_status == TxnStatus::kAborted) {
    // A declared write is provably missing (and late writes are fenced in
    // the tscache), so the txn never was implicitly committed. Clean up
    // the intents that did land and surface the original failure.
    (void)cluster_->AbortTxn(record_.id, keys);
    return pipeline_error;
  }
  // Neither provable (e.g. a range was unavailable during the check): the
  // commit outcome is unknown and must not be reported as a clean abort —
  // a recovery may yet finalize it as committed.
  return Status::Unavailable("txn " + std::to_string(record_.id) +
                             " commit result unknown after pipeline failure: " +
                             pipeline_error.ToString());
}

Status Transaction::Rollback() {
  if (finalized_) return Status::OK();
  finalized_ = true;
  // The drainer must quiesce before the coordinator is torn down (and the
  // abort must not race queued intent writes).
  (void)WaitPipeline();
  buffer_.clear();
  std::vector<std::string> keys(intent_keys_.begin(), intent_keys_.end());
  return cluster_->AbortTxn(record_.id, keys);
}

void Transaction::RecordCommit(obs::Counter* path_counter, Nanos start_ns) {
  path_counter->Inc();
  cluster_->txn_metrics().commit_latency->Record(
      static_cast<int64_t>(cluster_->clock()->Now() - start_ns));
}

}  // namespace veloce::kv
