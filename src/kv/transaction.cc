#include "kv/transaction.h"

namespace veloce::kv {

Transaction::Transaction(KVCluster* cluster, TenantId tenant, int32_t priority,
                         Sender sender)
    : cluster_(cluster), sender_(std::move(sender)), tenant_(tenant) {
  record_ = cluster_->BeginTxn(priority);
  max_write_ts_ = record_.write_ts;
}

Transaction::~Transaction() {
  if (!finalized_) (void)Rollback();
}

BatchRequest Transaction::MakeRequest() const {
  BatchRequest req;
  req.tenant_id = tenant_;
  req.ts = record_.read_ts;
  req.txn_id = record_.id;
  req.txn_priority = record_.priority;
  req.trace = trace_;
  return req;
}

StatusOr<BatchResponse> Transaction::SendTracked(const BatchRequest& req) {
  ++batches_sent_;
  auto resp = sender_ ? sender_(req) : cluster_->Send(req);
  if (resp.ok() && max_write_ts_ < resp->bumped_write_ts) {
    max_write_ts_ = resp->bumped_write_ts;
  }
  return resp;
}

Status Transaction::Get(Slice key, std::optional<std::string>* value) {
  BatchRequest req = MakeRequest();
  req.AddGet(key);
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  read_spans_.emplace_back(key.ToString(), key.ToString() + std::string(1, '\0'));
  if (resp.responses[0].found) {
    *value = std::move(resp.responses[0].value);
  } else {
    value->reset();
  }
  return Status::OK();
}

Status Transaction::Put(Slice key, Slice value) {
  BatchRequest req = MakeRequest();
  req.AddPut(key, value);
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  (void)resp;
  intent_keys_.insert(key.ToString());
  return Status::OK();
}

Status Transaction::Delete(Slice key) {
  BatchRequest req = MakeRequest();
  req.AddDelete(key);
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  (void)resp;
  intent_keys_.insert(key.ToString());
  return Status::OK();
}

Status Transaction::Scan(Slice start, Slice end, uint64_t limit,
                         std::vector<MvccScanEntry>* rows, std::string* resume_key) {
  BatchRequest req = MakeRequest();
  req.AddScan(start, end, limit);
  VELOCE_ASSIGN_OR_RETURN(BatchResponse resp, SendTracked(req));
  read_spans_.emplace_back(start.ToString(), end.ToString());
  *rows = std::move(resp.responses[0].rows);
  if (resume_key != nullptr) *resume_key = resp.responses[0].resume_key;
  return Status::OK();
}

Status Transaction::Commit() {
  if (finalized_) return Status::Internal("txn already finalized");
  // Refresh: if our write timestamp was pushed above our read timestamp, we
  // may commit only if nothing we read changed in between.
  if (max_write_ts_ > record_.read_ts && !read_spans_.empty()) {
    for (const auto& [start, end] : read_spans_) {
      VELOCE_ASSIGN_OR_RETURN(bool changed,
                              cluster_->AnyNewerVersions(tenant_, start, end,
                                                         record_.read_ts,
                                                         max_write_ts_));
      if (changed) {
        (void)Rollback();
        return Status::TransactionRetry("read refresh failed; retry txn");
      }
    }
  }
  std::vector<std::string> keys(intent_keys_.begin(), intent_keys_.end());
  Status s = cluster_->CommitTxn(record_.id, keys, &commit_ts_);
  if (!s.ok()) {
    if (s.code() == Code::kTransactionAborted) {
      (void)Rollback();
    }
    return s;
  }
  finalized_ = true;
  return Status::OK();
}

Status Transaction::Rollback() {
  if (finalized_) return Status::OK();
  finalized_ = true;
  std::vector<std::string> keys(intent_keys_.begin(), intent_keys_.end());
  return cluster_->AbortTxn(record_.id, keys);
}

}  // namespace veloce::kv
