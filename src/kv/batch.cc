#include "kv/batch.h"

#include "common/codec.h"

namespace veloce::kv {

namespace {

void PutTimestamp(std::string* dst, Timestamp ts) {
  PutFixed64(dst, static_cast<uint64_t>(ts.wall));
  PutFixed32(dst, ts.logical);
}

bool GetTimestamp(Slice* in, Timestamp* ts) {
  uint64_t wall = 0;
  uint32_t logical = 0;
  if (!GetFixed64(in, &wall) || !GetFixed32(in, &logical)) return false;
  ts->wall = static_cast<Nanos>(wall);
  ts->logical = logical;
  return true;
}

}  // namespace

void BatchRequest::AddGet(Slice key) {
  RequestUnion r;
  r.type = RequestType::kGet;
  r.key = key.ToString();
  requests.push_back(std::move(r));
}

void BatchRequest::AddPut(Slice key, Slice value) {
  RequestUnion r;
  r.type = RequestType::kPut;
  r.key = key.ToString();
  r.value = value.ToString();
  requests.push_back(std::move(r));
}

void BatchRequest::AddDelete(Slice key) {
  RequestUnion r;
  r.type = RequestType::kDelete;
  r.key = key.ToString();
  requests.push_back(std::move(r));
}

void BatchRequest::AddScan(Slice start, Slice end, uint64_t limit) {
  RequestUnion r;
  r.type = RequestType::kScan;
  r.key = start.ToString();
  r.end_key = end.ToString();
  r.limit = limit;
  requests.push_back(std::move(r));
}

void BatchRequest::AddScanWithPushdown(Slice start, Slice end, uint64_t limit,
                                       Slice pushdown_spec) {
  RequestUnion r;
  r.type = RequestType::kScan;
  r.key = start.ToString();
  r.end_key = end.ToString();
  r.limit = limit;
  r.pushdown = pushdown_spec.ToString();
  requests.push_back(std::move(r));
}

bool BatchRequest::IsReadOnly() const {
  for (const auto& r : requests) {
    if (r.type == RequestType::kPut || r.type == RequestType::kDelete) return false;
  }
  return true;
}

size_t BatchRequest::PayloadBytes() const {
  size_t total = 0;
  for (const auto& r : requests) {
    total += r.key.size() + r.end_key.size() + r.value.size();
  }
  return total;
}

std::string BatchRequest::Encode() const {
  std::string out;
  PutFixed64(&out, tenant_id);
  PutTimestamp(&out, ts);
  PutFixed64(&out, txn_id);
  PutFixed32(&out, static_cast<uint32_t>(txn_priority));
  uint8_t flags = 0;
  if (allow_follower_reads) flags |= 1;
  if (commit_txn) flags |= 2;
  if (can_forward_ts) flags |= 4;
  out.push_back(static_cast<char>(flags));
  PutVarint64(&out, range_id);
  PutVarint64(&out, requests.size());
  for (const auto& r : requests) {
    out.push_back(static_cast<char>(r.type));
    PutLengthPrefixed(&out, r.key);
    PutLengthPrefixed(&out, r.end_key);
    PutLengthPrefixed(&out, r.value);
    PutVarint64(&out, r.limit);
    PutLengthPrefixed(&out, r.pushdown);
  }
  return out;
}

StatusOr<BatchRequest> BatchRequest::Decode(Slice data) {
  BatchRequest req;
  uint64_t count = 0;
  uint32_t prio = 0;
  if (!GetFixed64(&data, &req.tenant_id) || !GetTimestamp(&data, &req.ts) ||
      !GetFixed64(&data, &req.txn_id) || !GetFixed32(&data, &prio) ||
      data.empty()) {
    return Status::Corruption("bad batch request header");
  }
  const uint8_t flags = static_cast<uint8_t>(data[0]);
  req.allow_follower_reads = (flags & 1) != 0;
  req.commit_txn = (flags & 2) != 0;
  req.can_forward_ts = (flags & 4) != 0;
  data.RemovePrefix(1);
  if (!GetVarint64(&data, &req.range_id) || !GetVarint64(&data, &count)) {
    return Status::Corruption("bad batch request header");
  }
  req.txn_priority = static_cast<int32_t>(prio);
  req.requests.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (data.empty()) return Status::Corruption("truncated batch request");
    RequestUnion r;
    r.type = static_cast<RequestType>(data[0]);
    data.RemovePrefix(1);
    Slice key, end_key, value;
    Slice pushdown;
    if (!GetLengthPrefixed(&data, &key) || !GetLengthPrefixed(&data, &end_key) ||
        !GetLengthPrefixed(&data, &value) || !GetVarint64(&data, &r.limit) ||
        !GetLengthPrefixed(&data, &pushdown)) {
      return Status::Corruption("bad batch request entry");
    }
    r.key = key.ToString();
    r.end_key = end_key.ToString();
    r.value = value.ToString();
    r.pushdown = pushdown.ToString();
    req.requests.push_back(std::move(r));
  }
  return req;
}

size_t BatchResponse::PayloadBytes() const {
  size_t total = 0;
  for (const auto& r : responses) {
    total += r.value.size();
    for (const auto& row : r.rows) total += row.key.size() + row.value.size();
  }
  return total;
}

std::string BatchResponse::Encode() const {
  std::string out;
  PutTimestamp(&out, now);
  PutTimestamp(&out, bumped_write_ts);
  PutTimestamp(&out, commit_ts);
  PutTimestamp(&out, one_pc_rejected_ts);
  PutVarint64(&out, responses.size());
  for (const auto& r : responses) {
    out.push_back(r.found ? 1 : 0);
    PutLengthPrefixed(&out, r.value);
    PutLengthPrefixed(&out, r.resume_key);
    PutVarint64(&out, r.rows.size());
    for (const auto& row : r.rows) {
      PutLengthPrefixed(&out, row.key);
      PutLengthPrefixed(&out, row.value);
    }
  }
  return out;
}

StatusOr<BatchResponse> BatchResponse::Decode(Slice data) {
  BatchResponse resp;
  uint64_t count = 0;
  if (!GetTimestamp(&data, &resp.now) || !GetTimestamp(&data, &resp.bumped_write_ts) ||
      !GetTimestamp(&data, &resp.commit_ts) ||
      !GetTimestamp(&data, &resp.one_pc_rejected_ts) ||
      !GetVarint64(&data, &count)) {
    return Status::Corruption("bad batch response header");
  }
  resp.responses.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (data.empty()) return Status::Corruption("truncated batch response");
    ResponseUnion r;
    r.found = data[0] != 0;
    data.RemovePrefix(1);
    Slice value, resume;
    uint64_t rows = 0;
    if (!GetLengthPrefixed(&data, &value) || !GetLengthPrefixed(&data, &resume) ||
        !GetVarint64(&data, &rows)) {
      return Status::Corruption("bad batch response entry");
    }
    r.value = value.ToString();
    r.resume_key = resume.ToString();
    r.rows.reserve(rows);
    for (uint64_t j = 0; j < rows; ++j) {
      Slice k, v;
      if (!GetLengthPrefixed(&data, &k) || !GetLengthPrefixed(&data, &v)) {
        return Status::Corruption("bad batch response row");
      }
      r.rows.push_back({k.ToString(), v.ToString()});
    }
    resp.responses.push_back(std::move(r));
  }
  return resp;
}

}  // namespace veloce::kv
