#ifndef VELOCE_KV_RANGE_CACHE_H_
#define VELOCE_KV_RANGE_CACHE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "kv/range.h"

namespace veloce::kv {

/// Client-side range directory cache (the SQL/proxy half of range
/// addressing). Callers resolve keys here instead of consulting the KV
/// directory on every batch, attach the descriptor's range_id to the
/// request, and invalidate-and-refresh when the server answers
/// RangeKeyMismatch — the same retryable-redirect classification the
/// proxy already applies to lease-epoch mismatches.
///
/// Entries are keyed on start_key and carry the descriptor's generation:
/// inserting a fresh descriptor evicts every overlapping entry of a lower
/// (or equal) generation, so a split/merge/move redirect converges in one
/// refresh. Staleness is always recoverable: the worst a stale entry can
/// cause is one RangeKeyMismatch round-trip, never a wrong-range read.
///
/// Thread-safe; pipelined transaction batches hit the cache from executor
/// threads.
class RangeDirectoryCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };

  /// Descriptor whose span contains `key`, if cached.
  std::optional<RangeDescriptor> Lookup(Slice key);

  /// Caches `desc`, evicting overlapping entries. An overlapping entry
  /// with a strictly higher generation wins instead (the insert is
  /// dropped): a racing refresh never rolls the cache backwards.
  void Insert(const RangeDescriptor& desc);

  /// Drops the entry whose span contains `key` (server said mismatch).
  void Invalidate(Slice key);

  void Clear();

  size_t size() const;
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, RangeDescriptor, std::less<>> by_start_;
  Stats stats_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_RANGE_CACHE_H_
