#ifndef VELOCE_KV_TIMESTAMP_ORACLE_H_
#define VELOCE_KV_TIMESTAMP_ORACLE_H_

#include <cstdint>
#include <memory>

#include "kv/timestamp.h"
#include "obs/metrics.h"
#include "storage/background.h"

namespace veloce::kv {

/// Options for the batched timestamp oracle.
struct TimestampOracleOptions {
  /// Timestamps reserved from the HLC per refill.
  uint32_t batch_size = 256;
  /// When fewer than this many cached timestamps remain, an asynchronous
  /// prefetch of the next batch is scheduled (null executor = sync only).
  uint32_t refill_threshold = 64;
  storage::BackgroundExecutor* executor = nullptr;
  /// Refill telemetry (may be null): labeled sync/async counters.
  obs::Counter* sync_refills = nullptr;
  obs::Counter* async_refills = nullptr;
};

/// Batched timestamp provider in the shape of ytsaurus's ITimestampProvider:
/// instead of hitting the cluster HLC for every transaction begin, the
/// oracle reserves contiguous batches via GenerateTimestamps(count) and
/// hands them out one at a time, refilling asynchronously on a
/// BackgroundExecutor before the cache runs dry.
///
/// Session guarantee: a timestamp returned by Next() must exceed every
/// commit timestamp acknowledged before the call — otherwise a new
/// transaction could miss data a previous one durably committed. The
/// cluster enforces this by calling Observe(commit_ts) on every commit ack
/// path; Observe fast-forwards the cached window past the observed
/// timestamp (cheap when the commit landed inside the window — the common
/// case, since commit timestamps derive from oracle-issued read timestamps)
/// or invalidates it when the commit jumped beyond the window.
class TimestampOracle {
 public:
  TimestampOracle(HybridLogicalClock* hlc, TimestampOracleOptions options);
  ~TimestampOracle();

  TimestampOracle(const TimestampOracle&) = delete;
  TimestampOracle& operator=(const TimestampOracle&) = delete;

  /// Next cached timestamp; strictly greater than any previously returned
  /// and than any timestamp passed to Observe() before this call.
  Timestamp Next();

  /// Records an acknowledged commit timestamp: future Next() results are
  /// strictly greater than `committed`.
  void Observe(Timestamp committed);

  /// Refill statistics (tests; the obs counters mirror these).
  uint64_t sync_refills() const;
  uint64_t async_refills() const;

 private:
  // Shared with async refill tasks: a task holds a weak_ptr so a refill
  // scheduled on a long-lived executor can outlive the oracle (and the
  // cluster that owns it) safely. The destructor nulls `hlc` under the
  // mutex; a late task then drops out without touching freed memory.
  struct Core {
    std::mutex mu;
    HybridLogicalClock* hlc = nullptr;
    TimestampOracleOptions options;
    // Cached window [next, end], inclusive; empty when !have. The window
    // always shares one wall value (GenerateTimestamps guarantees it).
    Timestamp next;
    Timestamp end;
    bool have = false;
    bool refill_pending = false;
    uint64_t sync_refills = 0;
    uint64_t async_refills = 0;
  };

  static void RefillLocked(Core* core);
  static uint32_t RemainingLocked(const Core& core);

  std::shared_ptr<Core> core_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_TIMESTAMP_ORACLE_H_
