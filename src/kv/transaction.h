#ifndef VELOCE_KV_TRANSACTION_H_
#define VELOCE_KV_TRANSACTION_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.h"

namespace veloce::kv {

/// Commit-path knobs for a client-side transaction coordinator. The
/// defaults enable the whole hot path: writes are buffered until they must
/// become intents, flushed intent batches are pipelined (the client does
/// not wait for them), single-range write-only commits take the one-phase
/// fast path, and everything else commits in parallel (STAGING record +
/// in-flight write proof, acking the client before intent resolution).
struct TxnOptions {
  /// Hold Put/Delete in a client-side buffer instead of writing an intent
  /// per statement. Enables 1PC; reads-own-writes are served from the
  /// buffer.
  bool buffer_writes = true;
  /// Flushed intent batches return after enqueueing; Commit() proves they
  /// all succeeded. Requires an executor (falls back to sync sends).
  bool pipeline_writes = true;
  /// Write-only txns whose buffered writes land in one range commit
  /// server-side in a single batch at a single timestamp.
  bool one_phase_commit = true;
  /// Commit via STAGING with the pipelined writes as the commit condition;
  /// the client is acked one round trip before intents resolve.
  bool parallel_commit = true;
  /// Buffer flush threshold (writes, not bytes).
  size_t max_buffered_writes = 128;
  /// After a parallel-commit ack, resolve intents on the executor instead
  /// of inline. Off by default: the cluster must outlive the task, which
  /// only controlled callers (benches draining the executor) guarantee.
  bool async_finalize = false;
  /// Executor for pipelined flushes / async finalize. Null = the cluster's
  /// background executor; if that is also null, sends are synchronous.
  storage::BackgroundExecutor* executor = nullptr;

  /// The pre-overhaul behaviour: synchronous intent per write, refresh +
  /// committed record + resolution all before the ack.
  static TxnOptions Classic() {
    TxnOptions o;
    o.buffer_writes = false;
    o.pipeline_writes = false;
    o.one_phase_commit = false;
    o.parallel_commit = false;
    return o;
  }
};

/// Client-side transaction coordinator: tracks the keys it wrote (for
/// intent resolution at commit/rollback) and the spans it read (for the
/// read-refresh that validates a commit whose write timestamp was pushed
/// above its read timestamp). This is the interface the SQL layer's
/// executor drives.
///
/// Serializable isolation:
///  * reads happen at read_ts; the range timestamp cache pushes later
///    conflicting writes above read_ts;
///  * writes lay intents at write_ts >= read_ts;
///  * commit at write_ts; if write_ts > read_ts the txn first verifies no
///    foreign commit landed in its read spans within (read_ts, write_ts]
///    (refresh), else it must retry.
///
/// Not thread-safe: one thread drives the coordinator. The internal write
/// pipeline runs on the executor and is synchronized separately.
class Transaction {
 public:
  /// Pluggable transport: how batches reach the KV layer. The default sends
  /// in-process; the SQL layer substitutes a sender that marshals through
  /// the authorized service (modeling the separate-process boundary).
  /// With pipelining the sender is also invoked from executor threads and
  /// must be thread-safe.
  using Sender = std::function<StatusOr<BatchResponse>(const BatchRequest&)>;

  Transaction(KVCluster* cluster, TenantId tenant, int32_t priority = 0,
              Sender sender = nullptr, TxnOptions options = {});
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Status Get(Slice key, std::optional<std::string>* value);
  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  /// Scan with limit (0 = unlimited); resume_key set when the limit stopped
  /// the scan early.
  Status Scan(Slice start, Slice end, uint64_t limit,
              std::vector<MvccScanEntry>* rows, std::string* resume_key = nullptr);

  /// Turns buffered writes into (pipelined) intent writes. Idempotent; a
  /// no-op when nothing is buffered.
  Status Flush();

  /// Commits; returns TransactionRetry if refresh fails (caller re-runs) or
  /// TransactionAborted if a pusher won. Either error guarantees the txn
  /// did not and will not commit. Unavailable with "result unknown" is the
  /// one exception: a pipelined batch failed after the commit was staged
  /// and the outcome could not be resolved either way — the caller must
  /// not assume the writes are absent.
  Status Commit();
  Status Rollback();

  TxnId id() const { return record_.id; }
  Timestamp read_ts() const { return record_.read_ts; }
  Timestamp commit_ts() const { return commit_ts_; }
  bool finalized() const { return finalized_; }
  /// Number of KV batches this transaction issued (eCPU feature probe).
  uint64_t batches_sent() const { return batches_sent_; }
  /// Coalesced read spans currently tracked (refresh cost probe).
  size_t read_span_count() const { return read_spans_.size(); }

  /// Attaches a request trace: every batch this transaction issues carries
  /// it (see BatchRequest::trace). Caller keeps ownership; clear with null.
  void set_trace(obs::TraceContext* trace) { trace_ = trace; }

 private:
  struct BufferedWrite {
    std::string value;
    bool tombstone = false;
  };

  /// Shared with pipelined flush tasks; outlives the coordinator only in
  /// the sense that tasks hold the state alive — every public exit path
  /// waits for the pipeline to drain before touching coordinator fields.
  struct PipelineState {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<BatchRequest> queue;
    bool draining = false;     ///< a drainer task is scheduled/running
    size_t outstanding = 0;    ///< queued + in-flight batches
    Status first_error = Status::OK();
    Timestamp max_bump;        ///< max bumped_write_ts across batches
  };

  BatchRequest MakeRequest() const;
  StatusOr<BatchResponse> SendTracked(const BatchRequest& req);
  /// Records [start, end) as read (end empty = +inf; point reads pass
  /// key..key+'\0'), merging overlapping/adjacent spans.
  void AddReadSpan(const std::string& start, const std::string& end);
  /// True if any tracked key in `keys` intersects [start, end).
  static bool AnyKeyInSpan(const std::set<std::string>& keys, Slice start,
                           Slice end);
  /// Enqueues a flushed batch on the pipeline (schedules a drainer if none
  /// is running).
  void EnqueuePipelined(BatchRequest req);
  /// Drains queued batches one at a time, in order (single-drainer FIFO).
  static void DrainPipeline(std::shared_ptr<PipelineState> st, Sender send);
  /// Blocks until every pipelined batch completed; folds bumps into
  /// max_write_ts_ and returns the pipeline's first error (sticky).
  Status WaitPipeline();
  /// Verifies no foreign commit landed in the read spans within
  /// (read_ts, to]; on success advances read_ts to `to`.
  Status RefreshReads(Timestamp to);
  /// The one-phase commit attempt loop. OK = committed; NotSupported =
  /// caller falls back to the general path; anything else is final.
  Status TryOnePhaseCommit(Nanos start_ns);
  /// A pipelined batch failed after the txn was staged: the failed batch
  /// may still have applied server-side, so the commit outcome is
  /// indeterminate and a blind rollback could contradict a concurrent
  /// recovery. Runs the recovery check to settle it: OK when the commit
  /// condition holds (the txn IS committed), the pipeline error when the
  /// txn was safely aborted, Unavailable("result unknown") when neither
  /// could be proven.
  Status ResolveIndeterminateCommit(const Status& pipeline_error,
                                    const std::vector<std::string>& keys,
                                    Nanos start_ns);
  void RecordCommit(obs::Counter* path_counter, Nanos start_ns);

  KVCluster* cluster_;
  Sender sender_;
  storage::BackgroundExecutor* executor_ = nullptr;
  TxnOptions options_;
  obs::TraceContext* trace_ = nullptr;
  TenantId tenant_;
  TxnRecord record_;
  Timestamp max_write_ts_;  ///< highest bumped write timestamp observed
  std::map<std::string, BufferedWrite> buffer_;  ///< not yet intents
  std::set<std::string> intent_keys_;            ///< flushed (or in flight)
  std::map<std::string, std::string> read_spans_;  ///< start -> end, coalesced
  std::shared_ptr<PipelineState> pipeline_;
  Timestamp commit_ts_;
  bool finalized_ = false;
  std::atomic<uint64_t> batches_sent_{0};
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_TRANSACTION_H_
