#ifndef VELOCE_KV_TRANSACTION_H_
#define VELOCE_KV_TRANSACTION_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.h"

namespace veloce::kv {

/// Client-side transaction coordinator: tracks the keys it wrote (for
/// intent resolution at commit/rollback) and the spans it read (for the
/// read-refresh that validates a commit whose write timestamp was pushed
/// above its read timestamp). This is the interface the SQL layer's
/// executor drives.
///
/// Serializable isolation:
///  * reads happen at read_ts; the range timestamp cache pushes later
///    conflicting writes above read_ts;
///  * writes lay intents at write_ts >= read_ts;
///  * commit at write_ts; if write_ts > read_ts the txn first verifies no
///    foreign commit landed in its read spans within (read_ts, write_ts]
///    (refresh), else it must retry.
class Transaction {
 public:
  /// Pluggable transport: how batches reach the KV layer. The default sends
  /// in-process; the SQL layer substitutes a sender that marshals through
  /// the authorized service (modeling the separate-process boundary).
  using Sender = std::function<StatusOr<BatchResponse>(const BatchRequest&)>;

  Transaction(KVCluster* cluster, TenantId tenant, int32_t priority = 0,
              Sender sender = nullptr);
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Status Get(Slice key, std::optional<std::string>* value);
  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  /// Scan with limit (0 = unlimited); resume_key set when the limit stopped
  /// the scan early.
  Status Scan(Slice start, Slice end, uint64_t limit,
              std::vector<MvccScanEntry>* rows, std::string* resume_key = nullptr);

  /// Commits; returns TransactionRetry if refresh fails (caller re-runs) or
  /// TransactionAborted if a pusher won.
  Status Commit();
  Status Rollback();

  TxnId id() const { return record_.id; }
  Timestamp read_ts() const { return record_.read_ts; }
  Timestamp commit_ts() const { return commit_ts_; }
  bool finalized() const { return finalized_; }
  /// Number of KV batches this transaction issued (eCPU feature probe).
  uint64_t batches_sent() const { return batches_sent_; }

  /// Attaches a request trace: every batch this transaction issues carries
  /// it (see BatchRequest::trace). Caller keeps ownership; clear with null.
  void set_trace(obs::TraceContext* trace) { trace_ = trace; }

 private:
  BatchRequest MakeRequest() const;
  StatusOr<BatchResponse> SendTracked(const BatchRequest& req);

  KVCluster* cluster_;
  Sender sender_;
  obs::TraceContext* trace_ = nullptr;
  TenantId tenant_;
  TxnRecord record_;
  Timestamp max_write_ts_;  ///< highest bumped write timestamp observed
  std::set<std::string> intent_keys_;
  std::vector<std::pair<std::string, std::string>> read_spans_;  // [start,end)
  Timestamp commit_ts_;
  bool finalized_ = false;
  uint64_t batches_sent_ = 0;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_TRANSACTION_H_
