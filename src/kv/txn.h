#ifndef VELOCE_KV_TXN_H_
#define VELOCE_KV_TXN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "kv/mvcc.h"
#include "kv/timestamp.h"

namespace veloce::kv {

enum class TxnStatus : uint8_t {
  kPending = 0,
  kCommitted = 1,
  kAborted = 2,
  /// Parallel commit: the coordinator declared its commit timestamp and the
  /// set of writes still in flight. The txn is implicitly committed once
  /// every declared write holds an intent at or below staged_ts; a pusher
  /// that finds the record staged runs the recovery procedure instead of
  /// pushing (see KVCluster::RecoverStagedTxnLocked).
  kStaging = 3,
};

/// A transaction record: the authoritative state used to resolve intent
/// conflicts. In CockroachDB these live in the range holding the txn's
/// anchor key; here they are centralized in an in-process registry — a
/// documented substitution that preserves push/resolve semantics while
/// avoiding a second replicated keyspace.
struct TxnRecord {
  TxnId id = 0;
  TxnStatus status = TxnStatus::kPending;
  Timestamp read_ts;     ///< timestamp reads observe
  Timestamp write_ts;    ///< provisional commit timestamp (>= read_ts)
  int32_t priority = 0;
  Nanos last_heartbeat = 0;
  /// Parallel commit (status == kStaging): the declared commit timestamp
  /// and the writes whose success is the commit condition. staged_ts is
  /// pinned at Stage() time; write_ts may move above it if a late
  /// pipelined write gets bumped, which makes the commit condition fail
  /// and forces the coordinator to refresh and re-stage.
  Timestamp staged_ts;
  std::vector<std::string> in_flight_writes;
};

/// Outcome of a PushTxn attempt.
struct PushResult {
  /// Final status of the pushee after the push.
  TxnStatus pushee_status = TxnStatus::kPending;
  /// True if the push succeeded (pushee aborted, finalized, or its
  /// timestamp moved above the pusher's).
  bool pushed = false;
  /// Commit timestamp when pushee_status == kCommitted; the staged
  /// timestamp when pushee_status == kStaging.
  Timestamp commit_ts;
};

/// Thread-safe registry of transaction records.
class TxnRegistry {
 public:
  /// Transactions whose heartbeat is older than this are considered
  /// abandoned and may be aborted by any pusher.
  static constexpr Nanos kExpiration = 5 * kSecond;

  explicit TxnRegistry(Clock* clock) : clock_(clock) {}

  /// Creates a new pending transaction reading at `ts`.
  TxnRecord Begin(Timestamp ts, int32_t priority);

  StatusOr<TxnRecord> Get(TxnId id) const;

  /// Refreshes liveness; returns the current record.
  StatusOr<TxnRecord> Heartbeat(TxnId id);

  /// Moves write_ts forward (never backward) for a pending or staging txn.
  Status BumpWriteTimestamp(TxnId id, Timestamp ts);

  /// Transitions pending|staging -> staging: declares commit timestamp
  /// `commit_ts` with `in_flight_writes` as the commit condition. Re-staging
  /// (after a refresh moved the commit timestamp up) is allowed. Fails with
  /// TransactionAborted if a pusher won, Internal if already committed.
  Status Stage(TxnId id, Timestamp commit_ts,
               std::vector<std::string> in_flight_writes);

  /// Transitions pending|staging -> committed at `commit_ts`. Fails with
  /// TransactionAborted if the record was aborted by a pusher.
  Status Commit(TxnId id, Timestamp commit_ts);

  /// Transitions pending|staging -> aborted (idempotent; committed stays
  /// committed).
  Status Abort(TxnId id);

  /// Push: attempts to resolve a conflict with `pushee`. An expired pushee
  /// is aborted outright. Otherwise a higher-priority pusher aborts the
  /// pushee (kPushAbort) or bumps its timestamp above push_to (kPushTs);
  /// ties break toward the pushee (writers win, matching the default CRDB
  /// behaviour of making readers wait). A staging pushee is never pushed
  /// here: the result carries pushed=false and the staged timestamp, and
  /// the caller must run parallel-commit recovery.
  enum class PushType { kAbort, kTimestamp };
  PushResult Push(TxnId pushee, int32_t pusher_priority, PushType type,
                  Timestamp push_to);

  /// Removes committed/aborted records older than kExpiration (GC).
  /// Staging records are never collected here — they may still be
  /// implicitly committed and only the recovery procedure may finalize
  /// them. KVCluster::GarbageCollectTxns() runs recovery on expired
  /// staging records (listed by ExpiredStaging) before calling this, so
  /// abandoned coordinators do not leak records forever.
  size_t GarbageCollect();

  /// Staging records whose heartbeat is past kExpiration: candidates for
  /// the cluster-level recovery sweep (commit-condition check, then
  /// finalize), after which plain GC can reap them.
  std::vector<TxnId> ExpiredStaging() const;

  size_t size() const;

 private:
  Clock* clock_;
  mutable std::mutex mu_;
  std::unordered_map<TxnId, TxnRecord> records_;
  TxnId next_id_ = 1;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_TXN_H_
