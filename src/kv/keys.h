#ifndef VELOCE_KV_KEYS_H_
#define VELOCE_KV_KEYS_H_

#include <string>

#include "common/codec.h"
#include "common/slice.h"
#include "common/status.h"
#include "kv/batch.h"

namespace veloce::kv {

/// Tenant keyspace layout (Fig 2 of the paper): every tenant owns the span
///   [ 0xFE . big_endian(tenant_id),  0xFE . big_endian(tenant_id + 1) )
/// of the single linear KV keyspace. The prefix is prepended by the tenant's
/// SQL layer on every request and checked by the KV authorization boundary.
/// Keys below 0xFE belong to cluster-level system state.

inline std::string TenantPrefix(TenantId id) {
  std::string out;
  out.push_back('\xFE');
  OrderedPutUint64(&out, id);
  return out;
}

inline std::string TenantPrefixEnd(TenantId id) {
  return PrefixEnd(TenantPrefix(id));
}

inline bool KeyInTenantKeyspace(Slice key, TenantId id) {
  const std::string prefix = TenantPrefix(id);
  return key.StartsWith(prefix);
}

/// Extracts the owning tenant from a prefixed key.
inline StatusOr<TenantId> DecodeTenantFromKey(Slice key) {
  if (key.size() < 9 || key[0] != '\xFE') {
    return Status::InvalidArgument("key lacks tenant prefix");
  }
  key.RemovePrefix(1);
  uint64_t id = 0;
  if (!OrderedGetUint64(&key, &id)) {
    return Status::InvalidArgument("bad tenant prefix");
  }
  return id;
}

/// Prepends the tenant prefix to a logical key (what the SQL layer does on
/// the way down) and strips it (on the way back up).
inline std::string AddTenantPrefix(TenantId id, Slice logical_key) {
  std::string out = TenantPrefix(id);
  out.append(logical_key.data(), logical_key.size());
  return out;
}

inline StatusOr<std::string> StripTenantPrefix(TenantId id, Slice prefixed_key) {
  const std::string prefix = TenantPrefix(id);
  if (!prefixed_key.StartsWith(prefix)) {
    return Status::Unauthorized("key outside tenant keyspace");
  }
  prefixed_key.RemovePrefix(prefix.size());
  return prefixed_key.ToString();
}

}  // namespace veloce::kv

#endif  // VELOCE_KV_KEYS_H_
