#include "kv/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace veloce::kv {

namespace {
constexpr int kMaxConflictRetries = 16;
}  // namespace

KVCluster::KVCluster(KVClusterOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : options.obs.clock_or_real()),
      hlc_(clock_),
      txn_registry_(clock_) {
  VELOCE_CHECK(options_.num_nodes >= 1);
  VELOCE_CHECK(options_.replication_factor >= 1);
  VELOCE_CHECK(options_.replication_factor <= options_.num_nodes);
  if (options_.obs.metrics != nullptr) {
    metrics_ = options_.obs.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs_ = options_.obs;
  obs_.clock = clock_;
  obs_.metrics = metrics_;
  lease_moves_c_ = metrics_->counter("veloce_kv_lease_moves_total");
  replica_moves_c_ = metrics_->counter("veloce_kv_replica_moves_total");
  splits_manual_c_ =
      metrics_->counter("veloce_kv_range_splits_total", {{"reason", "manual"}});
  splits_size_c_ =
      metrics_->counter("veloce_kv_range_splits_total", {{"reason", "size"}});
  splits_load_c_ =
      metrics_->counter("veloce_kv_range_splits_total", {{"reason", "load"}});
  merges_manual_c_ =
      metrics_->counter("veloce_kv_range_merges_total", {{"reason", "manual"}});
  merges_cooldown_c_ =
      metrics_->counter("veloce_kv_range_merges_total", {{"reason", "cooldown"}});
  range_mismatch_c_ = metrics_->counter("veloce_kv_range_mismatches_total");
  intent_conflicts_c_ = metrics_->counter("veloce_kv_intent_conflicts_total");
  replica_catchups_replay_c_ =
      metrics_->counter("veloce_kv_replica_catchups_total", {{"mode", "replay"}});
  replica_catchups_snapshot_c_ =
      metrics_->counter("veloce_kv_replica_catchups_total", {{"mode", "snapshot"}});
  replica_demotions_c_ = metrics_->counter("veloce_kv_replica_demotions_total");
  catchup_records_c_ = metrics_->counter("veloce_kv_replica_catchup_records_total");
  lease_epoch_mismatch_c_ =
      metrics_->counter("veloce_kv_lease_epoch_mismatches_total");
  epoch_bumps_c_ = metrics_->counter("veloce_kv_liveness_epoch_bumps_total");
  heartbeat_failures_c_ =
      metrics_->counter("veloce_kv_heartbeat_rounds_failed_total");
  replication_delay_h_ = metrics_->histogram("veloce_kv_replication_delay_ns");
  transport_ =
      options_.transport != nullptr ? options_.transport : &passthrough_;
  txn_metrics_.commits_1pc =
      metrics_->counter("veloce_txn_commits_total", {{"path", "1pc"}});
  txn_metrics_.commits_parallel =
      metrics_->counter("veloce_txn_commits_total", {{"path", "parallel"}});
  txn_metrics_.commits_classic =
      metrics_->counter("veloce_txn_commits_total", {{"path", "classic"}});
  txn_metrics_.retries = metrics_->counter("veloce_txn_retries_total");
  txn_metrics_.pushes = metrics_->counter("veloce_txn_pushes_total");
  txn_metrics_.recoveries =
      metrics_->counter("veloce_txn_staging_recoveries_total");
  txn_metrics_.commit_latency = metrics_->histogram("veloce_txn_commit_latency_ns");
  TimestampOracleOptions oracle_opts;
  oracle_opts.batch_size = options_.timestamp_batch_size;
  oracle_opts.refill_threshold = options_.timestamp_refill_threshold;
  oracle_opts.executor = options_.engine_options.background_executor;
  oracle_opts.sync_refills =
      metrics_->counter("veloce_txn_oracle_refills_total", {{"mode", "sync"}});
  oracle_opts.async_refills =
      metrics_->counter("veloce_txn_oracle_refills_total", {{"mode", "async"}});
  oracle_ = std::make_unique<TimestampOracle>(&hlc_, oracle_opts);
  lease_gauge_cb_ = metrics_->AddCollectCallback([this] {
    std::lock_guard<std::recursive_mutex> l(mu_);
    std::vector<double> counts(nodes_.size(), 0);
    // Load is sampled in aggregate (total/max QPS, cooled count) rather
    // than per range: at 100k ranges a per-range series would swamp the
    // registry, and splits/merges key off per-range state directly.
    const Nanos now = clock_->Now();
    double qps_total = 0, qps_max = 0, cooled = 0;
    for (const auto& [rid, state] : ranges_) {
      counts[state->desc.leaseholder] += 1;
      const double qps = state->load.Qps(now);
      qps_total += qps;
      if (qps > qps_max) qps_max = qps;
      if (state->cooled_since >= 0) cooled += 1;
    }
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      metrics_->gauge("veloce_kv_leases", {{"node", std::to_string(n)}})
          ->Set(counts[n]);
    }
    metrics_->gauge("veloce_kv_ranges")->Set(static_cast<double>(ranges_.size()));
    metrics_->gauge("veloce_kv_range_qps_total")->Set(qps_total);
    metrics_->gauge("veloce_kv_range_qps_max")->Set(qps_max);
    metrics_->gauge("veloce_kv_ranges_cooled")->Set(cooled);
  });
  for (int i = 0; i < options_.num_nodes; ++i) {
    std::string region = "local";
    if (static_cast<size_t>(i) < options_.node_regions.size()) {
      region = options_.node_regions[i];
    }
    nodes_.push_back(std::make_unique<KVNode>(static_cast<NodeId>(i), region,
                                              options_.engine_options, obs_));
  }
  liveness_.resize(nodes_.size());
  // One range covering the whole keyspace, replicated on the first RF nodes.
  RangeDescriptor desc;
  desc.range_id = next_range_id_++;
  desc.start_key = "";
  desc.end_key = "";
  desc.tenant_id = 0;
  for (int i = 0; i < options_.replication_factor; ++i) {
    desc.replicas.push_back(static_cast<NodeId>(i));
  }
  desc.leaseholder = 0;
  std::lock_guard<std::recursive_mutex> l(mu_);
  VELOCE_CHECK_OK(AddRangeLocked(desc));
}

KVCluster::~KVCluster() = default;

Status KVCluster::AddRangeLocked(RangeDescriptor desc) {
  auto state = std::make_unique<RangeState>();
  state->desc = std::move(desc);
  by_start_[state->desc.start_key] = state->desc.range_id;
  ranges_[state->desc.range_id] = std::move(state);
  return Status::OK();
}

KVCluster::RangeState* KVCluster::LookupRangeLocked(Slice key) {
  auto it = by_start_.upper_bound(key.ToString());
  if (it == by_start_.begin()) return nullptr;
  --it;
  RangeState* range = ranges_[it->second].get();
  if (!range->desc.Contains(key)) return nullptr;
  return range;
}

StatusOr<KVCluster::RangeState*> KVCluster::ResolveRangeLocked(
    const BatchRequest& req, Slice key) {
  if (req.range_id == 0) {
    RangeState* range = LookupRangeLocked(key);
    if (range == nullptr) return Status::NotFound("no range for key");
    return range;
  }
  auto it = ranges_.find(req.range_id);
  if (it == ranges_.end()) {
    range_mismatch_c_->Inc();
    return Status::RangeKeyMismatch("range " + std::to_string(req.range_id) +
                                    " no longer exists (merged away)");
  }
  RangeState* range = it->second.get();
  if (!range->desc.Contains(key)) {
    range_mismatch_c_->Inc();
    return Status::RangeKeyMismatch(
        "key outside range " + std::to_string(req.range_id) +
        " (span changed since the descriptor was cached)");
  }
  return range;
}

StatusOr<RangeDescriptor> KVCluster::LookupRange(Slice key) const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto* self = const_cast<KVCluster*>(this);
  RangeState* range = self->LookupRangeLocked(key);
  if (range == nullptr) return Status::NotFound("no range for key");
  return range->desc;
}

Status KVCluster::CheckTenantBoundsLocked(const BatchRequest& req, Slice key,
                                          Slice end_key) const {
  if (req.tenant_id == kSystemTenantId) return Status::OK();  // operator path
  if (!KeyInTenantKeyspace(key, req.tenant_id)) {
    return Status::Unauthorized("request key outside tenant keyspace");
  }
  if (!end_key.empty()) {
    // The end key is exclusive; it must not exceed the tenant's prefix end.
    const std::string limit = TenantPrefixEnd(req.tenant_id);
    if (Slice(end_key) > Slice(limit)) {
      return Status::Unauthorized("scan end outside tenant keyspace");
    }
  }
  return Status::OK();
}

storage::Engine* KVCluster::LeaseholderEngineLocked(const RangeState& range) {
  return nodes_[range.desc.leaseholder]->engine();
}

StatusOr<NodeId> KVCluster::PickReadNodeLocked(const RangeState& range,
                                               const BatchRequest& req,
                                               const RequestUnion& r) const {
  const NodeId leaseholder = range.desc.leaseholder;
  const bool holder_live = nodes_[leaseholder]->live();
  if (holder_live && LeaseValidLocked(range)) return leaseholder;
  // Follower read: stale enough and explicitly allowed. Only a fully
  // caught-up replica may serve one — a replica behind the range log could
  // be missing writes below the closed timestamp.
  const bool is_read = r.type == RequestType::kGet || r.type == RequestType::kScan;
  if (is_read && req.allow_follower_reads && !req.ts.IsEmpty() &&
      req.ts <= ClosedTimestamp()) {
    for (NodeId n : range.desc.replicas) {
      if (nodes_[n]->live() && nodes_[n]->engine() != nullptr &&
          range.log.Applied(n) == range.log.committed_index()) {
        return n;
      }
    }
  }
  if (!holder_live) return Status::Unavailable("leaseholder node is not live");
  lease_epoch_mismatch_c_->Inc();
  return Status::LeaseEpochMismatch(
      "range " + std::to_string(range.desc.range_id) + " lease (epoch " +
      std::to_string(range.desc.lease_epoch) + ") is no longer valid at node " +
      std::to_string(leaseholder));
}

StatusOr<BatchResponse> KVCluster::Send(const BatchRequest& req) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  if (req.commit_txn) return ExecuteOnePhaseLocked(req);
  BatchResponse resp;
  const bool read_only = req.IsReadOnly();
  std::vector<bool> counted(nodes_.size(), false);
  // Highest timestamp of a non-transactional write this batch applied; fed
  // to the oracle so later BeginTxn reads observe it (session guarantee).
  Timestamp applied_write_ts;

  const Nanos load_now = clock_->Now();
  for (size_t i = 0; i < req.requests.size(); ++i) {
    const RequestUnion& r = req.requests[i];
    VELOCE_ASSIGN_OR_RETURN(RangeState * range, ResolveRangeLocked(req, r.key));
    VELOCE_RETURN_IF_ERROR(CheckTenantBoundsLocked(req, r.key, r.end_key));
    range->load.Record(load_now, r.key, 1.0,
                       1.0 + static_cast<double>(r.key.size() + r.value.size()) /
                                 1024.0);
    VELOCE_ASSIGN_OR_RETURN(NodeId serving_node, PickReadNodeLocked(*range, req, r));
    const bool is_write =
        r.type == RequestType::kPut || r.type == RequestType::kDelete;
    if (is_write && !nodes_[range->desc.leaseholder]->live()) {
      return Status::Unavailable("leaseholder node is not live");
    }
    KVNode* leaseholder = nodes_[serving_node].get();
    if (interceptor_ && !counted[leaseholder->id()]) {
      VELOCE_RETURN_IF_ERROR(interceptor_(leaseholder->id(), req));
    }
    // Per-node batch accounting: count the batch once per node, every
    // request individually.
    if (!counted[leaseholder->id()]) {
      counted[leaseholder->id()] = true;
      leaseholder->RecordBatch(read_only);
    }

    if (is_write && req.txn_id != 0) {
      // Pipelined intent batches: gather the contiguous run of this txn's
      // writes landing on the same range and execute them as one group —
      // one timestamp, one WriteBatch, one replication round.
      std::vector<const RequestUnion*> group;
      group.push_back(&r);
      size_t j = i + 1;
      for (; j < req.requests.size(); ++j) {
        const RequestUnion& nxt = req.requests[j];
        const bool nxt_write =
            nxt.type == RequestType::kPut || nxt.type == RequestType::kDelete;
        if (!nxt_write || !range->desc.Contains(nxt.key)) break;
        VELOCE_RETURN_IF_ERROR(CheckTenantBoundsLocked(req, nxt.key, nxt.end_key));
        range->load.Record(load_now, nxt.key, 1.0,
                           1.0 + static_cast<double>(nxt.key.size() +
                                                     nxt.value.size()) /
                                     1024.0);
        group.push_back(&nxt);
      }
      for (const RequestUnion* w : group) {
        leaseholder->RecordWriteRequest(w->key.size() + w->value.size());
      }
      obs::ScopedSpan span(req.trace, "storage_write");
      VELOCE_RETURN_IF_ERROR(ExecuteTxnWriteGroupLocked(range, req, group, &resp));
      for (size_t k = 0; k < group.size(); ++k) resp.responses.emplace_back();
      i = j - 1;
      continue;
    }

    ResponseUnion out;
    switch (r.type) {
      case RequestType::kGet:
      case RequestType::kScan: {
        leaseholder->RecordReadRequest();
        obs::ScopedSpan span(req.trace, "storage_read");
        VELOCE_RETURN_IF_ERROR(ExecuteReadLocked(range, req, r, &out, serving_node));
        uint64_t bytes = out.value.size();
        for (const auto& row : out.rows) {
          bytes += row.key.size() + row.value.size();
        }
        leaseholder->AddReadBytes(bytes);
        break;
      }
      case RequestType::kPut:
      case RequestType::kDelete: {
        leaseholder->RecordWriteRequest(r.key.size() + r.value.size());
        obs::ScopedSpan span(req.trace, "storage_write");
        Timestamp applied;
        VELOCE_RETURN_IF_ERROR(ExecuteWriteLocked(range, req, r, &resp, &applied));
        if (applied_write_ts < applied) applied_write_ts = applied;
        break;
      }
    }
    resp.responses.push_back(std::move(out));
  }
  if (!applied_write_ts.IsEmpty()) oracle_->Observe(applied_write_ts);
  resp.now = hlc_.Now();
  return resp;
}

Status KVCluster::HandleConflictLocked(RangeState* range, Slice key,
                                       const IntentMeta& intent,
                                       const BatchRequest& req, bool for_write) {
  intent_conflicts_c_->Inc();
  txn_metrics_.pushes->Inc();
  const auto push_type = for_write ? TxnRegistry::PushType::kAbort
                                   : TxnRegistry::PushType::kTimestamp;
  PushResult pr = txn_registry_.Push(intent.txn_id, req.txn_priority, push_type, req.ts);
  if (!pr.pushed && pr.pushee_status == TxnStatus::kStaging) {
    // The owner is mid-parallel-commit (possibly implicitly committed, or
    // abandoned). Run the recovery procedure to find out.
    VELOCE_ASSIGN_OR_RETURN(pr, RecoverStagedTxnLocked(intent.txn_id));
  }
  if (!pr.pushed) {
    return Status::WriteIntentError("conflicting intent of txn " +
                                    std::to_string(intent.txn_id));
  }
  // Apply the outcome through the range log so every replica — including
  // ones that are dead or partitioned right now — converges on the same
  // engine state when it catches up. (Resolutions used to bypass the log
  // and silently diverge any replica that missed them.)
  LogRecord rec;
  rec.key = key.ToString();
  rec.txn_id = intent.txn_id;
  switch (pr.pushee_status) {
    case TxnStatus::kCommitted:
      rec.kind = LogRecord::Kind::kResolveIntent;
      rec.commit = true;
      rec.ts = pr.commit_ts;
      break;
    case TxnStatus::kAborted:
      rec.kind = LogRecord::Kind::kResolveIntent;
      rec.commit = false;
      break;
    case TxnStatus::kPending:
      // Timestamp push: rewrite the intent above the reader.
      rec.kind = LogRecord::Kind::kUpdateIntentTs;
      rec.ts = req.ts.Next();
      break;
    case TxnStatus::kStaging:
      // Recovery above always resolves staging to committed/aborted or
      // returns an error; a successful push never reports staging.
      return Status::Internal("push resolved to staging");
  }
  return ReplicateRecordLocked(range, std::move(rec), nullptr,
                               /*require_quorum=*/false);
}

Status KVCluster::ExecuteReadLocked(RangeState* range, const BatchRequest& req,
                                    const RequestUnion& r, ResponseUnion* out,
                                    NodeId serving_node) {
  const Timestamp read_ts = req.ts.IsEmpty() ? hlc_.Now() : req.ts;
  const bool follower = serving_node != range->desc.leaseholder;
  storage::Engine* engine = nodes_[serving_node]->engine();
  if (engine == nullptr) {
    return Status::Unavailable("node " + std::to_string(serving_node) +
                               " has no engine (failed crash-restart)");
  }

  if (r.type == RequestType::kGet) {
    for (int attempt = 0; attempt < kMaxConflictRetries; ++attempt) {
      VELOCE_ASSIGN_OR_RETURN(MvccGetResult res,
                              MvccGet(engine, r.key, read_ts, req.txn_id));
      if (res.conflict.has_value()) {
        VELOCE_RETURN_IF_ERROR(
            HandleConflictLocked(range, r.key, *res.conflict, req, false));
        continue;
      }
      // Follower reads are below the closed timestamp; no writer can land
      // under them, so they need no timestamp-cache entry.
      if (!follower) range->tscache.RecordRead(r.key, read_ts);
      out->found = res.value.has_value();
      if (res.value.has_value()) out->value = std::move(*res.value);
      return Status::OK();
    }
    return Status::WriteIntentError("too many conflict retries");
  }

  // Scan: may span ranges; walk them left to right.
  std::string cursor = r.key;
  uint64_t remaining = r.limit;
  RangeState* cur_range = range;
  while (true) {
    VELOCE_ASSIGN_OR_RETURN(NodeId cur_node, PickReadNodeLocked(*cur_range, req, r));
    const bool cur_follower = cur_node != cur_range->desc.leaseholder;
    storage::Engine* cur_engine = nodes_[cur_node]->engine();
    // Clamp the scan to this range.
    std::string scan_end = r.end_key;
    const std::string& range_end = cur_range->desc.end_key;
    if (!range_end.empty() && (scan_end.empty() || Slice(range_end) < Slice(scan_end))) {
      scan_end = range_end;
    }
    MvccScanResult res;
    bool done = false;
    for (int attempt = 0; attempt < kMaxConflictRetries; ++attempt) {
      VELOCE_ASSIGN_OR_RETURN(res, MvccScan(cur_engine, cursor, scan_end, read_ts,
                                            remaining, req.txn_id));
      if (res.conflict.has_value()) {
        VELOCE_RETURN_IF_ERROR(HandleConflictLocked(
            cur_range, Slice(res.entries.empty() ? cursor : res.entries.back().key),
            *res.conflict, req, false));
        continue;
      }
      done = true;
      break;
    }
    if (!done) return Status::WriteIntentError("too many conflict retries");
    if (!cur_follower) cur_range->tscache.RecordReadSpan(cursor, scan_end, read_ts);
    if (!r.pushdown.empty()) {
      // Filtering / projection / fragment push-down: evaluate at the KV node
      // so filtered rows, projected-away columns, and (for aggregation
      // fragments) everything but partial states never cross the boundary.
      // The batch hook sees the whole segment and handles every spec shape;
      // the per-row hook is the filter/projection-only fallback.
      if (fragment_hook_) {
        VELOCE_ASSIGN_OR_RETURN(
            std::vector<MvccScanEntry> kept,
            fragment_hook_(std::move(res.entries), Slice(r.pushdown)));
        for (auto& e : kept) out->rows.push_back(std::move(e));
      } else if (pushdown_hook_) {
        for (auto& e : res.entries) {
          VELOCE_ASSIGN_OR_RETURN(std::optional<std::string> kept,
                                  pushdown_hook_(Slice(e.value), Slice(r.pushdown)));
          if (!kept.has_value()) continue;
          out->rows.push_back({std::move(e.key), std::move(*kept)});
        }
      } else {
        return Status::NotSupported("scan pushdown requested but no hook registered");
      }
    } else {
      for (auto& e : res.entries) out->rows.push_back(std::move(e));
    }
    if (!res.resume_key.empty()) {
      out->resume_key = res.resume_key;  // limit reached
      return Status::OK();
    }
    if (remaining != 0) {
      const uint64_t got = out->rows.size();
      if (got >= r.limit) return Status::OK();
      remaining = r.limit - got;
    }
    // Move to the next range, if the scan extends past this one.
    if (range_end.empty()) return Status::OK();
    if (!r.end_key.empty() && Slice(range_end) >= Slice(r.end_key)) {
      return Status::OK();
    }
    cursor = range_end;
    cur_range = LookupRangeLocked(cursor);
    if (cur_range == nullptr) return Status::NotFound("range gap during scan");
  }
}

Status KVCluster::ExecuteWriteLocked(RangeState* range, const BatchRequest& req,
                                     const RequestUnion& r, BatchResponse* resp,
                                     Timestamp* applied_ts) {
  storage::Engine* engine = LeaseholderEngineLocked(*range);
  if (engine == nullptr) {
    return Status::Unavailable("leaseholder has no engine (failed crash-restart)");
  }
  VELOCE_RETURN_IF_ERROR(CheckLeaseLocked(*range));
  Timestamp write_ts = req.ts.IsEmpty() ? hlc_.Now() : req.ts;
  // Serializability: never write below a timestamp someone already read at,
  // nor at or below the closed timestamp (follower reads rely on it).
  const Timestamp max_read = range->tscache.MaxReadTimestamp(r.key);
  if (write_ts <= max_read) write_ts = max_read.Next();
  const Timestamp closed = ClosedTimestamp();
  if (write_ts <= closed) write_ts = closed.Next();

  // Foreign intents block writers (write-write conflicts abort or wait).
  for (int attempt = 0;; ++attempt) {
    VELOCE_ASSIGN_OR_RETURN(auto intent, MvccGetIntent(engine, r.key));
    if (!intent.has_value() || intent->txn_id == req.txn_id) break;
    if (attempt >= kMaxConflictRetries) {
      return Status::WriteIntentError("too many conflict retries");
    }
    VELOCE_RETURN_IF_ERROR(HandleConflictLocked(range, r.key, *intent, req, true));
  }

  storage::WriteBatch batch;
  const bool tombstone = r.type == RequestType::kDelete;
  if (req.txn_id != 0) {
    Status s = txn_registry_.BumpWriteTimestamp(req.txn_id, write_ts);
    if (!s.ok()) return s;
    MvccPutIntent(&batch, r.key, req.txn_id, write_ts, tombstone, r.value);
  } else if (tombstone) {
    MvccPutTombstone(&batch, r.key, write_ts);
  } else {
    MvccPutValue(&batch, r.key, write_ts, r.value);
  }
  {
    obs::ScopedSpan span(req.trace, "replication");
    VELOCE_RETURN_IF_ERROR(ReplicateLocked(range, batch, req.tenant_id));
  }
  range->approx_bytes += r.key.size() + r.value.size();
  if (write_ts > req.ts && resp->bumped_write_ts < write_ts) {
    resp->bumped_write_ts = write_ts;
  }
  hlc_.Update(write_ts);
  if (applied_ts != nullptr) *applied_ts = write_ts;
  return Status::OK();
}

Status KVCluster::ExecuteTxnWriteGroupLocked(
    RangeState* range, const BatchRequest& req,
    const std::vector<const RequestUnion*>& writes, BatchResponse* resp) {
  storage::Engine* engine = LeaseholderEngineLocked(*range);
  if (engine == nullptr) {
    return Status::Unavailable("leaseholder has no engine (failed crash-restart)");
  }
  VELOCE_RETURN_IF_ERROR(CheckLeaseLocked(*range));
  // One timestamp for the whole group: the maximum over every key's
  // timestamp-cache constraint, the closed timestamp, and the request's.
  Timestamp group_ts = req.ts.IsEmpty() ? hlc_.Now() : req.ts;
  for (const RequestUnion* r : writes) {
    const Timestamp max_read = range->tscache.MaxReadTimestamp(r->key);
    if (group_ts <= max_read) group_ts = max_read.Next();
  }
  const Timestamp closed = ClosedTimestamp();
  if (group_ts <= closed) group_ts = closed.Next();

  // Foreign intents block writers (write-write conflicts abort or wait).
  for (const RequestUnion* r : writes) {
    for (int attempt = 0;; ++attempt) {
      VELOCE_ASSIGN_OR_RETURN(auto intent, MvccGetIntent(engine, r->key));
      if (!intent.has_value() || intent->txn_id == req.txn_id) break;
      if (attempt >= kMaxConflictRetries) {
        return Status::WriteIntentError("too many conflict retries");
      }
      VELOCE_RETURN_IF_ERROR(HandleConflictLocked(range, r->key, *intent, req, true));
    }
  }

  VELOCE_RETURN_IF_ERROR(txn_registry_.BumpWriteTimestamp(req.txn_id, group_ts));
  storage::WriteBatch batch;
  uint64_t bytes = 0;
  for (const RequestUnion* r : writes) {
    MvccPutIntent(&batch, r->key, req.txn_id, group_ts,
                  r->type == RequestType::kDelete, r->value);
    bytes += r->key.size() + r->value.size();
  }
  {
    obs::ScopedSpan span(req.trace, "replication");
    VELOCE_RETURN_IF_ERROR(ReplicateLocked(range, batch, req.tenant_id));
  }
  range->approx_bytes += bytes;
  if (group_ts > req.ts && resp->bumped_write_ts < group_ts) {
    resp->bumped_write_ts = group_ts;
  }
  hlc_.Update(group_ts);
  return Status::OK();
}

StatusOr<BatchResponse> KVCluster::ExecuteOnePhaseLocked(const BatchRequest& req) {
  if (req.txn_id == 0) return Status::InvalidArgument("1pc commit requires a txn");
  if (req.requests.empty()) return Status::InvalidArgument("empty 1pc commit");
  VELOCE_ASSIGN_OR_RETURN(RangeState * range,
                          ResolveRangeLocked(req, req.requests[0].key));
  const Nanos load_now = clock_->Now();
  for (const auto& r : req.requests) {
    if (r.type != RequestType::kPut && r.type != RequestType::kDelete) {
      return Status::InvalidArgument("1pc batch must contain only writes");
    }
    VELOCE_RETURN_IF_ERROR(CheckTenantBoundsLocked(req, r.key, r.end_key));
    if (!range->desc.Contains(r.key)) {
      if (req.range_id != 0) {
        // The cached descriptor went stale mid-batch (a split moved part of
        // the write set); redirect rather than reporting a spurious
        // spans-ranges fallback.
        range_mismatch_c_->Inc();
        return Status::RangeKeyMismatch(
            "1pc write set no longer fits range " +
            std::to_string(req.range_id));
      }
      return Status::NotSupported("1pc batch spans ranges");
    }
    range->load.Record(load_now, r.key, 1.0,
                       1.0 + static_cast<double>(r.key.size() + r.value.size()) /
                                 1024.0);
  }
  if (!nodes_[range->desc.leaseholder]->live()) {
    return Status::Unavailable("leaseholder node is not live");
  }
  storage::Engine* engine = LeaseholderEngineLocked(*range);
  if (engine == nullptr) {
    return Status::Unavailable("leaseholder has no engine (failed crash-restart)");
  }
  VELOCE_RETURN_IF_ERROR(CheckLeaseLocked(*range));
  KVNode* leaseholder = nodes_[range->desc.leaseholder].get();
  if (interceptor_) {
    VELOCE_RETURN_IF_ERROR(interceptor_(leaseholder->id(), req));
  }
  leaseholder->RecordBatch(false);
  for (const auto& r : req.requests) {
    leaseholder->RecordWriteRequest(r.key.size() + r.value.size());
  }

  Timestamp ts = req.ts.IsEmpty() ? hlc_.Now() : req.ts;
  for (const auto& r : req.requests) {
    const Timestamp max_read = range->tscache.MaxReadTimestamp(r.key);
    if (ts <= max_read) ts = max_read.Next();
  }
  const Timestamp closed = ClosedTimestamp();
  if (ts <= closed) ts = closed.Next();

  for (const auto& r : req.requests) {
    for (int attempt = 0;; ++attempt) {
      VELOCE_ASSIGN_OR_RETURN(auto intent, MvccGetIntent(engine, r.key));
      if (!intent.has_value()) break;
      if (intent->txn_id == req.txn_id) {
        // The txn already flushed intents; 1PC no longer applies and the
        // client falls back to the general commit path.
        return Status::NotSupported("txn holds intents; 1pc unavailable");
      }
      if (attempt >= kMaxConflictRetries) {
        return Status::WriteIntentError("too many conflict retries");
      }
      VELOCE_RETURN_IF_ERROR(HandleConflictLocked(range, r.key, *intent, req, true));
    }
  }

  VELOCE_ASSIGN_OR_RETURN(TxnRecord rec, txn_registry_.Get(req.txn_id));
  if (rec.status == TxnStatus::kAborted) {
    return Status::TransactionAborted("aborted by a concurrent pusher");
  }
  if (rec.status != TxnStatus::kPending) {
    return Status::Internal("1pc commit on a non-pending txn");
  }
  if (ts < rec.write_ts) ts = rec.write_ts;
  BatchResponse resp;
  if (ts > req.ts && !req.can_forward_ts) {
    // The commit timestamp must move but the txn performed reads. Nothing
    // is written; the client refreshes its read spans and retries.
    resp.one_pc_rejected_ts = ts;
    resp.now = hlc_.Now();
    return resp;
  }
  // Write committed versions directly — no intents, no separate resolution
  // round. Replication must succeed BEFORE the record commits: the cluster
  // mutex is held throughout, so no pusher can observe the gap, and a
  // replication failure (quorum loss, WAL fault) leaves the record pending
  // — the client's Rollback still works and the registry never claims a
  // commit that wrote nothing.
  storage::WriteBatch batch;
  uint64_t bytes = 0;
  for (const auto& r : req.requests) {
    if (r.type == RequestType::kDelete) {
      MvccPutTombstone(&batch, r.key, ts);
    } else {
      MvccPutValue(&batch, r.key, ts, r.value);
    }
    bytes += r.key.size() + r.value.size();
  }
  {
    obs::ScopedSpan span(req.trace, "replication");
    VELOCE_RETURN_IF_ERROR(ReplicateLocked(range, batch, req.tenant_id));
  }
  VELOCE_RETURN_IF_ERROR(txn_registry_.Commit(req.txn_id, ts));
  range->approx_bytes += bytes;
  hlc_.Update(ts);
  oracle_->Observe(ts);
  resp.responses.resize(req.requests.size());
  resp.commit_ts = ts;
  resp.now = hlc_.Now();
  return resp;
}

StatusOr<PushResult> KVCluster::RecoverStagedTxnLocked(TxnId id,
                                                       bool coordinator_abandoned) {
  VELOCE_ASSIGN_OR_RETURN(TxnRecord rec, txn_registry_.Get(id));
  if (rec.status != TxnStatus::kStaging) {
    // Finalized while we were deciding to recover.
    PushResult pr;
    pr.pushee_status = rec.status;
    pr.pushed = rec.status != TxnStatus::kPending;
    pr.commit_ts = rec.write_ts;
    return pr;
  }
  txn_metrics_.recoveries->Inc();
  // Commit condition: every declared in-flight write holds this txn's
  // intent at or below staged_ts.
  std::vector<std::string> missing;
  for (const auto& key : rec.in_flight_writes) {
    RangeState* range = LookupRangeLocked(key);
    storage::Engine* engine =
        range != nullptr ? LeaseholderEngineLocked(*range) : nullptr;
    if (engine == nullptr) {
      return Status::Unavailable("cannot verify staged write (range unavailable)");
    }
    VELOCE_ASSIGN_OR_RETURN(auto intent, MvccGetIntent(engine, key));
    if (!intent.has_value() || intent->txn_id != id || intent->ts > rec.staged_ts) {
      missing.push_back(key);
    }
  }
  if (missing.empty()) {
    // Implicitly committed: finalize on the coordinator's behalf. The
    // coordinator's own CommitTxn later is an idempotent no-op.
    Status s = txn_registry_.Commit(id, rec.staged_ts);
    if (!s.ok()) return s;
    oracle_->Observe(rec.staged_ts);
    PushResult pr;
    pr.pushee_status = TxnStatus::kCommitted;
    pr.pushed = true;
    pr.commit_ts = rec.staged_ts;
    return pr;
  }
  const bool expired =
      coordinator_abandoned ||
      clock_->Now() - rec.last_heartbeat > TxnRegistry::kExpiration;
  if (!expired) {
    // A live parallel commit is still in flight; back off and let the
    // coordinator finish.
    return Status::WriteIntentError("txn " + std::to_string(id) +
                                    " is committing (staged)");
  }
  // Abandoned staging that never completed. Poison the missing keys in the
  // tscache at staged_ts so a late pipelined write cannot land at or below
  // it and retroactively satisfy the stale staging, then abort.
  for (const auto& key : missing) {
    RangeState* range = LookupRangeLocked(key);
    if (range != nullptr) range->tscache.RecordRead(key, rec.staged_ts);
  }
  VELOCE_RETURN_IF_ERROR(txn_registry_.Abort(id));
  PushResult pr;
  pr.pushee_status = TxnStatus::kAborted;
  pr.pushed = true;
  return pr;
}

Status KVCluster::ReplicateLocked(RangeState* range, const storage::WriteBatch& batch,
                                  TenantId tenant) {
  LogRecord rec;
  rec.kind = LogRecord::Kind::kBatch;
  rec.payload = batch.rep();
  rec.tenant = tenant;
  return ReplicateRecordLocked(range, std::move(rec), &batch,
                               /*require_quorum=*/true);
}

Status KVCluster::ApplyRecordLocked(KVNode* node, const LogRecord& rec,
                                    const storage::WriteBatch* batch,
                                    uint32_t copies, bool charge_tenant) {
  storage::Engine* engine = node->engine();
  if (engine == nullptr) {
    return Status::Unavailable("node " + std::to_string(node->id()) +
                               " has no engine (failed crash-restart)");
  }
  storage::WriteBatch decoded;
  if (rec.kind == LogRecord::Kind::kBatch && batch == nullptr) {
    VELOCE_RETURN_IF_ERROR(decoded.SetContents(rec.payload));
    batch = &decoded;
  }
  for (uint32_t c = 0; c < copies; ++c) {
    switch (rec.kind) {
      case LogRecord::Kind::kBatch:
        VELOCE_RETURN_IF_ERROR(engine->Write(*batch));
        // Duplicate deliveries and catch-up replays are a network
        // artifact, not client bytes.
        if (c == 0 && charge_tenant && rec.tenant != 0) {
          node->AddTenantWriteBytes(rec.tenant, batch->PayloadBytes());
        }
        break;
      case LogRecord::Kind::kResolveIntent:
        // A no-op when the intent is already gone, so replays and
        // duplicates are safe.
        VELOCE_RETURN_IF_ERROR(
            MvccResolveIntent(engine, rec.key, rec.txn_id, rec.commit, rec.ts));
        break;
      case LogRecord::Kind::kUpdateIntentTs:
        VELOCE_RETURN_IF_ERROR(
            MvccUpdateIntentTimestamp(engine, rec.key, rec.txn_id, rec.ts));
        break;
    }
  }
  return Status::OK();
}

Status KVCluster::ReplicateRecordLocked(RangeState* range, LogRecord rec,
                                        const storage::WriteBatch* batch,
                                        bool require_quorum) {
  const NodeId leader = range->desc.leaseholder;
  const bool leader_up = NodeUpLocked(leader);
  if (require_quorum && !leader_up) {
    return Status::Unavailable("leaseholder node is not live");
  }
  const uint64_t next_index = range->log.committed_index() + 1;

  // Phase 1: ask the transport which replicas this round can reach. The
  // leaseholder applies locally (no network hop). A replica whose
  // crash-restart failed has no engine; it cannot accept the write or
  // count toward quorum, exactly like a dead node.
  struct Delivery {
    NodeId node = 0;
    bool up = false;
    LinkDecision d;
  };
  std::vector<Delivery> plan;
  plan.reserve(range->desc.replicas.size());
  int acks = leader_up ? 1 : 0;
  Nanos max_delay = 0;
  for (NodeId n : range->desc.replicas) {
    if (n == leader) continue;
    Delivery del;
    del.node = n;
    del.up = NodeUpLocked(n);
    if (del.up) {
      del.d = transport_->DeliverReplication(leader, n, next_index);
      if (del.d.ack) ++acks;
      if (del.d.delay > max_delay) max_delay = del.d.delay;
    } else {
      del.d.deliver = false;
      del.d.ack = false;
    }
    plan.push_back(del);
  }
  const int quorum = static_cast<int>(range->desc.replicas.size()) / 2 + 1;
  if (require_quorum && acks < quorum) {
    return Status::Unavailable("quorum unreachable for range " +
                               std::to_string(range->desc.range_id));
  }

  // Phase 2: the leaseholder applies first, so a local engine failure
  // rejects the round with nothing logged anywhere (the failed write can
  // never resurface through catch-up).
  if (leader_up) {
    VELOCE_RETURN_IF_ERROR(ApplyRecordLocked(nodes_[leader].get(), rec, batch, 1));
  }
  const uint64_t index = range->log.Append(std::move(rec));
  const LogRecord& stored = range->log.records().back();
  if (leader_up) range->log.SetApplied(leader, index);

  // Phase 3: deliver to the remotes the transport reached. An undelivered
  // message, a lost ack, or a minority engine failure demotes that replica
  // to needs-catch-up rather than failing a batch that has quorum.
  int applied = leader_up ? 1 : 0;
  for (const Delivery& del : plan) {
    if (!del.up || !del.d.deliver) {
      if (del.up && del.d.ack) {
        // A phantom ack: the message never arrived yet the ack did —
        // physically impossible on a real network, supplied only by the
        // linearizability checker's self-test transport. The leaseholder
        // can only trust what it is told, so the replica is recorded as
        // applied, poisoning quorum and catch-up bookkeeping exactly as a
        // lying replica would.
        ++applied;
        range->log.SetApplied(del.node, index);
        continue;
      }
      if (del.up) replica_demotions_c_->Inc();
      continue;
    }
    // A replica that missed earlier rounds replays the gap first so its
    // applied position stays contiguous.
    if (range->log.Applied(del.node) < index - 1) {
      if (!CatchUpReplicaLocked(range, del.node, index - 1).ok()) {
        replica_demotions_c_->Inc();
        continue;
      }
      if (range->log.Applied(del.node) >= index) {
        ++applied;  // snapshot catch-up already covered this record
        continue;
      }
    }
    Status s = ApplyRecordLocked(nodes_[del.node].get(), stored, batch, del.d.copies);
    if (!s.ok()) {
      replica_demotions_c_->Inc();
      continue;
    }
    ++applied;
    // Without the ack the leaseholder must assume the worst and re-replay
    // later (idempotent), so only an acked apply advances the position.
    if (del.d.ack) range->log.SetApplied(del.node, index);
  }
  if (require_quorum && applied < quorum) {
    // A majority of planned engine writes failed after the reachability
    // check. The record stays in the log (the leaseholder applied it), so
    // the write is indeterminate — the "result unknown" class the txn
    // layer already handles.
    return Status::Unavailable("replication quorum lost for range " +
                               std::to_string(range->desc.range_id));
  }
  if (max_delay > 0) replication_delay_h_->Record(max_delay);
  TruncateLogLocked(range);
  return Status::OK();
}

Status KVCluster::CatchUpReplicaLocked(RangeState* range, NodeId node,
                                       uint64_t limit) {
  KVNode* n = nodes_[node].get();
  if (n->engine() == nullptr) {
    return Status::Unavailable("replica has no engine");
  }
  const uint64_t committed = range->log.committed_index();
  if (limit > committed) limit = committed;
  const uint64_t applied = range->log.Applied(node);
  if (applied >= limit) return Status::OK();
  if (!range->log.CanReplayFrom(applied)) {
    // The log was truncated past this replica's position: full-span
    // snapshot transfer from a caught-up replica.
    VELOCE_RETURN_IF_ERROR(SnapshotReplicaLocked(range, node));
    range->log.SetApplied(node, committed);
    replica_catchups_snapshot_c_->Inc();
    return Status::OK();
  }
  uint64_t replayed = 0;
  for (const LogRecord& rec : range->log.records()) {
    if (rec.index <= applied) continue;
    if (rec.index > limit) break;
    VELOCE_RETURN_IF_ERROR(
        ApplyRecordLocked(n, rec, nullptr, 1, /*charge_tenant=*/false));
    range->log.SetApplied(node, rec.index);
    ++replayed;
  }
  if (replayed > 0) {
    replica_catchups_replay_c_->Inc();
    catchup_records_c_->Inc(replayed);
  }
  return Status::OK();
}

Status KVCluster::SnapshotReplicaLocked(RangeState* range, NodeId to) {
  storage::Engine* dst = nodes_[to]->engine();
  if (dst == nullptr) return Status::Unavailable("snapshot target has no engine");
  // Source: a fully-applied replica, preferring the leaseholder.
  const uint64_t committed = range->log.committed_index();
  storage::Engine* src = nullptr;
  const NodeId leader = range->desc.leaseholder;
  if (leader != to && nodes_[leader]->engine() != nullptr &&
      range->log.Applied(leader) == committed) {
    src = nodes_[leader]->engine();
  } else {
    for (NodeId n : range->desc.replicas) {
      if (n == to || nodes_[n]->engine() == nullptr) continue;
      if (range->log.Applied(n) != committed) continue;
      src = nodes_[n]->engine();
      break;
    }
  }
  if (src == nullptr) {
    return Status::Unavailable("no caught-up source replica for snapshot");
  }
  const std::string start_engine = EncodeIntentKey(range->desc.start_key);
  std::string end_engine;
  if (!range->desc.end_key.empty()) {
    OrderedPutString(&end_engine, range->desc.end_key);
  }
  // Clear the stale span first: the lagging replica may hold engine keys
  // (e.g. intent slots) the source has since deleted, and a pure copy
  // would resurrect them.
  {
    auto it = dst->NewBoundedIterator(start_engine, end_engine);
    storage::WriteBatch del;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      del.Delete(it->key());
      if (del.ByteSize() > (1 << 20)) {
        VELOCE_RETURN_IF_ERROR(dst->Write(del));
        del.Clear();
      }
    }
    if (del.Count() > 0) VELOCE_RETURN_IF_ERROR(dst->Write(del));
  }
  auto iter = src->NewBoundedIterator(start_engine, end_engine);
  storage::WriteBatch batch;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    batch.Put(iter->key(), iter->value());
    if (batch.ByteSize() > (1 << 20)) {  // apply in ~1MB chunks
      VELOCE_RETURN_IF_ERROR(dst->Write(batch));
      batch.Clear();
    }
  }
  if (batch.Count() > 0) VELOCE_RETURN_IF_ERROR(dst->Write(batch));
  return Status::OK();
}

void KVCluster::TruncateLogLocked(RangeState* range) {
  uint64_t floor = range->log.committed_index();
  for (NodeId n : range->desc.replicas) {
    floor = std::min(floor, range->log.Applied(n));
  }
  if (range->pending_move.has_value()) {
    // A pipelined move pins retention at its snapshot floor so the cutover
    // can replay the delta. The ReplicationLog's hard caps still apply (the
    // pin bounds the common case, not memory); if they force past the
    // floor, FinishReplicaMove falls back to a fresh snapshot.
    floor = std::min(floor, range->pending_move->snapshot_floor);
  }
  range->log.TruncateTo(floor);
}

bool KVCluster::LeaseValidLocked(const RangeState& range) const {
  if (!liveness_enabled_) return true;
  const NodeLiveness& lv = liveness_[range.desc.leaseholder];
  if (range.desc.lease_epoch != lv.epoch || lv.expired) return false;
  return clock_->Now() - lv.last_heartbeat <= options_.liveness_duration;
}

Status KVCluster::CheckLeaseLocked(const RangeState& range) {
  if (LeaseValidLocked(range)) return Status::OK();
  lease_epoch_mismatch_c_->Inc();
  return Status::LeaseEpochMismatch(
      "range " + std::to_string(range.desc.range_id) + " lease (epoch " +
      std::to_string(range.desc.lease_epoch) + ") is no longer valid at node " +
      std::to_string(range.desc.leaseholder));
}

// --- Node scaling ------------------------------------------------------------

StatusOr<NodeId> KVCluster::AddNode(const std::string& region) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(
      std::make_unique<KVNode>(id, region, options_.engine_options, obs_));
  NodeLiveness lv;
  lv.last_heartbeat = clock_->Now();
  liveness_.push_back(lv);
  return id;
}

Status KVCluster::MoveReplica(RangeId range_id, NodeId from, NodeId to) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  VELOCE_RETURN_IF_ERROR(StartReplicaMove(range_id, from, to));
  while (true) {
    StatusOr<bool> done = StepReplicaMove(range_id);
    if (!done.ok()) {
      (void)AbortReplicaMove(range_id);
      return done.status();
    }
    if (*done) break;
  }
  Status s = FinishReplicaMove(range_id);
  if (!s.ok()) (void)AbortReplicaMove(range_id);
  return s;
}

Status KVCluster::StartReplicaMove(RangeId range_id, NodeId from, NodeId to) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto it = ranges_.find(range_id);
  if (it == ranges_.end()) return Status::NotFound("no such range");
  RangeState* range = it->second.get();
  if (range->pending_move.has_value()) {
    return Status::Unavailable("replica move already in progress");
  }
  if (!range->desc.HasReplica(from)) {
    return Status::InvalidArgument("source node holds no replica");
  }
  if (range->desc.HasReplica(to)) {
    return Status::InvalidArgument("target node already holds a replica");
  }
  if (to >= nodes_.size() || !nodes_[to]->live() ||
      nodes_[to]->engine() == nullptr) {
    return Status::Unavailable("target node not available");
  }
  // Snapshot source: a live, fully-applied replica (prefer the leaseholder,
  // then the outgoing replica). A behind candidate is caught up first or
  // skipped — a lagging source would record the target as caught-up while
  // missing acked writes.
  const uint64_t committed = range->log.committed_index();
  NodeId source = 0;
  bool have_source = false;
  auto try_source = [&](NodeId n) {
    if (have_source || !NodeUpLocked(n)) return;
    if (range->log.Applied(n) < committed &&
        !CatchUpReplicaLocked(range, n, committed).ok()) {
      return;
    }
    source = n;
    have_source = true;
  };
  try_source(range->desc.leaseholder);
  try_source(from);
  for (NodeId n : range->desc.replicas) try_source(n);
  if (!have_source) {
    return Status::Unavailable("no caught-up source replica for move");
  }
  PendingMove move;
  move.from = from;
  move.to = to;
  move.source = source;
  move.snapshot_floor = committed;  // log truncation pinned here until Finish
  range->pending_move = move;
  return Status::OK();
}

StatusOr<bool> KVCluster::StepReplicaMove(RangeId range_id, size_t max_bytes) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto it = ranges_.find(range_id);
  if (it == ranges_.end()) return Status::NotFound("no such range");
  RangeState* range = it->second.get();
  if (!range->pending_move.has_value()) {
    return Status::InvalidArgument("no replica move in progress");
  }
  PendingMove& move = *range->pending_move;
  if (move.copy_done) return true;
  if (!nodes_[move.to]->live() || nodes_[move.to]->engine() == nullptr) {
    return Status::Unavailable("move target lost mid-stream");
  }
  storage::Engine* dst = nodes_[move.to]->engine();
  const std::string span_start = EncodeIntentKey(range->desc.start_key);
  std::string span_end;
  if (!range->desc.end_key.empty()) {
    OrderedPutString(&span_end, range->desc.end_key);
  }
  const std::string chunk_start = move.cursor.empty() ? span_start : move.cursor;
  if (move.clearing) {
    // Phase 1: wipe the target's stale span (a node that held this span in
    // an earlier life may still carry engine keys — e.g. intent slots —
    // the source has since deleted; a pure copy would resurrect them).
    auto iter = dst->NewBoundedIterator(chunk_start, span_end);
    storage::WriteBatch del;
    std::string last;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      last = iter->key().ToString();
      del.Delete(iter->key());
      if (del.ByteSize() >= max_bytes) break;
    }
    if (del.Count() > 0) {
      VELOCE_RETURN_IF_ERROR(dst->Write(del));
      move.cursor = last + '\0';
      return false;
    }
    move.clearing = false;
    move.cursor.clear();
    return false;
  }
  // Phase 2: stream the span from the source in ~max_bytes chunks. The
  // source keeps serving (and applying new writes) throughout; anything it
  // applies above the snapshot floor is re-delivered by Finish's delta
  // replay, and records are idempotent, so overlap is harmless.
  if (!NodeUpLocked(move.source)) {
    return Status::Unavailable("move source lost mid-stream");
  }
  storage::Engine* src = nodes_[move.source]->engine();
  auto iter = src->NewBoundedIterator(chunk_start, span_end);
  storage::WriteBatch batch;
  std::string last;
  bool more = false;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (batch.ByteSize() >= max_bytes) {
      more = true;
      break;
    }
    last = iter->key().ToString();
    batch.Put(iter->key(), iter->value());
  }
  if (batch.Count() > 0) VELOCE_RETURN_IF_ERROR(dst->Write(batch));
  if (!more) {
    move.copy_done = true;
    return true;
  }
  move.cursor = last + '\0';
  return false;
}

Status KVCluster::FinishReplicaMove(RangeId range_id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto it = ranges_.find(range_id);
  if (it == ranges_.end()) return Status::NotFound("no such range");
  RangeState* range = it->second.get();
  if (!range->pending_move.has_value()) {
    return Status::InvalidArgument("no replica move in progress");
  }
  const PendingMove move = *range->pending_move;
  if (!move.copy_done) {
    return Status::InvalidArgument("span copy still in progress");
  }
  KVNode* target = nodes_[move.to].get();
  if (!target->live() || target->engine() == nullptr) {
    return Status::Unavailable("move target lost before cutover");
  }
  const uint64_t committed = range->log.committed_index();
  if (range->log.CanReplayFrom(move.snapshot_floor)) {
    // Delta replay: every mutation committed since the snapshot floor, in
    // order. Uncharged — the bytes were attributed at original delivery.
    for (const LogRecord& rec : range->log.records()) {
      if (rec.index <= move.snapshot_floor) continue;
      VELOCE_RETURN_IF_ERROR(
          ApplyRecordLocked(target, rec, nullptr, 1, /*charge_tenant=*/false));
    }
  } else {
    // Retention caps force-truncated past the floor (the pin bounds the
    // common case, not memory): fall back to a fresh full snapshot taken
    // under the lock, which is trivially consistent at `committed`.
    VELOCE_RETURN_IF_ERROR(SnapshotReplicaLocked(range, move.to));
  }
  // Atomic cutover: the descriptor swap, applied position, generation bump,
  // and (if needed) lease handoff all land together under the cluster lock.
  for (NodeId& replica : range->desc.replicas) {
    if (replica == move.from) replica = move.to;
  }
  range->log.EraseReplica(move.from);
  range->log.SetApplied(move.to, committed);
  range->desc.generation++;
  replica_moves_c_->Inc();
  if (range->desc.leaseholder == move.from) {
    range->desc.leaseholder = move.to;
    range->desc.lease_epoch = liveness_[move.to].epoch;
    range->log.BumpTerm();
    lease_moves_c_->Inc();
  }
  range->pending_move.reset();
  TruncateLogLocked(range);  // unpin
  return Status::OK();
}

Status KVCluster::AbortReplicaMove(RangeId range_id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto it = ranges_.find(range_id);
  if (it == ranges_.end()) return Status::NotFound("no such range");
  RangeState* range = it->second.get();
  if (!range->pending_move.has_value()) return Status::OK();
  const PendingMove move = *range->pending_move;
  range->pending_move.reset();
  TruncateLogLocked(range);  // unpin
  // Best-effort wipe of the partially streamed span from the target.
  storage::Engine* dst = nodes_[move.to]->engine();
  if (dst != nullptr) {
    const std::string span_start = EncodeIntentKey(range->desc.start_key);
    std::string span_end;
    if (!range->desc.end_key.empty()) {
      OrderedPutString(&span_end, range->desc.end_key);
    }
    auto iter = dst->NewBoundedIterator(span_start, span_end);
    storage::WriteBatch del;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      del.Delete(iter->key());
      if (del.ByteSize() > (1 << 20)) {
        VELOCE_RETURN_IF_ERROR(dst->Write(del));
        del.Clear();
      }
    }
    if (del.Count() > 0) VELOCE_RETURN_IF_ERROR(dst->Write(del));
  }
  return Status::OK();
}

StatusOr<int> KVCluster::RebalanceReplicas() {
  std::lock_guard<std::recursive_mutex> l(mu_);
  // Count replicas per live node.
  auto replica_counts = [&] {
    std::vector<int> counts(nodes_.size(), 0);
    for (const auto& [rid, state] : ranges_) {
      for (NodeId n : state->desc.replicas) counts[n]++;
    }
    return counts;
  };
  int moves = 0;
  for (int iteration = 0; iteration < 256; ++iteration) {
    std::vector<int> counts = replica_counts();
    NodeId most = 0, least = 0;
    bool have_most = false, have_least = false;
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (!nodes_[n]->live()) continue;
      if (!have_most || counts[n] > counts[most]) {
        most = n;
        have_most = true;
      }
      if (!have_least || counts[n] < counts[least]) {
        least = n;
        have_least = true;
      }
    }
    if (!have_most || counts[most] <= counts[least] + 1) break;
    // Move one range replica from `most` to `least`.
    bool moved = false;
    for (auto& [rid, state] : ranges_) {
      if (!state->desc.HasReplica(most) || state->desc.HasReplica(least)) continue;
      VELOCE_RETURN_IF_ERROR(MoveReplica(rid, most, least));
      ++moves;
      moved = true;
      break;
    }
    if (!moved) break;
  }
  return moves;
}

StatusOr<uint64_t> KVCluster::GarbageCollectTenant(TenantId tenant,
                                                   Timestamp threshold) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  const std::string start = TenantPrefix(tenant);
  const std::string end = TenantPrefixEnd(tenant);
  uint64_t removed = 0;
  for (auto& node : nodes_) {
    if (!node->live()) continue;
    VELOCE_ASSIGN_OR_RETURN(
        uint64_t n, MvccGarbageCollect(node->engine(), start, end, threshold));
    removed += n;
  }
  return removed;
}

// --- Tenant keyspaces -------------------------------------------------------

Status KVCluster::CreateTenantKeyspace(TenantId id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  const std::string prefix = TenantPrefix(id);
  const std::string prefix_end = TenantPrefixEnd(id);
  RangeState* range = LookupRangeLocked(prefix);
  if (range == nullptr) return Status::Internal("no range covers tenant prefix");
  if (range->desc.start_key != prefix) {
    VELOCE_RETURN_IF_ERROR(SplitRangeLocked(prefix));
  }
  RangeState* end_range = LookupRangeLocked(prefix_end);
  if (end_range != nullptr && end_range->desc.start_key != prefix_end) {
    // Only split if the prefix-end falls inside an existing range (it is
    // the boundary already when tenants are created in id order).
    RangeState* covering = LookupRangeLocked(prefix);
    if (covering->desc.end_key.empty() ||
        Slice(prefix_end) < Slice(covering->desc.end_key)) {
      VELOCE_RETURN_IF_ERROR(SplitRangeLocked(prefix_end));
    }
  }
  RangeState* tenant_range = LookupRangeLocked(prefix);
  VELOCE_CHECK(tenant_range != nullptr);
  tenant_range->desc.tenant_id = id;
  return Status::OK();
}

Status KVCluster::DestroyTenantKeyspace(TenantId id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  const std::string prefix = TenantPrefix(id);
  const std::string prefix_end = TenantPrefixEnd(id);
  // Delete the data from every node (tombstones via a range deletion scan).
  for (auto& node : nodes_) {
    std::string start_engine = EncodeIntentKey(prefix);
    std::string end_engine;
    OrderedPutString(&end_engine, prefix_end);
    auto it = node->engine()->NewBoundedIterator(start_engine, end_engine);
    storage::WriteBatch batch;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      batch.Delete(it->key());
    }
    if (batch.Count() > 0) {
      VELOCE_RETURN_IF_ERROR(node->engine()->Write(batch));
    }
  }
  // Merge directory entries: mark the tenant's ranges as unowned.
  for (auto& [rid, state] : ranges_) {
    if (state->desc.tenant_id == id) state->desc.tenant_id = 0;
  }
  return Status::OK();
}

// --- Transactions -----------------------------------------------------------

TxnRecord KVCluster::BeginTxn(int32_t priority) {
  return txn_registry_.Begin(oracle_->Next(), priority);
}

Status KVCluster::StageTxn(TxnId id, const std::vector<std::string>& in_flight_keys,
                           Timestamp* staged_ts,
                           std::optional<Timestamp> validated_ts) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TxnRecord rec, txn_registry_.Get(id));
  if (rec.status == TxnStatus::kAborted) {
    return Status::TransactionAborted("aborted by a concurrent pusher");
  }
  if (rec.status == TxnStatus::kCommitted) {
    // A concurrent recovery proved every in-flight write present and
    // finalized the txn already; report its commit timestamp.
    if (staged_ts != nullptr) *staged_ts = rec.write_ts;
    return Status::OK();
  }
  const Timestamp ts = rec.write_ts;
  if (validated_ts.has_value() && ts > *validated_ts) {
    // Staging here would declare a commit timestamp the coordinator never
    // validated its reads at — and once staged, a concurrent recovery may
    // finalize the commit the moment the last declared intent lands. Hand
    // back the refresh target instead; the record stays as it was.
    if (staged_ts != nullptr) *staged_ts = ts;
    return Status::TransactionRetry(
        "write timestamp above validated reads; refresh and re-stage");
  }
  VELOCE_RETURN_IF_ERROR(txn_registry_.Stage(id, ts, in_flight_keys));
  oracle_->Observe(ts);
  if (staged_ts != nullptr) *staged_ts = ts;
  return Status::OK();
}

Status KVCluster::CommitTxn(TxnId id, const std::vector<std::string>& intent_keys,
                            Timestamp* commit_ts,
                            std::optional<Timestamp> validated_ts) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TxnRecord rec, txn_registry_.Get(id));
  Timestamp ts = rec.write_ts;
  if (rec.status == TxnStatus::kPending && validated_ts.has_value() &&
      ts > *validated_ts) {
    // A pusher moved the write timestamp after the coordinator's refresh;
    // committing would finalize reads never validated at `ts`.
    if (commit_ts != nullptr) *commit_ts = ts;
    return Status::TransactionRetry(
        "write timestamp above validated reads; refresh and retry");
  }
  if (rec.status == TxnStatus::kStaging) {
    if (rec.write_ts > rec.staged_ts) {
      // A pipelined write got bumped past the staged timestamp after
      // staging; the commit condition fails until the coordinator
      // refreshes and re-stages.
      return Status::TransactionRetry(
          "staged txn has bumped in-flight writes; refresh and re-stage");
    }
    ts = rec.staged_ts;
  }
  VELOCE_RETURN_IF_ERROR(txn_registry_.Commit(id, ts));
  oracle_->Observe(ts);
  for (const auto& key : intent_keys) {
    RangeState* range = LookupRangeLocked(key);
    if (range == nullptr) continue;
    LogRecord rec;
    rec.kind = LogRecord::Kind::kResolveIntent;
    rec.key = key;
    rec.txn_id = id;
    rec.commit = true;
    rec.ts = ts;
    VELOCE_RETURN_IF_ERROR(ReplicateRecordLocked(range, std::move(rec), nullptr,
                                                 /*require_quorum=*/false));
  }
  if (commit_ts != nullptr) *commit_ts = ts;
  hlc_.Update(ts);
  return Status::OK();
}

StatusOr<PushResult> KVCluster::ResolveAbandonedStaging(TxnId id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  return RecoverStagedTxnLocked(id, /*coordinator_abandoned=*/true);
}

size_t KVCluster::GarbageCollectTxns() {
  std::lock_guard<std::recursive_mutex> l(mu_);
  // Expired staging records (the coordinator died mid-parallel-commit) are
  // finalized through the recovery procedure — implicit commit when every
  // declared write is present, abort with tscache fencing otherwise — so
  // they cannot accumulate forever. Failures (e.g. a range temporarily
  // unavailable) leave the record for the next sweep.
  for (const TxnId id : txn_registry_.ExpiredStaging()) {
    (void)RecoverStagedTxnLocked(id);
  }
  return txn_registry_.GarbageCollect();
}

Status KVCluster::AbortTxn(TxnId id, const std::vector<std::string>& intent_keys) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  Status s = txn_registry_.Abort(id);
  if (!s.ok() && !s.IsNotFound()) return s;
  for (const auto& key : intent_keys) {
    RangeState* range = LookupRangeLocked(key);
    if (range == nullptr) continue;
    LogRecord rec;
    rec.kind = LogRecord::Kind::kResolveIntent;
    rec.key = key;
    rec.txn_id = id;
    rec.commit = false;
    VELOCE_RETURN_IF_ERROR(ReplicateRecordLocked(range, std::move(rec), nullptr,
                                                 /*require_quorum=*/false));
  }
  return Status::OK();
}

StatusOr<bool> KVCluster::AnyNewerVersions(TenantId tenant, Slice start, Slice end,
                                           Timestamp after, Timestamp upto) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  (void)tenant;
  std::string cursor = start.ToString();
  while (true) {
    RangeState* range = LookupRangeLocked(cursor);
    if (range == nullptr) return Status::NotFound("no range for refresh span");
    std::string span_end = end.ToString();
    const std::string& range_end = range->desc.end_key;
    if (!range_end.empty() && (span_end.empty() || Slice(range_end) < Slice(span_end))) {
      span_end = range_end;
    }
    VELOCE_ASSIGN_OR_RETURN(bool any,
                            MvccAnyNewerVersions(LeaseholderEngineLocked(*range),
                                                 cursor, span_end, after, upto));
    if (any) return true;
    if (range_end.empty()) return false;
    if (!end.empty() && Slice(range_end) >= end) return false;
    cursor = range_end;
  }
}

// --- Ranges / leases ---------------------------------------------------------

std::vector<RangeDescriptor> KVCluster::Ranges() const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  std::vector<RangeDescriptor> out;
  out.reserve(ranges_.size());
  for (const auto& [start, rid] : by_start_) {
    out.push_back(ranges_.at(rid)->desc);
  }
  return out;
}

int KVCluster::CountLeases(NodeId node) const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  int count = 0;
  for (const auto& [rid, state] : ranges_) {
    if (state->desc.leaseholder == node) ++count;
  }
  return count;
}

uint64_t KVCluster::RangeLogCommittedIndex(RangeId id) const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto it = ranges_.find(id);
  return it == ranges_.end() ? 0 : it->second->log.committed_index();
}

uint64_t KVCluster::RangeReplicaApplied(RangeId id, NodeId node) const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto it = ranges_.find(id);
  return it == ranges_.end() ? 0 : it->second->log.Applied(node);
}

// --- Heartbeat liveness / epoch leases / catch-up ----------------------------

void KVCluster::set_transport(ReplicaTransport* transport) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  transport_ = transport != nullptr ? transport : &passthrough_;
}

bool KVCluster::liveness_enabled() const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  return liveness_enabled_;
}

uint64_t KVCluster::NodeLivenessEpoch(NodeId id) const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  return id < liveness_.size() ? liveness_[id].epoch : 0;
}

bool KVCluster::NodeLivenessValid(NodeId id) const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  if (!liveness_enabled_) return true;
  if (id >= liveness_.size()) return false;
  const NodeLiveness& lv = liveness_[id];
  return !lv.expired &&
         clock_->Now() - lv.last_heartbeat <= options_.liveness_duration;
}

void KVCluster::TickHeartbeats() {
  std::lock_guard<std::recursive_mutex> l(mu_);
  const Nanos now = clock_->Now();
  if (!liveness_enabled_) {
    // Arming grace period: every node starts with a fresh record and gets
    // one full liveness_duration to prove itself.
    liveness_enabled_ = true;
    for (NodeLiveness& lv : liveness_) lv.last_heartbeat = now;
  }
  // Heartbeat round: an up node refreshes its record iff its heartbeats
  // reach a majority of the cluster (itself included) — a minority-side
  // node of a partition cannot, so its record ages out.
  const int majority = static_cast<int>(nodes_.size()) / 2 + 1;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!NodeUpLocked(n)) continue;
    int reached = 1;  // self
    for (NodeId m = 0; m < nodes_.size(); ++m) {
      if (m == n || !NodeUpLocked(m)) continue;
      if (transport_->DeliverHeartbeat(n, m)) ++reached;
    }
    if (reached >= majority) {
      NodeLiveness& lv = liveness_[n];
      lv.last_heartbeat = now;
      lv.expired = false;  // the epoch stays bumped; only freshness returns
    } else {
      heartbeat_failures_c_->Inc();
    }
  }
  // Expiry: bump the epoch once per transition, invalidating every lease
  // granted under the old epoch — the split-brain fence.
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    NodeLiveness& lv = liveness_[n];
    const bool stale =
        !NodeUpLocked(n) || now - lv.last_heartbeat > options_.liveness_duration;
    if (stale && !lv.expired) {
      lv.expired = true;
      ++lv.epoch;
      epoch_bumps_c_->Inc();
    }
  }
  // Lease maintenance + catch-up: invalid leases move to a caught-up
  // replica with valid liveness; lagging replicas reachable through the
  // transport replay what they missed.
  for (auto& [rid, state] : ranges_) {
    MaybeReassignLeaseLocked(state.get());
    const uint64_t committed = state->log.committed_index();
    for (NodeId r : state->desc.replicas) {
      if (r == state->desc.leaseholder || !NodeUpLocked(r)) continue;
      if (state->log.Applied(r) >= committed) continue;
      if (!transport_->DeliverHeartbeat(state->desc.leaseholder, r)) continue;
      (void)CatchUpReplicaLocked(state.get(), r, committed);
    }
    TruncateLogLocked(state.get());
  }
}

void KVCluster::MaybeReassignLeaseLocked(RangeState* range) {
  if (!liveness_enabled_) return;
  if (nodes_[range->desc.leaseholder]->live() && LeaseValidLocked(*range)) return;
  const Nanos now = clock_->Now();
  const uint64_t committed = range->log.committed_index();
  for (NodeId n : range->desc.replicas) {
    if (!NodeUpLocked(n)) continue;
    const NodeLiveness& lv = liveness_[n];
    if (lv.expired || now - lv.last_heartbeat > options_.liveness_duration) {
      continue;
    }
    // The incoming leaseholder must hold everything the log committed —
    // a behind replica serving reads would un-linearize acked writes.
    if (range->log.Applied(n) < committed &&
        !CatchUpReplicaLocked(range, n, committed).ok()) {
      continue;
    }
    if (range->desc.leaseholder == n && range->desc.lease_epoch == lv.epoch) {
      return;  // current lease is actually fine
    }
    range->desc.leaseholder = n;
    range->desc.lease_epoch = lv.epoch;
    range->log.BumpTerm();
    lease_moves_c_->Inc();
    return;
  }
}

Status KVCluster::CatchUpNode(NodeId id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  if (id >= nodes_.size()) return Status::InvalidArgument("no such node");
  if (nodes_[id]->engine() == nullptr) {
    return Status::Unavailable("node has no engine (failed crash-restart)");
  }
  Status first = Status::OK();
  for (auto& [rid, state] : ranges_) {
    if (!state->desc.HasReplica(id)) continue;
    Status s = CatchUpReplicaLocked(state.get(), id, state->log.committed_index());
    if (!s.ok() && first.ok()) first = s;
    TruncateLogLocked(state.get());
  }
  return first;
}

void KVCluster::SetNodeLive(NodeId id, bool live) {
  nodes_[id]->SetLive(live);
  if (!live) {
    ShedLeases(id);
    return;
  }
  // A returning node replays what it missed before serving again, so it
  // rejoins converged and counts toward quorum with real data.
  (void)CatchUpNode(id);
}

void KVCluster::ShedLeases(NodeId id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  for (auto& [rid, state] : ranges_) {
    if (state->desc.leaseholder != id) continue;
    const uint64_t committed = state->log.committed_index();
    for (NodeId n : state->desc.replicas) {
      if (n == id || !NodeUpLocked(n)) continue;
      // The incoming leaseholder must hold everything the log committed —
      // a behind replica serving reads would un-linearize acked writes.
      if (state->log.Applied(n) < committed &&
          !CatchUpReplicaLocked(state.get(), n, committed).ok()) {
        continue;
      }
      state->desc.leaseholder = n;
      state->desc.lease_epoch = liveness_[n].epoch;
      state->log.BumpTerm();
      lease_moves_c_->Inc();
      break;
    }
    // No caught-up candidate: the lease stays put (and invalid, if the
    // holder is down) until the next heartbeat tick can repair it —
    // an unavailable range beats a divergent leaseholder.
  }
}

void KVCluster::BalanceLeases() {
  std::lock_guard<std::recursive_mutex> l(mu_);
  size_t next = 0;
  for (auto& [start, rid] : by_start_) {
    RangeState* state = ranges_[rid].get();
    const uint64_t committed = state->log.committed_index();
    // Pick the next live, caught-up replica in round-robin order over the
    // replica set; a behind candidate that cannot replay the gap is skipped
    // rather than handed a lease over a divergent engine.
    for (size_t i = 0; i < state->desc.replicas.size(); ++i) {
      const NodeId candidate =
          state->desc.replicas[(next + i) % state->desc.replicas.size()];
      if (!NodeUpLocked(candidate)) continue;
      if (state->log.Applied(candidate) < committed &&
          !CatchUpReplicaLocked(state, candidate, committed).ok()) {
        continue;
      }
      if (state->desc.leaseholder != candidate) {
        state->desc.leaseholder = candidate;
        state->desc.lease_epoch = liveness_[candidate].epoch;
        state->log.BumpTerm();
        lease_moves_c_->Inc();
      }
      break;
    }
    ++next;
  }
}

Status KVCluster::SplitRange(Slice split_key) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  return SplitRangeLocked(split_key);
}

Status KVCluster::SplitRangeLocked(Slice split_key, SplitReason reason) {
  RangeState* range = LookupRangeLocked(split_key);
  if (range == nullptr) return Status::NotFound("no range for split key");
  if (range->desc.start_key == split_key.ToString()) {
    return Status::OK();  // already a boundary
  }
  if (range->pending_move.has_value()) {
    return Status::Unavailable("replica move in progress; split deferred");
  }
  RangeDescriptor right = range->desc;
  right.range_id = next_range_id_++;
  right.start_key = split_key.ToString();
  // The fallible step (the directory insert) runs before the left range
  // mutates and before any counter moves: an aborted split leaves the
  // directory, the left range, and the metrics exactly as they were.
  VELOCE_RETURN_IF_ERROR(AddRangeLocked(right));
  RangeState* right_state = ranges_[right.range_id].get();
  range->desc.end_key = split_key.ToString();
  range->approx_bytes /= 2;  // rough: data divides between halves
  right_state->approx_bytes = range->approx_bytes;
  // Each half inherits half the parent's load; key samples restart on both
  // sides (old samples may fall outside the new spans).
  range->load.OnSplit();
  right_state->load = range->load;
  range->cooled_since = -1;
  right_state->cooled_since = -1;
  range->desc.generation++;
  right_state->desc.generation = range->desc.generation;
  switch (reason) {
    case SplitReason::kManual: splits_manual_c_->Inc(); break;
    case SplitReason::kSize: splits_size_c_->Inc(); break;
    case SplitReason::kLoad: splits_load_c_->Inc(); break;
  }
  return Status::OK();
}

StatusOr<int> KVCluster::MaybeSplitRanges() {
  std::lock_guard<std::recursive_mutex> l(mu_);
  int splits = 0;
  // Collect candidates first; splitting mutates the maps.
  std::vector<RangeId> oversized;
  for (const auto& [rid, state] : ranges_) {
    if (state->pending_move.has_value()) continue;
    if (state->approx_bytes > options_.range_split_bytes) oversized.push_back(rid);
  }
  for (RangeId rid : oversized) {
    RangeState* state = ranges_[rid].get();
    // Find an approximate midpoint key by scanning the leaseholder engine.
    storage::Engine* engine = LeaseholderEngineLocked(*state);
    if (engine == nullptr) continue;  // leaseholder down; next sweep
    std::string end_bound;
    if (!state->desc.end_key.empty()) {
      OrderedPutString(&end_bound, state->desc.end_key);
    }
    auto it = engine->NewBoundedIterator(EncodeIntentKey(state->desc.start_key),
                                         end_bound);
    uint64_t seen = 0;
    std::string mid_key;
    const uint64_t target = state->approx_bytes / 2;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      seen += it->key().size() + it->value().size();
      if (seen >= target) {
        std::string user_key;
        Timestamp ts;
        bool is_intent;
        if (DecodeMvccKey(it->key(), &user_key, &ts, &is_intent) &&
            user_key > state->desc.start_key) {
          mid_key = user_key;
        }
        break;
      }
    }
    if (mid_key.empty()) continue;
    VELOCE_RETURN_IF_ERROR(SplitRangeLocked(mid_key, SplitReason::kSize));
    ++splits;
  }
  // Load splits: a hot range divides at a key drawn from its own sample
  // reservoir — no engine scan, which is what keeps this sweep cheap at
  // 100k ranges. Any sampled key is tenant-aligned by construction (it was
  // served by this range, and ranges never span tenants).
  if (options_.load_split_qps > 0) {
    const Nanos now = clock_->Now();
    std::vector<RangeId> hot;
    for (const auto& [rid, state] : ranges_) {
      if (state->pending_move.has_value()) continue;
      if (state->load.Qps(now) > options_.load_split_qps) hot.push_back(rid);
    }
    for (RangeId rid : hot) {
      RangeState* state = ranges_[rid].get();
      const std::string hot_key = state->load.SuggestSplitKey(state->desc.start_key);
      if (hot_key.empty() || !state->desc.Contains(hot_key)) continue;
      VELOCE_RETURN_IF_ERROR(SplitRangeLocked(hot_key, SplitReason::kLoad));
      ++splits;
    }
  }
  return splits;
}

// --- Range merges ------------------------------------------------------------

bool KVCluster::CanMergeLocked(const RangeState& left, const RangeState& right,
                               Nanos now) const {
  if (left.pending_move.has_value() || right.pending_move.has_value()) {
    return false;
  }
  // Never fuse ranges across tenants: the per-tenant keyspace partitioning
  // is the storage half of cluster virtualization.
  if (left.desc.tenant_id != right.desc.tenant_id) return false;
  if (left.desc.end_key.empty() || left.desc.end_key != right.desc.start_key) {
    return false;
  }
  // Hysteresis: both sides must have dwelled below the QPS threshold.
  if (left.cooled_since < 0 || now - left.cooled_since < options_.merge_dwell) {
    return false;
  }
  if (right.cooled_since < 0 || now - right.cooled_since < options_.merge_dwell) {
    return false;
  }
  // Keep the merged range well under the split threshold so a merge never
  // immediately re-triggers a size split (split/merge flapping).
  const uint64_t cap = options_.merge_max_bytes != 0
                           ? options_.merge_max_bytes
                           : options_.range_split_bytes / 2;
  if (left.approx_bytes + right.approx_bytes > cap) return false;
  // The merged range keeps the left range's lease, so that lease must be
  // valid right now — the merge can never install (or later resurrect) a
  // stale epoch.
  if (!LeaseValidLocked(left) || !NodeUpLocked(left.desc.leaseholder)) {
    return false;
  }
  return true;
}

Status KVCluster::MergeRangesLocked(RangeState* left, RangeState* right,
                                    obs::Counter* reason_counter) {
  if (left->desc.tenant_id != right->desc.tenant_id) {
    return Status::InvalidArgument("merge would fuse ranges across tenants");
  }
  if (left->desc.end_key.empty() || left->desc.end_key != right->desc.start_key) {
    return Status::InvalidArgument("ranges are not adjacent");
  }
  if (left->pending_move.has_value() || right->pending_move.has_value()) {
    return Status::Unavailable("replica move in progress; merge deferred");
  }
  // Align the replica sets: the merged range has one replica set and one
  // log, so every right-side replica on a node outside the left set moves
  // onto one of left's nodes first. A failed move vetoes the merge.
  if (left->desc.replicas.size() != right->desc.replicas.size()) {
    return Status::InvalidArgument("replica sets differ in size");
  }
  std::vector<NodeId> extras;   // right's nodes not in left's set
  std::vector<NodeId> missing;  // left's nodes right lacks
  for (NodeId n : right->desc.replicas) {
    if (!left->desc.HasReplica(n)) extras.push_back(n);
  }
  for (NodeId n : left->desc.replicas) {
    if (!right->desc.HasReplica(n)) missing.push_back(n);
  }
  for (size_t i = 0; i < extras.size(); ++i) {
    VELOCE_RETURN_IF_ERROR(MoveReplica(right->desc.range_id, extras[i], missing[i]));
  }
  // Every replica must be reachable and fully applied on BOTH logs: the
  // right log dies with the merge, and a replica missing right-side records
  // would silently diverge under the surviving left log.
  const NodeId leader = left->desc.leaseholder;
  const uint64_t left_committed = left->log.committed_index();
  const uint64_t right_committed = right->log.committed_index();
  for (NodeId n : left->desc.replicas) {
    if (!NodeUpLocked(n)) {
      return Status::Unavailable("replica down; merge deferred");
    }
    if (n != leader && !transport_->DeliverHeartbeat(leader, n)) {
      return Status::Unavailable("replica unreachable; merge deferred");
    }
    VELOCE_RETURN_IF_ERROR(CatchUpReplicaLocked(left, n, left_committed));
    VELOCE_RETURN_IF_ERROR(CatchUpReplicaLocked(right, n, right_committed));
    if (left->log.Applied(n) < left_committed ||
        right->log.Applied(n) < right_committed) {
      return Status::Unavailable("replica behind; merge deferred");
    }
  }
  // Commit: widen left over right's span and fold in its read constraints
  // and load. Left's (validated) lease carries over unchanged; right's
  // lease epoch is discarded with its descriptor, so a stale epoch can
  // never resurrect through a merge.
  const Nanos now = clock_->Now();
  const std::string right_start = right->desc.start_key;
  const RangeId right_id = right->desc.range_id;
  left->desc.end_key = right->desc.end_key;
  left->approx_bytes += right->approx_bytes;
  left->tscache.MergeFrom(right->tscache);
  left->load.Absorb(right->load, now);
  left->load.ResetSamples();
  left->cooled_since = -1;
  left->desc.generation =
      std::max(left->desc.generation, right->desc.generation) + 1;
  by_start_.erase(right_start);
  ranges_.erase(right_id);  // invalidates `right`
  reason_counter->Inc();
  TruncateLogLocked(left);
  return Status::OK();
}

Status KVCluster::MergeRanges(RangeId left_id) {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto it = ranges_.find(left_id);
  if (it == ranges_.end()) return Status::NotFound("no such range");
  RangeState* left = it->second.get();
  if (left->desc.end_key.empty()) {
    return Status::InvalidArgument("range has no right neighbour");
  }
  auto nit = by_start_.find(left->desc.end_key);
  if (nit == by_start_.end()) {
    return Status::NotFound("no right neighbour in directory");
  }
  RangeState* right = ranges_[nit->second].get();
  VELOCE_RETURN_IF_ERROR(CheckLeaseLocked(*left));
  return MergeRangesLocked(left, right, merges_manual_c_);
}

StatusOr<int> KVCluster::MaybeMergeRanges() {
  std::lock_guard<std::recursive_mutex> l(mu_);
  const Nanos now = clock_->Now();
  // Pass 1: advance the cooldown dwell clocks.
  for (auto& [rid, state] : ranges_) {
    if (state->load.Qps(now) < options_.merge_qps_threshold) {
      if (state->cooled_since < 0) state->cooled_since = now;
    } else {
      state->cooled_since = -1;
    }
  }
  // Pass 2: fuse dwelled-cold adjacent pairs left to right. After a merge
  // the surviving range may absorb its next neighbour in the same sweep
  // (the byte cap bounds the chain), so the cursor only advances on a
  // skipped pair.
  int merges = 0;
  auto it = by_start_.begin();
  while (it != by_start_.end()) {
    RangeState* left = ranges_[it->second].get();
    if (left->desc.end_key.empty()) break;  // last range
    auto nit = by_start_.find(left->desc.end_key);
    if (nit == by_start_.end()) {
      ++it;  // directory seam (shouldn't happen); skip defensively
      continue;
    }
    RangeState* right = ranges_[nit->second].get();
    if (!CanMergeLocked(*left, *right, now) ||
        !MergeRangesLocked(left, right, merges_cooldown_c_).ok()) {
      it = nit;
      continue;
    }
    ++merges;
  }
  return merges;
}

double KVCluster::RangeQps(Slice key) const {
  std::lock_guard<std::recursive_mutex> l(mu_);
  auto* self = const_cast<KVCluster*>(this);
  RangeState* range = self->LookupRangeLocked(key);
  return range == nullptr ? 0.0 : range->load.Qps(clock_->Now());
}

}  // namespace veloce::kv
