#include "kv/mvcc.h"

#include "common/codec.h"
#include "common/logging.h"

namespace veloce::kv {

namespace {

constexpr char kFlagValue = 0;
constexpr char kFlagTombstone = 1;
constexpr char kFlagIntent = 2;

constexpr size_t kTsSuffixLen = 12;  // 8 bytes wall + 4 bytes logical

void AppendInvertedTimestamp(std::string* dst, Timestamp ts) {
  OrderedPutUint64(dst, ~static_cast<uint64_t>(ts.wall));
  const uint32_t inv = ~ts.logical;
  dst->push_back(static_cast<char>(inv >> 24));
  dst->push_back(static_cast<char>(inv >> 16));
  dst->push_back(static_cast<char>(inv >> 8));
  dst->push_back(static_cast<char>(inv));
}

struct IntentValue {
  TxnId txn_id;
  Timestamp ts;
  bool tombstone;
  std::string value;
};

std::string EncodeIntentValue(TxnId txn_id, Timestamp ts, bool tombstone,
                              Slice value) {
  std::string out;
  out.push_back(kFlagIntent);
  PutFixed64(&out, txn_id);
  PutFixed64(&out, static_cast<uint64_t>(ts.wall));
  PutFixed32(&out, ts.logical);
  out.push_back(tombstone ? 1 : 0);
  out.append(value.data(), value.size());
  return out;
}

bool DecodeIntentValue(Slice raw, IntentValue* out) {
  if (raw.empty() || raw[0] != kFlagIntent) return false;
  raw.RemovePrefix(1);
  uint64_t txn = 0, wall = 0;
  uint32_t logical = 0;
  if (!GetFixed64(&raw, &txn) || !GetFixed64(&raw, &wall) ||
      !GetFixed32(&raw, &logical) || raw.empty()) {
    return false;
  }
  out->txn_id = txn;
  out->ts = {static_cast<Nanos>(wall), logical};
  out->tombstone = raw[0] != 0;
  raw.RemovePrefix(1);
  out->value = raw.ToString();
  return true;
}

}  // namespace

std::string EncodeMvccKey(Slice user_key, Timestamp ts) {
  std::string out;
  OrderedPutString(&out, user_key);
  AppendInvertedTimestamp(&out, ts);
  return out;
}

std::string EncodeIntentKey(Slice user_key) {
  std::string out;
  OrderedPutString(&out, user_key);
  out.append(kTsSuffixLen, '\0');  // sorts before every inverted timestamp
  return out;
}

std::string EncodeMvccPrefix(Slice user_key) {
  std::string out;
  OrderedPutString(&out, user_key);
  return out;
}

Slice MvccPrefixExtractor(Slice engine_user_key) {
  // Every MVCC engine key is escaped(user_key) . 12-byte suffix; anything
  // shorter (never written by this layer) maps to itself, which only costs
  // bloom precision, never correctness.
  if (engine_user_key.size() > kTsSuffixLen) {
    return Slice(engine_user_key.data(), engine_user_key.size() - kTsSuffixLen);
  }
  return engine_user_key;
}

bool DecodeMvccKey(Slice engine_key, std::string* user_key, Timestamp* ts,
                   bool* is_intent) {
  if (!OrderedGetString(&engine_key, user_key)) return false;
  if (engine_key.size() != kTsSuffixLen) return false;
  uint64_t inv_wall = 0;
  if (!OrderedGetUint64(&engine_key, &inv_wall)) return false;
  uint32_t inv_logical = 0;
  for (int i = 0; i < 4; ++i) {
    inv_logical = (inv_logical << 8) | static_cast<unsigned char>(engine_key[i]);
  }
  if (inv_wall == 0 && inv_logical == 0) {
    *is_intent = true;
    *ts = Timestamp();
    return true;
  }
  *is_intent = false;
  ts->wall = static_cast<Nanos>(~inv_wall);
  ts->logical = ~inv_logical;
  return true;
}

void MvccPutValue(storage::WriteBatch* batch, Slice user_key, Timestamp ts,
                  Slice value) {
  std::string v;
  v.push_back(kFlagValue);
  v.append(value.data(), value.size());
  batch->Put(EncodeMvccKey(user_key, ts), v);
}

void MvccPutTombstone(storage::WriteBatch* batch, Slice user_key, Timestamp ts) {
  std::string v;
  v.push_back(kFlagTombstone);
  batch->Put(EncodeMvccKey(user_key, ts), v);
}

void MvccPutIntent(storage::WriteBatch* batch, Slice user_key, TxnId txn_id,
                   Timestamp ts, bool tombstone, Slice value) {
  batch->Put(EncodeIntentKey(user_key), EncodeIntentValue(txn_id, ts, tombstone, value));
}

namespace {

/// Shared read logic: positioned iteration over one user key's slots.
/// Returns OK and fills result fields; callers interpret.
struct KeyReadResult {
  bool has_value = false;
  bool tombstone = false;
  std::string value;
  std::optional<IntentMeta> conflict;
};

void SkipKey(storage::Iterator* it, Slice user_key);

// Reads the visible state of `user_key` starting from an iterator positioned
// at or after the key's intent slot. On return the iterator has consumed all
// slots of this user key (positioned at the next user key or invalid).
Status ReadKeyVersions(storage::Iterator* it, Slice user_key, Timestamp read_ts,
                       TxnId own_txn, KeyReadResult* out) {
  *out = KeyReadResult();
  while (it->Valid()) {
    std::string cur_key;
    Timestamp ts;
    bool is_intent = false;
    if (!DecodeMvccKey(it->key(), &cur_key, &ts, &is_intent)) {
      return Status::Corruption("bad MVCC key");
    }
    if (Slice(cur_key) != user_key) return Status::OK();  // next user key
    if (is_intent) {
      IntentValue intent;
      if (!DecodeIntentValue(it->value(), &intent)) {
        return Status::Corruption("bad intent value");
      }
      if (intent.txn_id == own_txn && own_txn != 0) {
        // Transactions read their own provisional writes.
        out->has_value = !intent.tombstone;
        out->tombstone = intent.tombstone;
        out->value = intent.value;
        // Skip the rest of this key's versions.
        SkipKey(it, user_key);
        return Status::OK();
      }
      if (intent.ts <= read_ts) {
        out->conflict = IntentMeta{intent.txn_id, intent.ts};
        SkipKey(it, user_key);
        return Status::OK();
      }
      // Intent above our read timestamp: invisible; fall through to versions.
      it->Next();
      continue;
    }
    if (ts > read_ts) {
      it->Next();
      continue;
    }
    // Newest visible version.
    Slice raw = it->value();
    if (raw.empty()) return Status::Corruption("empty MVCC value");
    const char flag = raw[0];
    raw.RemovePrefix(1);
    if (flag == kFlagValue) {
      out->has_value = true;
      out->value = raw.ToString();
    } else if (flag == kFlagTombstone) {
      out->tombstone = true;
    } else {
      return Status::Corruption("unexpected value flag in version slot");
    }
    SkipKey(it, user_key);
    return Status::OK();
  }
  return Status::OK();
}

// Advances the iterator past all remaining slots of user_key.
void SkipKey(storage::Iterator* it, Slice user_key) {
  while (it->Valid()) {
    std::string cur_key;
    Timestamp ts;
    bool is_intent = false;
    if (!DecodeMvccKey(it->key(), &cur_key, &ts, &is_intent)) return;
    if (Slice(cur_key) != user_key) return;
    it->Next();
  }
}

}  // namespace

StatusOr<MvccGetResult> MvccGet(storage::Engine* engine, Slice user_key,
                                Timestamp ts, TxnId own_txn) {
  // Point-read fast path: bound the iterator to exactly this logical key's
  // slots [intent, PrefixEnd(prefix)) and hand the engine the extracted
  // prefix so tables the bloom filter rejects are never opened.
  const std::string prefix = EncodeMvccPrefix(user_key);
  auto it = engine->NewBoundedIterator(EncodeIntentKey(user_key),
                                       PrefixEnd(prefix), prefix);
  it->SeekToFirst();
  KeyReadResult kr;
  VELOCE_RETURN_IF_ERROR(ReadKeyVersions(it.get(), user_key, ts, own_txn, &kr));
  MvccGetResult result;
  result.conflict = kr.conflict;
  if (kr.has_value) result.value = std::move(kr.value);
  return result;
}

StatusOr<MvccScanResult> MvccScan(storage::Engine* engine, Slice start_key,
                                  Slice end_key, Timestamp ts, uint64_t limit,
                                  TxnId own_txn) {
  MvccScanResult result;
  std::string upper;
  if (!end_key.empty()) OrderedPutString(&upper, end_key);
  auto it = engine->NewBoundedIterator(EncodeIntentKey(start_key), upper);
  it->SeekToFirst();
  while (it->Valid()) {
    std::string cur_key;
    Timestamp key_ts;
    bool is_intent = false;
    if (!DecodeMvccKey(it->key(), &cur_key, &key_ts, &is_intent)) {
      return Status::Corruption("bad MVCC key in scan");
    }
    if (!end_key.empty() && Slice(cur_key) >= end_key) break;
    if (limit != 0 && result.entries.size() >= limit) {
      result.resume_key = cur_key;
      break;
    }
    KeyReadResult kr;
    VELOCE_RETURN_IF_ERROR(ReadKeyVersions(it.get(), Slice(cur_key), ts, own_txn, &kr));
    if (kr.conflict.has_value()) {
      result.conflict = kr.conflict;
      return result;
    }
    if (kr.has_value) {
      result.entries.push_back({std::move(cur_key), std::move(kr.value)});
    }
  }
  return result;
}

StatusOr<std::optional<IntentMeta>> MvccGetIntent(storage::Engine* engine,
                                                  Slice user_key) {
  std::string raw;
  Status s = engine->Get(EncodeIntentKey(user_key), &raw);
  if (s.IsNotFound()) return std::optional<IntentMeta>();
  VELOCE_RETURN_IF_ERROR(s);
  IntentValue intent;
  if (!DecodeIntentValue(Slice(raw), &intent)) {
    return Status::Corruption("bad intent value");
  }
  return std::optional<IntentMeta>(IntentMeta{intent.txn_id, intent.ts});
}

Status MvccResolveIntent(storage::Engine* engine, Slice user_key, TxnId txn_id,
                         bool commit, Timestamp commit_ts) {
  const std::string intent_key = EncodeIntentKey(user_key);
  std::string raw;
  Status s = engine->Get(intent_key, &raw);
  if (s.IsNotFound()) return Status::OK();  // already resolved
  VELOCE_RETURN_IF_ERROR(s);
  IntentValue intent;
  if (!DecodeIntentValue(Slice(raw), &intent)) {
    return Status::Corruption("bad intent value");
  }
  if (intent.txn_id != txn_id) return Status::OK();  // not ours

  storage::WriteBatch batch;
  batch.Delete(intent_key);
  if (commit) {
    if (intent.tombstone) {
      MvccPutTombstone(&batch, user_key, commit_ts);
    } else {
      MvccPutValue(&batch, user_key, commit_ts, intent.value);
    }
  }
  return engine->Write(batch);
}

Status MvccUpdateIntentTimestamp(storage::Engine* engine, Slice user_key,
                                 TxnId txn_id, Timestamp new_ts) {
  const std::string intent_key = EncodeIntentKey(user_key);
  std::string raw;
  Status s = engine->Get(intent_key, &raw);
  if (s.IsNotFound()) return Status::OK();
  VELOCE_RETURN_IF_ERROR(s);
  IntentValue intent;
  if (!DecodeIntentValue(Slice(raw), &intent)) {
    return Status::Corruption("bad intent value");
  }
  if (intent.txn_id != txn_id || intent.ts >= new_ts) return Status::OK();
  return engine->Put(intent_key, EncodeIntentValue(txn_id, new_ts,
                                                   intent.tombstone, intent.value));
}

StatusOr<bool> MvccAnyNewerVersions(storage::Engine* engine, Slice start,
                                    Slice end, Timestamp after, Timestamp upto) {
  std::string end_bound;
  if (!end.empty()) OrderedPutString(&end_bound, end);
  auto it = engine->NewBoundedIterator(EncodeIntentKey(start), end_bound);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    std::string user_key;
    Timestamp ts;
    bool is_intent = false;
    if (!DecodeMvccKey(it->key(), &user_key, &ts, &is_intent)) {
      return Status::Corruption("bad MVCC key");
    }
    if (is_intent) continue;  // provisional, not a committed version
    if (ts > after && ts <= upto) return true;
  }
  return false;
}

StatusOr<uint64_t> MvccGarbageCollect(storage::Engine* engine, Slice start,
                                      Slice end, Timestamp threshold) {
  std::string end_bound;
  if (!end.empty()) OrderedPutString(&end_bound, end);
  auto it = engine->NewBoundedIterator(EncodeIntentKey(start), end_bound);

  storage::WriteBatch batch;
  uint64_t removed = 0;
  std::string current_key;
  bool seen_boundary = false;  // newest version <= threshold already seen
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    std::string user_key;
    Timestamp ts;
    bool is_intent = false;
    if (!DecodeMvccKey(it->key(), &user_key, &ts, &is_intent)) {
      return Status::Corruption("bad MVCC key during GC");
    }
    if (user_key != current_key) {
      current_key = user_key;
      seen_boundary = false;
    }
    if (is_intent) continue;
    if (ts > threshold) continue;  // still needed by recent readers
    if (!seen_boundary) {
      seen_boundary = true;
      // The newest version at or below the threshold: keep it unless it is
      // a tombstone (then nothing at or above threshold can see the key).
      Slice raw = it->value();
      const bool tombstone = !raw.empty() && raw[0] == kFlagTombstone;
      if (tombstone) {
        batch.Delete(it->key());
        ++removed;
      }
      continue;
    }
    // Shadowed by a newer version that all threshold+ readers see instead.
    batch.Delete(it->key());
    ++removed;
  }
  if (batch.Count() > 0) {
    VELOCE_RETURN_IF_ERROR(engine->Write(batch));
  }
  return removed;
}

}  // namespace veloce::kv
