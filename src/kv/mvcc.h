#ifndef VELOCE_KV_MVCC_H_
#define VELOCE_KV_MVCC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "kv/timestamp.h"
#include "storage/engine.h"
#include "storage/write_batch.h"

namespace veloce::kv {

/// Multi-version concurrency control over the storage engine.
///
/// Encoding: each logical key maps to engine keys
///   escaped(user_key) . inverted(timestamp)
/// so versions of one key sort newest-first immediately after the key, and
/// a provisional write *intent* (stored at the reserved "infinite" slot)
/// sorts before every committed version. A seek at a read timestamp lands on
/// the intent (if any), then the newest visible version.
///
/// Value encoding: flags byte, then
///   kValue:     raw bytes
///   kTombstone: empty
///   kIntent:    txn_id u64 | ts | tombstone u8 | value bytes
///
/// Transaction records live in the cluster's TxnRegistry (see txn.h); MVCC
/// here only reads/writes versioned data and intents.

using TxnId = uint64_t;

/// Metadata for an intent encountered by a read or write.
struct IntentMeta {
  TxnId txn_id = 0;
  Timestamp ts;
};

/// Result of an MVCC point read.
struct MvccGetResult {
  /// Set when a committed visible value exists (not a tombstone).
  std::optional<std::string> value;
  /// Set when the read ran into another transaction's intent at or below
  /// the read timestamp; the caller must resolve/push before retrying.
  std::optional<IntentMeta> conflict;
};

struct MvccScanEntry {
  std::string key;
  std::string value;
};

struct MvccScanResult {
  std::vector<MvccScanEntry> entries;
  std::optional<IntentMeta> conflict;
  /// Key to resume from if `limit` was hit (empty when exhausted).
  std::string resume_key;
};

// Engine-key helpers (exposed for tests and range split logic).
std::string EncodeMvccKey(Slice user_key, Timestamp ts);
/// Encodes the intent slot for a user key (sorts before all versions).
std::string EncodeIntentKey(Slice user_key);
/// Encodes just the escaped user key — the shared prefix of the intent slot
/// and every version. This is the unit bloom filters are built over: one
/// probe answers "does this table hold any slot of this logical key?".
std::string EncodeMvccPrefix(Slice user_key);
/// storage::PrefixExtractor installed into the engine: strips the 12-byte
/// timestamp suffix from an engine user key, leaving the escaped logical
/// key. Installed at engine-open time by KVNode.
Slice MvccPrefixExtractor(Slice engine_user_key);
/// Decodes an engine key; returns false on malformed input. An intent slot
/// decodes with *is_intent=true and undefined ts.
bool DecodeMvccKey(Slice engine_key, std::string* user_key, Timestamp* ts,
                   bool* is_intent);

/// Writes a committed version directly (non-transactional fast path).
void MvccPutValue(storage::WriteBatch* batch, Slice user_key, Timestamp ts,
                  Slice value);
void MvccPutTombstone(storage::WriteBatch* batch, Slice user_key, Timestamp ts);

/// Writes a provisional intent owned by `txn_id` at timestamp `ts`.
void MvccPutIntent(storage::WriteBatch* batch, Slice user_key, TxnId txn_id,
                   Timestamp ts, bool tombstone, Slice value);

/// Reads the newest version of user_key visible at `ts`. If an intent owned
/// by `own_txn` (0 = none) exists it is returned as the value (reads see
/// their own writes); a foreign intent at or below `ts` is reported as a
/// conflict instead.
StatusOr<MvccGetResult> MvccGet(storage::Engine* engine, Slice user_key,
                                Timestamp ts, TxnId own_txn = 0);

/// Scans [start_key, end_key) at `ts`, returning at most `limit` visible
/// entries (0 = unlimited). Stops at the first foreign intent conflict.
StatusOr<MvccScanResult> MvccScan(storage::Engine* engine, Slice start_key,
                                  Slice end_key, Timestamp ts, uint64_t limit,
                                  TxnId own_txn = 0);

/// Returns the intent on user_key, if any.
StatusOr<std::optional<IntentMeta>> MvccGetIntent(storage::Engine* engine,
                                                  Slice user_key);

/// Converts an intent into a committed version at commit_ts (commit=true)
/// or removes it (commit=false). A no-op if the intent is missing or owned
/// by a different transaction.
Status MvccResolveIntent(storage::Engine* engine, Slice user_key, TxnId txn_id,
                         bool commit, Timestamp commit_ts);

/// Rewrites the intent's provisional timestamp after its transaction was
/// timestamp-pushed. A no-op if the intent is missing or foreign.
Status MvccUpdateIntentTimestamp(storage::Engine* engine, Slice user_key,
                                 TxnId txn_id, Timestamp new_ts);

/// True if any committed version of any key in [start, end) has a timestamp
/// in (after, upto] — the transaction read-refresh probe.
StatusOr<bool> MvccAnyNewerVersions(storage::Engine* engine, Slice start,
                                    Slice end, Timestamp after, Timestamp upto);

/// Garbage-collects old versions in [start, end): for each key, versions
/// strictly older than the newest version at or below `threshold` are
/// removed, and if that newest version is a tombstone it is removed too
/// (readers at or above threshold see the key as absent either way).
/// Intents are never touched. Returns the number of versions removed.
StatusOr<uint64_t> MvccGarbageCollect(storage::Engine* engine, Slice start,
                                      Slice end, Timestamp threshold);

}  // namespace veloce::kv

#endif  // VELOCE_KV_MVCC_H_
