#ifndef VELOCE_KV_TIMESTAMP_H_
#define VELOCE_KV_TIMESTAMP_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"

namespace veloce::kv {

/// MVCC timestamp: wall-clock nanoseconds plus a logical counter for
/// ordering events within the same nanosecond (the hybrid-logical-clock
/// shape CockroachDB uses).
struct Timestamp {
  Nanos wall = 0;
  uint32_t logical = 0;

  static Timestamp Min() { return {0, 0}; }
  static Timestamp Max() { return {INT64_MAX, UINT32_MAX}; }

  bool IsEmpty() const { return wall == 0 && logical == 0; }

  Timestamp Next() const {
    if (logical == UINT32_MAX) return {wall + 1, 0};
    return {wall, logical + 1};
  }
  Timestamp Prev() const {
    if (logical == 0) return {wall - 1, UINT32_MAX};
    return {wall, logical - 1};
  }

  friend bool operator==(const Timestamp& a, const Timestamp& b) {
    return a.wall == b.wall && a.logical == b.logical;
  }
  friend bool operator!=(const Timestamp& a, const Timestamp& b) { return !(a == b); }
  friend bool operator<(const Timestamp& a, const Timestamp& b) {
    return a.wall != b.wall ? a.wall < b.wall : a.logical < b.logical;
  }
  friend bool operator<=(const Timestamp& a, const Timestamp& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Timestamp& a, const Timestamp& b) { return b < a; }
  friend bool operator>=(const Timestamp& a, const Timestamp& b) { return b <= a; }

  std::string ToString() const {
    return std::to_string(wall) + "." + std::to_string(logical);
  }
};

/// Hybrid logical clock: monotonic, never behind the physical clock, and
/// advanced by observed remote timestamps so causally-related events order
/// correctly across nodes. Thread-safe: the TimestampOracle refills batches
/// from background-executor threads while foreground writes fold in
/// observed timestamps.
class HybridLogicalClock {
 public:
  explicit HybridLogicalClock(Clock* physical) : physical_(physical) {}

  /// Returns a timestamp strictly greater than any previously returned.
  Timestamp Now() { return GenerateTimestamps(1); }

  /// Reserves `count` contiguous timestamps, all strictly greater than any
  /// previously handed out, and returns the first. The whole batch shares
  /// one wall value — the i-th reserved timestamp is
  /// {first.wall, first.logical + i} — so holders can enumerate the batch
  /// without further clock traffic (ytsaurus ITimestampProvider shape).
  Timestamp GenerateTimestamps(uint32_t count) {
    if (count == 0) count = 1;
    std::lock_guard<std::mutex> l(mu_);
    const Nanos wall = physical_->Now();
    Timestamp first;
    if (wall > last_.wall) {
      first = {wall, 0};
    } else {
      first = last_.Next();
    }
    // The batch must fit in one wall value's logical space.
    if (UINT32_MAX - first.logical < count - 1) {
      first = {first.wall + 1, 0};
    }
    last_ = {first.wall, first.logical + (count - 1)};
    return first;
  }

  /// Folds in a timestamp observed from another node.
  void Update(Timestamp remote) {
    std::lock_guard<std::mutex> l(mu_);
    if (last_ < remote) last_ = remote;
  }

  /// Highest timestamp handed out or observed so far.
  Timestamp Latest() const {
    std::lock_guard<std::mutex> l(mu_);
    return last_;
  }

 private:
  Clock* physical_;
  mutable std::mutex mu_;
  Timestamp last_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_TIMESTAMP_H_
