#ifndef VELOCE_KV_TIMESTAMP_H_
#define VELOCE_KV_TIMESTAMP_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace veloce::kv {

/// MVCC timestamp: wall-clock nanoseconds plus a logical counter for
/// ordering events within the same nanosecond (the hybrid-logical-clock
/// shape CockroachDB uses).
struct Timestamp {
  Nanos wall = 0;
  uint32_t logical = 0;

  static Timestamp Min() { return {0, 0}; }
  static Timestamp Max() { return {INT64_MAX, UINT32_MAX}; }

  bool IsEmpty() const { return wall == 0 && logical == 0; }

  Timestamp Next() const {
    if (logical == UINT32_MAX) return {wall + 1, 0};
    return {wall, logical + 1};
  }
  Timestamp Prev() const {
    if (logical == 0) return {wall - 1, UINT32_MAX};
    return {wall, logical - 1};
  }

  friend bool operator==(const Timestamp& a, const Timestamp& b) {
    return a.wall == b.wall && a.logical == b.logical;
  }
  friend bool operator!=(const Timestamp& a, const Timestamp& b) { return !(a == b); }
  friend bool operator<(const Timestamp& a, const Timestamp& b) {
    return a.wall != b.wall ? a.wall < b.wall : a.logical < b.logical;
  }
  friend bool operator<=(const Timestamp& a, const Timestamp& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Timestamp& a, const Timestamp& b) { return b < a; }
  friend bool operator>=(const Timestamp& a, const Timestamp& b) { return b <= a; }

  std::string ToString() const {
    return std::to_string(wall) + "." + std::to_string(logical);
  }
};

/// Hybrid logical clock: monotonic, never behind the physical clock, and
/// advanced by observed remote timestamps so causally-related events order
/// correctly across nodes.
class HybridLogicalClock {
 public:
  explicit HybridLogicalClock(Clock* physical) : physical_(physical) {}

  /// Returns a timestamp strictly greater than any previously returned.
  Timestamp Now() {
    const Nanos wall = physical_->Now();
    if (wall > last_.wall) {
      last_ = {wall, 0};
    } else {
      last_ = last_.Next();
    }
    return last_;
  }

  /// Folds in a timestamp observed from another node.
  void Update(Timestamp remote) {
    if (last_ < remote) last_ = remote;
  }

 private:
  Clock* physical_;
  Timestamp last_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_TIMESTAMP_H_
