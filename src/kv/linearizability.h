#ifndef VELOCE_KV_LINEARIZABILITY_H_
#define VELOCE_KV_LINEARIZABILITY_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace veloce::kv {

/// One client-observed operation in a history. Times are drawn from a
/// single monotonic logical clock (the recorder's), so invoke/complete
/// intervals are comparable across threads.
struct HistoryOp {
  enum class Kind : uint8_t { kWrite = 0, kRead = 1 };
  static constexpr uint64_t kForever = std::numeric_limits<uint64_t>::max();

  Kind kind = Kind::kWrite;
  std::string key;
  std::string value;   ///< written value, or value a read returned
  bool found = true;   ///< reads: key existed (false = observed "no value")
  bool acked = false;  ///< the client saw success
  /// Indeterminate outcome: the op MAY have taken effect ("result unknown"
  /// errors — e.g. quorum lost after the log append). Linearization may
  /// include or exclude it. Acked ops are never maybe.
  bool maybe = false;
  uint64_t invoke = 0;
  uint64_t complete = kForever;  ///< maybe-ops never complete (no upper bound)
};

/// Thread-safe recorder wrapping a sequence of KV calls with invoke /
/// complete timestamps from one logical clock. The test harness calls
/// BeginWrite/BeginRead before issuing the real operation and the matching
/// End* after, then hands Snapshot() to CheckLinearizability.
class HistoryRecorder {
 public:
  /// Returns the op id to pass to the matching End call.
  size_t BeginWrite(std::string key, std::string value);
  size_t BeginRead(std::string key);

  /// `ok`: client saw success. `maybe`: failure was of the "result
  /// unknown" class (op may still have applied). Failed-definite writes
  /// are kept as non-acked non-maybe ops (they must NOT appear in any
  /// linearization); failed reads are dropped at snapshot time.
  void EndWrite(size_t id, bool ok, bool maybe);
  /// `found=false` records a read that observed no value for the key.
  void EndRead(size_t id, bool ok, bool found, std::string value);

  std::vector<HistoryOp> Snapshot() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  uint64_t clock_ = 0;
  std::vector<HistoryOp> ops_;
};

struct LinearizabilityResult {
  bool ok = true;
  std::string explanation;  ///< first violating key + why, when !ok
  size_t keys_checked = 0;
  size_t ops_checked = 0;
};

/// Checks a history of per-key register operations for linearizability
/// (Wing–Gong style exhaustive search with memoization, run independently
/// per key — keys are independent registers, so the product search
/// factorizes). Rules:
///   - acked ops must all be linearized, in some order consistent with
///     real-time precedence (complete(a) < invoke(b) => a before b);
///   - maybe-writes may be linearized anywhere after their invoke, or
///     omitted entirely;
///   - failed-definite writes are never linearized;
///   - each read must return the value of the latest linearized write to
///     its key (or found=false when there is none).
/// Histories are expected to be bounded (hundreds of ops per key); the
/// memoized search is exponential in the worst case but small histories
/// with real-time order constraints prune hard.
LinearizabilityResult CheckLinearizability(const std::vector<HistoryOp>& ops);

}  // namespace veloce::kv

#endif  // VELOCE_KV_LINEARIZABILITY_H_
