#include "kv/timestamp_oracle.h"

namespace veloce::kv {

TimestampOracle::TimestampOracle(HybridLogicalClock* hlc,
                                 TimestampOracleOptions options)
    : core_(std::make_shared<Core>()) {
  core_->hlc = hlc;
  core_->options = options;
  if (core_->options.batch_size == 0) core_->options.batch_size = 1;
}

TimestampOracle::~TimestampOracle() {
  // Detach from the HLC under the lock: an async refill already running on
  // the executor either sees the old pointer while we wait for the lock (the
  // HLC outlives the oracle inside KVCluster) or null afterwards and no-ops.
  std::lock_guard<std::mutex> l(core_->mu);
  core_->hlc = nullptr;
}

uint32_t TimestampOracle::RemainingLocked(const Core& core) {
  if (!core.have) return 0;
  // Window shares one wall value by construction.
  return core.end.logical - core.next.logical + 1;
}

void TimestampOracle::RefillLocked(Core* core) {
  const uint32_t n = core->options.batch_size;
  const Timestamp first = core->hlc->GenerateTimestamps(n);
  core->next = first;
  core->end = {first.wall, first.logical + (n - 1)};
  core->have = true;
}

Timestamp TimestampOracle::Next() {
  Core& c = *core_;
  std::lock_guard<std::mutex> l(c.mu);
  if (!c.have) {
    RefillLocked(&c);
    ++c.sync_refills;
    if (c.options.sync_refills != nullptr) c.options.sync_refills->Inc();
  }
  const Timestamp ts = c.next;
  if (c.next == c.end) {
    c.have = false;
  } else {
    c.next = c.next.Next();
  }
  if (c.options.executor != nullptr && !c.refill_pending &&
      RemainingLocked(c) < c.options.refill_threshold) {
    c.refill_pending = true;
    std::weak_ptr<Core> weak = core_;
    c.options.executor->Schedule([weak] {
      std::shared_ptr<Core> core = weak.lock();
      if (core == nullptr) return;
      std::lock_guard<std::mutex> l(core->mu);
      core->refill_pending = false;
      if (core->hlc == nullptr) return;  // oracle shut down
      RefillLocked(core.get());
      ++core->async_refills;
      if (core->options.async_refills != nullptr) core->options.async_refills->Inc();
    });
  }
  return ts;
}

void TimestampOracle::Observe(Timestamp committed) {
  Core& c = *core_;
  std::lock_guard<std::mutex> l(c.mu);
  // Make sure the next refill draws above the commit even if the caller's
  // HLC update races with a concurrent refill.
  if (c.hlc != nullptr) c.hlc->Update(committed);
  if (!c.have) return;
  if (committed >= c.end) {
    c.have = false;  // commit jumped past the window; refill lazily
  } else if (committed >= c.next) {
    c.next = committed.Next();  // fast-forward within the window
  }
}

uint64_t TimestampOracle::sync_refills() const {
  std::lock_guard<std::mutex> l(core_->mu);
  return core_->sync_refills;
}

uint64_t TimestampOracle::async_refills() const {
  std::lock_guard<std::mutex> l(core_->mu);
  return core_->async_refills;
}

}  // namespace veloce::kv
