#include "kv/range.h"

namespace veloce::kv {

void TimestampCache::RecordRead(Slice key, Timestamp ts) {
  if (ts <= low_water_) return;
  auto it = points_.find(key.view());
  if (it == points_.end()) {
    if (points_.size() >= kMaxPoints) {
      // Fold everything into the low-water mark and start over.
      for (const auto& [k, t] : points_) {
        if (low_water_ < t) low_water_ = t;
      }
      points_.clear();
      if (ts <= low_water_) return;
    }
    points_.emplace(key.ToString(), ts);
  } else if (it->second < ts) {
    it->second = ts;
  }
}

void TimestampCache::RecordReadSpan(Slice start, Slice end, Timestamp ts) {
  if (ts <= low_water_) return;
  if (spans_.size() >= kMaxSpans) {
    for (const auto& span : spans_) {
      if (low_water_ < span.ts) low_water_ = span.ts;
    }
    spans_.clear();
    if (ts <= low_water_) return;
  }
  spans_.push_back({start.ToString(), end.ToString(), ts});
}

void TimestampCache::MergeFrom(const TimestampCache& other) {
  if (low_water_ < other.low_water_) low_water_ = other.low_water_;
  for (const auto& [k, t] : other.points_) RecordRead(k, t);
  for (const auto& span : other.spans_) {
    RecordReadSpan(span.start, span.end, span.ts);
  }
}

Timestamp TimestampCache::MaxReadTimestamp(Slice key) const {
  Timestamp max = low_water_;
  auto it = points_.find(key.view());
  if (it != points_.end() && max < it->second) max = it->second;
  for (const auto& span : spans_) {
    if (Slice(span.start) <= key && (span.end.empty() || key < Slice(span.end))) {
      if (max < span.ts) max = span.ts;
    }
  }
  return max;
}

}  // namespace veloce::kv
