#include "kv/range_cache.h"

namespace veloce::kv {

namespace {

/// True when [a_start, a_end) and [b_start, b_end) intersect (empty end =
/// +infinity).
bool SpansOverlap(const std::string& a_start, const std::string& a_end,
                  const std::string& b_start, const std::string& b_end) {
  if (!a_end.empty() && a_end <= b_start) return false;
  if (!b_end.empty() && b_end <= a_start) return false;
  return true;
}

}  // namespace

std::optional<RangeDescriptor> RangeDirectoryCache::Lookup(Slice key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = by_start_.upper_bound(key);
  if (it == by_start_.begin()) {
    ++stats_.misses;
    return std::nullopt;
  }
  --it;
  if (!it->second.Contains(key)) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void RangeDirectoryCache::Insert(const RangeDescriptor& desc) {
  std::lock_guard<std::mutex> l(mu_);
  // Find every cached entry overlapping the new span. Start from the entry
  // at or before desc.start_key (its span may reach into ours).
  auto it = by_start_.upper_bound(desc.start_key);
  if (it != by_start_.begin()) --it;
  while (it != by_start_.end()) {
    if (!desc.end_key.empty() && it->first >= desc.end_key) break;
    if (SpansOverlap(it->second.start_key, it->second.end_key, desc.start_key,
                     desc.end_key)) {
      if (it->second.generation > desc.generation) return;  // newer entry wins
      it = by_start_.erase(it);
    } else {
      ++it;
    }
  }
  by_start_[desc.start_key] = desc;
}

void RangeDirectoryCache::Invalidate(Slice key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = by_start_.upper_bound(key);
  if (it == by_start_.begin()) return;
  --it;
  if (!it->second.Contains(key)) return;
  by_start_.erase(it);
  ++stats_.invalidations;
}

void RangeDirectoryCache::Clear() {
  std::lock_guard<std::mutex> l(mu_);
  by_start_.clear();
}

size_t RangeDirectoryCache::size() const {
  std::lock_guard<std::mutex> l(mu_);
  return by_start_.size();
}

RangeDirectoryCache::Stats RangeDirectoryCache::stats() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_;
}

}  // namespace veloce::kv
