#ifndef VELOCE_KV_BATCH_H_
#define VELOCE_KV_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "kv/mvcc.h"
#include "kv/timestamp.h"

namespace veloce::obs {
class TraceContext;
}  // namespace veloce::obs

namespace veloce::kv {

/// Tenant identifier. Tenant 1 is the privileged system tenant.
using TenantId = uint64_t;
constexpr TenantId kSystemTenantId = 1;

/// Range identifier (see kv/range.h; declared here so BatchRequest can
/// carry range addressing without a circular include).
using RangeId = uint64_t;

/// The KV API request types the SQL layer issues (the paper's GET/PUT/
/// DELETE/SCAN vocabulary). A BatchRequest groups several into one RPC —
/// the batching whose cost behaviour Fig 5 models.
enum class RequestType : uint8_t {
  kGet = 0,
  kPut = 1,
  kDelete = 2,
  kScan = 3,
};

struct RequestUnion {
  RequestType type = RequestType::kGet;
  std::string key;
  std::string end_key;   ///< scans only (exclusive)
  std::string value;     ///< puts only
  uint64_t limit = 0;    ///< scans only; 0 = unlimited
  /// Opaque filter/projection spec evaluated at the KV node via the
  /// cluster's registered pushdown hook (the paper's future-work row
  /// filtering and projection push-down; empty = none).
  std::string pushdown;
};

/// One KV RPC. When the SQL layer runs in a separate process (Serverless
/// mode) this is marshalled through Encode()/Decode() — that serialization
/// is the extra CPU the paper measures for OLAP scans (Fig 6).
struct BatchRequest {
  TenantId tenant_id = 0;
  Timestamp ts;            ///< read/write timestamp
  TxnId txn_id = 0;        ///< 0 = non-transactional
  int32_t txn_priority = 0;
  /// Stale reads at ts <= the closed timestamp may be served by any live
  /// replica instead of the leaseholder (Section 3.2.5: follower reads,
  /// used for META-range lookups during multi-region cold starts).
  bool allow_follower_reads = false;
  /// One-phase commit: the batch carries the transaction's entire write set
  /// (writes only, single range) and the server commits it atomically at a
  /// single timestamp, skipping the txn-record/intent dance. The response
  /// carries commit_ts on success or one_pc_rejected_ts when the commit
  /// timestamp had to move and can_forward_ts is false.
  bool commit_txn = false;
  /// With commit_txn: true iff the txn performed no reads, so the server
  /// may forward the commit timestamp past timestamp-cache/closed-timestamp
  /// constraints without a client-side read refresh.
  bool can_forward_ts = false;
  /// Range addressing from a client-side directory cache (0 = unaddressed;
  /// the server resolves keys through the directory as before). An
  /// addressed batch whose range no longer exists or no longer contains the
  /// batch's keys is rejected with RangeKeyMismatch so the client
  /// invalidates its cache entry and retries with a fresh descriptor —
  /// never silently served by the wrong range.
  RangeId range_id = 0;

  /// Optional request trace; stages below the connector (admission wait,
  /// replication, storage) record spans here. Never serialized — a real
  /// RPC would carry trace ids instead; the in-process graph can share the
  /// context directly.
  obs::TraceContext* trace = nullptr;

  std::vector<RequestUnion> requests;

  void AddGet(Slice key);
  void AddPut(Slice key, Slice value);
  void AddDelete(Slice key);
  void AddScan(Slice start, Slice end, uint64_t limit = 0);
  /// Scan with a pushdown spec (see RequestUnion::pushdown).
  void AddScanWithPushdown(Slice start, Slice end, uint64_t limit,
                           Slice pushdown_spec);

  bool IsReadOnly() const;
  /// Total request payload bytes (keys + values) — eCPU model feature.
  size_t PayloadBytes() const;

  std::string Encode() const;
  static StatusOr<BatchRequest> Decode(Slice data);
};

struct ResponseUnion {
  bool found = false;           ///< gets: value present
  std::string value;            ///< gets
  std::vector<MvccScanEntry> rows;  ///< scans
  std::string resume_key;       ///< scans: non-empty if limit hit
};

struct BatchResponse {
  std::vector<ResponseUnion> responses;
  /// Server-observed timestamp; clients fold into their HLC.
  Timestamp now;
  /// If the batch's writes were pushed above the request timestamp by the
  /// timestamp cache, the new write timestamp (txn must commit at or above).
  Timestamp bumped_write_ts;
  /// One-phase commit (BatchRequest::commit_txn): the timestamp the txn
  /// committed at. Empty if the batch was not a 1PC commit.
  Timestamp commit_ts;
  /// One-phase commit refusal: the commit timestamp would have to move here
  /// but the request forbade forwarding (can_forward_ts == false). Nothing
  /// was written; the client refreshes its read spans to this timestamp and
  /// retries (or falls back to the general commit path).
  Timestamp one_pc_rejected_ts;

  /// Total response payload bytes — eCPU model feature.
  size_t PayloadBytes() const;

  std::string Encode() const;
  static StatusOr<BatchResponse> Decode(Slice data);
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_BATCH_H_
