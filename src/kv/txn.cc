#include "kv/txn.h"

namespace veloce::kv {

TxnRecord TxnRegistry::Begin(Timestamp ts, int32_t priority) {
  std::lock_guard<std::mutex> l(mu_);
  TxnRecord rec;
  rec.id = next_id_++;
  rec.status = TxnStatus::kPending;
  rec.read_ts = ts;
  rec.write_ts = ts;
  rec.priority = priority;
  rec.last_heartbeat = clock_->Now();
  records_[rec.id] = rec;
  return rec;
}

StatusOr<TxnRecord> TxnRegistry::Get(TxnId id) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no txn record");
  return it->second;
}

StatusOr<TxnRecord> TxnRegistry::Heartbeat(TxnId id) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no txn record");
  if (it->second.status == TxnStatus::kPending ||
      it->second.status == TxnStatus::kStaging) {
    it->second.last_heartbeat = clock_->Now();
  }
  return it->second;
}

Status TxnRegistry::BumpWriteTimestamp(TxnId id, Timestamp ts) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no txn record");
  // A staging txn's write_ts may still move (a late pipelined write got
  // bumped); the gap between write_ts and staged_ts then fails the commit
  // condition until the coordinator refreshes and re-stages.
  if (it->second.status != TxnStatus::kPending &&
      it->second.status != TxnStatus::kStaging) {
    return Status::TransactionAborted("txn no longer pending");
  }
  if (it->second.write_ts < ts) it->second.write_ts = ts;
  return Status::OK();
}

Status TxnRegistry::Stage(TxnId id, Timestamp commit_ts,
                          std::vector<std::string> in_flight_writes) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no txn record");
  TxnRecord& rec = it->second;
  if (rec.status == TxnStatus::kAborted) {
    return Status::TransactionAborted("aborted by a concurrent pusher");
  }
  if (rec.status == TxnStatus::kCommitted) {
    return Status::Internal("cannot stage a committed txn");
  }
  rec.status = TxnStatus::kStaging;
  rec.staged_ts = commit_ts;
  if (rec.write_ts < commit_ts) rec.write_ts = commit_ts;
  rec.in_flight_writes = std::move(in_flight_writes);
  rec.last_heartbeat = clock_->Now();
  return Status::OK();
}

Status TxnRegistry::Commit(TxnId id, Timestamp commit_ts) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no txn record");
  TxnRecord& rec = it->second;
  if (rec.status == TxnStatus::kAborted) {
    return Status::TransactionAborted("aborted by a concurrent pusher");
  }
  if (rec.status == TxnStatus::kCommitted) return Status::OK();
  rec.status = TxnStatus::kCommitted;
  rec.write_ts = commit_ts;
  rec.in_flight_writes.clear();
  rec.last_heartbeat = clock_->Now();
  return Status::OK();
}

Status TxnRegistry::Abort(TxnId id) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no txn record");
  if (it->second.status == TxnStatus::kCommitted) {
    return Status::Internal("cannot abort a committed txn");
  }
  it->second.status = TxnStatus::kAborted;
  it->second.in_flight_writes.clear();
  return Status::OK();
}

PushResult TxnRegistry::Push(TxnId pushee, int32_t pusher_priority,
                             PushType type, Timestamp push_to) {
  std::lock_guard<std::mutex> l(mu_);
  PushResult result;
  auto it = records_.find(pushee);
  if (it == records_.end()) {
    // Unknown record: treat as aborted (it was GC'ed after finalizing; the
    // intent is stale and the resolver may clean it up).
    result.pushee_status = TxnStatus::kAborted;
    result.pushed = true;
    return result;
  }
  TxnRecord& rec = it->second;
  if (rec.status == TxnStatus::kStaging) {
    // A staged txn may already be implicitly committed; neither aborting
    // nor bumping is legal here. The caller must run the parallel-commit
    // recovery procedure against the declared in-flight writes.
    result.pushee_status = TxnStatus::kStaging;
    result.commit_ts = rec.staged_ts;
    result.pushed = false;
    return result;
  }
  if (rec.status != TxnStatus::kPending) {
    result.pushee_status = rec.status;
    result.commit_ts = rec.write_ts;
    result.pushed = true;
    return result;
  }
  const bool expired = clock_->Now() - rec.last_heartbeat > kExpiration;
  if (expired || (type == PushType::kAbort && pusher_priority > rec.priority)) {
    rec.status = TxnStatus::kAborted;
    result.pushee_status = TxnStatus::kAborted;
    result.pushed = true;
    return result;
  }
  if (type == PushType::kTimestamp) {
    // Readers always succeed in pushing a pending writer's timestamp above
    // their read timestamp; the writer pays with a refresh at commit. This
    // keeps reads non-blocking (CockroachDB reaches the same outcome via
    // the txn wait queue).
    if (rec.write_ts <= push_to) rec.write_ts = push_to.Next();
    result.pushee_status = TxnStatus::kPending;
    result.pushed = true;
    return result;
  }
  result.pushee_status = TxnStatus::kPending;
  result.pushed = false;
  return result;
}

size_t TxnRegistry::GarbageCollect() {
  std::lock_guard<std::mutex> l(mu_);
  const Nanos cutoff = clock_->Now() - kExpiration;
  size_t removed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    const TxnStatus st = it->second.status;
    const bool finalized =
        st == TxnStatus::kCommitted || st == TxnStatus::kAborted;
    if (finalized && it->second.last_heartbeat < cutoff) {
      it = records_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<TxnId> TxnRegistry::ExpiredStaging() const {
  std::lock_guard<std::mutex> l(mu_);
  const Nanos cutoff = clock_->Now() - kExpiration;
  std::vector<TxnId> out;
  for (const auto& [id, rec] : records_) {
    if (rec.status == TxnStatus::kStaging && rec.last_heartbeat < cutoff) {
      out.push_back(id);
    }
  }
  return out;
}

size_t TxnRegistry::size() const {
  std::lock_guard<std::mutex> l(mu_);
  return records_.size();
}

}  // namespace veloce::kv
