#ifndef VELOCE_KV_NODE_H_
#define VELOCE_KV_NODE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "kv/batch.h"
#include "kv/range.h"
#include "obs/obs_context.h"
#include "storage/engine.h"

namespace veloce::kv {

/// Per-node batch counters, broken down the same way the estimated-CPU
/// model's six input features are (Section 5.2.1): read/write batches,
/// requests per batch, bytes per batch.
///
/// Snapshot view: the source of truth is the node's `veloce_kv_*` series
/// (labelled node=<id>) in its obs::MetricsRegistry; KVNode::stats()
/// materializes them here for typed consumers.
struct NodeBatchStats {
  uint64_t read_batches = 0;
  uint64_t write_batches = 0;
  uint64_t read_requests = 0;
  uint64_t write_requests = 0;
  uint64_t read_bytes = 0;   ///< bytes returned by reads
  uint64_t write_bytes = 0;  ///< bytes ingested by writes
};

/// One KV (storage) node: an LSM engine plus liveness state. KV nodes are
/// shared by all tenants — the multi-tenant half of the paper's hybrid
/// process model. Ranges place replicas on nodes; each replica's data lives
/// in that node's engine.
class KVNode {
 public:
  /// `obs` wires the node (and its engine, labelled node=<id>) into a
  /// shared metrics registry; the default no-op context gives the node a
  /// private registry so stats() works standalone.
  KVNode(NodeId id, std::string region, storage::EngineOptions engine_options,
         const obs::ObsContext& obs = {});

  NodeId id() const { return id_; }
  const std::string& region() const { return region_; }
  storage::Engine* engine() { return engine_.get(); }

  /// Simulated crash-restart: tears the engine down (dropping all volatile
  /// state) and reopens it against the node's Env, replaying retained WALs.
  /// Everything acked as durable before the crash must be readable again
  /// afterwards; the serverless fault tests verify exactly that. On failure
  /// the node is left engine-less — callers must treat the node as dead.
  Status Restart();

  /// Liveness: an overloaded node fails its liveness checks and sheds
  /// leases (Fig 12). The experiment harness toggles this.
  bool live() const { return live_.load(std::memory_order_acquire); }
  void SetLive(bool live) { live_.store(live, std::memory_order_release); }

  /// Batch accounting, invoked by the cluster's data path.
  void RecordBatch(bool read_only) {
    (read_only ? read_batches_c_ : write_batches_c_)->Inc();
  }
  void RecordReadRequest() { read_requests_c_->Inc(); }
  void AddReadBytes(uint64_t bytes) { read_bytes_c_->Inc(bytes); }
  void RecordWriteRequest(uint64_t bytes) {
    write_requests_c_->Inc();
    write_bytes_c_->Inc(bytes);
  }

  /// Cumulative batch counters, materialized from the metrics registry.
  const NodeBatchStats& stats() const;

  /// Per-tenant cumulative engine payload bytes written via this node
  /// (storage attribution for billing).
  void AddTenantWriteBytes(TenantId tenant, uint64_t bytes) {
    tenant_write_bytes_[tenant] += bytes;
  }
  uint64_t TenantWriteBytes(TenantId tenant) const {
    auto it = tenant_write_bytes_.find(tenant);
    return it == tenant_write_bytes_.end() ? 0 : it->second;
  }

 private:
  const NodeId id_;
  const std::string region_;
  /// The node (not the engine) owns the filesystem so a crash-restart can
  /// reopen the same files. Only set when the caller passed no env.
  std::unique_ptr<storage::Env> owned_env_;
  storage::EngineOptions engine_options_;  ///< retained for Restart()
  std::unique_ptr<storage::Engine> engine_;
  std::atomic<bool> live_{true};
  std::unordered_map<TenantId, uint64_t> tenant_write_bytes_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* read_batches_c_ = nullptr;
  obs::Counter* write_batches_c_ = nullptr;
  obs::Counter* read_requests_c_ = nullptr;
  obs::Counter* write_requests_c_ = nullptr;
  obs::Counter* read_bytes_c_ = nullptr;
  obs::Counter* write_bytes_c_ = nullptr;
  mutable NodeBatchStats stats_snapshot_;
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_NODE_H_
