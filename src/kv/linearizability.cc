#include "kv/linearizability.h"

#include <map>
#include <unordered_set>
#include <utility>

namespace veloce::kv {

size_t HistoryRecorder::BeginWrite(std::string key, std::string value) {
  std::lock_guard<std::mutex> l(mu_);
  HistoryOp op;
  op.kind = HistoryOp::Kind::kWrite;
  op.key = std::move(key);
  op.value = std::move(value);
  op.invoke = ++clock_;
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

size_t HistoryRecorder::BeginRead(std::string key) {
  std::lock_guard<std::mutex> l(mu_);
  HistoryOp op;
  op.kind = HistoryOp::Kind::kRead;
  op.key = std::move(key);
  op.invoke = ++clock_;
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void HistoryRecorder::EndWrite(size_t id, bool ok, bool maybe) {
  std::lock_guard<std::mutex> l(mu_);
  HistoryOp& op = ops_[id];
  op.acked = ok;
  op.maybe = !ok && maybe;
  // A maybe-write never completes: with no upper bound on when it might
  // take effect, any later read may still observe it.
  if (!op.maybe) op.complete = ++clock_;
}

void HistoryRecorder::EndRead(size_t id, bool ok, bool found,
                              std::string value) {
  std::lock_guard<std::mutex> l(mu_);
  HistoryOp& op = ops_[id];
  op.acked = ok;
  op.found = found;
  op.value = std::move(value);
  op.complete = ++clock_;
}

std::vector<HistoryOp> HistoryRecorder::Snapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<HistoryOp> out;
  out.reserve(ops_.size());
  for (const HistoryOp& op : ops_) {
    // A failed read observed nothing — it constrains nothing.
    if (op.kind == HistoryOp::Kind::kRead && !op.acked) continue;
    out.push_back(op);
  }
  return out;
}

size_t HistoryRecorder::size() const {
  std::lock_guard<std::mutex> l(mu_);
  return ops_.size();
}

namespace {

/// Wing–Gong search over one key's register history. State is (set of
/// linearized ops, index of the last linearized write); identical states
/// reached by different interleavings are memoized away.
class KeySearch {
 public:
  explicit KeySearch(std::vector<HistoryOp> ops) : ops_(std::move(ops)) {}

  bool Check() {
    n_ = ops_.size();
    cur_.assign((n_ + 63) / 64, 0);
    required_total_ = 0;
    for (const HistoryOp& op : ops_) {
      if (op.acked) ++required_total_;
    }
    required_done_ = 0;
    return Dfs(-1);
  }

 private:
  bool Test(size_t i) const { return (cur_[i >> 6] >> (i & 63)) & 1; }
  void Set(size_t i) { cur_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { cur_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  std::string MemoKey(int val) const {
    std::string key(reinterpret_cast<const char*>(cur_.data()),
                    cur_.size() * sizeof(uint64_t));
    key.append(reinterpret_cast<const char*>(&val), sizeof(val));
    return key;
  }

  bool Dfs(int val) {
    if (required_done_ == required_total_) return true;
    if (!memo_.insert(MemoKey(val)).second) return false;
    for (size_t i = 0; i < n_; ++i) {
      if (Test(i)) continue;
      const HistoryOp& op = ops_[i];
      // Minimality: i may go next only if no other pending op that MUST be
      // linearized completed before i was invoked. Maybe-writes never
      // block (complete = forever) and may be omitted entirely.
      bool blocked = false;
      for (size_t j = 0; j < n_ && !blocked; ++j) {
        if (j == i || Test(j)) continue;
        blocked = ops_[j].acked && ops_[j].complete < op.invoke;
      }
      if (blocked) continue;
      int next_val = val;
      if (op.kind == HistoryOp::Kind::kRead) {
        if (op.found) {
          if (val < 0 || ops_[static_cast<size_t>(val)].value != op.value) {
            continue;
          }
        } else if (val >= 0) {
          continue;
        }
      } else {
        next_val = static_cast<int>(i);
      }
      Set(i);
      if (op.acked) ++required_done_;
      if (Dfs(next_val)) return true;
      if (op.acked) --required_done_;
      Clear(i);
    }
    return false;
  }

  std::vector<HistoryOp> ops_;
  size_t n_ = 0;
  size_t required_total_ = 0;
  size_t required_done_ = 0;
  std::vector<uint64_t> cur_;
  std::unordered_set<std::string> memo_;
};

}  // namespace

LinearizabilityResult CheckLinearizability(const std::vector<HistoryOp>& ops) {
  LinearizabilityResult result;
  std::map<std::string, std::vector<HistoryOp>> by_key;
  for (const HistoryOp& op : ops) {
    // Failed-definite ops never took effect and observed nothing.
    if (!op.acked && !op.maybe) continue;
    by_key[op.key].push_back(op);
    ++result.ops_checked;
  }
  for (auto& [key, key_ops] : by_key) {
    ++result.keys_checked;
    const size_t total = key_ops.size();
    size_t acked = 0;
    for (const HistoryOp& op : key_ops) {
      if (op.acked) ++acked;
    }
    KeySearch search(std::move(key_ops));
    if (!search.Check()) {
      result.ok = false;
      result.explanation = "key \"" + key + "\": no valid linearization of " +
                           std::to_string(total) + " ops (" +
                           std::to_string(acked) + " acked)";
      return result;
    }
  }
  return result;
}

}  // namespace veloce::kv
