#ifndef VELOCE_KV_REPLICA_TRANSPORT_H_
#define VELOCE_KV_REPLICA_TRANSPORT_H_

#include <cstdint>

#include "common/clock.h"

namespace veloce::kv {

/// Outcome of attempting one leaseholder→replica delivery. The default
/// (everything delivered, acked, once, instantly) is the in-process
/// passthrough behaviour.
///
/// `deliver` and `ack` are split so message-level faults can be modeled
/// precisely: a delivered-but-unacked message is a lost acknowledgement
/// (the replica applied the entry but the leaseholder must treat it as
/// behind and later re-replays — harmless, replay is idempotent), while an
/// acked-but-undelivered message is physically impossible on a real network
/// and exists only so a deliberately broken transport can manufacture
/// split-brain histories for the linearizability checker's self-test.
struct LinkDecision {
  bool deliver = true;   ///< the payload reaches the replica's engine
  bool ack = true;       ///< the replica's ack reaches the leaseholder
  uint32_t copies = 1;   ///< duplicate deliveries (idempotent apply)
  Nanos delay = 0;       ///< one-way delivery latency (observability only)
};

/// The seam every leaseholder→replica log delivery and every node-to-node
/// liveness heartbeat flows through. In production these are gRPC streams;
/// here they are virtual calls so the deterministic sim can interpose a
/// seeded fault mesh (sim::FaultyMesh) while the default passthrough keeps
/// the in-process cluster bit-identical to direct engine writes.
///
/// Implementations must be deterministic given their seed and call order:
/// the cluster consults the transport under its own mutex, in replica-id
/// order, so a fixed scenario seed yields a fixed fault trajectory.
class ReplicaTransport {
 public:
  virtual ~ReplicaTransport() = default;

  /// Decides the fate of log entry `log_index` sent from node `from` (the
  /// leaseholder) to replica `to`.
  virtual LinkDecision DeliverReplication(uint32_t from, uint32_t to,
                                          uint64_t log_index) = 0;

  /// Whether a liveness heartbeat from `from` reaches `to`. Also used as
  /// the reachability probe before streaming catch-up entries over a link.
  virtual bool DeliverHeartbeat(uint32_t from, uint32_t to) = 0;
};

/// Default transport: every message arrives, exactly once, immediately.
class PassthroughTransport final : public ReplicaTransport {
 public:
  LinkDecision DeliverReplication(uint32_t, uint32_t, uint64_t) override {
    return LinkDecision{};
  }
  bool DeliverHeartbeat(uint32_t, uint32_t) override { return true; }
};

}  // namespace veloce::kv

#endif  // VELOCE_KV_REPLICA_TRANSPORT_H_
