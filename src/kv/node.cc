#include "kv/node.h"

#include "common/logging.h"
#include "kv/mvcc.h"

namespace veloce::kv {

KVNode::KVNode(NodeId id, std::string region,
               storage::EngineOptions engine_options, const obs::ObsContext& obs)
    : id_(id), region_(std::move(region)) {
  obs::MetricsRegistry* metrics = obs.metrics;
  if (metrics == nullptr) {
    // Standalone node (tests, single-node tools): private registry so
    // stats() stays per-instance-correct without any wiring.
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const obs::Labels labels = {{"node", std::to_string(id_)}};
  read_batches_c_ = metrics->counter("veloce_kv_read_batches_total", labels);
  write_batches_c_ = metrics->counter("veloce_kv_write_batches_total", labels);
  read_requests_c_ = metrics->counter("veloce_kv_read_requests_total", labels);
  write_requests_c_ = metrics->counter("veloce_kv_write_requests_total", labels);
  read_bytes_c_ = metrics->counter("veloce_kv_read_bytes_total", labels);
  write_bytes_c_ = metrics->counter("veloce_kv_write_bytes_total", labels);

  engine_options.dir = "kvnode-" + std::to_string(id);
  // Blooms over logical MVCC keys: one probe covers a key's intent slot and
  // every version, so point reads can reject whole SSTables.
  engine_options.prefix_extractor = MvccPrefixExtractor;
  engine_options.obs = obs;
  engine_options.obs.metrics = metrics;
  engine_options.metrics_instance = std::to_string(id);
  auto engine_or = storage::Engine::Open(engine_options);
  VELOCE_CHECK(engine_or.ok()) << engine_or.status().ToString();
  engine_ = std::move(engine_or).value();
}

const NodeBatchStats& KVNode::stats() const {
  stats_snapshot_.read_batches = read_batches_c_->value();
  stats_snapshot_.write_batches = write_batches_c_->value();
  stats_snapshot_.read_requests = read_requests_c_->value();
  stats_snapshot_.write_requests = write_requests_c_->value();
  stats_snapshot_.read_bytes = read_bytes_c_->value();
  stats_snapshot_.write_bytes = write_bytes_c_->value();
  return stats_snapshot_;
}

}  // namespace veloce::kv
