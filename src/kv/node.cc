#include "kv/node.h"

#include "common/logging.h"

namespace veloce::kv {

KVNode::KVNode(NodeId id, std::string region, storage::EngineOptions engine_options)
    : id_(id), region_(std::move(region)) {
  engine_options.dir = "kvnode-" + std::to_string(id);
  auto engine_or = storage::Engine::Open(engine_options);
  VELOCE_CHECK(engine_or.ok()) << engine_or.status().ToString();
  engine_ = std::move(engine_or).value();
}

}  // namespace veloce::kv
