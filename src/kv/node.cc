#include "kv/node.h"

#include "common/logging.h"
#include "kv/mvcc.h"

namespace veloce::kv {

KVNode::KVNode(NodeId id, std::string region,
               storage::EngineOptions engine_options, const obs::ObsContext& obs)
    : id_(id), region_(std::move(region)) {
  obs::MetricsRegistry* metrics = obs.metrics;
  if (metrics == nullptr) {
    // Standalone node (tests, single-node tools): private registry so
    // stats() stays per-instance-correct without any wiring.
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const obs::Labels labels = {{"node", std::to_string(id_)}};
  read_batches_c_ = metrics->counter("veloce_kv_read_batches_total", labels);
  write_batches_c_ = metrics->counter("veloce_kv_write_batches_total", labels);
  read_requests_c_ = metrics->counter("veloce_kv_read_requests_total", labels);
  write_requests_c_ = metrics->counter("veloce_kv_write_requests_total", labels);
  read_bytes_c_ = metrics->counter("veloce_kv_read_bytes_total", labels);
  write_bytes_c_ = metrics->counter("veloce_kv_write_bytes_total", labels);

  engine_options.dir = "kvnode-" + std::to_string(id);
  // Blooms over logical MVCC keys: one probe covers a key's intent slot and
  // every version, so point reads can reject whole SSTables.
  engine_options.prefix_extractor = MvccPrefixExtractor;
  engine_options.obs = obs;
  engine_options.obs.metrics = metrics;
  engine_options.metrics_instance = std::to_string(id);
  if (engine_options.env == nullptr) {
    // The node owns the filesystem (rather than letting the engine own a
    // private one) so Restart() can reopen the same files and replay WALs.
    owned_env_ = storage::NewMemEnv();
    engine_options.env = owned_env_.get();
  }
  engine_options_ = engine_options;
  auto engine_or = storage::Engine::Open(engine_options_);
  VELOCE_CHECK(engine_or.ok()) << engine_or.status().ToString();
  engine_ = std::move(engine_or).value();
}

Status KVNode::Restart() {
  // Destroy first: volatile state (memtables, block cache) dies exactly as
  // it would in a crash; the WALs and SSTables survive in the env.
  engine_.reset();
  auto engine_or = storage::Engine::Open(engine_options_);
  if (!engine_or.ok()) return engine_or.status();
  engine_ = std::move(engine_or).value();
  return Status::OK();
}

const NodeBatchStats& KVNode::stats() const {
  stats_snapshot_.read_batches = read_batches_c_->value();
  stats_snapshot_.write_batches = write_batches_c_->value();
  stats_snapshot_.read_requests = read_requests_c_->value();
  stats_snapshot_.write_requests = write_requests_c_->value();
  stats_snapshot_.read_bytes = read_bytes_c_->value();
  stats_snapshot_.write_bytes = write_bytes_c_->value();
  return stats_snapshot_;
}

}  // namespace veloce::kv
