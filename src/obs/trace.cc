#include "obs/trace.h"

#include <algorithm>

#include "common/histogram.h"

namespace veloce::obs {

TraceContext::TraceContext(Clock* clock, std::string label)
    : clock_(clock != nullptr ? clock : RealClock::Instance()),
      label_(std::move(label)),
      start_(clock_->Now()) {}

size_t TraceContext::OpenSpan(std::string_view name) {
  TraceEvent ev;
  ev.name = std::string(name);
  ev.depth = open_depth_++;
  ev.start = clock_->Now();
  ev.dur = -1;  // sentinel: open
  events_.push_back(std::move(ev));
  return events_.size() - 1;
}

void TraceContext::CloseSpan(size_t index) {
  if (index >= events_.size()) return;
  TraceEvent& ev = events_[index];
  if (ev.dur != -1) return;  // already closed
  ev.dur = clock_->Now() - ev.start;
  if (open_depth_ > 0) --open_depth_;
}

void TraceContext::RecordDuration(std::string_view name, Nanos dur) {
  TraceEvent ev;
  ev.name = std::string(name);
  ev.depth = open_depth_;
  ev.start = clock_->Now();
  ev.dur = dur;
  events_.push_back(std::move(ev));
}

void TraceContext::AddDuration(std::string_view name, Nanos extra) {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->name == name && it->dur >= 0) {
      it->dur += extra;
      return;
    }
  }
  RecordDuration(name, extra);
}

Nanos TraceContext::Elapsed() const { return clock_->Now() - start_; }

Nanos TraceContext::StageDuration(std::string_view name) const {
  Nanos total = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name == name && ev.dur > 0) total += ev.dur;
  }
  return total;
}

std::string TraceContext::ToString() const {
  std::string out = label_ + "  total=" + Histogram::FormatNanos(Elapsed()) + "\n";
  for (const TraceEvent& ev : events_) {
    out.append(2 + static_cast<size_t>(ev.depth) * 2, ' ');
    out += ev.name + " " +
           (ev.dur < 0 ? "(open)" : Histogram::FormatNanos(ev.dur)) + "\n";
  }
  return out;
}

void TraceCollector::Finish(const TraceContext& ctx) {
  FinishedTrace done;
  done.label = ctx.label();
  done.start = ctx.start_time();
  done.total = ctx.Elapsed();
  done.events = ctx.events();
  if (done.total == 0) {
    // Under a SimClock the whole request may run at one instant; fall back
    // to the sum of top-level stage durations so "slowest" stays meaningful.
    for (const TraceEvent& event : done.events) {
      if (event.depth == 0) done.total += event.dur;
    }
  }
  std::lock_guard<std::mutex> l(mu_);
  ++finished_total_;
  ring_.push_back(std::move(done));
  if (ring_.size() > capacity_) ring_.pop_front();
}

uint64_t TraceCollector::finished_total() const {
  std::lock_guard<std::mutex> l(mu_);
  return finished_total_;
}

size_t TraceCollector::retained() const {
  std::lock_guard<std::mutex> l(mu_);
  return ring_.size();
}

std::vector<FinishedTrace> TraceCollector::Slowest(size_t n) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<FinishedTrace> all(ring_.begin(), ring_.end());
  std::sort(all.begin(), all.end(), [](const FinishedTrace& a, const FinishedTrace& b) {
    return a.total > b.total;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::string TraceCollector::DumpSlowest(size_t n) const {
  const std::vector<FinishedTrace> slow = Slowest(n);
  std::string out = "=== " + std::to_string(slow.size()) + " slowest of " +
                    std::to_string(retained()) + " retained (" +
                    std::to_string(finished_total()) + " finished) ===\n";
  int rank = 1;
  for (const FinishedTrace& t : slow) {
    out += "#" + std::to_string(rank++) + " " + t.label +
           "  total=" + Histogram::FormatNanos(t.total) + "\n";
    for (const TraceEvent& ev : t.events) {
      out.append(2 + static_cast<size_t>(ev.depth) * 2, ' ');
      out += ev.name + " " +
             (ev.dur < 0 ? "(open)" : Histogram::FormatNanos(ev.dur)) + "\n";
    }
  }
  return out;
}

}  // namespace veloce::obs
