#ifndef VELOCE_OBS_TRACE_H_
#define VELOCE_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace veloce::obs {

class TraceCollector;

/// One recorded stage of a request. Spans nest: `depth` is the nesting
/// level at open time (0 = top-level stage), and events are ordered by
/// open time, so a dump indented by depth reads as the request's timeline.
struct TraceEvent {
  std::string name;   ///< stage name, e.g. "marshal", "admission_queue"
  int depth = 0;
  Nanos start = 0;    ///< clock time the span opened
  Nanos dur = 0;      ///< closed span duration (0 until closed)
};

/// TraceContext follows one request through the stack — proxy -> SQL
/// session -> executor -> KV batch -> storage — accumulating per-stage
/// durations. Components receive it as a nullable pointer (tracing off =
/// nullptr); every method here tolerates being called on an open context
/// only, and the helpers in ScopedSpan tolerate a null context, so call
/// sites stay unconditional.
///
/// Not thread-safe: one request = one context = one thread (or one sim
/// event chain).
class TraceContext {
 public:
  /// `label` identifies the request in dumps (e.g. the SQL text).
  TraceContext(Clock* clock, std::string label);

  /// Opens a nested span; returns its index for CloseSpan. Spans close in
  /// any order (close-out-of-order just fixes each span's own duration).
  size_t OpenSpan(std::string_view name);
  void CloseSpan(size_t index);

  /// Records a flat span with an externally measured duration — used when
  /// the stage's wait happens elsewhere (admission queueing measured by
  /// the controller, sim latencies known from the event schedule).
  void RecordDuration(std::string_view name, Nanos dur);

  /// Adds `extra` to an already recorded flat span of `name` (creating it
  /// if absent) — aggregates repeated stages like per-batch marshal time.
  void AddDuration(std::string_view name, Nanos extra);

  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }
  Nanos start_time() const { return start_; }
  /// Wall (sim) duration so far.
  Nanos Elapsed() const;
  const std::vector<TraceEvent>& events() const { return events_; }
  Clock* clock() const { return clock_; }

  /// Total duration of every closed span named `name` (0 if none).
  Nanos StageDuration(std::string_view name) const;

  /// Multi-line human dump: label, total, then events indented by depth.
  std::string ToString() const;

 private:
  Clock* clock_;
  std::string label_;
  Nanos start_;
  int open_depth_ = 0;
  std::vector<TraceEvent> events_;
};

/// RAII span: opens on construction, closes on destruction. Null context
/// makes it a no-op, so instrumented code does not branch on tracing.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, std::string_view name)
      : ctx_(ctx), index_(ctx != nullptr ? ctx->OpenSpan(name) : 0) {}
  ~ScopedSpan() {
    if (ctx_ != nullptr) ctx_->CloseSpan(index_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceContext* ctx_;
  size_t index_;
};

/// A finished request trace, as retained by the collector.
struct FinishedTrace {
  std::string label;
  Nanos start = 0;
  Nanos total = 0;
  std::vector<TraceEvent> events;
};

/// Ring buffer of finished request traces. Keeps the most recent
/// `capacity` traces; DumpSlowest() reports the N slowest of those with
/// per-stage durations — the "why was this request slow" panel.
/// Thread-safe.
class TraceCollector {
 public:
  explicit TraceCollector(size_t capacity = 512) : capacity_(capacity) {}

  /// Finalizes `ctx` (total = elapsed since construction) and retains it.
  void Finish(const TraceContext& ctx);

  uint64_t finished_total() const;
  size_t retained() const;

  /// The `n` slowest retained traces, slowest first.
  std::vector<FinishedTrace> Slowest(size_t n) const;

  /// Human-readable table of the `n` slowest requests: one block per
  /// request with total and per-stage durations.
  std::string DumpSlowest(size_t n) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<FinishedTrace> ring_;  // newest at back
  uint64_t finished_total_ = 0;
};

}  // namespace veloce::obs

#endif  // VELOCE_OBS_TRACE_H_
