#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace veloce::obs {

namespace {

/// Escapes a label value for the Prometheus text format.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string FormatLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out.push_back('}');
  return out;
}

std::string FormatDouble(double v) {
  // Integral values print without a decimal point (counters mostly).
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Labels MetricsRegistry::Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Counter* MetricsRegistry::counter(std::string_view name, Labels labels) {
  SeriesKey key{std::string(name), Canonical(std::move(labels))};
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = counters_[std::move(key)];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, Labels labels) {
  SeriesKey key{std::string(name), Canonical(std::move(labels))};
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = gauges_[std::move(key)];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

HistogramMetric* MetricsRegistry::histogram(std::string_view name, Labels labels) {
  SeriesKey key{std::string(name), Canonical(std::move(labels))};
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = histograms_[std::move(key)];
  if (slot == nullptr) slot.reset(new HistogramMetric());
  return slot.get();
}

MetricsRegistry::CallbackToken MetricsRegistry::AddCollectCallback(
    std::function<void()> fn) {
  std::lock_guard<std::mutex> l(mu_);
  const uint64_t id = next_callback_id_++;
  callbacks_[id] = std::move(fn);
  // The token erases the callback on destruction; it does not own registry
  // lifetime (the registry must outlive its components, per the ObsContext
  // injection pattern).
  return CallbackToken(reinterpret_cast<void*>(id),
                       [this, id](void*) {
                         std::lock_guard<std::mutex> l2(mu_);
                         callbacks_.erase(id);
                       });
}

void MetricsRegistry::RunCallbacksLocked() const {
  // Copy out so callbacks may register new series (re-entering the
  // registry) without deadlocking on mu_.
  std::vector<std::function<void()>> fns;
  {
    auto* self = const_cast<MetricsRegistry*>(this);
    fns.reserve(self->callbacks_.size());
    for (auto& [id, fn] : self->callbacks_) fns.push_back(fn);
  }
  mu_.unlock();
  for (auto& fn : fns) fn();
  mu_.lock();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  RunCallbacksLocked();
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    MetricSample s;
    s.name = key.name;
    s.labels = key.labels;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauges_) {
    MetricSample s;
    s.name = key.name;
    s.labels = key.labels;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, h] : histograms_) {
    MetricSample s;
    s.name = key.name;
    s.labels = key.labels;
    s.kind = MetricSample::Kind::kHistogram;
    s.hist = h->Snapshot();
    s.value = static_cast<double>(s.hist.count());
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const MetricSample& a, const MetricSample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::string out;
  // Samples arrive sorted by (name, labels); emit one TYPE line per name.
  std::string last_name;
  auto type_line = [&](const MetricSample& s, const char* type) {
    if (s.name != last_name) {
      out += "# TYPE " + s.name + " " + type + "\n";
      last_name = s.name;
    }
  };
  for (const MetricSample& s : Snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        type_line(s, "counter");
        out += s.name + FormatLabels(s.labels) + " " + FormatDouble(s.value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        type_line(s, "gauge");
        out += s.name + FormatLabels(s.labels) + " " + FormatDouble(s.value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        type_line(s, "summary");
        for (const auto& [q, v] :
             {std::pair<const char*, int64_t>{"0.5", s.hist.P50()},
              {"0.95", s.hist.P95()},
              {"0.99", s.hist.P99()}}) {
          Labels with_q = s.labels;
          with_q.emplace_back("quantile", q);
          out += s.name + FormatLabels(with_q) + " " + FormatDouble(static_cast<double>(v)) +
                 "\n";
        }
        out += s.name + "_count" + FormatLabels(s.labels) + " " +
               FormatDouble(static_cast<double>(s.hist.count())) + "\n";
        out += s.name + "_sum" + FormatLabels(s.labels) + " " +
               FormatDouble(s.hist.Mean() * static_cast<double>(s.hist.count())) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::string out = "[";
  bool first = true;
  for (const MetricSample& s : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"" + JsonEscape(s.name) + "\",\"labels\":{";
    for (size_t i = 0; i < s.labels.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(s.labels[i].first) + "\":\"" +
             JsonEscape(s.labels[i].second) + "\"";
    }
    out += "},\"kind\":\"";
    switch (s.kind) {
      case MetricSample::Kind::kCounter: out += "counter"; break;
      case MetricSample::Kind::kGauge: out += "gauge"; break;
      case MetricSample::Kind::kHistogram: out += "histogram"; break;
    }
    out += "\"";
    if (s.kind == MetricSample::Kind::kHistogram) {
      out += ",\"count\":" + FormatDouble(static_cast<double>(s.hist.count()));
      out += ",\"mean_ns\":" + FormatDouble(s.hist.Mean());
      out += ",\"p50_ns\":" + FormatDouble(static_cast<double>(s.hist.P50()));
      out += ",\"p95_ns\":" + FormatDouble(static_cast<double>(s.hist.P95()));
      out += ",\"p99_ns\":" + FormatDouble(static_cast<double>(s.hist.P99()));
    } else {
      out += ",\"value\":" + FormatDouble(s.value);
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

double MetricsRegistry::Value(std::string_view name, const Labels& labels) const {
  SeriesKey key{std::string(name), Canonical(labels)};
  std::lock_guard<std::mutex> l(mu_);
  RunCallbacksLocked();
  if (auto it = counters_.find(key); it != counters_.end()) {
    return static_cast<double>(it->second->value());
  }
  if (auto it = gauges_.find(key); it != gauges_.end()) {
    return it->second->value();
  }
  if (auto it = histograms_.find(key); it != histograms_.end()) {
    return static_cast<double>(it->second->Snapshot().count());
  }
  return 0;
}

double MetricsRegistry::Sum(std::string_view name) const {
  std::lock_guard<std::mutex> l(mu_);
  RunCallbacksLocked();
  double sum = 0;
  for (const auto& [key, c] : counters_) {
    if (key.name == name) sum += static_cast<double>(c->value());
  }
  for (const auto& [key, g] : gauges_) {
    if (key.name == name) sum += g->value();
  }
  for (const auto& [key, h] : histograms_) {
    if (key.name == name) sum += static_cast<double>(h->Snapshot().count());
  }
  return sum;
}

size_t MetricsRegistry::NumSeries() const {
  std::lock_guard<std::mutex> l(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry* MetricsRegistry::Noop() {
  static MetricsRegistry* noop = new MetricsRegistry();
  return noop;
}

}  // namespace veloce::obs
