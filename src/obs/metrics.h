#ifndef VELOCE_OBS_METRICS_H_
#define VELOCE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace veloce::obs {

/// Label pairs identifying one series of a metric, e.g.
/// {{"tenant", "42"}, {"node", "0"}}. Registration sorts them by key, so
/// label order at the call site does not matter for dedup.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter. Hot-path increments are a single
/// relaxed atomic add — safe to call from any thread with no locking.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value that can go up and down (queue depths, slot counts,
/// token levels). Doubles so billing-style fractional quantities fit.
/// Set/Add are lock-free (compare-exchange loop for Add).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0};
};

/// Distribution metric wrapping common::Histogram (which is not
/// thread-safe) behind a small mutex. Record() is the only hot path; the
/// lock is uncontended in the single-threaded sim benches.
class HistogramMetric {
 public:
  void Record(int64_t value_ns) {
    std::lock_guard<std::mutex> l(mu_);
    hist_.Record(value_ns);
  }
  /// Copy-out snapshot for quantile queries and exports.
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> l(mu_);
    return hist_;
  }

 private:
  friend class MetricsRegistry;
  HistogramMetric() = default;
  mutable std::mutex mu_;
  Histogram hist_;
};

/// One exported series in a registry snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0;  ///< counter/gauge value; histogram count
  Histogram hist;    ///< histograms only
};

/// MetricsRegistry is the process-wide (or per-component-graph) metric
/// namespace: every instrumented component registers typed handles against
/// one of these at construction and increments them on its hot paths.
///
/// Dedup: counter/gauge/histogram with the same (name, labels) returns the
/// same handle, so two components feeding "the same series" share storage.
/// Handles are stable for the registry's lifetime.
///
/// Naming convention (docs/OBSERVABILITY.md): `veloce_<module>_<name>`,
/// with units suffixed (`_bytes`, `_seconds`, `_total` for counters).
///
/// Thread-safe. Registration takes a mutex; increments on returned handles
/// are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Typed handle factories. The returned pointer is owned by the registry
  /// and valid for its lifetime.
  Counter* counter(std::string_view name, Labels labels = {});
  Gauge* gauge(std::string_view name, Labels labels = {});
  HistogramMetric* histogram(std::string_view name, Labels labels = {});

  /// Pull-style instrumentation: `fn` runs before every Snapshot()/export
  /// (and Value() lookup), typically to refresh gauges from component
  /// state. Destroy the returned token to unregister — components that can
  /// die before the registry must hold it as a member.
  using CallbackToken = std::shared_ptr<void>;
  [[nodiscard]] CallbackToken AddCollectCallback(std::function<void()> fn);

  /// All current series, sorted by (name, labels). Runs collect callbacks.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition format (counters/gauges as-is; histograms
  /// as _count/_sum plus quantile gauges — the sim has no scrape loop, so
  /// precomputed quantiles beat cumulative buckets for readability).
  std::string ExportPrometheus() const;

  /// JSON export consumed by benches: an array of
  /// {"name":..., "labels":{...}, "kind":..., "value":...} objects, with
  /// p50/p95/p99/mean/count for histograms.
  std::string ExportJson() const;

  /// Convenience lookups for benches/tests. Missing series read as 0.
  /// Runs collect callbacks (so callback-fed gauges are fresh).
  double Value(std::string_view name, const Labels& labels = {}) const;
  /// Sum of every series of `name` regardless of labels.
  double Sum(std::string_view name) const;
  /// Number of registered series (all kinds).
  size_t NumSeries() const;

  /// Shared fallback registry for components constructed without one; never
  /// exported. Prefer injecting a real registry: series from unrelated
  /// component instances collide here, so per-instance reads are only
  /// meaningful on a private or properly-labelled registry.
  static MetricsRegistry* Noop();

 private:
  struct SeriesKey {
    std::string name;
    Labels labels;
    bool operator<(const SeriesKey& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };

  static Labels Canonical(Labels labels);
  void RunCallbacksLocked() const;

  mutable std::mutex mu_;
  // Handles live in deques of unique_ptr so pointers stay stable.
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<HistogramMetric>> histograms_;
  std::map<uint64_t, std::function<void()>> callbacks_;
  uint64_t next_callback_id_ = 1;
};

}  // namespace veloce::obs

#endif  // VELOCE_OBS_METRICS_H_
