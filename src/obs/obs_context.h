#ifndef VELOCE_OBS_OBS_CONTEXT_H_
#define VELOCE_OBS_OBS_CONTEXT_H_

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace veloce::obs {

/// ObsContext bundles the three cross-cutting injection points — time,
/// metrics, and request tracing — that every instrumented component needs.
/// It replaces the old convention of passing a bare `Clock*` and reaching
/// for implicit globals: construct components with one ObsContext instead.
///
/// A default-constructed ObsContext is the no-op instance: real clock,
/// shared never-exported registry, tracing off. Call sites that don't care
/// stay terse (`Engine::Open({...})`), and instrumented code never
/// null-checks — it uses the `*_or_*()` accessors at construction time.
struct ObsContext {
  /// Time source. Null means the process RealClock.
  Clock* clock = nullptr;
  /// Metric sink. Null means MetricsRegistry::Noop() — increments still
  /// work but are never exported (and collide across instances; inject a
  /// real registry wherever per-instance readback matters).
  MetricsRegistry* metrics = nullptr;
  /// Trace sink. Null disables tracing (spans become no-ops).
  TraceCollector* traces = nullptr;

  Clock* clock_or_real() const {
    return clock != nullptr ? clock : RealClock::Instance();
  }
  MetricsRegistry* metrics_or_noop() const {
    return metrics != nullptr ? metrics : MetricsRegistry::Noop();
  }
  bool tracing_enabled() const { return traces != nullptr; }
};

}  // namespace veloce::obs

#endif  // VELOCE_OBS_OBS_CONTEXT_H_
