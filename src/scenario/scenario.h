#ifndef VELOCE_SCENARIO_SCENARIO_H_
#define VELOCE_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "scenario/report.h"
#include "sim/event_loop.h"
#include "workload/load_pattern.h"

namespace veloce::scenario {

/// How a scenario run is parameterized. One seed reproduces the whole run:
/// every randomness source (load noise, fault schedules, failover jitter,
/// key pickers, pod jitter) draws a sub-seed derived from it.
struct ScenarioOptions {
  uint64_t seed = 0xC10D;
  /// Scaled-down sizes (fewer tenants/statements, compressed timelines)
  /// for the CI smoke — same composition, minutes become seconds.
  bool fast = false;
  /// Directory BENCH_<name>.json is written into; empty = no file.
  std::string out_dir;
};

/// Append-only, sim-time-stamped trace of everything notable a scenario
/// did or observed: timeline actions firing, faults injected, invariant
/// samples. Serialization is byte-deterministic, which is what the
/// determinism tests compare — two runs with one seed must serialize
/// identically; different seeds must not.
class EventLog {
 public:
  struct Entry {
    Nanos t = 0;
    std::string kind;
    std::string detail;
  };

  void Record(Nanos t, std::string_view kind, std::string_view detail);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// One line per event: "<t_ns> <kind> <detail>\n".
  std::string Serialize() const;
  /// FNV-1a over Serialize() — a cheap whole-trace identity.
  uint64_t Fingerprint() const;

 private:
  std::vector<Entry> entries_;
};

/// Everything a scenario's Run() receives: the run parameters, the report
/// it fills, and the event log it narrates into.
class ScenarioContext {
 public:
  ScenarioContext(const ScenarioOptions& options, BenchReport* report,
                  EventLog* log)
      : options_(options), report_(report), log_(log) {}

  const ScenarioOptions& options() const { return options_; }
  uint64_t seed() const { return options_.seed; }
  bool fast() const { return options_.fast; }
  /// Independent sub-seed for a named randomness stream (see DeriveSeed).
  uint64_t SubSeed(std::string_view stream) const {
    return DeriveSeed(options_.seed, stream);
  }

  BenchReport* report() { return report_; }
  EventLog* log() { return log_; }
  void Log(Nanos t, std::string_view kind, std::string_view detail) {
    log_->Record(t, kind, detail);
  }

 private:
  ScenarioOptions options_;
  BenchReport* report_;
  EventLog* log_;
};

/// Composes load shapes, fault schedules, and control-plane events onto
/// one shared sim timeline. Offsets are relative to the Timeline's
/// construction instant (the scenario's t=0); every firing is recorded in
/// the event log, so the composition itself is part of the replayable
/// trace.
class Timeline {
 public:
  Timeline(sim::EventLoop* loop, EventLog* log)
      : loop_(loop), log_(log), start_(loop->Now()) {}

  Nanos start() const { return start_; }
  /// Sim time elapsed since the scenario's t=0.
  Nanos Elapsed() const { return loop_->Now() - start_; }

  /// Runs `action` at t=0 + `offset`, logging `label` when it fires.
  void At(Nanos offset, std::string label, std::function<void()> action);

  /// Runs `action` every `period` from t=0+`period` through t=0+`until`.
  void Every(Nanos period, Nanos until, std::string label,
             std::function<void()> action);

  /// Layers a LoadPattern onto the timeline: every `cadence`, applies the
  /// pattern's demand at the elapsed time via `apply` (e.g. feeding
  /// SetTenantCpuUsage), through the pattern's full duration. `pattern` is
  /// captured by reference and must outlive the scheduled events.
  void DriveLoad(const workload::LoadPattern& pattern, Nanos cadence,
                 std::string label, std::function<void(double)> apply);

 private:
  sim::EventLoop* loop_;
  EventLog* log_;
  Nanos start_;
};

/// One named, seeded, reproducible "cluster weather" scenario. Run() must
/// derive all randomness from ctx.SubSeed(...), record what it does into
/// ctx.log(), and leave metrics + invariant verdicts in ctx.report().
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void Run(ScenarioContext& ctx) = 0;
};

using ScenarioFactory = std::function<std::unique_ptr<Scenario>()>;

/// Registers a scenario factory under its name (later registration wins —
/// tests can shadow a built-in). Not thread-safe; register at startup.
void RegisterScenario(const std::string& name, ScenarioFactory factory);

/// Registers the four built-in scenarios (black-friday, tenant-stampede,
/// az-outage, rolling-upgrade-under-chaos). Idempotent.
void RegisterBuiltinScenarios();

/// Registered scenario names, sorted.
std::vector<std::string> ScenarioNames();

/// Everything one scenario run produced.
struct ScenarioRunResult {
  BenchReport report{"unnamed"};
  std::string event_log;        ///< EventLog::Serialize()
  uint64_t fingerprint = 0;     ///< EventLog::Fingerprint()
  std::string report_path;      ///< non-empty when out_dir was set
  bool passed = false;
};

/// Runs the named scenario end to end and (when options.out_dir is set)
/// writes its BENCH_<name>.json snapshot. NotFound for unknown names.
StatusOr<ScenarioRunResult> RunScenario(const std::string& name,
                                        const ScenarioOptions& options);

}  // namespace veloce::scenario

#endif  // VELOCE_SCENARIO_SCENARIO_H_
