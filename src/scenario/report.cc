#include "scenario/report.h"

#include <cstdio>

#include "scenario/json_writer.h"

namespace veloce::scenario {

void BenchReport::AddParam(std::string key, std::string value) {
  Entry e;
  e.key = std::move(key);
  e.kind = Entry::Kind::kString;
  e.s = std::move(value);
  params_.push_back(std::move(e));
}

void BenchReport::AddParam(std::string key, double value) {
  Entry e;
  e.key = std::move(key);
  e.kind = Entry::Kind::kDouble;
  e.d = value;
  params_.push_back(std::move(e));
}

void BenchReport::AddParam(std::string key, int64_t value) {
  Entry e;
  e.key = std::move(key);
  e.kind = Entry::Kind::kInt;
  e.i = value;
  params_.push_back(std::move(e));
}

void BenchReport::AddParam(std::string key, bool value) {
  Entry e;
  e.key = std::move(key);
  e.kind = Entry::Kind::kBool;
  e.b = value;
  params_.push_back(std::move(e));
}

void BenchReport::AddMetric(std::string key, double value) {
  Entry e;
  e.key = std::move(key);
  e.kind = Entry::Kind::kDouble;
  e.d = value;
  metrics_.push_back(std::move(e));
}

void BenchReport::AddMetric(std::string key, int64_t value) {
  Entry e;
  e.key = std::move(key);
  e.kind = Entry::Kind::kInt;
  e.i = value;
  metrics_.push_back(std::move(e));
}

double BenchReport::Metric(const std::string& key) const {
  for (const Entry& e : metrics_) {
    if (e.key == key) {
      return e.kind == Entry::Kind::kInt ? static_cast<double>(e.i) : e.d;
    }
  }
  return 0;
}

InvariantResult& BenchReport::AssertLe(std::string name, double measured,
                                       double bound, std::string detail) {
  InvariantResult r;
  r.name = std::move(name);
  r.measured = measured;
  r.bound = bound;
  r.passed = measured <= bound;
  r.detail = std::move(detail);
  invariants_.push_back(std::move(r));
  return invariants_.back();
}

InvariantResult& BenchReport::AssertGe(std::string name, double measured,
                                       double bound, std::string detail) {
  InvariantResult r;
  r.name = std::move(name);
  r.measured = measured;
  r.bound = bound;
  r.passed = measured >= bound;
  r.detail = std::move(detail);
  invariants_.push_back(std::move(r));
  return invariants_.back();
}

InvariantResult& BenchReport::AssertEq(std::string name, double measured,
                                       double expected, std::string detail) {
  InvariantResult r;
  r.name = std::move(name);
  r.measured = measured;
  r.bound = expected;
  r.passed = measured == expected;
  r.detail = std::move(detail);
  invariants_.push_back(std::move(r));
  return invariants_.back();
}

InvariantResult& BenchReport::AssertTrue(std::string name, bool passed,
                                         std::string detail) {
  InvariantResult r;
  r.name = std::move(name);
  r.measured = passed ? 1 : 0;
  r.bound = 1;
  r.passed = passed;
  r.detail = std::move(detail);
  invariants_.push_back(std::move(r));
  return invariants_.back();
}

GateResult& BenchReport::Gate(std::string name, double measured,
                              double threshold) {
  GateResult g;
  g.name = std::move(name);
  g.measured = measured;
  g.threshold = threshold;
  g.passed = measured >= threshold;
  gates_.push_back(std::move(g));
  return gates_.back();
}

bool BenchReport::passed() const {
  for (const auto& inv : invariants_) {
    if (!inv.passed) return false;
  }
  for (const auto& gate : gates_) {
    if (!gate.passed) return false;
  }
  return true;
}

void BenchReport::EmitEntries(const std::vector<Entry>& entries, JsonWriter* w) {
  for (const Entry& e : entries) {
    w->Key(e.key);
    switch (e.kind) {
      case Entry::Kind::kString: w->Value(std::string_view(e.s)); break;
      case Entry::Kind::kDouble: w->Value(e.d); break;
      case Entry::Kind::kInt: w->Value(e.i); break;
      case Entry::Kind::kBool: w->Value(e.b); break;
    }
  }
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", std::string_view(name_));
  w.Field("seed", seed_);
  w.Field("schema_version", static_cast<int64_t>(1));
  w.Key("params").BeginObject();
  EmitEntries(params_, &w);
  w.EndObject();
  w.Key("metrics").BeginObject();
  EmitEntries(metrics_, &w);
  w.EndObject();
  w.Key("invariants").BeginArray();
  for (const auto& inv : invariants_) {
    w.BeginObject();
    w.Field("name", std::string_view(inv.name));
    w.Field("passed", inv.passed);
    w.Field("measured", inv.measured);
    w.Field("bound", inv.bound);
    w.Field("detail", std::string_view(inv.detail));
    w.EndObject();
  }
  w.EndArray();
  w.Key("gates").BeginArray();
  for (const auto& gate : gates_) {
    w.BeginObject();
    w.Field("name", std::string_view(gate.name));
    w.Field("passed", gate.passed);
    w.Field("measured", gate.measured);
    w.Field("threshold", gate.threshold);
    w.EndObject();
  }
  w.EndArray();
  w.Field("passed", passed());
  w.EndObject();
  std::string out = w.str();
  out += '\n';
  return out;
}

StatusOr<std::string> BenchReport::WriteFile(const std::string& dir) const {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "BENCH_" + name_ + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Status::IOError("short write to " + path);
  return path;
}

std::string BenchReport::Summary() const {
  size_t inv_passed = 0;
  for (const auto& inv : invariants_) inv_passed += inv.passed ? 1 : 0;
  size_t gates_passed = 0;
  for (const auto& gate : gates_) gates_passed += gate.passed ? 1 : 0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s seed=%llu %s (%zu/%zu invariants, %zu/%zu gates)",
                name_.c_str(), static_cast<unsigned long long>(seed_),
                passed() ? "PASS" : "FAIL", inv_passed, invariants_.size(),
                gates_passed, gates_.size());
  return buf;
}

}  // namespace veloce::scenario
