#include "scenario/scenario.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.h"

namespace veloce::scenario {

// ---------------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------------

void EventLog::Record(Nanos t, std::string_view kind, std::string_view detail) {
  Entry e;
  e.t = t;
  e.kind = std::string(kind);
  e.detail = std::string(detail);
  entries_.push_back(std::move(e));
}

std::string EventLog::Serialize() const {
  std::string out;
  out.reserve(entries_.size() * 48);
  for (const Entry& e : entries_) {
    out += std::to_string(e.t);
    out += ' ';
    out += e.kind;
    out += ' ';
    out += e.detail;
    out += '\n';
  }
  return out;
}

uint64_t EventLog::Fingerprint() const {
  const std::string s = Serialize();
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

void Timeline::At(Nanos offset, std::string label, std::function<void()> action) {
  loop_->ScheduleAt(start_ + offset,
                    [this, label = std::move(label),
                     action = std::move(action)] {
                      log_->Record(loop_->Now() - start_, "timeline", label);
                      action();
                    });
}

void Timeline::Every(Nanos period, Nanos until, std::string label,
                     std::function<void()> action) {
  VELOCE_CHECK(period > 0);
  for (Nanos t = period; t <= until; t += period) {
    // One event per firing (rather than a self-rearming task) keeps the
    // loop's queue finite, so scenarios can drain it with Run().
    loop_->ScheduleAt(start_ + t, [this, label, action] {
      log_->Record(loop_->Now() - start_, "timeline", label);
      action();
    });
  }
}

void Timeline::DriveLoad(const workload::LoadPattern& pattern, Nanos cadence,
                         std::string label, std::function<void(double)> apply) {
  VELOCE_CHECK(cadence > 0);
  const Nanos total = pattern.TotalDuration();
  for (Nanos t = 0; t <= total; t += cadence) {
    loop_->ScheduleAt(start_ + t, [this, &pattern, label, apply] {
      // Sample the pattern at fire time: noise draws happen in event order,
      // so the load trace replays exactly under one seed.
      const double vcpus = pattern.At(loop_->Now() - start_);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s=%.3f", label.c_str(), vcpus);
      log_->Record(loop_->Now() - start_, "load", buf);
      apply(vcpus);
    });
  }
}

// ---------------------------------------------------------------------------
// Registry + runner
// ---------------------------------------------------------------------------

namespace {
std::map<std::string, ScenarioFactory>& Registry() {
  static auto* registry = new std::map<std::string, ScenarioFactory>();
  return *registry;
}
}  // namespace

void RegisterScenario(const std::string& name, ScenarioFactory factory) {
  Registry()[name] = std::move(factory);
}

std::vector<std::string> ScenarioNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, factory] : Registry()) names.push_back(name);
  return names;
}

StatusOr<ScenarioRunResult> RunScenario(const std::string& name,
                                        const ScenarioOptions& options) {
  auto it = Registry().find(name);
  if (it == Registry().end()) {
    return Status::NotFound("no scenario named '" + name +
                            "' (did you call RegisterBuiltinScenarios?)");
  }
  std::unique_ptr<Scenario> scenario = it->second();

  ScenarioRunResult result;
  result.report = BenchReport(name, options.seed);
  result.report.AddParam("fast", options.fast);
  EventLog log;
  ScenarioContext ctx(options, &result.report, &log);
  scenario->Run(ctx);

  result.event_log = log.Serialize();
  result.fingerprint = log.Fingerprint();
  result.report.AddMetric("event_log_entries", static_cast<int64_t>(log.size()));
  result.report.AddMetric("event_log_fingerprint",
                          static_cast<int64_t>(log.Fingerprint()));
  result.passed = result.report.passed();
  if (!options.out_dir.empty()) {
    VELOCE_ASSIGN_OR_RETURN(result.report_path,
                            result.report.WriteFile(options.out_dir));
  }
  return result;
}

}  // namespace veloce::scenario
