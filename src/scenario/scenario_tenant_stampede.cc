// "tenant-stampede": many idle (scaled-to-zero) tenants all issue their
// first connection within one second — the thundering-herd wake that
// drains the warm pool and forces most resumes down the cold path. The
// paper's promise is sub-second scale-from-zero for the lucky warm hits
// and bounded cold starts for the rest.

#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "scenario/env_builder.h"
#include "scenario/scenarios.h"

namespace veloce::scenario {
namespace {

class TenantStampede final : public Scenario {
 public:
  std::string_view name() const override { return "tenant-stampede"; }
  std::string_view description() const override {
    return "many suspended tenants wake within one second";
  }

  void Run(ScenarioContext& ctx) override {
    // Full mode is the paper-scale herd: ten thousand scaled-to-zero
    // tenants waking inside one second (fast mode keeps the CI smoke
    // small). The BENCH schema is identical at both scales.
    const int n_tenants = ctx.fast() ? 8 : 10000;
    const Nanos window = kSecond;  // all wakes land inside this
    const size_t warm_pool = 4;

    ServerlessEnv env = ScenarioEnvBuilder()
                            .Seed(ctx.seed())
                            .KvNodes(3)
                            .WarmPool(warm_pool)
                            .BuildServerless();
    serverless::ServerlessCluster& cluster = *env.cluster;

    std::vector<kv::TenantId> tenants;
    for (int i = 0; i < n_tenants; ++i) {
      auto meta = cluster.CreateTenant("sleeper-" + std::to_string(i));
      VELOCE_CHECK(meta.ok());
      tenants.push_back(meta->id);
    }
    // Let the warm pool finish its initial fill before the herd arrives,
    // so the run starts from the steady scaled-to-zero state.
    cluster.loop()->Run();

    ctx.report()->AddParam("tenants", n_tenants);
    ctx.report()->AddParam("warm_pool_target", static_cast<int64_t>(warm_pool));
    ctx.report()->AddParam("wake_window_ms",
                           static_cast<double>(window) / kMilli);

    Timeline tl(cluster.loop(), ctx.log());
    Random jitter(ctx.SubSeed("stampede"));

    struct Wake {
      bool done = false;
      bool ok = false;
      Nanos latency = 0;
      serverless::Proxy::Connection* conn = nullptr;
    };
    std::vector<Wake> wakes(static_cast<size_t>(n_tenants));
    for (int i = 0; i < n_tenants; ++i) {
      const Nanos offset = static_cast<Nanos>(jitter.Uniform(window));
      const kv::TenantId tenant = tenants[static_cast<size_t>(i)];
      Wake* wake = &wakes[static_cast<size_t>(i)];
      tl.At(offset, "wake sleeper-" + std::to_string(i), [&cluster, &ctx, &tl,
                                                          tenant, wake, i] {
        const Nanos issued = cluster.loop()->Now();
        cluster.proxy()->Connect(
            tenant, "10.0.0.1",
            [&cluster, &ctx, &tl, wake, i,
             issued](StatusOr<serverless::Proxy::Connection*> conn) {
              wake->done = true;
              wake->ok = conn.ok();
              wake->latency = cluster.loop()->Now() - issued;
              if (conn.ok()) wake->conn = *conn;
              char buf[96];
              std::snprintf(buf, sizeof(buf), "sleeper-%d %s %.1fms", i,
                            wake->ok ? "ready" : "FAILED",
                            static_cast<double>(wake->latency) / kMilli);
              ctx.Log(tl.Elapsed(), "woken", buf);
            });
      });
    }
    // No periodic tasks are running, so the loop drains once every wake
    // (and the pool's replenishment behind it) completes.
    cluster.loop()->Run();

    Histogram latency;
    int64_t ok = 0, usable = 0, warm_wakes = 0;
    for (Wake& wake : wakes) {
      VELOCE_CHECK(wake.done);
      if (!wake.ok) continue;
      ++ok;
      latency.Record(wake.latency);
      if (wake.latency < kSecond) ++warm_wakes;  // the paper's sub-second path
      // A woken tenant must be able to run a statement immediately.
      if (wake.conn->session->Execute("SELECT 1").ok()) ++usable;
    }

    BenchReport* r = ctx.report();
    r->AddMetric("connects_ok", ok);
    r->AddMetric("queries_ok", usable);
    r->AddMetric("warm_wakes", warm_wakes);
    r->AddMetric("wake_p50_ms", static_cast<double>(latency.P50()) / kMilli);
    r->AddMetric("wake_p99_ms", static_cast<double>(latency.P99()) / kMilli);
    r->AddMetric("wake_max_ms", static_cast<double>(latency.max()) / kMilli);

    r->AssertEq("all_connects_succeed", static_cast<double>(ok), n_tenants,
                "every waking tenant gets a SQL node");
    r->AssertEq("all_woken_tenants_queryable", static_cast<double>(usable),
                n_tenants, "SELECT 1 works right after wake");
    r->AssertGe("warm_pool_serves_first_arrivals",
                static_cast<double>(warm_wakes), 1,
                "at least the earliest wakes resume sub-second");
    // The cold tail is the full pod path: 2s pod create + 900ms process
    // start + 120ms stamp. The herd must not queue beyond it.
    r->AssertLe("wake_p99_ms", static_cast<double>(latency.P99()) / kMilli,
                4000.0, "cold resumes bounded despite warm-pool exhaustion");
    r->AssertLe("wake_max_ms", static_cast<double>(latency.max()) / kMilli,
                5000.0, "no tenant is starved by the herd");
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeTenantStampede() {
  return std::make_unique<TenantStampede>();
}

}  // namespace veloce::scenario
