#ifndef VELOCE_SCENARIO_JSON_WRITER_H_
#define VELOCE_SCENARIO_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace veloce::scenario {

/// Minimal streaming JSON writer with deterministic formatting, replacing
/// the per-bench printf JSON that drifted in escaping and number style.
/// Doubles print with %.6g (trailing-zero free, stable across runs), so
/// byte-identical inputs produce byte-identical documents — the property
/// the scenario determinism tests and BENCH_*.json trajectory diffs rely
/// on. Nesting is tracked with an explicit stack; mismatched End*() calls
/// are a programming error and abort in debug builds.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts `"key":` inside an object; follow with a value or Begin*().
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);

  /// Convenience: Key(k) + Value(v).
  template <typename T>
  JsonWriter& Field(std::string_view key, T&& v) {
    Key(key);
    return Value(std::forward<T>(v));
  }

  /// The finished document. Valid once every Begin has been Ended.
  const std::string& str() const { return out_; }
  bool complete() const { return stack_.empty() && !out_.empty(); }

  static std::string Escape(std::string_view raw);

 private:
  enum class Frame { kObject, kArray };
  void MaybeComma();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   // parallel to stack_: no comma yet needed
  bool pending_key_ = false;  // a Key() awaits its value
};

}  // namespace veloce::scenario

#endif  // VELOCE_SCENARIO_JSON_WRITER_H_
