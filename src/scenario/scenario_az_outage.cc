// "az-outage": a three-region deployment (one KV node per region, RF=3)
// loses a whole region mid-write-load. Leases shed to the surviving
// quorum, writes keep committing, and when the region returns its node
// rejoins via a crash-restart (WAL replay) — nothing acked may be lost.

#include <cstdio>
#include <string>

#include "common/histogram.h"
#include "common/logging.h"
#include "scenario/env_builder.h"
#include "scenario/scenarios.h"

namespace veloce::scenario {
namespace {

class AzOutage final : public Scenario {
 public:
  std::string_view name() const override { return "az-outage"; }
  std::string_view description() const override {
    return "one region's KV node drops out mid-load and rejoins";
  }

  void Run(ScenarioContext& ctx) override {
    const Nanos total = (ctx.fast() ? 60 : 180) * kSecond;
    const Nanos outage_at = total / 3;
    const Nanos restore_at = 2 * total / 3;
    const Nanos cadence = 250 * kMilli;
    const kv::NodeId dead_node = 1;  // round-robin regions: node 1 = us-west1

    ServerlessEnv env = ScenarioEnvBuilder()
                            .Seed(ctx.seed())
                            .KvNodes(3)
                            .Replication(3)
                            .Regions({"us-east1", "us-west1", "europe-west1"})
                            .BuildServerless();
    serverless::ServerlessCluster& cluster = *env.cluster;
    auto meta = cluster.CreateTenant("prod");
    VELOCE_CHECK(meta.ok());
    const kv::TenantId tenant = meta->id;

    ctx.report()->AddParam("regions", 3);
    ctx.report()->AddParam("replication_factor", 3);
    ctx.report()->AddParam("outage_at_s", static_cast<double>(outage_at) / kSecond);
    ctx.report()->AddParam("restore_at_s",
                           static_cast<double>(restore_at) / kSecond);

    Timeline tl(cluster.loop(), ctx.log());
    tl.At(outage_at, "region us-west1 down", [&cluster, dead_node] {
      cluster.kv_cluster()->SetNodeLive(dead_node, false);
    });
    tl.At(restore_at, "region us-west1 restored", [&cluster, &ctx, &tl,
                                                   dead_node] {
      // The returning node rebooted with the AZ: recover its engine from
      // the WALs before it rejoins, then spread leases back onto it.
      const Status s = cluster.CrashAndRestartKvNode(dead_node);
      ctx.Log(tl.Elapsed(), "kv-crash-restart",
              s.ok() ? "node 1 recovered" : s.ToString());
      cluster.kv_cluster()->SetNodeLive(dead_node, true);
      cluster.kv_cluster()->BalanceLeases();
    });

    auto conn = cluster.ConnectSync(tenant);
    VELOCE_CHECK(conn.ok());
    VELOCE_CHECK_OK(
        cluster.ExecuteSync(*conn, "CREATE TABLE writes (id INT PRIMARY KEY)")
            .status());

    Histogram latency, outage_latency;
    int64_t acked = 0, failed = 0;
    // Jittered pacing: the client's arrival process is part of the seeded
    // trajectory, so different seeds produce observably different traces.
    Random pacing(ctx.SubSeed("pacing"));
    int writes_issued = 0;
    for (Nanos t = cadence; t <= total; t += cadence) {
      cluster.loop()->RunUntil(tl.start() + t +
                               static_cast<Nanos>(pacing.Uniform(50 * kMilli)));
      const Nanos t0 = cluster.loop()->Now();
      auto st = cluster.ExecuteSync(
          *conn, "INSERT INTO writes VALUES (" + std::to_string(acked) + ")",
          /*idempotent=*/false);
      const Nanos took = cluster.loop()->Now() - t0;
      latency.Record(took);
      if (t > outage_at && t <= restore_at) outage_latency.Record(took);
      if (st.ok()) {
        ++acked;
      } else {
        ++failed;
        ctx.Log(tl.Elapsed(), "write-failed", st.status().ToString());
      }
      if (++writes_issued % 40 == 0) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "acked=%lld failed=%lld p99=%.2fms",
                      static_cast<long long>(acked),
                      static_cast<long long>(failed),
                      static_cast<double>(latency.P99()) / kMilli);
        ctx.Log(tl.Elapsed(), "progress", buf);
      }
    }
    cluster.loop()->RunUntil(tl.start() + total + 5 * kSecond);

    auto count = cluster.ExecuteSync(*conn, "SELECT COUNT(*) FROM writes");
    VELOCE_CHECK(count.ok());
    const double final_rows = count->rows[0][0].int_value();

    BenchReport* r = ctx.report();
    r->AddMetric("writes_acked", acked);
    r->AddMetric("writes_failed", failed);
    r->AddMetric("final_rows", final_rows);
    r->AddMetric("write_p99_ms", static_cast<double>(latency.P99()) / kMilli);
    r->AddMetric("outage_write_p99_ms",
                 static_cast<double>(outage_latency.P99()) / kMilli);

    r->AssertEq("no_acked_write_loss", final_rows, static_cast<double>(acked),
                "acked INSERTs survive the outage + crash-restart");
    r->AssertEq("no_write_failures", static_cast<double>(failed), 0,
                "quorum of 2/3 keeps serving through the outage");
    r->AssertLe("outage_write_p99_ms",
                static_cast<double>(outage_latency.P99()) / kMilli, 500.0,
                "lease shedding keeps outage latency bounded");
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeAzOutage() { return std::make_unique<AzOutage>(); }

}  // namespace veloce::scenario
