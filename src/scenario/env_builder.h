#ifndef VELOCE_SCENARIO_ENV_BUILDER_H_
#define VELOCE_SCENARIO_ENV_BUILDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kv/cluster.h"
#include "serverless/cluster.h"
#include "sql/sql_node.h"
#include "storage/fault_env.h"
#include "tenant/controller.h"

namespace veloce::scenario {

/// A complete single-tenant SQL-over-KV stack (no serverless control
/// plane) — what the real-clock efficiency/calibration benches drive.
/// Extracted from bench/bench_util.h so benches, scenarios, and
/// integration tests share one construction path.
struct SqlStack {
  std::unique_ptr<kv::KVCluster> cluster;
  tenant::CertificateAuthority ca;
  std::unique_ptr<tenant::TenantController> controller;
  std::unique_ptr<tenant::AuthorizedKvService> service;
  std::unique_ptr<sql::SqlNode> node;
  sql::Session* session = nullptr;
  kv::TenantId tenant = 0;
};

/// A full serverless deployment plus the storage fault plumbing under it.
/// When the builder was asked for a fault env, every KV engine's files
/// live behind `fault`, so scenarios can schedule storage faults / crash
/// simulations against the running cluster.
struct ServerlessEnv {
  /// Base filesystem under the fault env (destruction order: cluster
  /// first, then fault, then base — members are declared bottom-up).
  std::unique_ptr<storage::Env> base_env;
  std::unique_ptr<storage::FaultInjectionEnv> fault;  ///< null unless requested
  std::unique_ptr<serverless::ServerlessCluster> cluster;
};

/// A standalone multi-node KV cluster (no SQL / serverless layers) — the
/// noisy-neighbor harness shape: external clock/obs injection plus
/// pre-split per-tenant keyspaces.
struct KvEnv {
  std::unique_ptr<storage::Env> base_env;
  std::unique_ptr<storage::FaultInjectionEnv> fault;  ///< null unless requested
  std::unique_ptr<kv::KVCluster> cluster;
};

/// Fluent builder for every cluster shape the benches, scenarios, and
/// integration tests construct: KV node count, replication, regions,
/// executor choice, fault env, ObsContext, and one master seed. Each
/// Build*() consumes the current configuration (the builder may be reused
/// afterwards for another environment of the same shape).
class ScenarioEnvBuilder {
 public:
  ScenarioEnvBuilder& Seed(uint64_t seed);
  ScenarioEnvBuilder& KvNodes(int nodes);
  ScenarioEnvBuilder& Replication(int factor);
  /// Region names assigned round-robin across KV nodes (node i gets
  /// regions[i % regions.size()]).
  ScenarioEnvBuilder& Regions(std::vector<std::string> regions);
  ScenarioEnvBuilder& Obs(const obs::ObsContext& obs);
  /// Clock for the KV-only product (the serverless product always runs on
  /// its own sim loop's clock).
  ScenarioEnvBuilder& Clock(veloce::Clock* clock);
  /// Wraps every engine's filesystem in one shared FaultInjectionEnv
  /// (seeded from the master seed's "fault" stream).
  ScenarioEnvBuilder& WithFaultEnv(bool enabled = true);
  ScenarioEnvBuilder& WarmPool(size_t target);
  ScenarioEnvBuilder& PrewarmProcess(bool prewarm);
  ScenarioEnvBuilder& EnableAdmission(bool enabled);
  /// SQL execution mode for BuildSqlStack (colocated = Traditional,
  /// separate process = Serverless marshaling costs).
  ScenarioEnvBuilder& ProcessMode(sql::ProcessMode mode);
  /// Escape hatch for serverless options the fluent surface doesn't cover
  /// (autoscaler windows, kube latencies, proxy policy). Applied last, so
  /// it can override anything except the derived seeds.
  ScenarioEnvBuilder& Tune(
      std::function<void(serverless::ServerlessCluster::Options*)> fn);
  /// Same escape hatch for the engine template shared by all KV nodes.
  ScenarioEnvBuilder& TuneEngine(std::function<void(storage::EngineOptions*)> fn);

  /// Full serverless deployment on its own sim loop: KV cluster + tenant
  /// control plane + KubeSim + warm pool + proxy + autoscaler, storage
  /// background work on a deterministic SimExecutor.
  ServerlessEnv BuildServerless();

  /// Standalone KV cluster wired to the injected clock/obs (the
  /// noisy-neighbor harness substrate).
  KvEnv BuildKv();

  /// Single-tenant SQL-over-KV stack (bench_util.h's MakeSqlStack).
  std::unique_ptr<SqlStack> BuildSqlStack();

 private:
  void ApplyEnv(storage::EngineOptions* engine,
                std::unique_ptr<storage::Env>* base,
                std::unique_ptr<storage::FaultInjectionEnv>* fault);

  uint64_t seed_ = 0xC10D;
  int kv_nodes_ = 3;
  int replication_ = 0;  // 0 = min(3, kv_nodes)
  std::vector<std::string> regions_;
  obs::ObsContext obs_;
  veloce::Clock* clock_ = nullptr;
  bool fault_env_ = false;
  size_t warm_pool_ = 4;
  bool prewarm_ = true;
  bool admission_ = true;
  sql::ProcessMode mode_ = sql::ProcessMode::kSeparateProcess;
  std::function<void(serverless::ServerlessCluster::Options*)> tune_;
  std::function<void(storage::EngineOptions*)> tune_engine_;
};

/// Splits the tenant's keyspace at each table boundary (catalog table ids
/// start at 100) and spreads leases across the KV nodes — the paper's
/// "ranges are scattered randomly across the cluster". Shared by the
/// efficiency benches and the scenario workloads.
void ScatterRanges(SqlStack* stack, int num_tables);

}  // namespace veloce::scenario

#endif  // VELOCE_SCENARIO_ENV_BUILDER_H_
