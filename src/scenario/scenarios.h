#ifndef VELOCE_SCENARIO_SCENARIOS_H_
#define VELOCE_SCENARIO_SCENARIOS_H_

#include <memory>

#include "scenario/scenario.h"

namespace veloce::scenario {

/// The six built-in "cluster weather" scenarios (docs/SCENARIOS.md).
/// Each is registered by RegisterBuiltinScenarios() under the name noted.

/// "black-friday": a multi-region tenant's demand ramps 10x, plateaus, and
/// decays while the autoscaler tracks it. Asserts capacity ~= 4x average
/// demand on the plateau, 10x scale-up, scale-down after, and that no
/// acked write is lost across the ramp.
std::unique_ptr<Scenario> MakeBlackFriday();

/// "tenant-stampede": many idle (scaled-to-zero) tenants all connect
/// within a one-second window, overwhelming the warm pool. Asserts every
/// connect succeeds, wake latency stays bounded, and every woken tenant
/// can immediately run a query.
std::unique_ptr<Scenario> MakeTenantStampede();

/// "az-outage": one region's KV node drops out mid-write-load and later
/// rejoins via crash-restart (WAL replay). Asserts writes keep committing
/// on the surviving quorum, nothing acked is lost, and latency stays
/// bounded through the outage.
std::unique_ptr<Scenario> MakeAzOutage();

/// "rolling-upgrade-under-chaos": the Fig 9 rolling SQL node upgrade
/// (drain, replace, migrate connections) while the storage layer suffers
/// injected flush faults and KV node crash-restarts. Asserts connections
/// survive, acked writes match the final row count exactly, and the error
/// rate stays at zero.
std::unique_ptr<Scenario> MakeRollingUpgradeChaos();

/// "gray-partition": one KV node loses outbound connectivity (it hears
/// the cluster but can't reach it), then gets fully isolated, then
/// heals — all over a seeded FaultyMesh with a lossy per-link profile.
/// Asserts the muted node's lease epoch expires (no split-brain acks),
/// writes fail over within the liveness window, the straggler converges
/// via log catch-up on heal, and no acked write is ever lost.
std::unique_ptr<Scenario> MakeGrayPartition();

/// "range-storm": tenant herds heat up and cool down while the range-scale
/// data plane churns — load-based splits, tenant-cooldown merges,
/// pipelined replica moves, and cached-directory clients, under seeded
/// partition weather. Asserts the directory invariants every iteration
/// (keyspace partition, tenant alignment, no stale lease epochs),
/// linearizability of the whole run, that splits AND merges both fire,
/// that the directory converges back, and a modeled read p99 gate.
std::unique_ptr<Scenario> MakeRangeStorm();

}  // namespace veloce::scenario

#endif  // VELOCE_SCENARIO_SCENARIOS_H_
