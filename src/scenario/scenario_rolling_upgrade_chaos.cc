// "rolling-upgrade-under-chaos": the Fig 9 rolling SQL-node upgrade
// (drain each node, migrate its connections, replace it from the pool)
// while the storage layer is deliberately unlucky: transient flush faults
// from a shared FaultInjectionEnv plus KV node crash-restarts. The upgrade
// machinery and the storage self-healing must compose — connections
// survive, no statement fails, and the final row count matches the acked
// INSERTs exactly.

#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "scenario/env_builder.h"
#include "scenario/scenarios.h"

namespace veloce::scenario {
namespace {

class RollingUpgradeChaos final : public Scenario {
 public:
  std::string_view name() const override {
    return "rolling-upgrade-under-chaos";
  }
  std::string_view description() const override {
    return "Fig 9 rolling upgrade with storage faults injected underneath";
  }

  void Run(ScenarioContext& ctx) override {
    const int sql_nodes = 3;
    const int n_conns = ctx.fast() ? 6 : 24;
    const int stmts_per_phase = ctx.fast() ? 60 : 200;
    const int seed_rows = ctx.fast() ? 50 : 200;

    ServerlessEnv env = ScenarioEnvBuilder()
                            .Seed(ctx.seed())
                            .KvNodes(3)
                            .WithFaultEnv()
                            .BuildServerless();
    serverless::ServerlessCluster& cluster = *env.cluster;
    auto meta = cluster.CreateTenant("prod");
    VELOCE_CHECK(meta.ok());
    const kv::TenantId tenant = meta->id;

    ctx.report()->AddParam("sql_nodes", sql_nodes);
    ctx.report()->AddParam("connections", n_conns);
    ctx.report()->AddParam("stmts_per_phase", stmts_per_phase);

    // Provision the tenant's SQL nodes up front (Fig 9 setup).
    for (int i = 0; i < sql_nodes; ++i) {
      bool done = false;
      cluster.pool()->Acquire(tenant, [&](StatusOr<sql::SqlNode*> n) {
        VELOCE_CHECK(n.ok());
        done = true;
      });
      cluster.loop()->Run();
      VELOCE_CHECK(done);
    }
    std::vector<serverless::Proxy::Connection*> conns;
    for (int i = 0; i < n_conns; ++i) {
      auto conn = cluster.ConnectSync(tenant);
      VELOCE_CHECK(conn.ok());
      conns.push_back(*conn);
    }
    cluster.proxy()->RebalanceTenant(tenant);

    VELOCE_CHECK_OK(conns[0]
                        ->session
                        ->Execute("CREATE TABLE kvrows (id INT PRIMARY KEY)")
                        .status());
    for (int i = 0; i < seed_rows; ++i) {
      VELOCE_CHECK_OK(
          conns[0]
              ->session->Execute("INSERT INTO kvrows VALUES (" +
                                 std::to_string(i) + ")")
              .status());
    }

    Timeline tl(cluster.loop(), ctx.log());
    Random rng(ctx.SubSeed("workload"));
    Histogram latency;
    int64_t acked = seed_rows, errors = 0, next_id = seed_rows;

    // One phase of paced mixed load (80% point reads, 20% inserts); the
    // sim advances 10ms per statement, so timeline chaos events interleave.
    auto run_phase = [&](const std::string& phase) {
      ctx.Log(tl.Elapsed(), "phase", phase);
      for (int i = 0; i < stmts_per_phase; ++i) {
        const Nanos t0 = cluster.loop()->Now();
        Status st;
        if (rng.Bernoulli(0.2)) {
          st = cluster
                   .ExecuteSync(conns[rng.Uniform(conns.size())],
                                "INSERT INTO kvrows VALUES (" +
                                    std::to_string(next_id) + ")",
                                /*idempotent=*/false)
                   .status();
          if (st.ok()) {
            ++acked;
            ++next_id;
          }
        } else {
          const int key = static_cast<int>(rng.Uniform(seed_rows));
          st = cluster
                   .ExecuteSync(conns[rng.Uniform(conns.size())],
                                "SELECT id FROM kvrows WHERE id = " +
                                    std::to_string(key),
                                /*idempotent=*/true)
                   .status();
        }
        latency.Record(cluster.loop()->Now() - t0);
        if (!st.ok()) {
          ++errors;
          ctx.Log(tl.Elapsed(), "stmt-failed", st.ToString());
        }
        cluster.loop()->RunFor(10 * kMilli);
      }
      // The acked count depends on the seeded read/write mix, so the
      // per-phase summaries make the trace visibly seed-dependent.
      char buf[96];
      std::snprintf(buf, sizeof(buf), "acked=%lld errors=%lld p99=%.2fms",
                    static_cast<long long>(acked),
                    static_cast<long long>(errors),
                    static_cast<double>(latency.P99()) / kMilli);
      ctx.Log(tl.Elapsed(), "phase-summary", buf);
    };

    // Chaos, scheduled against the load's sim-time pacing. Transient .sst
    // faults hit background flush/compaction outputs and self-heal via the
    // engine's backoff-retry; crash-restarts recover from the WALs.
    const Nanos phase_span = stmts_per_phase * 10 * kMilli;
    tl.At(phase_span / 2, "inject transient flush faults", [&env] {
      storage::FaultRule rule;
      rule.op = storage::FaultOp::kAppend;
      rule.path_substr = ".sst";
      rule.count = 2;
      env.fault->AddRule(rule);
    });
    int restarts_ok = 0;
    auto crash_restart = [&env, &cluster, &ctx, &tl,
                          &restarts_ok](kv::NodeId id) {
      // The transient fault has healed by reboot time; a rule that is
      // still armed would fail the WAL-replay recovery and leave the node
      // down (which the engine-null hardening turns into Unavailable, not
      // a crash — but this scenario asserts clean recoveries).
      env.fault->ClearRules();
      const Status s = cluster.CrashAndRestartKvNode(id);
      if (s.ok()) ++restarts_ok;
      ctx.Log(tl.Elapsed(), "kv-crash-restart",
              s.ok() ? "node " + std::to_string(id) + " recovered"
                     : s.ToString());
    };
    tl.At(phase_span + phase_span / 2, "crash-restart kv node 0",
          [&crash_restart] { crash_restart(0); });
    tl.At(2 * phase_span + phase_span / 2, "crash-restart kv node 2",
          [&crash_restart] { crash_restart(2); });

    run_phase("before upgrade");

    // The rolling upgrade itself: drain each original node, migrate its
    // connections, bring up a replacement, keep the load running.
    const uint64_t migrations_before = cluster.proxy()->total_migrations();
    auto originals = cluster.pool()->NodesForTenant(tenant);
    for (size_t upgrade = 0; upgrade < originals.size(); ++upgrade) {
      ctx.Log(tl.Elapsed(), "upgrade",
              "draining node " + std::to_string(upgrade + 1) + "/" +
                  std::to_string(originals.size()));
      cluster.pool()->StartDraining(originals[upgrade]);
      cluster.proxy()->RebalanceTenant(tenant);
      bool replaced = false;
      cluster.pool()->Acquire(tenant, [&](StatusOr<sql::SqlNode*> n) {
        VELOCE_CHECK(n.ok());
        replaced = true;
      });
      cluster.loop()->Run();
      VELOCE_CHECK(replaced);
      cluster.proxy()->RebalanceTenant(tenant);
      run_phase("during upgrade " + std::to_string(upgrade + 1));
    }
    run_phase("after upgrade");
    const uint64_t migrations =
        cluster.proxy()->total_migrations() - migrations_before;

    // Every connection must still be usable after three migrations' worth
    // of upgrades and the storage chaos.
    int64_t live_conns = 0;
    for (auto* conn : conns) {
      if (cluster.ExecuteSync(conn, "SELECT COUNT(*) FROM kvrows").ok()) {
        ++live_conns;
      }
    }
    auto count = cluster.ExecuteSync(conns[0], "SELECT COUNT(*) FROM kvrows");
    VELOCE_CHECK(count.ok());
    const double final_rows = count->rows[0][0].int_value();

    BenchReport* r = ctx.report();
    r->AddMetric("stmts_total",
                 static_cast<int64_t>(stmts_per_phase) * (sql_nodes + 2));
    r->AddMetric("errors", errors);
    r->AddMetric("writes_acked", acked);
    r->AddMetric("final_rows", final_rows);
    r->AddMetric("migrations", static_cast<int64_t>(migrations));
    r->AddMetric("live_connections", live_conns);
    r->AddMetric("stmt_p99_ms", static_cast<double>(latency.P99()) / kMilli);

    r->AssertEq("no_acked_write_loss", final_rows, static_cast<double>(acked),
                "row count matches acked INSERTs exactly");
    r->AssertEq("no_statement_errors", static_cast<double>(errors), 0,
                "migration + failover hide the chaos from clients");
    r->AssertEq("all_connections_survive", static_cast<double>(live_conns),
                n_conns, "no connection dropped by the upgrade");
    r->AssertGe("connections_migrated", static_cast<double>(migrations), 1,
                "the upgrade actually moved connections");
    r->AssertEq("kv_restarts_recovered", restarts_ok, 2,
                "both crash-restarts replayed their WALs cleanly");
    r->AssertLe("stmt_p99_ms", static_cast<double>(latency.P99()) / kMilli,
                500.0, "chaos does not blow up tail latency");
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeRollingUpgradeChaos() {
  return std::make_unique<RollingUpgradeChaos>();
}

}  // namespace veloce::scenario
