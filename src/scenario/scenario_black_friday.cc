// "black-friday": a multi-region tenant's demand ramps 10x (the holiday
// traffic spike), plateaus long enough for the autoscaler's 5-minute
// window to converge, then decays back to baseline. A paced INSERT stream
// runs underneath the whole time so the no-acked-write-loss invariant is
// exercised across every scale event.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "scenario/env_builder.h"
#include "scenario/scenarios.h"
#include "workload/load_pattern.h"

namespace veloce::scenario {
namespace {

class BlackFriday final : public Scenario {
 public:
  std::string_view name() const override { return "black-friday"; }
  std::string_view description() const override {
    return "10x multi-region demand ramp tracked by the autoscaler";
  }

  void Run(ScenarioContext& ctx) override {
    const bool fast = ctx.fast();
    // Demand curve (vCPUs). The plateau must exceed the autoscaler's
    // 5-minute window so the 4x-average target converges on it.
    const double base_vcpus = fast ? 1.0 : 2.0;
    const double peak_vcpus = base_vcpus * 10;  // the 10x ramp
    const Nanos baseline = (fast ? 3 : 8) * kMinute;
    const Nanos ramp = (fast ? 1 : 2) * kMinute;
    const Nanos plateau = (fast ? 8 : 12) * kMinute;
    const Nanos decay = (fast ? 1 : 2) * kMinute;
    const Nanos tail = (fast ? 3 : 8) * kMinute;
    const Nanos total = baseline + ramp + plateau + decay + tail;

    ServerlessEnv env = ScenarioEnvBuilder()
                            .Seed(ctx.seed())
                            .KvNodes(3)
                            .Regions({"us-east1", "europe-west1", "asia-south1"})
                            .BuildServerless();
    serverless::ServerlessCluster& cluster = *env.cluster;
    auto meta = cluster.CreateTenant("shop");
    VELOCE_CHECK(meta.ok());
    const kv::TenantId tenant = meta->id;
    cluster.autoscaler()->Start();

    ctx.report()->AddParam("regions", 3);
    ctx.report()->AddParam("kv_nodes", 3);
    ctx.report()->AddParam("base_vcpus", base_vcpus);
    ctx.report()->AddParam("peak_vcpus", peak_vcpus);
    ctx.report()->AddParam("total_sim_minutes",
                           static_cast<double>(total) / kMinute);

    Timeline tl(cluster.loop(), ctx.log());

    workload::LoadPattern pattern(
        {{baseline, base_vcpus, base_vcpus},
         {ramp, base_vcpus, peak_vcpus},
         {plateau, peak_vcpus, peak_vcpus},
         {decay, peak_vcpus, base_vcpus},
         {tail, base_vcpus, base_vcpus}},
        /*noise=*/0.05, ctx.SubSeed("load"));
    double last_demand = base_vcpus;
    tl.DriveLoad(pattern, 5 * kSecond, "demand", [&](double vcpus) {
      last_demand = vcpus;
      cluster.SetTenantCpuUsage(tenant, vcpus);
    });

    // Capacity samples: (elapsed, demand, provisioned vCPUs).
    struct Sample {
      Nanos t;
      double demand;
      double provisioned;
    };
    std::vector<Sample> samples;
    const int node_vcpus = 4;  // Autoscaler::Options default
    tl.Every(15 * kSecond, total, "sample-capacity", [&] {
      const double provisioned =
          cluster.autoscaler()->CurrentNodes(tenant) * node_vcpus;
      samples.push_back({tl.Elapsed(), last_demand, provisioned});
      char buf[96];
      std::snprintf(buf, sizeof(buf), "demand=%.2f provisioned=%.0f",
                    last_demand, provisioned);
      ctx.Log(tl.Elapsed(), "capacity", buf);
    });

    // A paced write stream under the whole ramp. ExecuteSync steps the sim
    // loop, so timeline events interleave with the statements naturally.
    auto conn = cluster.ConnectSync(tenant);
    VELOCE_CHECK(conn.ok());
    VELOCE_CHECK_OK(
        cluster.ExecuteSync(*conn, "CREATE TABLE orders (id INT PRIMARY KEY)")
            .status());
    Histogram write_latency;
    int64_t acked = 0;
    const Nanos write_cadence = 10 * kSecond;
    for (Nanos t = write_cadence; t <= total; t += write_cadence) {
      cluster.loop()->RunUntil(tl.start() + t);
      const Nanos t0 = cluster.loop()->Now();
      auto st = cluster.ExecuteSync(
          *conn, "INSERT INTO orders VALUES (" + std::to_string(acked) + ")",
          /*idempotent=*/false);
      write_latency.Record(cluster.loop()->Now() - t0);
      if (st.ok()) {
        ++acked;
      } else {
        ctx.Log(tl.Elapsed(), "write-failed", st.status().ToString());
      }
    }
    cluster.loop()->RunUntil(tl.start() + total + 2 * kMinute);

    // --- measure ------------------------------------------------------------
    const Nanos plateau_start = baseline + ramp;
    const Nanos converged = plateau_start + 5 * kMinute;  // window filled
    const Nanos plateau_end = plateau_start + plateau;
    double plateau_demand = 0, plateau_prov = 0, base_prov = 0, peak_prov = 0;
    int plateau_n = 0, base_n = 0;
    for (const Sample& s : samples) {
      peak_prov = std::max(peak_prov, s.provisioned);
      if (s.t >= converged && s.t <= plateau_end) {
        plateau_demand += s.demand;
        plateau_prov += s.provisioned;
        ++plateau_n;
      }
      if (s.t >= kMinute && s.t <= baseline) {
        base_prov += s.provisioned;
        ++base_n;
      }
    }
    VELOCE_CHECK(plateau_n > 0 && base_n > 0);
    plateau_demand /= plateau_n;
    plateau_prov /= plateau_n;
    base_prov /= base_n;
    const double ratio = plateau_prov / plateau_demand;
    const double final_prov = samples.back().provisioned;

    auto count = cluster.ExecuteSync(*conn, "SELECT COUNT(*) FROM orders");
    VELOCE_CHECK(count.ok());
    const double final_rows = count->rows[0][0].int_value();

    BenchReport* r = ctx.report();
    r->AddMetric("writes_acked", acked);
    r->AddMetric("final_rows", final_rows);
    r->AddMetric("write_p99_ms", static_cast<double>(write_latency.P99()) / kMilli);
    r->AddMetric("plateau_avg_demand_vcpus", plateau_demand);
    r->AddMetric("plateau_avg_provisioned_vcpus", plateau_prov);
    r->AddMetric("baseline_avg_provisioned_vcpus", base_prov);
    r->AddMetric("peak_provisioned_vcpus", peak_prov);
    r->AddMetric("final_provisioned_vcpus", final_prov);
    r->AddMetric("capacity_ratio_plateau", ratio);

    r->AssertEq("no_acked_write_loss", final_rows, static_cast<double>(acked),
                "every acked INSERT visible at the end");
    r->AssertGe("capacity_ratio_plateau_ge", ratio, 3.0,
                "provisioned ~= 4x average demand (lower bound)");
    r->AssertLe("capacity_ratio_plateau_le", ratio, 5.5,
                "provisioned ~= 4x average demand (upper bound)");
    // Baseline rounds up to whole nodes (demand 1 vCPU still gets ~2
    // nodes), so the scale-up check compares peak capacity against the
    // 4x-average target the 10x demand implies, not against the baseline.
    r->AssertGe("scale_up_covers_peak", peak_prov, 0.9 * 4.0 * peak_vcpus,
                "peak capacity tracks the 10x demand ramp");
    r->AssertLe("scale_down_after_peak", final_prov, peak_prov / 2,
                "capacity released once demand decays");
    r->AssertLe("write_p99_ms", static_cast<double>(write_latency.P99()) / kMilli,
                1000.0, "writes stay responsive across scale events");
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeBlackFriday() {
  return std::make_unique<BlackFriday>();
}

}  // namespace veloce::scenario
