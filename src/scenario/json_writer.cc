#include "scenario/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace veloce::scenario {

JsonWriter::JsonWriter() { out_.reserve(1024); }

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (stack_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  VELOCE_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  VELOCE_CHECK(!pending_key_);
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  VELOCE_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  VELOCE_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  VELOCE_CHECK(!pending_key_);
  MaybeComma();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; null keeps the document parseable.
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace veloce::scenario
