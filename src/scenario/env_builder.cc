#include "scenario/env_builder.h"

#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "kv/keys.h"
#include "sql/row.h"

namespace veloce::scenario {

ScenarioEnvBuilder& ScenarioEnvBuilder::Seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::KvNodes(int nodes) {
  VELOCE_CHECK(nodes > 0);
  kv_nodes_ = nodes;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::Replication(int factor) {
  VELOCE_CHECK(factor > 0);
  replication_ = factor;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::Regions(std::vector<std::string> regions) {
  regions_ = std::move(regions);
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::Obs(const obs::ObsContext& obs) {
  obs_ = obs;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::Clock(veloce::Clock* clock) {
  clock_ = clock;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::WithFaultEnv(bool enabled) {
  fault_env_ = enabled;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::WarmPool(size_t target) {
  warm_pool_ = target;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::PrewarmProcess(bool prewarm) {
  prewarm_ = prewarm;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::EnableAdmission(bool enabled) {
  admission_ = enabled;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::ProcessMode(sql::ProcessMode mode) {
  mode_ = mode;
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::Tune(
    std::function<void(serverless::ServerlessCluster::Options*)> fn) {
  tune_ = std::move(fn);
  return *this;
}

ScenarioEnvBuilder& ScenarioEnvBuilder::TuneEngine(
    std::function<void(storage::EngineOptions*)> fn) {
  tune_engine_ = std::move(fn);
  return *this;
}

void ScenarioEnvBuilder::ApplyEnv(storage::EngineOptions* engine,
                                  std::unique_ptr<storage::Env>* base,
                                  std::unique_ptr<storage::FaultInjectionEnv>* fault) {
  if (fault_env_) {
    // One shared fault env across every node's engine: per-node dirs
    // ("kvnode-<id>") let fault rules target single nodes via path_substr.
    *base = storage::NewMemEnv();
    *fault = std::make_unique<storage::FaultInjectionEnv>(
        base->get(), DeriveSeed(seed_, "fault"), obs_.metrics);
    engine->env = fault->get();
  }
  if (tune_engine_) tune_engine_(engine);
}

namespace {
std::vector<std::string> ExpandRegions(const std::vector<std::string>& regions,
                                       int nodes) {
  std::vector<std::string> out;
  if (regions.empty()) return out;
  out.reserve(static_cast<size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    out.push_back(regions[static_cast<size_t>(i) % regions.size()]);
  }
  return out;
}
}  // namespace

ServerlessEnv ScenarioEnvBuilder::BuildServerless() {
  ServerlessEnv env;
  serverless::ServerlessCluster::Options opts;
  opts.seed = seed_;
  opts.kv.num_nodes = kv_nodes_;
  opts.kv.replication_factor =
      replication_ > 0 ? replication_ : (kv_nodes_ < 3 ? kv_nodes_ : 3);
  opts.kv.node_regions = ExpandRegions(regions_, kv_nodes_);
  ApplyEnv(&opts.kv.engine_options, &env.base_env, &env.fault);
  opts.pool.warm_pool_target = warm_pool_;
  opts.pool.prewarm_process = prewarm_;
  opts.enable_admission = admission_;
  opts.obs = obs_;
  if (tune_) tune_(&opts);
  env.cluster = std::make_unique<serverless::ServerlessCluster>(std::move(opts));
  return env;
}

KvEnv ScenarioEnvBuilder::BuildKv() {
  KvEnv env;
  kv::KVClusterOptions opts;
  opts.num_nodes = kv_nodes_;
  opts.replication_factor =
      replication_ > 0 ? replication_ : (kv_nodes_ < 3 ? kv_nodes_ : 3);
  opts.node_regions = ExpandRegions(regions_, kv_nodes_);
  opts.clock = clock_;
  opts.obs = obs_;
  ApplyEnv(&opts.engine_options, &env.base_env, &env.fault);
  env.cluster = std::make_unique<kv::KVCluster>(std::move(opts));
  return env;
}

std::unique_ptr<SqlStack> ScenarioEnvBuilder::BuildSqlStack() {
  auto stack = std::make_unique<SqlStack>();
  kv::KVClusterOptions opts;
  opts.num_nodes = kv_nodes_;
  opts.replication_factor =
      replication_ > 0 ? replication_ : (kv_nodes_ < 3 ? kv_nodes_ : 3);
  opts.node_regions = ExpandRegions(regions_, kv_nodes_);
  opts.clock = clock_;
  opts.obs = obs_;
  stack->cluster = std::make_unique<kv::KVCluster>(std::move(opts));
  stack->controller =
      std::make_unique<tenant::TenantController>(stack->cluster.get(), &stack->ca);
  stack->service = std::make_unique<tenant::AuthorizedKvService>(
      stack->cluster.get(), &stack->ca);
  auto meta = stack->controller->CreateTenant("bench");
  VELOCE_CHECK(meta.ok());
  stack->tenant = meta->id;
  auto cert = stack->controller->IssueCert(stack->tenant);
  VELOCE_CHECK(cert.ok());
  sql::SqlNode::Options node_opts;
  node_opts.mode = mode_;
  stack->node =
      std::make_unique<sql::SqlNode>(1, node_opts, stack->cluster->clock());
  VELOCE_CHECK_OK(stack->node->StartProcess());
  VELOCE_CHECK_OK(
      stack->node->StampTenant(stack->service.get(), stack->cluster.get(), *cert));
  auto session = stack->node->NewSession();
  VELOCE_CHECK(session.ok());
  stack->session = *session;
  return stack;
}

void ScatterRanges(SqlStack* stack, int num_tables) {
  for (int t = 0; t < num_tables; ++t) {
    const std::string key = kv::AddTenantPrefix(
        stack->tenant, sql::IndexPrefix(static_cast<sql::TableId>(100 + t),
                                        sql::kPrimaryIndexId));
    VELOCE_CHECK_OK(stack->cluster->SplitRange(key));
  }
  stack->cluster->BalanceLeases();
}

}  // namespace veloce::scenario
