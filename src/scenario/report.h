#ifndef VELOCE_SCENARIO_REPORT_H_
#define VELOCE_SCENARIO_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace veloce::scenario {

/// One asserted whole-run invariant (e.g. "no acked write lost", "p99
/// under bound"). `measured` and `bound` carry the numeric evidence for
/// the verdict so a failing trajectory diff shows *how far* off it was.
struct InvariantResult {
  std::string name;
  bool passed = false;
  double measured = 0;
  double bound = 0;
  std::string detail;  ///< human-readable comparison, e.g. "p99 84ms <= 250ms"
};

/// A perf gate: like an invariant, but `measured` is a speedup/throughput
/// figure compared against a minimum threshold (the benches' "2x gate").
struct GateResult {
  std::string name;
  bool passed = false;
  double measured = 0;
  double threshold = 0;
};

/// BenchReport is the one JSON snapshot schema every gated bench and
/// scenario emits (BENCH_<name>.json), replacing per-bench printf JSON.
/// The top-level layout is frozen so PR-over-PR trajectory diffs stay
/// line-comparable:
///
///   {"name":..., "seed":..., "schema_version":1,
///    "params":{...},            // run configuration, insertion order
///    "metrics":{...},           // measured numbers, insertion order
///    "invariants":[{name,passed,measured,bound,detail}...],
///    "gates":[{name,passed,measured,threshold}...],
///    "passed":bool}             // AND of every invariant and gate
///
/// Params and metrics preserve insertion order (not sorted) so reports
/// read in the order the bench narrates them; emit them deterministically.
class BenchReport {
 public:
  explicit BenchReport(std::string name, uint64_t seed = 0)
      : name_(std::move(name)), seed_(seed) {}

  const std::string& name() const { return name_; }
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }

  // --- run configuration ----------------------------------------------------
  void AddParam(std::string key, std::string value);
  void AddParam(std::string key, double value);
  void AddParam(std::string key, int64_t value);
  void AddParam(std::string key, int value) {
    AddParam(std::move(key), static_cast<int64_t>(value));
  }
  void AddParam(std::string key, bool value);

  // --- measured results -----------------------------------------------------
  void AddMetric(std::string key, double value);
  void AddMetric(std::string key, int64_t value);
  void AddMetric(std::string key, uint64_t value) {
    AddMetric(std::move(key), static_cast<int64_t>(value));
  }
  /// Value of a previously added metric (0 when absent) — lets scenarios
  /// assert invariants over what they already recorded.
  double Metric(const std::string& key) const;

  // --- verdicts -------------------------------------------------------------
  /// Records `measured <= bound` (latency-style invariant).
  InvariantResult& AssertLe(std::string name, double measured, double bound,
                            std::string detail = "");
  /// Records `measured >= bound`.
  InvariantResult& AssertGe(std::string name, double measured, double bound,
                            std::string detail = "");
  /// Records `measured == expected` (counting invariant, e.g. acked writes).
  InvariantResult& AssertEq(std::string name, double measured, double expected,
                            std::string detail = "");
  /// Records an externally evaluated predicate.
  InvariantResult& AssertTrue(std::string name, bool passed,
                              std::string detail = "");
  /// Perf gate: passes when measured >= threshold.
  GateResult& Gate(std::string name, double measured, double threshold);

  const std::vector<InvariantResult>& invariants() const { return invariants_; }
  const std::vector<GateResult>& gates() const { return gates_; }

  /// AND of every invariant and gate recorded so far.
  bool passed() const;

  /// The full document, deterministic byte-for-byte for identical inputs.
  std::string ToJson() const;

  /// Writes BENCH_<name>.json into `dir` (default: the working directory).
  /// Returns the path written.
  StatusOr<std::string> WriteFile(const std::string& dir = ".") const;

  /// One-line human summary ("black-friday seed=7 PASS (6/6 invariants)").
  std::string Summary() const;

 private:
  struct Entry {
    enum class Kind { kString, kDouble, kInt, kBool };
    std::string key;
    Kind kind = Kind::kDouble;
    std::string s;
    double d = 0;
    int64_t i = 0;
    bool b = false;
  };
  static void EmitEntries(const std::vector<Entry>& entries, class JsonWriter* w);

  std::string name_;
  uint64_t seed_ = 0;
  std::vector<Entry> params_;
  std::vector<Entry> metrics_;
  std::vector<InvariantResult> invariants_;
  std::vector<GateResult> gates_;
};

}  // namespace veloce::scenario

#endif  // VELOCE_SCENARIO_REPORT_H_
