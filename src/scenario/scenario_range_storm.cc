// "range-storm": the range-scale data plane under composed churn. A herd
// of tenants drives hot load (load-based splits at sampled hot keys),
// then goes quiet (cooldown merges fuse the shards back), while pipelined
// replica moves stream snapshots under the traffic and seeded partition
// weather knocks links out — all from one scenario seed. Clients route
// through per-tenant range-directory caches and recover from staleness
// via RangeKeyMismatch redirects. The harness asserts the directory
// invariants (partition of the keyspace, tenant alignment, no stale lease
// epochs) after every iteration and checks the whole run linearizable.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "scenario/scenarios.h"
#include "sim/faulty_mesh.h"
#include "tests/range_storm_harness.h"

namespace veloce::scenario {
namespace {

class RangeStorm final : public Scenario {
 public:
  std::string_view name() const override { return "range-storm"; }
  std::string_view description() const override {
    return "split/merge/move churn with cached-directory clients";
  }

  void Run(ScenarioContext& ctx) override {
    kv::storm::StormOptions opts;
    opts.seed = ctx.SubSeed("range-storm");
    opts.tenants = ctx.fast() ? 4 : 12;
    opts.keys_per_tenant = ctx.fast() ? 16 : 24;
    opts.iterations = ctx.fast() ? 12 : 36;
    opts.ops_per_iteration = ctx.fast() ? 32 : 64;

    ManualClock clock(100 * kSecond);
    sim::FaultyMesh mesh(ctx.SubSeed("storm-mesh"));
    opts.mesh = &mesh;
    kv::KVClusterOptions co =
        kv::storm::RangeStormHarness::ClusterOptions(opts, &clock);
    co.transport = &mesh;
    auto cluster = std::make_unique<kv::KVCluster>(co);
    for (int i = 0; i < opts.tenants; ++i) {
      VELOCE_CHECK_OK(cluster->CreateTenantKeyspace(
          opts.first_tenant + static_cast<kv::TenantId>(i)));
    }

    ctx.report()->AddParam("tenants", opts.tenants);
    ctx.report()->AddParam("keys_per_tenant", opts.keys_per_tenant);
    ctx.report()->AddParam("iterations", opts.iterations);
    ctx.report()->AddParam("ops_per_iteration", opts.ops_per_iteration);
    ctx.report()->AddParam("load_split_qps", opts.load_split_qps);
    ctx.report()->AddParam("merge_qps_threshold", opts.merge_qps_threshold);

    ctx.Log(0, "storm", "begin: " + std::to_string(opts.tenants) +
                            " tenants, fault weather on");
    // Per-iteration trajectory: range count + cumulative churn land in the
    // event log, so the fingerprint tracks the whole storm, not just its
    // endpoints.
    opts.on_iteration = [&ctx, &clock](int iter, bool cooling, size_t ranges,
                                       const kv::storm::StormStats& s) {
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    "iter %02d %s: %zu ranges, %llu splits, %llu merges, "
                    "%llu redirects",
                    iter, cooling ? "cool" : "hot", ranges,
                    static_cast<unsigned long long>(s.splits),
                    static_cast<unsigned long long>(s.merges),
                    static_cast<unsigned long long>(s.redirects));
      ctx.Log(clock.Now(), "storm", buf);
    };
    kv::storm::RangeStormHarness storm(opts, &clock, cluster.get());
    const std::string violation = storm.Run();
    const kv::storm::StormStats& s = storm.stats();
    ctx.Log(clock.Now(), "storm",
            violation.empty() ? "clean: " + std::to_string(s.splits) +
                                    " splits, " + std::to_string(s.merges) +
                                    " merges, " +
                                    std::to_string(s.redirects) + " redirects"
                              : "VIOLATION: " + violation);

    std::vector<double> lat = s.read_latency_ms;
    std::sort(lat.begin(), lat.end());
    const double p50 = lat.empty() ? 0 : lat[lat.size() / 2];

    BenchReport* r = ctx.report();
    r->AddMetric("writes", s.writes);
    r->AddMetric("reads", s.reads);
    r->AddMetric("splits", s.splits);
    r->AddMetric("merges", s.merges);
    r->AddMetric("moves_finished", s.moves_finished);
    r->AddMetric("max_ranges", s.max_ranges);
    r->AddMetric("final_ranges", s.final_ranges);
    r->AddMetric("redirects", s.redirects);
    r->AddMetric("cache_hits", s.cache_hits);
    r->AddMetric("cache_misses", s.cache_misses);
    r->AddMetric("read_p50_ms", p50);
    r->AddMetric("read_p99_ms", s.ReadLatencyP99());

    r->AssertEq("invariants_hold", violation.empty() ? 1 : 0, 1,
                "directory partition/tenant/lease invariants + "
                "linearizability, checked every iteration");
    r->AssertGe("load_splits_fire", static_cast<double>(s.splits), 1,
                "hot tenants shatter at sampled hot-key boundaries");
    r->AssertGe("cooldown_merges_fire", static_cast<double>(s.merges), 1,
                "cooled shards fuse back after the dwell");
    r->AssertLe("directory_converges", static_cast<double>(s.final_ranges),
                static_cast<double>(opts.tenants + 2),
                "storm ends at ~one range per tenant");
    r->AssertGe("clients_survive_staleness",
                static_cast<double>(s.redirects), 1,
                "stale cached routes recovered via redirect");
    // Modeled route latency: cache hit = one leaseholder round-trip; every
    // redirect adds one. The cache must keep the p99 under two hops.
    r->AssertLe("read_p99_ms", s.ReadLatencyP99(), 1.20,
                "directory cache keeps reads under two modeled hops");
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeRangeStorm() {
  return std::make_unique<RangeStorm>();
}

}  // namespace veloce::scenario
