#include "scenario/scenarios.h"

namespace veloce::scenario {

void RegisterBuiltinScenarios() {
  RegisterScenario("black-friday", MakeBlackFriday);
  RegisterScenario("tenant-stampede", MakeTenantStampede);
  RegisterScenario("az-outage", MakeAzOutage);
  RegisterScenario("rolling-upgrade-under-chaos", MakeRollingUpgradeChaos);
  RegisterScenario("gray-partition", MakeGrayPartition);
}

}  // namespace veloce::scenario
