#include "scenario/scenarios.h"

namespace veloce::scenario {

void RegisterBuiltinScenarios() {
  RegisterScenario("black-friday", MakeBlackFriday);
  RegisterScenario("tenant-stampede", MakeTenantStampede);
  RegisterScenario("az-outage", MakeAzOutage);
  RegisterScenario("rolling-upgrade-under-chaos", MakeRollingUpgradeChaos);
  RegisterScenario("gray-partition", MakeGrayPartition);
  RegisterScenario("range-storm", MakeRangeStorm);
}

}  // namespace veloce::scenario
