// "gray-partition": a three-region deployment (one KV node per region,
// RF=3) suffers an *asymmetric* network failure — one node can receive
// but not send — that then hardens into a full isolation before healing.
// Unlike az-outage, the afflicted node never crashes: it stays up and
// convinced it is healthy, which is exactly the split-brain trap.
// Heartbeat-driven liveness must expire its lease epoch (outbound
// heartbeats can't reach a majority), writes must fail over to the
// surviving quorum via epoch-mismatch redirects rather than acking on a
// stale lease, and on heal the straggling replica must converge through
// log catch-up. The whole fault trajectory — the partition schedule plus
// a lossy per-link profile (drop/duplicate/delay) — derives from the one
// scenario seed through the FaultyMesh.

#include <cstdio>
#include <string>

#include "common/histogram.h"
#include "common/logging.h"
#include "scenario/env_builder.h"
#include "scenario/scenarios.h"
#include "sim/faulty_mesh.h"

namespace veloce::scenario {
namespace {

class GrayPartition final : public Scenario {
 public:
  std::string_view name() const override { return "gray-partition"; }
  std::string_view description() const override {
    return "asymmetric partition hardens to full isolation, then heals";
  }

  void Run(ScenarioContext& ctx) override {
    const Nanos total = (ctx.fast() ? 60 : 180) * kSecond;
    const Nanos gray_at = total / 4;      // outbound-only loss begins
    const Nanos isolate_at = total / 2;   // hardens to a full partition
    const Nanos heal_at = 3 * total / 4;  // links restored, catch-up
    const Nanos cadence = 250 * kMilli;
    const Nanos tick = 500 * kMilli;  // heartbeat/liveness cadence
    const Nanos liveness = 2 * kSecond;
    const uint32_t kNodes = 3;
    const uint32_t victim = 1;  // round-robin regions: node 1 = us-west1

    // The mesh outlives the cluster (declared first), so the transport
    // pointer installed below stays valid for the cluster's whole life.
    sim::FaultyMesh mesh(ctx.seed());

    ServerlessEnv env =
        ScenarioEnvBuilder()
            .Seed(ctx.seed())
            .KvNodes(static_cast<int>(kNodes))
            .Replication(3)
            .Regions({"us-east1", "us-west1", "europe-west1"})
            .Tune([liveness](serverless::ServerlessCluster::Options* o) {
              o->kv.liveness_duration = liveness;
            })
            .BuildServerless();
    serverless::ServerlessCluster& cluster = *env.cluster;
    cluster.kv_cluster()->set_transport(&mesh);
    auto meta = cluster.CreateTenant("prod");
    VELOCE_CHECK(meta.ok());
    const kv::TenantId tenant = meta->id;

    ctx.report()->AddParam("regions", 3);
    ctx.report()->AddParam("replication_factor", 3);
    ctx.report()->AddParam("liveness_s", static_cast<double>(liveness) / kSecond);
    ctx.report()->AddParam("gray_at_s", static_cast<double>(gray_at) / kSecond);
    ctx.report()->AddParam("isolate_at_s",
                           static_cast<double>(isolate_at) / kSecond);
    ctx.report()->AddParam("heal_at_s", static_cast<double>(heal_at) / kSecond);

    Timeline tl(cluster.loop(), ctx.log());
    // Arm liveness at t=0 and keep the heartbeat rounds coming for the
    // whole run (including the post-load settle window): lease expiry,
    // reassignment, and background catch-up all ride on these ticks.
    cluster.kv_cluster()->TickHeartbeats();
    tl.Every(tick, total + 4 * kSecond, "heartbeat-tick",
             [&cluster] { cluster.kv_cluster()->TickHeartbeats(); });

    tl.At(gray_at, "gray partition: node 1 outbound dead + lossy links",
          [&mesh, kNodes, victim] {
            // Asymmetric: the victim hears everyone but reaches no one. Its
            // own heartbeats can't assemble a majority, so its liveness
            // (and with it any lease it holds) must expire — while inbound
            // replication keeps it *almost* caught up, the gray trap.
            for (uint32_t other = 0; other < kNodes; ++other) {
              if (other != victim) mesh.PartitionLink(victim, other);
            }
            sim::MeshProfile lossy;
            lossy.drop = 0.03;
            lossy.dup = 0.02;
            lossy.reorder = 0.01;
            lossy.delay_base = kMilli;
            lossy.delay_jitter = 2 * kMilli;
            mesh.set_profile(lossy);
          });
    tl.At(isolate_at, "full partition: node 1 isolated",
          [&mesh, kNodes, victim] { mesh.Isolate(victim, kNodes); });
    tl.At(heal_at, "partition healed", [&cluster, &ctx, &tl, &mesh, kNodes] {
      mesh.HealAll();
      mesh.set_profile({});
      for (uint32_t id = 0; id < kNodes; ++id) {
        const Status s = cluster.kv_cluster()->CatchUpNode(id);
        if (!s.ok()) ctx.Log(tl.Elapsed(), "catch-up-failed", s.ToString());
      }
      cluster.kv_cluster()->BalanceLeases();
    });

    auto conn = cluster.ConnectSync(tenant);
    VELOCE_CHECK(conn.ok());
    VELOCE_CHECK_OK(
        cluster.ExecuteSync(*conn, "CREATE TABLE writes (id INT PRIMARY KEY)")
            .status());

    Histogram latency, healthy_latency, fault_latency, healed_latency;
    int64_t acked = 0, failed = 0;
    int64_t gray_failed = 0, isolated_failed = 0, healed_failed = 0;
    Random pacing(ctx.SubSeed("pacing"));
    int64_t writes_issued = 0;
    // Writes fail over but are never lost: ids are unique per *issue* (not
    // per ack), so an indeterminate outcome (row durable, error returned)
    // can't collide with a later write — final_rows is bracketed by
    // [acked, issued] instead of forced equal to acked.
    for (Nanos t = cadence; t <= total; t += cadence) {
      cluster.loop()->RunUntil(tl.start() + t +
                               static_cast<Nanos>(pacing.Uniform(50 * kMilli)));
      const Nanos t0 = cluster.loop()->Now();
      auto st = cluster.ExecuteSync(
          *conn,
          "INSERT INTO writes VALUES (" + std::to_string(writes_issued) + ")",
          /*idempotent=*/false);
      ++writes_issued;
      const Nanos took = cluster.loop()->Now() - t0;
      latency.Record(took);
      if (t <= gray_at) healthy_latency.Record(took);
      if (t > gray_at && t <= heal_at) fault_latency.Record(took);
      // Post-heal margin: one liveness interval for redirects/reassignment
      // to quiesce before the "back to normal" bar applies.
      if (t > heal_at + liveness) healed_latency.Record(took);
      if (st.ok()) {
        ++acked;
      } else {
        ++failed;
        if (t > gray_at && t <= isolate_at) ++gray_failed;
        if (t > isolate_at && t <= heal_at) ++isolated_failed;
        if (t > heal_at + liveness) ++healed_failed;
        ctx.Log(tl.Elapsed(), "write-failed", st.status().ToString());
      }
      if (writes_issued % 40 == 0) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "acked=%lld failed=%lld p99=%.2fms",
                      static_cast<long long>(acked),
                      static_cast<long long>(failed),
                      static_cast<double>(latency.P99()) / kMilli);
        ctx.Log(tl.Elapsed(), "progress", buf);
      }
    }
    cluster.loop()->RunUntil(tl.start() + total + 5 * kSecond);

    auto count = cluster.ExecuteSync(*conn, "SELECT COUNT(*) FROM writes");
    VELOCE_CHECK(count.ok());
    const double final_rows = count->rows[0][0].int_value();

    obs::MetricsRegistry* m = cluster.metrics();
    const double epoch_bumps = m->Sum("veloce_kv_liveness_epoch_bumps_total");
    const double epoch_mismatches =
        m->Sum("veloce_kv_lease_epoch_mismatches_total");
    const double catchups = m->Sum("veloce_kv_replica_catchups_total");
    const double demotions = m->Sum("veloce_kv_replica_demotions_total");
    const double redirects = m->Sum("veloce_serverless_lease_redirects_total");

    BenchReport* r = ctx.report();
    r->AddMetric("writes_issued", writes_issued);
    r->AddMetric("writes_acked", acked);
    r->AddMetric("writes_failed", failed);
    r->AddMetric("final_rows", final_rows);
    r->AddMetric("gray_write_failures", gray_failed);
    r->AddMetric("isolated_write_failures", isolated_failed);
    r->AddMetric("write_p99_ms", static_cast<double>(latency.P99()) / kMilli);
    r->AddMetric("healthy_write_p99_ms",
                 static_cast<double>(healthy_latency.P99()) / kMilli);
    r->AddMetric("fault_write_p99_ms",
                 static_cast<double>(fault_latency.P99()) / kMilli);
    r->AddMetric("healed_write_p99_ms",
                 static_cast<double>(healed_latency.P99()) / kMilli);
    r->AddMetric("lease_epoch_bumps", epoch_bumps);
    r->AddMetric("lease_epoch_mismatches", epoch_mismatches);
    r->AddMetric("replica_catchups", catchups);
    r->AddMetric("replica_demotions", demotions);
    r->AddMetric("lease_redirects", redirects);
    r->AddMetric("mesh_delivered", static_cast<double>(mesh.stats().delivered));
    r->AddMetric("mesh_dropped", static_cast<double>(mesh.stats().dropped));
    r->AddMetric("mesh_duplicated",
                 static_cast<double>(mesh.stats().duplicated));
    r->AddMetric("mesh_blocked", static_cast<double>(mesh.stats().blocked));

    // Every acked write survives the partition + catch-up; rows beyond
    // acked can only come from indeterminate failures (durable but
    // error-returned), never from thin air.
    r->AssertGe("no_acked_write_loss", final_rows, static_cast<double>(acked),
                "acked INSERTs survive the gray partition and heal");
    r->AssertLe("no_phantom_rows", final_rows,
                static_cast<double>(writes_issued),
                "every durable row traces to an issued INSERT");
    r->AssertGe("lease_epoch_bumped", epoch_bumps, 1,
                "the muted node's liveness epoch expired (no silent lease)");
    r->AssertGe("replica_caught_up", catchups, 1,
                "the partitioned replica converged via log catch-up");
    r->AssertEq("healed_write_failures", static_cast<double>(healed_failed), 0,
                "after heal + one liveness interval, writes are clean");
    r->AssertGe("acked_fraction",
                static_cast<double>(acked) /
                    static_cast<double>(writes_issued ? writes_issued : 1),
                0.6, "failover bounds the blackout to the liveness window");
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeGrayPartition() {
  return std::make_unique<GrayPartition>();
}

}  // namespace veloce::scenario
