#ifndef VELOCE_WORKLOAD_TPCH_H_
#define VELOCE_WORKLOAD_TPCH_H_

#include "common/random.h"
#include "sql/session.h"

namespace veloce::workload {

/// TPC-H-lite: the two queries the paper's evaluation focuses on (Section
/// 6.1.2), over a scaled-down schema.
///  * Q1 — full table scan of lineitem with grouped aggregation. All rows
///    cross the SQL/KV boundary, so Serverless mode pays marshaling per
///    row: the 2.3x CPU effect.
///  * Q9 — a multi-join profit query whose plan is dominated by index
///    joins (per-row point lookups), which cost the same RPCs in both
///    deployment modes.
class TpchWorkload {
 public:
  struct Options {
    int lineitem_rows = 2000;
    int parts = 50;
    int suppliers = 10;
    int nations = 5;
    int orders = 400;
  };

  TpchWorkload(Options options, uint64_t seed);

  Status Setup(sql::Session* session);

  /// Pricing summary report (scan + aggregate).
  StatusOr<sql::ResultSet> RunQ1(sql::Session* session);
  /// Product-type profit (multi-join + aggregate).
  StatusOr<sql::ResultSet> RunQ9(sql::Session* session);

  const Options& options() const { return options_; }

 private:
  Options options_;
  Random rng_;
};

}  // namespace veloce::workload

#endif  // VELOCE_WORKLOAD_TPCH_H_
