#include "workload/tpcc.h"

#include <functional>

namespace veloce::workload {

namespace {
constexpr int kMaxTxnRetries = 8;

std::string I(int64_t v) { return std::to_string(v); }

bool Retryable(const Status& s) {
  return s.IsTransactionRetry() || s.IsWriteIntentError() ||
         s.code() == Code::kTransactionAborted;
}
}  // namespace

TpccWorkload::TpccWorkload(Options options, uint64_t seed,
                           const obs::ObsContext& obs)
    : options_(options), rng_(seed) {
  obs::MetricsRegistry* metrics = obs.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  auto txn = [&](const char* kind) {
    return metrics->counter("veloce_workload_tpcc_txns_total", {{"txn", kind}});
  };
  new_orders_c_ = txn("new_order");
  payments_c_ = txn("payment");
  order_statuses_c_ = txn("order_status");
  deliveries_c_ = txn("delivery");
  stock_levels_c_ = txn("stock_level");
  retries_c_ = metrics->counter("veloce_workload_tpcc_retries_total");
  aborts_c_ = metrics->counter("veloce_workload_tpcc_aborts_total");
}

const TpccWorkload::Stats& TpccWorkload::stats() const {
  stats_snapshot_.new_orders = new_orders_c_->value();
  stats_snapshot_.payments = payments_c_->value();
  stats_snapshot_.order_statuses = order_statuses_c_->value();
  stats_snapshot_.deliveries = deliveries_c_->value();
  stats_snapshot_.stock_levels = stock_levels_c_->value();
  stats_snapshot_.retries = retries_c_->value();
  stats_snapshot_.aborts = aborts_c_->value();
  return stats_snapshot_;
}

std::string TpccWorkload::LastName(int num) const {
  static const char* syllables[] = {"BAR", "OUGHT", "ABLE", "PRI",   "PRES",
                                    "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  return std::string(syllables[(num / 100) % 10]) + syllables[(num / 10) % 10] +
         syllables[num % 10];
}

Status TpccWorkload::Setup(sql::Session* session) {
  const char* ddl[] = {
      "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name STRING, w_ytd DOUBLE)",
      "CREATE TABLE district (w_id INT, d_id INT, d_next_o_id INT, d_ytd DOUBLE, "
      "PRIMARY KEY (w_id, d_id))",
      "CREATE TABLE customer (w_id INT, d_id INT, c_id INT, c_last STRING, "
      "c_balance DOUBLE, c_ytd_payment DOUBLE, c_payment_cnt INT, "
      "PRIMARY KEY (w_id, d_id, c_id))",
      "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price DOUBLE)",
      "CREATE TABLE stock (w_id INT, i_id INT, s_quantity INT, s_ytd INT, "
      "PRIMARY KEY (w_id, i_id))",
      "CREATE TABLE orders (w_id INT, d_id INT, o_id INT, o_c_id INT, "
      "o_ol_cnt INT, o_delivered INT, PRIMARY KEY (w_id, d_id, o_id))",
      "CREATE TABLE order_line (w_id INT, d_id INT, o_id INT, ol_number INT, "
      "ol_i_id INT, ol_quantity INT, ol_amount DOUBLE, "
      "PRIMARY KEY (w_id, d_id, o_id, ol_number))",
  };
  for (const char* stmt : ddl) {
    VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
  }
  VELOCE_RETURN_IF_ERROR(
      session->Execute("CREATE INDEX customer_by_last ON customer (c_last)").status());

  for (int w = 1; w <= options_.warehouses; ++w) {
    VELOCE_RETURN_IF_ERROR(
        session->Execute("INSERT INTO warehouse VALUES (" + I(w) + ", 'wh" + I(w) +
                         "', 0.0)").status());
    for (int d = 1; d <= options_.districts_per_warehouse; ++d) {
      VELOCE_RETURN_IF_ERROR(
          session->Execute("INSERT INTO district VALUES (" + I(w) + ", " + I(d) +
                           ", 1, 0.0)").status());
      for (int c = 1; c <= options_.customers_per_district; ++c) {
        VELOCE_RETURN_IF_ERROR(
            session->Execute("INSERT INTO customer VALUES (" + I(w) + ", " + I(d) +
                             ", " + I(c) + ", '" + LastName(c % 1000) +
                             "', 0.0, 0.0, 0)").status());
      }
    }
    // Stock rows per warehouse, batched.
    for (int i = 1; i <= options_.items; i += 20) {
      std::string stmt = "INSERT INTO stock VALUES ";
      for (int j = i; j < i + 20 && j <= options_.items; ++j) {
        if (j > i) stmt += ", ";
        stmt += "(" + I(w) + ", " + I(j) + ", " +
                I(10 + static_cast<int>(rng_.Uniform(91))) + ", 0)";
      }
      VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
    }
  }
  for (int i = 1; i <= options_.items; i += 20) {
    std::string stmt = "INSERT INTO item VALUES ";
    for (int j = i; j < i + 20 && j <= options_.items; ++j) {
      if (j > i) stmt += ", ";
      stmt += "(" + I(j) + ", 'item" + I(j) + "', " +
              I(1 + static_cast<int>(rng_.Uniform(100))) + ".5)";
    }
    VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
  }
  return Status::OK();
}

Status TpccWorkload::RunInTxn(sql::Session* session,
                              const std::function<Status(sql::Session*)>& body) {
  Status last = Status::OK();
  for (int attempt = 0; attempt < kMaxTxnRetries; ++attempt) {
    VELOCE_RETURN_IF_ERROR(session->Execute("BEGIN").status());
    Status s = body(session);
    if (s.ok()) {
      s = session->Execute("COMMIT").status();
      if (s.ok()) return Status::OK();
    } else if (session->in_transaction()) {
      (void)session->Execute("ROLLBACK");
    }
    last = s;
    if (!Retryable(s)) return s;
    retries_c_->Inc();
  }
  aborts_c_->Inc();
  return last;
}

Status TpccWorkload::RunTransaction(sql::Session* session) {
  const uint64_t roll = rng_.Uniform(100);
  if (roll < 45) return NewOrder(session);
  if (roll < 88) return Payment(session);
  if (roll < 92) return OrderStatus(session);
  if (roll < 96) return Delivery(session);
  return StockLevel(session);
}

Status TpccWorkload::NewOrder(sql::Session* session) {
  const int w = RandomWarehouse(), d = RandomDistrict(), c = RandomCustomer();
  const int ol_cnt = 5 + static_cast<int>(rng_.Uniform(11));
  std::vector<int> item_ids;
  for (int i = 0; i < ol_cnt; ++i) item_ids.push_back(RandomItem());

  Status s = RunInTxn(session, [&](sql::Session* sess) -> Status {
    // Read and bump the district's next order id.
    VELOCE_ASSIGN_OR_RETURN(
        sql::ResultSet rs,
        sess->Execute("SELECT d_next_o_id FROM district WHERE w_id = " + I(w) +
                      " AND d_id = " + I(d)));
    if (rs.rows.empty()) return Status::NotFound("district missing");
    const int64_t o_id = rs.rows[0][0].int_value();
    VELOCE_RETURN_IF_ERROR(
        sess->Execute("UPDATE district SET d_next_o_id = " + I(o_id + 1) +
                      " WHERE w_id = " + I(w) + " AND d_id = " + I(d)).status());
    VELOCE_RETURN_IF_ERROR(
        sess->Execute("INSERT INTO orders VALUES (" + I(w) + ", " + I(d) + ", " +
                      I(o_id) + ", " + I(c) + ", " + I(ol_cnt) + ", 0)").status());
    for (int line = 0; line < ol_cnt; ++line) {
      const int item = item_ids[static_cast<size_t>(line)];
      VELOCE_ASSIGN_OR_RETURN(
          sql::ResultSet price_rs,
          sess->Execute("SELECT i_price FROM item WHERE i_id = " + I(item)));
      if (price_rs.rows.empty()) return Status::NotFound("item missing");
      const double price = price_rs.rows[0][0].AsDouble();
      const int qty = 1 + static_cast<int>(rng_.Uniform(10));
      VELOCE_ASSIGN_OR_RETURN(
          sql::ResultSet stock_rs,
          sess->Execute("SELECT s_quantity FROM stock WHERE w_id = " + I(w) +
                        " AND i_id = " + I(item)));
      if (stock_rs.rows.empty()) return Status::NotFound("stock missing");
      int64_t s_qty = stock_rs.rows[0][0].int_value();
      s_qty = s_qty > qty + 10 ? s_qty - qty : s_qty - qty + 91;
      VELOCE_RETURN_IF_ERROR(
          sess->Execute("UPDATE stock SET s_quantity = " + I(s_qty) +
                        ", s_ytd = s_ytd + " + I(qty) + " WHERE w_id = " + I(w) +
                        " AND i_id = " + I(item)).status());
      char amount[32];
      std::snprintf(amount, sizeof(amount), "%.2f", price * qty);
      VELOCE_RETURN_IF_ERROR(
          sess->Execute("INSERT INTO order_line VALUES (" + I(w) + ", " + I(d) +
                        ", " + I(o_id) + ", " + I(line + 1) + ", " + I(item) + ", " +
                        I(qty) + ", " + amount + ")").status());
    }
    return Status::OK();
  });
  if (s.ok()) new_orders_c_->Inc();
  return s;
}

Status TpccWorkload::Payment(sql::Session* session) {
  const int w = RandomWarehouse(), d = RandomDistrict();
  const double amount = 1.0 + static_cast<double>(rng_.Uniform(5000)) / 100.0;
  const bool by_last_name = rng_.Uniform(100) < 40;
  const int c = RandomCustomer();
  const std::string last = LastName(c % 1000);

  Status s = RunInTxn(session, [&](sql::Session* sess) -> Status {
    char amt[32];
    std::snprintf(amt, sizeof(amt), "%.2f", amount);
    VELOCE_RETURN_IF_ERROR(
        sess->Execute("UPDATE warehouse SET w_ytd = w_ytd + " + std::string(amt) +
                      " WHERE w_id = " + I(w)).status());
    VELOCE_RETURN_IF_ERROR(
        sess->Execute("UPDATE district SET d_ytd = d_ytd + " + std::string(amt) +
                      " WHERE w_id = " + I(w) + " AND d_id = " + I(d)).status());
    int64_t c_id = c;
    if (by_last_name) {
      // Spec: pick the middle customer by last name (via the secondary
      // index on c_last).
      VELOCE_ASSIGN_OR_RETURN(
          sql::ResultSet rs,
          sess->Execute("SELECT c_id FROM customer WHERE c_last = '" + last +
                        "' ORDER BY c_id"));
      if (!rs.rows.empty()) {
        c_id = rs.rows[rs.rows.size() / 2][0].int_value();
      }
    }
    VELOCE_RETURN_IF_ERROR(
        sess->Execute("UPDATE customer SET c_balance = c_balance - " +
                      std::string(amt) + ", c_ytd_payment = c_ytd_payment + " + amt +
                      ", c_payment_cnt = c_payment_cnt + 1 WHERE w_id = " + I(w) +
                      " AND d_id = " + I(d) + " AND c_id = " + I(c_id)).status());
    return Status::OK();
  });
  if (s.ok()) payments_c_->Inc();
  return s;
}

Status TpccWorkload::OrderStatus(sql::Session* session) {
  const int w = RandomWarehouse(), d = RandomDistrict(), c = RandomCustomer();
  Status s = RunInTxn(session, [&](sql::Session* sess) -> Status {
    VELOCE_RETURN_IF_ERROR(
        sess->Execute("SELECT c_balance FROM customer WHERE w_id = " + I(w) +
                      " AND d_id = " + I(d) + " AND c_id = " + I(c)).status());
    VELOCE_ASSIGN_OR_RETURN(
        sql::ResultSet rs,
        sess->Execute("SELECT o_id FROM orders WHERE w_id = " + I(w) +
                      " AND d_id = " + I(d) + " AND o_c_id = " + I(c) +
                      " ORDER BY o_id DESC LIMIT 1"));
    if (!rs.rows.empty()) {
      const int64_t o_id = rs.rows[0][0].int_value();
      VELOCE_RETURN_IF_ERROR(
          sess->Execute("SELECT ol_i_id, ol_quantity, ol_amount FROM order_line "
                        "WHERE w_id = " + I(w) + " AND d_id = " + I(d) +
                        " AND o_id = " + I(o_id)).status());
    }
    return Status::OK();
  });
  if (s.ok()) order_statuses_c_->Inc();
  return s;
}

Status TpccWorkload::Delivery(sql::Session* session) {
  const int w = RandomWarehouse();
  Status s = RunInTxn(session, [&](sql::Session* sess) -> Status {
    for (int d = 1; d <= options_.districts_per_warehouse; ++d) {
      VELOCE_ASSIGN_OR_RETURN(
          sql::ResultSet rs,
          sess->Execute("SELECT o_id FROM orders WHERE w_id = " + I(w) +
                        " AND d_id = " + I(d) + " AND o_delivered = 0 "
                        "ORDER BY o_id LIMIT 1"));
      if (rs.rows.empty()) continue;
      const int64_t o_id = rs.rows[0][0].int_value();
      VELOCE_RETURN_IF_ERROR(
          sess->Execute("UPDATE orders SET o_delivered = 1 WHERE w_id = " + I(w) +
                        " AND d_id = " + I(d) + " AND o_id = " + I(o_id)).status());
    }
    return Status::OK();
  });
  if (s.ok()) deliveries_c_->Inc();
  return s;
}

Status TpccWorkload::StockLevel(sql::Session* session) {
  const int w = RandomWarehouse(), d = RandomDistrict();
  Status s = RunInTxn(session, [&](sql::Session* sess) -> Status {
    VELOCE_RETURN_IF_ERROR(
        sess->Execute("SELECT COUNT(*) FROM stock WHERE w_id = " + I(w) +
                      " AND s_quantity < 15").status());
    (void)d;
    return Status::OK();
  });
  if (s.ok()) stock_levels_c_->Inc();
  return s;
}

}  // namespace veloce::workload
