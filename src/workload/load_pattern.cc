#include "workload/load_pattern.h"

namespace veloce::workload {

double LoadPattern::At(Nanos t) const {
  double base = 0;
  Nanos offset = 0;
  bool found = false;
  for (const auto& seg : segments_) {
    if (t < offset + seg.duration) {
      const double frac =
          seg.duration == 0
              ? 1.0
              : static_cast<double>(t - offset) / static_cast<double>(seg.duration);
      base = seg.start_vcpus + frac * (seg.end_vcpus - seg.start_vcpus);
      found = true;
      break;
    }
    offset += seg.duration;
  }
  if (!found && !segments_.empty()) base = segments_.back().end_vcpus;
  if (noise_ > 0 && base > 0) {
    base += (rng_.NextDouble() - 0.5) * 2 * noise_ * base;
    if (base < 0) base = 0;
  }
  return base;
}

Nanos LoadPattern::TotalDuration() const {
  Nanos total = 0;
  for (const auto& seg : segments_) total += seg.duration;
  return total;
}

LoadPattern LoadPattern::ProductionLike(uint64_t seed) {
  return LoadPattern(
      {
          {20 * kMinute, 0.2, 0.2},    // quiet start
          {30 * kMinute, 0.2, 3.0},    // morning ramp
          {40 * kMinute, 3.0, 3.5},    // plateau
          {5 * kMinute, 3.5, 11.0},    // sharp spike
          {10 * kMinute, 11.0, 10.0},  // sustained burst
          {20 * kMinute, 10.0, 2.0},   // decay
          {30 * kMinute, 2.0, 1.5},    // afternoon steady state
          {25 * kMinute, 1.5, 0.0},    // wind down
          {30 * kMinute, 0.0, 0.0},    // idle tail
      },
      /*noise=*/0.10, seed);
}

}  // namespace veloce::workload
