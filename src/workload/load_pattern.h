#ifndef VELOCE_WORKLOAD_LOAD_PATTERN_H_
#define VELOCE_WORKLOAD_LOAD_PATTERN_H_

#include <vector>

#include "common/clock.h"
#include "common/random.h"

namespace veloce::workload {

/// A deterministic CPU-demand curve over time (vCPUs as a function of sim
/// time), used to replay "production-like" tenant activity against the
/// autoscaler (Fig 8). Piecewise segments with optional linear ramps and
/// bounded noise.
class LoadPattern {
 public:
  struct Segment {
    Nanos duration = 0;
    double start_vcpus = 0;
    double end_vcpus = 0;  ///< linearly interpolated across the segment
  };

  LoadPattern() = default;
  explicit LoadPattern(std::vector<Segment> segments, double noise = 0.0,
                       uint64_t seed = 11)
      : segments_(std::move(segments)), noise_(noise), rng_(seed) {}

  /// Demand at time `t` from the pattern start. Time beyond the last
  /// segment returns the last segment's end value.
  double At(Nanos t) const;

  Nanos TotalDuration() const;

  /// The variable-activity shape of the paper's Fig 8: idle, a morning
  /// ramp, a sustained plateau, a sharp spike, decay, and a quiet tail —
  /// several hours of sim time.
  static LoadPattern ProductionLike(uint64_t seed = 42);

 private:
  std::vector<Segment> segments_;
  double noise_ = 0;
  mutable Random rng_{11};
};

}  // namespace veloce::workload

#endif  // VELOCE_WORKLOAD_LOAD_PATTERN_H_
