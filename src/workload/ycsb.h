#ifndef VELOCE_WORKLOAD_YCSB_H_
#define VELOCE_WORKLOAD_YCSB_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "sql/session.h"

namespace veloce::workload {

/// YCSB-lite: the standard core workloads A-F over a usertable with a
/// string key and four value fields, with zipfian key selection. Used as
/// varied load shapes for the estimated-CPU model evaluation (Fig 11).
class YcsbWorkload {
 public:
  enum class Mix { kA, kB, kC, kD, kE, kF };

  struct Options {
    Mix mix = Mix::kA;
    int record_count = 500;
    int field_bytes = 64;
    double zipf_theta = 0.99;
    int scan_limit = 20;
  };

  /// Snapshot view over the workload's `veloce_workload_ycsb_*` counters
  /// (see stats()).
  struct Stats {
    uint64_t reads = 0, updates = 0, inserts = 0, scans = 0, rmws = 0;
    uint64_t errors = 0;
  };

  /// `obs.metrics` receives the workload's counters (null = private
  /// registry, so stats() stays per-instance-correct either way).
  YcsbWorkload(Options options, uint64_t seed, const obs::ObsContext& obs = {});

  Status Setup(sql::Session* session);
  /// Runs one operation from the mix.
  Status RunOp(sql::Session* session);

  /// Current values of the workload counters, materialized as a snapshot.
  const Stats& stats() const;
  static std::string MixName(Mix mix);

 private:
  std::string Key(uint64_t n) const;
  uint64_t NextKeyIndex();

  Options options_;
  Random rng_;
  ZipfianGenerator zipf_;
  uint64_t inserted_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* reads_c_ = nullptr;
  obs::Counter* updates_c_ = nullptr;
  obs::Counter* inserts_c_ = nullptr;
  obs::Counter* scans_c_ = nullptr;
  obs::Counter* rmws_c_ = nullptr;
  obs::Counter* errors_c_ = nullptr;
  mutable Stats stats_snapshot_;
};

/// Bulk import: loads `rows` rows of ~`row_bytes` each into a fresh table
/// using multi-row inserts (the "data imports" workload of Fig 11).
Status RunImport(sql::Session* session, const std::string& table, int rows,
                 int row_bytes, uint64_t seed);

}  // namespace veloce::workload

#endif  // VELOCE_WORKLOAD_YCSB_H_
