#include "workload/tpch.h"

#include <cstdio>

namespace veloce::workload {

namespace {
std::string I(int64_t v) { return std::to_string(v); }
}  // namespace

TpchWorkload::TpchWorkload(Options options, uint64_t seed)
    : options_(options), rng_(seed) {}

Status TpchWorkload::Setup(sql::Session* session) {
  const char* ddl[] = {
      "CREATE TABLE nation (n_nationkey INT PRIMARY KEY, n_name STRING)",
      "CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, s_name STRING, "
      "s_nationkey INT)",
      "CREATE TABLE part (p_partkey INT PRIMARY KEY, p_name STRING)",
      "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, "
      "ps_supplycost DOUBLE, PRIMARY KEY (ps_partkey, ps_suppkey))",
      "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_orderdate INT)",
      "CREATE TABLE lineitem (l_orderkey INT, l_linenumber INT, l_partkey INT, "
      "l_suppkey INT, l_quantity INT, l_extendedprice DOUBLE, l_discount DOUBLE, "
      "l_tax DOUBLE, l_returnflag STRING, l_linestatus STRING, l_shipdate INT, "
      "PRIMARY KEY (l_orderkey, l_linenumber))",
  };
  for (const char* stmt : ddl) {
    VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
  }

  static const char* nation_names[] = {"FRANCE", "GERMANY", "JAPAN", "BRAZIL",
                                       "KENYA", "PERU", "CHINA", "CANADA"};
  for (int n = 0; n < options_.nations; ++n) {
    VELOCE_RETURN_IF_ERROR(
        session->Execute("INSERT INTO nation VALUES (" + I(n) + ", '" +
                         nation_names[n % 8] + "')").status());
  }
  for (int s = 1; s <= options_.suppliers; ++s) {
    VELOCE_RETURN_IF_ERROR(
        session->Execute("INSERT INTO supplier VALUES (" + I(s) + ", 'supp" + I(s) +
                         "', " + I(static_cast<int>(rng_.Uniform(options_.nations))) +
                         ")").status());
  }
  for (int p = 1; p <= options_.parts; ++p) {
    VELOCE_RETURN_IF_ERROR(
        session->Execute("INSERT INTO part VALUES (" + I(p) + ", 'part" + I(p) +
                         "')").status());
    // Every (part, supplier) pair exists so index joins always hit.
    std::string stmt = "INSERT INTO partsupp VALUES ";
    for (int s = 1; s <= options_.suppliers; ++s) {
      if (s > 1) stmt += ", ";
      char cost[32];
      std::snprintf(cost, sizeof(cost), "%.2f",
                    1.0 + static_cast<double>(rng_.Uniform(10000)) / 100.0);
      stmt += "(" + I(p) + ", " + I(s) + ", " + cost + ")";
    }
    VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
  }
  for (int o = 1; o <= options_.orders; ++o) {
    VELOCE_RETURN_IF_ERROR(
        session->Execute("INSERT INTO orders VALUES (" + I(o) + ", " +
                         I(19920101 + static_cast<int>(rng_.Uniform(2500))) +
                         ")").status());
  }
  // lineitem: batched inserts.
  static const char* flags[] = {"A", "N", "R"};
  static const char* statuses[] = {"F", "O"};
  int remaining = options_.lineitem_rows;
  int line_counter = 0;
  while (remaining > 0) {
    const int batch = remaining < 25 ? remaining : 25;
    std::string stmt = "INSERT INTO lineitem VALUES ";
    for (int i = 0; i < batch; ++i) {
      if (i > 0) stmt += ", ";
      const int orderkey = 1 + line_counter % options_.orders;
      const int linenumber = 1 + line_counter / options_.orders;
      char price[32], disc[32], tax[32];
      std::snprintf(price, sizeof(price), "%.2f",
                    100.0 + static_cast<double>(rng_.Uniform(90000)) / 100.0);
      std::snprintf(disc, sizeof(disc), "%.2f",
                    static_cast<double>(rng_.Uniform(11)) / 100.0);
      std::snprintf(tax, sizeof(tax), "%.2f",
                    static_cast<double>(rng_.Uniform(9)) / 100.0);
      stmt += "(" + I(orderkey) + ", " + I(linenumber) + ", " +
              I(1 + static_cast<int>(rng_.Uniform(options_.parts))) + ", " +
              I(1 + static_cast<int>(rng_.Uniform(options_.suppliers))) + ", " +
              I(1 + static_cast<int>(rng_.Uniform(50))) + ", " + price + ", " + disc +
              ", " + tax + ", '" + flags[rng_.Uniform(3)] + "', '" +
              statuses[rng_.Uniform(2)] + "', " +
              I(19920101 + static_cast<int>(rng_.Uniform(2500))) + ")";
      ++line_counter;
    }
    VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
    remaining -= batch;
  }
  return Status::OK();
}

StatusOr<sql::ResultSet> TpchWorkload::RunQ1(sql::Session* session) {
  return session->Execute(
      "SELECT l_returnflag, l_linestatus, "
      "SUM(l_quantity) AS sum_qty, "
      "SUM(l_extendedprice) AS sum_base_price, "
      "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
      "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
      "AVG(l_quantity) AS avg_qty, "
      "AVG(l_extendedprice) AS avg_price, "
      "COUNT(*) AS count_order "
      "FROM lineitem WHERE l_shipdate <= 19981201 "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus");
}

StatusOr<sql::ResultSet> TpchWorkload::RunQ9(sql::Session* session) {
  // Profit by nation: joins are on primary keys, so the executor runs
  // per-row index joins (remote KV lookups), like the paper's Q9 plan.
  return session->Execute(
      "SELECT n.n_name AS nation, "
      "SUM(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity) "
      "AS sum_profit "
      "FROM lineitem l "
      "JOIN part p ON l.l_partkey = p.p_partkey "
      "JOIN supplier s ON l.l_suppkey = s.s_suppkey "
      "JOIN partsupp ps ON ps.ps_partkey = l.l_partkey AND ps.ps_suppkey = l.l_suppkey "
      "JOIN orders o ON l.l_orderkey = o.o_orderkey "
      "JOIN nation n ON s.s_nationkey = n.n_nationkey "
      "GROUP BY n.n_name ORDER BY nation");
}

}  // namespace veloce::workload
