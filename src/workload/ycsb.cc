#include "workload/ycsb.h"

#include <cstdio>

namespace veloce::workload {

YcsbWorkload::YcsbWorkload(Options options, uint64_t seed,
                           const obs::ObsContext& obs)
    : options_(options),
      rng_(seed),
      zipf_(static_cast<uint64_t>(options.record_count), options.zipf_theta, seed ^ 0x5555),
      inserted_(static_cast<uint64_t>(options.record_count)) {
  obs::MetricsRegistry* metrics = obs.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  auto op = [&](const char* kind) {
    return metrics->counter("veloce_workload_ycsb_ops_total", {{"op", kind}});
  };
  reads_c_ = op("read");
  updates_c_ = op("update");
  inserts_c_ = op("insert");
  scans_c_ = op("scan");
  rmws_c_ = op("rmw");
  errors_c_ = metrics->counter("veloce_workload_ycsb_errors_total");
}

const YcsbWorkload::Stats& YcsbWorkload::stats() const {
  stats_snapshot_.reads = reads_c_->value();
  stats_snapshot_.updates = updates_c_->value();
  stats_snapshot_.inserts = inserts_c_->value();
  stats_snapshot_.scans = scans_c_->value();
  stats_snapshot_.rmws = rmws_c_->value();
  stats_snapshot_.errors = errors_c_->value();
  return stats_snapshot_;
}

std::string YcsbWorkload::MixName(Mix mix) {
  switch (mix) {
    case Mix::kA: return "A (50/50 read/update)";
    case Mix::kB: return "B (95/5 read/update)";
    case Mix::kC: return "C (read only)";
    case Mix::kD: return "D (read latest)";
    case Mix::kE: return "E (scans)";
    case Mix::kF: return "F (read-modify-write)";
  }
  return "?";
}

std::string YcsbWorkload::Key(uint64_t n) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu", static_cast<unsigned long long>(n));
  return buf;
}

uint64_t YcsbWorkload::NextKeyIndex() {
  if (options_.mix == Mix::kD) {
    // Read-latest: favor recently inserted keys.
    const uint64_t offset = zipf_.Next() % inserted_;
    return inserted_ - 1 - offset;
  }
  return zipf_.Next() % inserted_;
}

Status YcsbWorkload::Setup(sql::Session* session) {
  VELOCE_RETURN_IF_ERROR(
      session->Execute("CREATE TABLE usertable (ycsb_key STRING PRIMARY KEY, "
                       "field0 STRING, field1 STRING, field2 STRING, field3 STRING)")
          .status());
  for (int i = 0; i < options_.record_count; i += 25) {
    std::string stmt = "INSERT INTO usertable VALUES ";
    for (int j = i; j < i + 25 && j < options_.record_count; ++j) {
      if (j > i) stmt += ", ";
      stmt += "('" + Key(static_cast<uint64_t>(j)) + "'";
      for (int f = 0; f < 4; ++f) {
        stmt += ", '" + rng_.String(static_cast<size_t>(options_.field_bytes)) + "'";
      }
      stmt += ")";
    }
    VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
  }
  return Status::OK();
}

Status YcsbWorkload::RunOp(sql::Session* session) {
  const uint64_t roll = rng_.Uniform(100);
  bool is_read = false, is_update = false, is_insert = false, is_scan = false,
       is_rmw = false;
  switch (options_.mix) {
    case Mix::kA: (roll < 50 ? is_read : is_update) = true; break;
    case Mix::kB: (roll < 95 ? is_read : is_update) = true; break;
    case Mix::kC: is_read = true; break;
    case Mix::kD: (roll < 95 ? is_read : is_insert) = true; break;
    case Mix::kE: (roll < 95 ? is_scan : is_insert) = true; break;
    case Mix::kF: (roll < 50 ? is_read : is_rmw) = true; break;
  }

  Status s;
  if (is_read) {
    s = session->Execute("SELECT * FROM usertable WHERE ycsb_key = '" +
                         Key(NextKeyIndex()) + "'").status();
    if (s.ok()) reads_c_->Inc();
  } else if (is_update) {
    s = session->Execute("UPDATE usertable SET field" +
                         std::to_string(rng_.Uniform(4)) + " = '" +
                         rng_.String(static_cast<size_t>(options_.field_bytes)) +
                         "' WHERE ycsb_key = '" + Key(NextKeyIndex()) + "'").status();
    if (s.ok()) updates_c_->Inc();
  } else if (is_insert) {
    std::string stmt = "INSERT INTO usertable VALUES ('" + Key(inserted_) + "'";
    for (int f = 0; f < 4; ++f) {
      stmt += ", '" + rng_.String(static_cast<size_t>(options_.field_bytes)) + "'";
    }
    stmt += ")";
    s = session->Execute(stmt).status();
    if (s.ok()) {
      ++inserted_;
      inserts_c_->Inc();
    }
  } else if (is_scan) {
    s = session->Execute("SELECT * FROM usertable WHERE ycsb_key >= '" +
                         Key(NextKeyIndex()) + "' LIMIT " +
                         std::to_string(options_.scan_limit)).status();
    if (s.ok()) scans_c_->Inc();
  } else if (is_rmw) {
    const std::string key = Key(NextKeyIndex());
    s = session->Execute("SELECT * FROM usertable WHERE ycsb_key = '" + key + "'")
            .status();
    if (s.ok()) {
      s = session->Execute("UPDATE usertable SET field0 = '" +
                           rng_.String(static_cast<size_t>(options_.field_bytes)) +
                           "' WHERE ycsb_key = '" + key + "'").status();
    }
    if (s.ok()) rmws_c_->Inc();
  }
  if (!s.ok()) errors_c_->Inc();
  return s;
}

Status RunImport(sql::Session* session, const std::string& table, int rows,
                 int row_bytes, uint64_t seed) {
  Random rng(seed);
  VELOCE_RETURN_IF_ERROR(
      session->Execute("CREATE TABLE " + table +
                       " (id INT PRIMARY KEY, payload STRING)").status());
  const int per_field = row_bytes > 16 ? row_bytes - 16 : 1;
  for (int i = 0; i < rows; i += 50) {
    std::string stmt = "INSERT INTO " + table + " VALUES ";
    for (int j = i; j < i + 50 && j < rows; ++j) {
      if (j > i) stmt += ", ";
      stmt += "(" + std::to_string(j) + ", '" +
              rng.String(static_cast<size_t>(per_field)) + "')";
    }
    VELOCE_RETURN_IF_ERROR(session->Execute(stmt).status());
  }
  return Status::OK();
}

}  // namespace veloce::workload
