#ifndef VELOCE_WORKLOAD_TPCC_H_
#define VELOCE_WORKLOAD_TPCC_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "sql/session.h"

namespace veloce::workload {

/// TPC-C-lite: the standard transaction mix (45% NewOrder, 43% Payment, 4%
/// OrderStatus, 4% Delivery, 4% StockLevel) over the canonical schema,
/// scaled down for laptop-scale runs. Used as the paper uses it: an OLTP
/// load shape for the efficiency comparison (Fig 6), the noisy-neighbor
/// experiments (Table 1, Figs 12-13), and connection-migration impact
/// (Fig 9) — not for audited tpmC results.
class TpccWorkload {
 public:
  struct Options {
    int warehouses = 2;
    int districts_per_warehouse = 2;   ///< spec: 10
    int customers_per_district = 30;   ///< spec: 3000
    int items = 100;                   ///< spec: 100000
  };

  /// Snapshot view over the workload's `veloce_workload_tpcc_*` counters
  /// (see stats()).
  struct Stats {
    uint64_t new_orders = 0;   ///< committed NewOrder txns (the tpmC numerator)
    uint64_t payments = 0;
    uint64_t order_statuses = 0;
    uint64_t deliveries = 0;
    uint64_t stock_levels = 0;
    uint64_t retries = 0;      ///< retryable errors absorbed
    uint64_t aborts = 0;       ///< transactions given up after retries

    uint64_t committed() const {
      return new_orders + payments + order_statuses + deliveries + stock_levels;
    }
  };

  /// `obs.metrics` receives the workload's counters (null = private
  /// registry, so stats() stays per-instance-correct either way).
  TpccWorkload(Options options, uint64_t seed, const obs::ObsContext& obs = {});

  /// Creates the schema (with the customer last-name secondary index) and
  /// loads the initial population.
  Status Setup(sql::Session* session);

  /// Runs one transaction from the standard mix. Retryable errors are
  /// retried a few times internally.
  Status RunTransaction(sql::Session* session);

  Status NewOrder(sql::Session* session);
  Status Payment(sql::Session* session);
  Status OrderStatus(sql::Session* session);
  Status Delivery(sql::Session* session);
  Status StockLevel(sql::Session* session);

  /// Current values of the workload counters, materialized as a snapshot.
  const Stats& stats() const;
  const Options& options() const { return options_; }

 private:
  /// Runs `body` in an explicit transaction with bounded retries.
  Status RunInTxn(sql::Session* session,
                  const std::function<Status(sql::Session*)>& body);
  std::string LastName(int num) const;
  int RandomWarehouse() { return static_cast<int>(rng_.Uniform(options_.warehouses)) + 1; }
  int RandomDistrict() {
    return static_cast<int>(rng_.Uniform(options_.districts_per_warehouse)) + 1;
  }
  int RandomCustomer() {
    return static_cast<int>(rng_.Uniform(options_.customers_per_district)) + 1;
  }
  int RandomItem() { return static_cast<int>(rng_.Uniform(options_.items)) + 1; }

  Options options_;
  Random rng_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* new_orders_c_ = nullptr;
  obs::Counter* payments_c_ = nullptr;
  obs::Counter* order_statuses_c_ = nullptr;
  obs::Counter* deliveries_c_ = nullptr;
  obs::Counter* stock_levels_c_ = nullptr;
  obs::Counter* retries_c_ = nullptr;
  obs::Counter* aborts_c_ = nullptr;
  mutable Stats stats_snapshot_;
};

}  // namespace veloce::workload

#endif  // VELOCE_WORKLOAD_TPCC_H_
