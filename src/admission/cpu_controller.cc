#include "admission/cpu_controller.h"

#include "common/logging.h"

namespace veloce::admission {

CpuSlotController::CpuSlotController(Options options)
    : options_(options), total_slots_(options.vcpus) {
  VELOCE_CHECK(options_.vcpus > 0);
  VELOCE_CHECK(options_.min_slots >= 1);
}

void CpuSlotController::Sample(int runnable_queue_len, bool work_waiting) {
  const double runnable_per_vcpu =
      static_cast<double>(runnable_queue_len) / options_.vcpus;
  if (runnable_per_vcpu > options_.runnable_per_vcpu_high) {
    // Scheduler backlog: admit less (additive decrease).
    if (total_slots_ > options_.min_slots) --total_slots_;
  } else if (runnable_per_vcpu < options_.runnable_per_vcpu_low && work_waiting &&
             used_slots_ >= total_slots_) {
    // CPU has headroom and work is queued: admit more (additive increase).
    const int max_slots = options_.vcpus * options_.max_slots_per_vcpu;
    if (total_slots_ < max_slots) ++total_slots_;
  }
}

bool CpuSlotController::TryAcquire() {
  if (used_slots_ >= total_slots_) return false;
  ++used_slots_;
  return true;
}

void CpuSlotController::Release() {
  VELOCE_CHECK(used_slots_ > 0);
  --used_slots_;
}

}  // namespace veloce::admission
