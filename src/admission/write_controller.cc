#include "admission/write_controller.h"

#include <algorithm>

namespace veloce::admission {

void LinearWriteModel::AddSample(double ingest, double written) {
  // Exponentially decay history so the model tracks workload shifts.
  constexpr double kDecay = 0.95;
  n_ = n_ * kDecay + 1;
  sum_x_ = sum_x_ * kDecay + ingest;
  sum_y_ = sum_y_ * kDecay + written;
  sum_xx_ = sum_xx_ * kDecay + ingest * ingest;
  sum_xy_ = sum_xy_ * kDecay + ingest * written;
  // Spread the fixed per-interval cost across a nominal op count.
  b_per_op_ = b() / 1000.0;
}

double LinearWriteModel::a() const {
  const double denom = n_ * sum_xx_ - sum_x_ * sum_x_;
  if (denom <= 1e-9 || n_ < 2) {
    // Untrained: assume 3x amplification (WAL + flush + one compaction).
    return 3.0;
  }
  const double slope = (n_ * sum_xy_ - sum_x_ * sum_y_) / denom;
  return std::clamp(slope, 1.0, 64.0);
}

double LinearWriteModel::b() const {
  if (n_ < 2) return 0;
  return std::max(0.0, (sum_y_ - a() * sum_x_) / n_);
}

WriteTokenBucket::WriteTokenBucket(Clock* clock)
    : clock_(clock), last_refill_(clock->Now()) {}

void WriteTokenBucket::UpdateCapacity(const storage::EngineStats& stats,
                                      int l0_files) {
  const Nanos now = clock_->Now();
  if (!has_baseline_) {
    has_baseline_ = true;
    last_capacity_update_ = now;
    prev_stats_ = stats;
    return;
  }
  const Nanos elapsed = now - last_capacity_update_;
  if (elapsed < kCapacityInterval) return;
  const double secs = static_cast<double>(elapsed) / kSecond;

  // Observable write bottlenecks: memtable flush bandwidth and the rate at
  // which compactions drain L0. Capacity is the larger of what the engine
  // demonstrated it can absorb, with a floor to avoid collapsing to zero in
  // an idle interval.
  const double flush_rate =
      static_cast<double>(stats.flush_bytes - prev_stats_.flush_bytes) / secs;
  const double compact_rate =
      static_cast<double>(stats.compact_write_bytes - prev_stats_.compact_write_bytes) /
      secs;
  const double ingest_rate =
      static_cast<double>(stats.ingest_bytes - prev_stats_.ingest_bytes) / secs;
  double capacity = std::max({flush_rate, compact_rate, ingest_rate});
  if (capacity < 1.0) capacity = refill_per_sec_;  // idle interval: keep prior

  // L0 backlog discount: an unhealthy L0 means compactions are behind, so
  // admit less than the demonstrated rate until it drains.
  constexpr int kHealthyL0 = 8;
  if (l0_files > kHealthyL0) {
    capacity *= static_cast<double>(kHealthyL0) / l0_files;
  }

  // Write-stall discount: time writers spent stalled this interval is time
  // the engine was past its sustainable rate. Scale capacity down by the
  // stalled fraction of the interval, floored so one bad interval cannot
  // collapse admission entirely.
  const double stall_secs = stats.stall_seconds - prev_stats_.stall_seconds;
  if (stall_secs > 0) {
    capacity *= std::max(0.25, 1.0 - stall_secs / secs);
  }
  if (capacity > 0) {
    refill_per_sec_ = capacity;
    burst_bytes_ = refill_per_sec_;  // one second of burst
    calibrated_ = true;
  }
  last_capacity_update_ = now;
  prev_stats_ = stats;
}

void WriteTokenBucket::Refill() {
  const Nanos now = clock_->Now();
  const Nanos elapsed = now - last_refill_;
  if (elapsed <= 0) return;
  tokens_ += refill_per_sec_ * static_cast<double>(elapsed) / kSecond;
  if (tokens_ > burst_bytes_) tokens_ = burst_bytes_;
  last_refill_ = now;
}

bool WriteTokenBucket::TryConsume(uint64_t bytes) {
  if (!calibrated_) return true;  // admit freely until first estimate
  Refill();
  if (tokens_ < static_cast<double>(bytes)) return false;
  tokens_ -= static_cast<double>(bytes);
  return true;
}

void WriteTokenBucket::Deduct(uint64_t bytes) {
  Refill();
  tokens_ -= static_cast<double>(bytes);
}

}  // namespace veloce::admission
