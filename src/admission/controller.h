#ifndef VELOCE_ADMISSION_CONTROLLER_H_
#define VELOCE_ADMISSION_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "admission/cpu_controller.h"
#include "admission/work_queue.h"
#include "admission/write_controller.h"
#include "sim/event_loop.h"
#include "sim/virtual_cpu.h"
#include "storage/engine.h"

namespace veloce::admission {

/// One unit of KV work submitted for admission.
struct KvWork {
  uint64_t tenant_id = 0;
  int32_t priority = 0;
  Nanos txn_start = 0;
  Nanos deadline = 0;          ///< 0 = none
  bool is_write = false;
  uint64_t write_bytes = 0;    ///< payload bytes for the write model
  Nanos cpu_cost = 0;          ///< CPU the operation will consume
  std::function<void()> done;  ///< fires (on the loop) when work completes
};

/// Per-node admission control (Section 5.1): write operations pass the
/// write-bandwidth queue (WQ) and then the CPU queue (CQ); reads pass only
/// the CQ. Admitted operations execute on the node's simulated CPU; slots
/// return when they finish. Long operations are sliced so no single op
/// monopolizes a slot (cooperative resumption markers).
///
/// Drive entirely from one sim::EventLoop.
class NodeAdmissionController {
 public:
  struct Options {
    int vcpus = 32;
    bool enabled = true;
    Nanos sample_period = kMilli;         ///< 1000 Hz runnable-queue sampling
    Nanos wq_pump_period = 10 * kMilli;
    Nanos decay_period = kSecond;         ///< fairness window decay
    Nanos max_slice_cpu = 10 * kMilli;    ///< cooperative yield threshold
  };

  NodeAdmissionController(sim::EventLoop* loop, sim::VirtualCpu* cpu,
                          Options options);

  void Submit(KvWork work);

  bool enabled() const { return options_.enabled; }
  /// Feeds fresh engine counters into the write token bucket's capacity
  /// estimation (call on the 15 s cadence, or whenever stats refresh).
  void UpdateWriteCapacity(const storage::EngineStats& stats, int l0_files);

  const CpuSlotController& slots() const { return slots_; }
  const WriteTokenBucket& write_bucket() const { return write_bucket_; }
  LinearWriteModel* write_model() { return &write_model_; }
  size_t cq_queued() const { return cq_.queued(); }
  size_t wq_queued() const { return wq_.queued(); }
  uint64_t tenant_cpu_consumed(uint64_t tenant) const { return cq_.consumption(tenant); }

 private:
  void EnqueueCq(KvWork work);
  void DispatchCq();
  void PumpWq();
  void RunSlice(std::shared_ptr<KvWork> work, Nanos remaining);

  sim::EventLoop* loop_;
  sim::VirtualCpu* cpu_;
  Options options_;
  TenantFairQueue cq_;
  TenantFairQueue wq_;
  CpuSlotController slots_;
  WriteTokenBucket write_bucket_;
  LinearWriteModel write_model_;
  std::unique_ptr<sim::PeriodicTask> sampler_;
  std::unique_ptr<sim::PeriodicTask> wq_pump_;
  std::unique_ptr<sim::PeriodicTask> decayer_;
};

}  // namespace veloce::admission

#endif  // VELOCE_ADMISSION_CONTROLLER_H_
