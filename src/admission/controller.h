#ifndef VELOCE_ADMISSION_CONTROLLER_H_
#define VELOCE_ADMISSION_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "admission/cpu_controller.h"
#include "admission/work_queue.h"
#include "admission/write_controller.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sim/event_loop.h"
#include "sim/virtual_cpu.h"
#include "storage/engine.h"

namespace veloce::admission {

/// One unit of KV work submitted for admission.
struct KvWork {
  uint64_t tenant_id = 0;
  int32_t priority = 0;
  Nanos txn_start = 0;
  Nanos deadline = 0;          ///< 0 = none
  bool is_write = false;
  uint64_t write_bytes = 0;    ///< payload bytes for the write model
  Nanos cpu_cost = 0;          ///< CPU the operation will consume
  /// Optional request trace; the controller records the admission-queue
  /// wait into it (span "admission_queue").
  obs::TraceContext* trace = nullptr;
  std::function<void()> done;  ///< fires (on the loop) when work completes
};

/// Per-node admission control (Section 5.1): write operations pass the
/// write-bandwidth queue (WQ) and then the CPU queue (CQ); reads pass only
/// the CQ. Admitted operations execute on the node's simulated CPU; slots
/// return when they finish. Long operations are sliced so no single op
/// monopolizes a slot (cooperative resumption markers).
///
/// Drive entirely from one sim::EventLoop.
class NodeAdmissionController {
 public:
  struct Options {
    int vcpus = 32;
    bool enabled = true;
    /// When false, no periodic tasks (sampler / WQ pump / decayer) are
    /// started, so the sim event queue can drain — for hosts that call
    /// loop.Run() and admit only via AdmitSync (the serverless facade).
    bool background_tasks = true;
    Nanos sample_period = kMilli;         ///< 1000 Hz runnable-queue sampling
    Nanos wq_pump_period = 10 * kMilli;
    Nanos decay_period = kSecond;         ///< fairness window decay
    Nanos max_slice_cpu = 10 * kMilli;    ///< cooperative yield threshold
    /// Telemetry injection; null metrics = private registry. When several
    /// controllers share a registry, set a distinct `instance` per
    /// controller (exported as label node=...).
    obs::ObsContext obs;
    std::string instance;
  };

  NodeAdmissionController(sim::EventLoop* loop, sim::VirtualCpu* cpu,
                          Options options);

  void Submit(KvWork work);

  /// Synchronous admission for callers that cannot yield to the event loop
  /// (the in-process SQL execution path): consults the WQ token bucket and
  /// the CPU slots, charges fairness counters, and returns a *modeled*
  /// queueing delay instead of actually parking the caller. The delay is
  /// recorded in admission metrics and, when `work.trace` is set, as an
  /// "admission_queue" span.
  Nanos AdmitSync(const KvWork& work);

  bool enabled() const { return options_.enabled; }
  /// Feeds fresh engine counters into the write token bucket's capacity
  /// estimation (call on the 15 s cadence, or whenever stats refresh).
  void UpdateWriteCapacity(const storage::EngineStats& stats, int l0_files);

  const CpuSlotController& slots() const { return slots_; }
  const WriteTokenBucket& write_bucket() const { return write_bucket_; }
  LinearWriteModel* write_model() { return &write_model_; }
  size_t cq_queued() const { return cq_.queued(); }
  size_t wq_queued() const { return wq_.queued(); }
  uint64_t tenant_cpu_consumed(uint64_t tenant) const { return cq_.consumption(tenant); }
  /// Registry holding this controller's `veloce_admission_*` series.
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  void InitMetrics();
  void EnqueueCq(KvWork work);
  void DispatchCq();
  void PumpWq();
  void RunSlice(std::shared_ptr<KvWork> work, Nanos remaining);

  sim::EventLoop* loop_;
  sim::VirtualCpu* cpu_;
  Options options_;
  TenantFairQueue cq_;
  TenantFairQueue wq_;
  CpuSlotController slots_;
  WriteTokenBucket write_bucket_;
  LinearWriteModel write_model_;
  std::unique_ptr<sim::PeriodicTask> sampler_;
  std::unique_ptr<sim::PeriodicTask> wq_pump_;
  std::unique_ptr<sim::PeriodicTask> decayer_;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* admitted_c_ = nullptr;
  obs::Counter* wq_throttled_c_ = nullptr;
  obs::Counter* slices_c_ = nullptr;
  obs::HistogramMetric* queue_wait_h_ = nullptr;
  obs::MetricsRegistry::CallbackToken gauge_cb_;
};

}  // namespace veloce::admission

#endif  // VELOCE_ADMISSION_CONTROLLER_H_
