#include "admission/work_queue.h"

namespace veloce::admission {

void TenantFairQueue::Enqueue(WorkItem item) {
  TenantQueue& tq = tenants_[item.tenant_id];
  const bool had_work = !tq.items.empty();
  const auto key = std::make_tuple(-static_cast<int64_t>(item.priority),
                                   item.txn_start, next_seq_++);
  const uint64_t tenant_id = item.tenant_id;
  tq.items.emplace(key, std::move(item));
  ++total_queued_;
  if (!had_work) {
    heap_.insert({tq.consumption, tenant_id});
  }
}

std::optional<WorkItem> TenantFairQueue::Dequeue() {
  const Nanos now = clock_->Now();
  while (!heap_.empty()) {
    const auto [consumption, tenant_id] = *heap_.begin();
    TenantQueue& tq = tenants_[tenant_id];
    // Drop expired items from the front of this tenant's queue.
    while (!tq.items.empty()) {
      auto it = tq.items.begin();
      if (it->second.deadline != 0 && it->second.deadline < now) {
        tq.items.erase(it);
        --total_queued_;
        continue;
      }
      WorkItem item = std::move(it->second);
      tq.items.erase(it);
      --total_queued_;
      if (tq.items.empty()) heap_.erase(heap_.begin());
      return item;
    }
    heap_.erase(heap_.begin());
  }
  return std::nullopt;
}

void TenantFairQueue::RecordConsumption(uint64_t tenant_id, uint64_t amount) {
  TenantQueue& tq = tenants_[tenant_id];
  const bool in_heap = !tq.items.empty();
  if (in_heap) heap_.erase({tq.consumption, tenant_id});
  tq.consumption += amount;
  if (in_heap) heap_.insert({tq.consumption, tenant_id});
}

void TenantFairQueue::Decay() {
  std::set<std::pair<uint64_t, uint64_t>> rebuilt;
  for (auto& [tenant_id, tq] : tenants_) {
    tq.consumption /= 2;
    if (!tq.items.empty()) rebuilt.insert({tq.consumption, tenant_id});
  }
  heap_ = std::move(rebuilt);
}

uint64_t TenantFairQueue::consumption(uint64_t tenant_id) const {
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? 0 : it->second.consumption;
}

size_t TenantFairQueue::queued_for_tenant(uint64_t tenant_id) const {
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? 0 : it->second.items.size();
}

}  // namespace veloce::admission
