#ifndef VELOCE_ADMISSION_CPU_CONTROLLER_H_
#define VELOCE_ADMISSION_CPU_CONTROLLER_H_

#include <cstdint>

namespace veloce::admission {

/// CPU admission slots (Section 5.1.3): the controller estimates how many
/// concurrently admitted operations keep CPU utilization high (90%+, work
/// conserving) while keeping the scheduler's runnable queue short. It is
/// driven by high-frequency samples of the runnable queue length and an
/// additive increase / additive decrease feedback loop.
class CpuSlotController {
 public:
  struct Options {
    int vcpus = 4;
    int min_slots = 1;
    /// Upper bound on slots per vCPU (runaway protection).
    int max_slots_per_vcpu = 16;
    /// Runnable threads per vCPU above which the node counts as overloaded
    /// and slots shrink.
    double runnable_per_vcpu_high = 2.0;
    /// Below this runnable load, slots may grow if work is waiting.
    double runnable_per_vcpu_low = 1.0;
  };

  explicit CpuSlotController(Options options);

  /// Feeds one 1000 Hz sample: the scheduler's runnable queue length and
  /// whether admission work is waiting for a slot. Adjusts total slots.
  void Sample(int runnable_queue_len, bool work_waiting);

  /// Attempts to occupy a slot; pair with Release() when the operation
  /// finishes or yields with a resumption marker.
  bool TryAcquire();
  void Release();

  int total_slots() const { return total_slots_; }
  int used_slots() const { return used_slots_; }
  int available_slots() const { return total_slots_ - used_slots_; }

 private:
  Options options_;
  int total_slots_;
  int used_slots_ = 0;
};

}  // namespace veloce::admission

#endif  // VELOCE_ADMISSION_CPU_CONTROLLER_H_
