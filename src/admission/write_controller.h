#ifndef VELOCE_ADMISSION_WRITE_CONTROLLER_H_
#define VELOCE_ADMISSION_WRITE_CONTROLLER_H_

#include <cstdint>

#include "common/clock.h"
#include "storage/engine.h"

namespace veloce::admission {

/// Incrementally fitted linear model y = a*x + b (Section 5.1.4): estimates
/// the actual LSM bytes written (WAL + flush + compaction) for an operation
/// ingesting x payload bytes. Fit over an exponentially weighted window of
/// (x, y) interval samples.
class LinearWriteModel {
 public:
  /// Adds an observation aggregated over an interval: `ingest` payload
  /// bytes produced `written` total bytes.
  void AddSample(double ingest, double written);

  double a() const;  ///< amplification slope (bytes written per byte)
  double b() const;  ///< per-interval fixed cost share

  /// Predicted total write bytes for one operation ingesting x bytes.
  double Predict(double x) const { return a() * x + b_per_op_; }

  bool trained() const { return n_ > 1; }

 private:
  double n_ = 0, sum_x_ = 0, sum_y_ = 0, sum_xx_ = 0, sum_xy_ = 0;
  double b_per_op_ = 0;
};

/// The write-bandwidth token bucket (WQ, Section 5.1.3). Each token is one
/// byte of LSM write capacity. The refill rate is re-estimated every
/// `kCapacityInterval` from the engine's flush and compaction throughput —
/// the two observable write bottlenecks — discounted when L0 builds up a
/// backlog (read amplification pressure) or when writers spent part of the
/// interval stalled on the engine's own backpressure.
class WriteTokenBucket {
 public:
  static constexpr Nanos kCapacityInterval = 15 * kSecond;

  explicit WriteTokenBucket(Clock* clock);

  /// Re-estimates capacity from engine counters; call every 15 s (or when
  /// convenient — it no-ops if called early). `l0_files` discounts capacity
  /// when the L0 backlog exceeds the healthy threshold.
  void UpdateCapacity(const storage::EngineStats& stats, int l0_files);

  /// Attempts to take `bytes` tokens; refills lazily from elapsed time.
  bool TryConsume(uint64_t bytes);
  /// Forcibly deducts (for work-conserving debt accounting).
  void Deduct(uint64_t bytes);

  double tokens() const { return tokens_; }
  double refill_bytes_per_sec() const { return refill_per_sec_; }

  /// Until capacity is first estimated, the bucket admits freely.
  bool calibrated() const { return calibrated_; }

 private:
  void Refill();

  Clock* clock_;
  double tokens_ = 0;
  double refill_per_sec_ = 0;
  double burst_bytes_ = 0;
  bool calibrated_ = false;
  bool has_baseline_ = false;
  Nanos last_refill_;
  Nanos last_capacity_update_ = 0;
  storage::EngineStats prev_stats_;
};

}  // namespace veloce::admission

#endif  // VELOCE_ADMISSION_WRITE_CONTROLLER_H_
