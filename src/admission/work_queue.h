#ifndef VELOCE_ADMISSION_WORK_QUEUE_H_
#define VELOCE_ADMISSION_WORK_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/clock.h"

namespace veloce::admission {

/// One queued KV operation awaiting admission.
struct WorkItem {
  uint64_t tenant_id = 0;
  int32_t priority = 0;      ///< higher admits first within a tenant
  Nanos txn_start = 0;       ///< earlier transactions first within a priority
  Nanos deadline = 0;        ///< 0 = none; expired items are dropped
  uint64_t cost = 0;         ///< resource units this item will consume on admission
  std::function<void()> run; ///< invoked by the controller upon admission
};

/// The paper's admission queue (Section 5.1.2): a hierarchy of heaps. The
/// top level orders *tenants* by how much of the resource each consumed
/// over a recent interval — the least-consuming tenant is served first,
/// which is what makes allocation fair across tenants. Within a tenant,
/// operations order by (priority desc, transaction start asc).
///
/// Consumption decays by halving at a fixed cadence (call Decay()
/// periodically) so "recent interval" is an exponentially weighted window.
///
/// Not thread-safe: drive from one event loop (sim) or under an external
/// mutex.
class TenantFairQueue {
 public:
  explicit TenantFairQueue(Clock* clock) : clock_(clock) {}

  void Enqueue(WorkItem item);

  /// Pops the next admissible item: least-consuming tenant, then its
  /// highest-priority/oldest operation. Skips (and drops) expired items.
  std::optional<WorkItem> Dequeue();

  /// Records resource consumption (cpu-nanos or write bytes) for fairness.
  void RecordConsumption(uint64_t tenant_id, uint64_t amount);

  /// Halves all consumption counters (exponential decay of the window).
  void Decay();

  uint64_t consumption(uint64_t tenant_id) const;
  size_t queued() const { return total_queued_; }
  size_t queued_for_tenant(uint64_t tenant_id) const;
  bool empty() const { return total_queued_ == 0; }

 private:
  struct TenantQueue {
    uint64_t consumption = 0;
    // Ordered by (-priority, txn_start, seq) => highest priority, oldest
    // first.
    std::map<std::tuple<int64_t, Nanos, uint64_t>, WorkItem> items;
  };

  // Key in the tenant heap: (consumption, tenant_id). Rebuilt on every
  // consumption change for the affected tenant.
  void ReindexTenant(uint64_t tenant_id);

  Clock* clock_;
  std::map<uint64_t, TenantQueue> tenants_;
  std::set<std::pair<uint64_t, uint64_t>> heap_;  // (consumption, tenant) with work
  size_t total_queued_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace veloce::admission

#endif  // VELOCE_ADMISSION_WORK_QUEUE_H_
