#include "admission/controller.h"

#include <algorithm>

namespace veloce::admission {

namespace {
/// Upper bound on the modeled synchronous-admission delay: an uncalibrated
/// or badly backlogged bucket must not stall a request forever.
constexpr Nanos kMaxModeledWait = 2 * kSecond;
}  // namespace

NodeAdmissionController::NodeAdmissionController(sim::EventLoop* loop,
                                                 sim::VirtualCpu* cpu,
                                                 Options options)
    : loop_(loop),
      cpu_(cpu),
      options_(std::move(options)),
      cq_(loop->clock()),
      wq_(loop->clock()),
      slots_({.vcpus = options_.vcpus}),
      write_bucket_(loop->clock()) {
  InitMetrics();
  if (options_.enabled && options_.background_tasks) {
    sampler_ = std::make_unique<sim::PeriodicTask>(loop_, options_.sample_period, [this] {
      slots_.Sample(cpu_->runnable_queue_length(), !cq_.empty());
      DispatchCq();
    });
    sampler_->Start();
    wq_pump_ = std::make_unique<sim::PeriodicTask>(loop_, options_.wq_pump_period,
                                                   [this] { PumpWq(); });
    wq_pump_->Start();
    decayer_ = std::make_unique<sim::PeriodicTask>(loop_, options_.decay_period, [this] {
      cq_.Decay();
      wq_.Decay();
    });
    decayer_->Start();
  }
}

void NodeAdmissionController::InitMetrics() {
  metrics_ = options_.obs.metrics;
  if (metrics_ == nullptr) {
    // Private registry: keeps metrics()/series per-instance-correct with
    // zero wiring (tests construct controllers standalone).
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::Labels labels;
  if (!options_.instance.empty()) labels.push_back({"node", options_.instance});
  admitted_c_ = metrics_->counter("veloce_admission_admitted_total", labels);
  wq_throttled_c_ = metrics_->counter("veloce_admission_wq_throttled_total", labels);
  slices_c_ = metrics_->counter("veloce_admission_slices_total", labels);
  queue_wait_h_ = metrics_->histogram("veloce_admission_queue_wait_ns", labels);
  gauge_cb_ = metrics_->AddCollectCallback([this, labels] {
    metrics_->gauge("veloce_admission_cq_depth", labels)
        ->Set(static_cast<double>(cq_.queued()));
    metrics_->gauge("veloce_admission_wq_depth", labels)
        ->Set(static_cast<double>(wq_.queued()));
    metrics_->gauge("veloce_admission_total_slots", labels)
        ->Set(slots_.total_slots());
    metrics_->gauge("veloce_admission_used_slots", labels)
        ->Set(slots_.used_slots());
    metrics_->gauge("veloce_admission_wq_tokens", labels)
        ->Set(write_bucket_.tokens());
    metrics_->gauge("veloce_admission_wq_refill_bytes_per_sec", labels)
        ->Set(write_bucket_.refill_bytes_per_sec());
  });
}

void NodeAdmissionController::Submit(KvWork work) {
  if (!options_.enabled) {
    auto done = std::move(work.done);
    cpu_->Submit(work.tenant_id, work.cpu_cost, std::move(done));
    return;
  }
  if (work.is_write) {
    const uint64_t amplified =
        static_cast<uint64_t>(write_model_.Predict(static_cast<double>(work.write_bytes)));
    if (!write_bucket_.TryConsume(amplified)) {
      // Queue in the WQ; the pump admits it as tokens refill.
      wq_throttled_c_->Inc();
      const Nanos enqueued_at = loop_->clock()->Now();
      WorkItem item;
      item.tenant_id = work.tenant_id;
      item.priority = work.priority;
      item.txn_start = work.txn_start;
      item.deadline = work.deadline;
      item.cost = amplified;
      auto shared = std::make_shared<KvWork>(std::move(work));
      item.run = [this, shared, enqueued_at]() mutable {
        const Nanos wq_wait = loop_->clock()->Now() - enqueued_at;
        queue_wait_h_->Record(wq_wait);
        if (shared->trace != nullptr) {
          shared->trace->AddDuration("admission_queue", wq_wait);
        }
        EnqueueCq(std::move(*shared));
      };
      wq_.Enqueue(std::move(item));
      return;
    }
    wq_.RecordConsumption(work.tenant_id, amplified);
  }
  EnqueueCq(std::move(work));
}

Nanos NodeAdmissionController::AdmitSync(const KvWork& work) {
  if (!options_.enabled) return 0;
  Nanos wait = 0;
  if (work.is_write) {
    const uint64_t amplified =
        static_cast<uint64_t>(write_model_.Predict(static_cast<double>(work.write_bytes)));
    if (!write_bucket_.TryConsume(amplified)) {
      wq_throttled_c_->Inc();
      // Modeled WQ wait: how long until the refill covers the deficit.
      const double rate = write_bucket_.refill_bytes_per_sec();
      const double tokens = std::max(write_bucket_.tokens(), 0.0);
      const double deficit = static_cast<double>(amplified) - tokens;
      if (rate > 0 && deficit > 0) {
        wait += static_cast<Nanos>(deficit / rate * static_cast<double>(kSecond));
      }
      // Work-conserving debt: later writers see the overdraft.
      write_bucket_.Deduct(amplified);
    }
    wq_.RecordConsumption(work.tenant_id, amplified);
  }
  // CQ: a caller that cannot park models one dispatch tick when all slots
  // are busy.
  if (slots_.available_slots() <= 0) {
    wait += options_.sample_period;
  }
  wait = std::min(wait, kMaxModeledWait);
  cq_.RecordConsumption(work.tenant_id, static_cast<uint64_t>(work.cpu_cost));
  admitted_c_->Inc();
  queue_wait_h_->Record(wait);
  if (work.trace != nullptr) {
    work.trace->AddDuration("admission_queue", wait);
  }
  return wait;
}

void NodeAdmissionController::EnqueueCq(KvWork work) {
  if (slots_.TryAcquire()) {
    admitted_c_->Inc();
    queue_wait_h_->Record(0);
    auto shared = std::make_shared<KvWork>(std::move(work));
    RunSlice(shared, shared->cpu_cost);
    return;
  }
  const Nanos enqueued_at = loop_->clock()->Now();
  WorkItem item;
  item.tenant_id = work.tenant_id;
  item.priority = work.priority;
  item.txn_start = work.txn_start;
  item.deadline = work.deadline;
  auto shared = std::make_shared<KvWork>(std::move(work));
  item.run = [this, shared, enqueued_at]() {
    const Nanos cq_wait = loop_->clock()->Now() - enqueued_at;
    admitted_c_->Inc();
    queue_wait_h_->Record(cq_wait);
    if (shared->trace != nullptr) {
      shared->trace->AddDuration("admission_queue", cq_wait);
    }
    RunSlice(shared, shared->cpu_cost);
  };
  cq_.Enqueue(std::move(item));
}

void NodeAdmissionController::DispatchCq() {
  while (!cq_.empty() && slots_.TryAcquire()) {
    auto item = cq_.Dequeue();
    if (!item.has_value()) {
      slots_.Release();
      return;
    }
    item->run();  // RunSlice takes ownership of the already-acquired slot
  }
}

void NodeAdmissionController::PumpWq() {
  while (!wq_.empty()) {
    // Dequeue-and-maybe-admit: if the bucket can't cover the item's
    // amplified cost, put it back and wait for the next pump (fairness is
    // preserved by the consumption counters, not FIFO position).
    auto item = wq_.Dequeue();
    if (!item.has_value()) return;
    if (!write_bucket_.TryConsume(item->cost)) {
      wq_.Enqueue(std::move(*item));
      return;  // bucket dry; try next pump
    }
    wq_.RecordConsumption(item->tenant_id, item->cost);
    item->run();
  }
}

void NodeAdmissionController::RunSlice(std::shared_ptr<KvWork> work, Nanos remaining) {
  // Occupies one already-acquired CPU slot. Slices bound how long a single
  // operation holds the slot; between slices the op re-queues behind other
  // tenants (resumption marker semantics).
  const Nanos slice = remaining < options_.max_slice_cpu ? remaining
                                                         : options_.max_slice_cpu;
  slices_c_->Inc();
  cpu_->Submit(work->tenant_id, slice, [this, work, remaining, slice]() {
    cq_.RecordConsumption(work->tenant_id, static_cast<uint64_t>(slice));
    slots_.Release();
    const Nanos left = remaining - slice;
    if (left > 0) {
      // Re-admit the remainder through the fair queue.
      if (slots_.TryAcquire()) {
        RunSlice(work, left);
      } else {
        WorkItem item;
        item.tenant_id = work->tenant_id;
        item.priority = work->priority;
        item.txn_start = work->txn_start;
        item.deadline = work->deadline;
        item.run = [this, work, left]() { RunSlice(work, left); };
        cq_.Enqueue(std::move(item));
      }
      return;
    }
    if (work->done) loop_->Schedule(0, work->done);
    DispatchCq();
  });
}

void NodeAdmissionController::UpdateWriteCapacity(const storage::EngineStats& stats,
                                                  int l0_files) {
  write_bucket_.UpdateCapacity(stats, l0_files);
  // Refresh the write model with the same interval's observations.
  write_model_.AddSample(static_cast<double>(stats.ingest_bytes),
                         static_cast<double>(stats.total_bytes_written()));
}

}  // namespace veloce::admission
