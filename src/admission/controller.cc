#include "admission/controller.h"

namespace veloce::admission {

NodeAdmissionController::NodeAdmissionController(sim::EventLoop* loop,
                                                 sim::VirtualCpu* cpu,
                                                 Options options)
    : loop_(loop),
      cpu_(cpu),
      options_(options),
      cq_(loop->clock()),
      wq_(loop->clock()),
      slots_({.vcpus = options.vcpus}),
      write_bucket_(loop->clock()) {
  if (options_.enabled) {
    sampler_ = std::make_unique<sim::PeriodicTask>(loop_, options_.sample_period, [this] {
      slots_.Sample(cpu_->runnable_queue_length(), !cq_.empty());
      DispatchCq();
    });
    sampler_->Start();
    wq_pump_ = std::make_unique<sim::PeriodicTask>(loop_, options_.wq_pump_period,
                                                   [this] { PumpWq(); });
    wq_pump_->Start();
    decayer_ = std::make_unique<sim::PeriodicTask>(loop_, options_.decay_period, [this] {
      cq_.Decay();
      wq_.Decay();
    });
    decayer_->Start();
  }
}

void NodeAdmissionController::Submit(KvWork work) {
  if (!options_.enabled) {
    auto done = std::move(work.done);
    cpu_->Submit(work.tenant_id, work.cpu_cost, std::move(done));
    return;
  }
  if (work.is_write) {
    const uint64_t amplified =
        static_cast<uint64_t>(write_model_.Predict(static_cast<double>(work.write_bytes)));
    if (!write_bucket_.TryConsume(amplified)) {
      // Queue in the WQ; the pump admits it as tokens refill.
      WorkItem item;
      item.tenant_id = work.tenant_id;
      item.priority = work.priority;
      item.txn_start = work.txn_start;
      item.deadline = work.deadline;
      item.cost = amplified;
      auto shared = std::make_shared<KvWork>(std::move(work));
      item.run = [this, shared]() mutable { EnqueueCq(std::move(*shared)); };
      wq_.Enqueue(std::move(item));
      return;
    }
    wq_.RecordConsumption(work.tenant_id, amplified);
  }
  EnqueueCq(std::move(work));
}

void NodeAdmissionController::EnqueueCq(KvWork work) {
  if (slots_.TryAcquire()) {
    auto shared = std::make_shared<KvWork>(std::move(work));
    RunSlice(shared, shared->cpu_cost);
    return;
  }
  WorkItem item;
  item.tenant_id = work.tenant_id;
  item.priority = work.priority;
  item.txn_start = work.txn_start;
  item.deadline = work.deadline;
  auto shared = std::make_shared<KvWork>(std::move(work));
  item.run = [this, shared]() { RunSlice(shared, shared->cpu_cost); };
  cq_.Enqueue(std::move(item));
}

void NodeAdmissionController::DispatchCq() {
  while (!cq_.empty() && slots_.TryAcquire()) {
    auto item = cq_.Dequeue();
    if (!item.has_value()) {
      slots_.Release();
      return;
    }
    item->run();  // RunSlice takes ownership of the already-acquired slot
  }
}

void NodeAdmissionController::PumpWq() {
  while (!wq_.empty()) {
    // Dequeue-and-maybe-admit: if the bucket can't cover the item's
    // amplified cost, put it back and wait for the next pump (fairness is
    // preserved by the consumption counters, not FIFO position).
    auto item = wq_.Dequeue();
    if (!item.has_value()) return;
    if (!write_bucket_.TryConsume(item->cost)) {
      wq_.Enqueue(std::move(*item));
      return;  // bucket dry; try next pump
    }
    wq_.RecordConsumption(item->tenant_id, item->cost);
    item->run();
  }
}

void NodeAdmissionController::RunSlice(std::shared_ptr<KvWork> work, Nanos remaining) {
  // Occupies one already-acquired CPU slot. Slices bound how long a single
  // operation holds the slot; between slices the op re-queues behind other
  // tenants (resumption marker semantics).
  const Nanos slice = remaining < options_.max_slice_cpu ? remaining
                                                         : options_.max_slice_cpu;
  cpu_->Submit(work->tenant_id, slice, [this, work, remaining, slice]() {
    cq_.RecordConsumption(work->tenant_id, static_cast<uint64_t>(slice));
    slots_.Release();
    const Nanos left = remaining - slice;
    if (left > 0) {
      // Re-admit the remainder through the fair queue.
      if (slots_.TryAcquire()) {
        RunSlice(work, left);
      } else {
        WorkItem item;
        item.tenant_id = work->tenant_id;
        item.priority = work->priority;
        item.txn_start = work->txn_start;
        item.deadline = work->deadline;
        item.run = [this, work, left]() { RunSlice(work, left); };
        cq_.Enqueue(std::move(item));
      }
      return;
    }
    if (work->done) loop_->Schedule(0, work->done);
    DispatchCq();
  });
}

void NodeAdmissionController::UpdateWriteCapacity(const storage::EngineStats& stats,
                                                  int l0_files) {
  write_bucket_.UpdateCapacity(stats, l0_files);
  // Refresh the write model with the same interval's observations.
  write_model_.AddSample(static_cast<double>(stats.ingest_bytes),
                         static_cast<double>(stats.total_bytes_written()));
}

}  // namespace veloce::admission
