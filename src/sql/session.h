#ifndef VELOCE_SQL_SESSION_H_
#define VELOCE_SQL_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace veloce::sql {

/// A SQL session: the server-side state of one client connection —
/// settings, prepared statements, and the open transaction, if any.
///
/// Sessions are the unit of *dynamic session migration* (Section 4.2.4):
/// when idle (no open transaction) a session serializes to a compact blob
/// (settings + prepared statements + a revival token) that a new SQL node
/// can restore without client re-authentication.
class Session {
 public:
  /// `obs` enables per-statement telemetry: statement counters in
  /// obs.metrics and, when obs.traces is set, one TraceContext per
  /// statement (collected with per-stage durations: marshal,
  /// admission_queue, replication, storage).
  Session(uint64_t id, Catalog* catalog, KvConnector* connector,
          const obs::ObsContext& obs = {});

  uint64_t id() const { return id_; }

  /// Parses and executes one statement. BEGIN/COMMIT/ROLLBACK and SET are
  /// handled here; everything else goes to the executor under the current
  /// transaction (or an implicit one).
  StatusOr<ResultSet> Execute(const std::string& sql,
                              const std::vector<Datum>& params = {});

  Status Prepare(const std::string& name, const std::string& sql);
  StatusOr<ResultSet> ExecutePrepared(const std::string& name,
                                      const std::vector<Datum>& params = {});
  const std::map<std::string, std::string>& prepared_statements() const {
    return prepared_;
  }

  void SetSetting(const std::string& name, const std::string& value) {
    settings_[name] = value;
  }
  StatusOr<std::string> GetSetting(const std::string& name) const;
  const std::map<std::string, std::string>& settings() const { return settings_; }

  bool in_transaction() const { return txn_ != nullptr; }
  /// A session is migratable only while idle (no open transaction).
  bool idle() const { return !in_transaction(); }

  /// Cumulative statements executed (metrics).
  uint64_t statements_executed() const { return statements_executed_; }

  /// Engine that executed the most recent SELECT (tests/benches).
  const std::string& last_select_engine() const {
    return executor_.last_select_engine();
  }

  // --- migration ----------------------------------------------------------
  /// Serialized session state, embedding `revival_token` — the internal
  /// credential that lets the proxy resume the session on another node
  /// without client re-authentication.
  StatusOr<std::string> Serialize(uint64_t revival_token) const;
  /// Restores a session on a (new) node. Fails if the embedded token does
  /// not match `expected_token`.
  static StatusOr<std::unique_ptr<Session>> Restore(uint64_t id, Catalog* catalog,
                                                    KvConnector* connector,
                                                    Slice serialized,
                                                    uint64_t expected_token,
                                                    const obs::ObsContext& obs = {});

 private:
  StatusOr<ResultSet> ExecuteStmt(const std::string& sql,
                                  const std::vector<Datum>& params);

  uint64_t id_;
  Catalog* catalog_;
  KvConnector* connector_;
  obs::ObsContext obs_;
  obs::Counter* statements_c_ = nullptr;
  Executor executor_;
  std::map<std::string, std::string> settings_;
  std::map<std::string, std::string> prepared_;  // name -> SQL text
  std::unique_ptr<TenantTxn> txn_;
  uint64_t statements_executed_ = 0;
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_SESSION_H_
