#ifndef VELOCE_SQL_KV_CONNECTOR_H_
#define VELOCE_SQL_KV_CONNECTOR_H_

#include <memory>
#include <mutex>
#include <string>

#include "billing/ecpu_model.h"
#include "kv/range_cache.h"
#include "kv/transaction.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "tenant/controller.h"

namespace veloce::sql {

/// How the SQL layer reaches the KV layer.
///  * kColocated: same process (the paper's "Traditional" deployment):
///    requests pass as in-memory objects.
///  * kSeparateProcess: Serverless deployment — every batch is serialized
///    and deserialized through the wire codec, modeling the RPC hop between
///    the tenant's SQL process and the shared KV process. This marshaling
///    is the measured extra CPU for scan-heavy OLAP work in Fig 6 (2.3x on
///    TPC-H Q1).
enum class ProcessMode {
  kColocated,
  kSeparateProcess,
};

/// Prefix-aware transaction handle: exposes the kv::Transaction interface
/// in the tenant's logical (un-prefixed) keyspace. The SQL executor only
/// ever sees logical keys.
class TenantTxn {
 public:
  TenantTxn(std::unique_ptr<kv::Transaction> txn, std::string prefix)
      : txn_(std::move(txn)), prefix_(std::move(prefix)) {}

  Status Get(Slice key, std::optional<std::string>* value) {
    return txn_->Get(prefix_ + key.ToString(), value);
  }
  Status Put(Slice key, Slice value) {
    return txn_->Put(prefix_ + key.ToString(), value);
  }
  Status Delete(Slice key) { return txn_->Delete(prefix_ + key.ToString()); }
  Status Scan(Slice start, Slice end, uint64_t limit,
              std::vector<kv::MvccScanEntry>* rows,
              std::string* resume_key = nullptr) {
    std::string resume;
    // An empty logical end key means "to the end of the tenant keyspace".
    const std::string end_key =
        end.empty() ? PrefixEnd(prefix_) : prefix_ + end.ToString();
    VELOCE_RETURN_IF_ERROR(
        txn_->Scan(prefix_ + start.ToString(), end_key, limit, rows, &resume));
    for (auto& row : *rows) {
      if (row.key.size() >= prefix_.size()) row.key.erase(0, prefix_.size());
    }
    if (resume_key != nullptr) {
      if (resume.size() >= prefix_.size()) resume.erase(0, prefix_.size());
      *resume_key = std::move(resume);
    }
    return Status::OK();
  }

  Status Flush() { return txn_->Flush(); }
  Status Commit() { return txn_->Commit(); }
  Status Rollback() { return txn_->Rollback(); }
  bool finalized() const { return txn_->finalized(); }
  kv::Timestamp commit_ts() const { return txn_->commit_ts(); }
  kv::Timestamp read_ts() const { return txn_->read_ts(); }
  kv::Transaction* raw() { return txn_.get(); }

 private:
  std::unique_ptr<kv::Transaction> txn_;
  std::string prefix_;
};

/// KvConnector is a SQL node's client to the KV layer: it authenticates
/// with the tenant certificate, prepends/strips the tenant key prefix, and
/// (in Serverless mode) pays the marshaling cost. It also accumulates the
/// six per-feature counters the estimated-CPU model consumes.
class KvConnector {
 public:
  /// `obs` wires the connector's `veloce_sql_*` series into a shared
  /// registry (null metrics = private registry); `instance` distinguishes
  /// connectors sharing a registry (exported as label sql_node=...).
  KvConnector(tenant::AuthorizedKvService* service, kv::KVCluster* cluster,
              tenant::TenantCert cert, ProcessMode mode,
              const obs::ObsContext& obs = {}, std::string instance = "");

  kv::TenantId tenant_id() const { return cert_.tenant_id; }
  ProcessMode mode() const { return mode_; }
  kv::KVCluster* cluster() { return cluster_; }

  /// Non-transactional send. Keys in `req` are logical (un-prefixed); the
  /// connector prefixes them and strips prefixes from scan results.
  StatusOr<kv::BatchResponse> Send(kv::BatchRequest req);

  /// Starts a KV transaction whose batches flow through this connector
  /// (marshaled + authorized), with logical keys.
  std::unique_ptr<TenantTxn> BeginTransaction(int32_t priority = 0);

  /// Commit-path options applied to transactions started after the call
  /// (SET txn_mode switches between the fast defaults and Classic()). A
  /// null executor resolves to the cluster's background executor.
  void set_txn_options(const kv::TxnOptions& options) { txn_options_ = options; }
  const kv::TxnOptions& txn_options() const { return txn_options_; }

  /// Cumulative eCPU feature counters for this SQL node.
  billing::IntervalFeatures features() const {
    std::lock_guard<std::mutex> l(acct_mu_);
    return features_;
  }
  void ResetFeatures() {
    std::lock_guard<std::mutex> l(acct_mu_);
    features_ = {};
  }

  /// Bytes pushed through the wire codec (Serverless mode only).
  uint64_t marshaled_bytes() const {
    std::lock_guard<std::mutex> l(acct_mu_);
    return marshaled_bytes_;
  }

  /// The KV node this SQL process is colocated with in Traditional mode
  /// (requests to ranges led elsewhere are remote RPCs and marshal).
  void set_home_node(kv::NodeId node) { home_node_ = node; }

  /// Thread CPU time spent inside the KV layer (below the SQL/KV
  /// boundary), measured per call. In production this is the part of a
  /// tenant's cost that cannot be directly attributed and must be modeled;
  /// benches use it to calibrate and evaluate the estimated-CPU model.
  Nanos kv_cpu_nanos() const {
    std::lock_guard<std::mutex> l(acct_mu_);
    return kv_cpu_nanos_;
  }

  /// Request trace attached to every batch this connector sends until
  /// cleared (the session sets it around each statement). The marshal path
  /// records its CPU into the trace as stage "marshal".
  void set_current_trace(obs::TraceContext* trace) { current_trace_ = trace; }
  obs::TraceContext* current_trace() const { return current_trace_; }

  /// Client-side range directory cache (introspection/tests). Every batch
  /// this connector sends resolves through it; RangeKeyMismatch redirects
  /// invalidate and refresh.
  kv::RangeDirectoryCache* range_cache() { return &range_cache_; }

 private:
  /// Resolves the batch through the range directory cache, attaches the
  /// range id when one cached range covers every request key, and handles
  /// RangeKeyMismatch redirects (invalidate → refresh → retry, bounded).
  StatusOr<kv::BatchResponse> SendAddressed(kv::BatchRequest req);
  StatusOr<kv::BatchResponse> SendPrefixed(const kv::BatchRequest& req);
  /// Cache lookup with miss-fill from the cluster directory.
  std::optional<kv::RangeDescriptor> CachedRange(Slice key);
  void CountFeatures(const kv::BatchRequest& req, const kv::BatchResponse& resp);

  tenant::AuthorizedKvService* service_;
  kv::KVCluster* cluster_;
  tenant::TenantCert cert_;
  ProcessMode mode_;
  std::string prefix_;
  kv::TxnOptions txn_options_;
  kv::NodeId home_node_ = 0;
  obs::TraceContext* current_trace_ = nullptr;

  /// Pipelined transaction batches invoke the sender from executor
  /// threads; the accounting they touch is guarded here.
  mutable std::mutex acct_mu_;
  billing::IntervalFeatures features_;
  uint64_t marshaled_bytes_ = 0;
  Nanos kv_cpu_nanos_ = 0;

  kv::RangeDirectoryCache range_cache_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* batches_c_ = nullptr;
  obs::Counter* marshaled_bytes_c_ = nullptr;
  obs::Counter* marshal_cpu_ns_c_ = nullptr;
  obs::Counter* range_cache_hits_c_ = nullptr;
  obs::Counter* range_cache_misses_c_ = nullptr;
  obs::Counter* range_cache_invalidations_c_ = nullptr;
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_KV_CONNECTOR_H_
