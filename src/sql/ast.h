#ifndef VELOCE_SQL_AST_H_
#define VELOCE_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/datum.h"

namespace veloce::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node. A small closed union (no visitors needed at this size).
struct Expr {
  enum class Kind {
    kLiteral,     // datum
    kColumnRef,   // [table.]column
    kBinary,      // left op right
    kNot,         // NOT child
    kIsNull,      // child IS [NOT] NULL (negated via is_not)
    kParam,       // $N placeholder
    kAggregate,   // agg(child) or COUNT(*)
    kStar,        // * (inside COUNT(*))
  };

  Kind kind;
  // kLiteral
  Datum literal;
  // kColumnRef
  std::string table_name;  // optional qualifier
  std::string column_name;
  // kBinary
  BinOp op = BinOp::kEq;
  ExprPtr left, right;
  // kNot / kIsNull / kAggregate operand
  ExprPtr child;
  bool is_not = false;     // for IS NOT NULL
  // kParam
  int param_index = 0;     // 1-based
  // kAggregate
  AggFunc agg = AggFunc::kNone;

  static ExprPtr Literal(Datum d) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kLiteral;
    e->literal = std::move(d);
    return e;
  }
  static ExprPtr Column(std::string table, std::string column) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kColumnRef;
    e->table_name = std::move(table);
    e->column_name = std::move(column);
    return e;
  }
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kBinary;
    e->op = op;
    e->left = std::move(l);
    e->right = std::move(r);
    return e;
  }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct ColumnDef {
  std::string name;
  TypeKind type;
  bool not_null = false;
  bool primary_key = false;  // inline PRIMARY KEY
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;  // explicit PRIMARY KEY (...)
  bool if_not_exists = false;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
};

struct DropTableStmt {
  std::string table;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;             // empty = all in order
  std::vector<std::vector<ExprPtr>> values;     // one vector per row
  bool upsert = false;                          // UPSERT / INSERT ... ON CONFLICT
};

struct SelectItem {
  ExprPtr expr;       // null for *
  std::string alias;  // optional AS alias
};

struct JoinClause {
  std::string table;
  std::string alias;
  ExprPtr on;  // join predicate
};

struct OrderByItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;   // empty = SELECT *
  std::string table;               // FROM (empty = table-less SELECT)
  std::string table_alias;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;              // -1 = none
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct TxnStmt {
  enum class Kind { kBegin, kCommit, kRollback } kind;
};

struct SetStmt {
  std::string name;
  std::string value;
};

/// A parsed statement: exactly one member is set, per `kind`.
struct Statement {
  enum class Kind {
    kCreateTable, kCreateIndex, kDropTable,
    kInsert, kSelect, kUpdate, kDelete,
    kTxn, kSet,
  };
  Kind kind;
  CreateTableStmt create_table;
  CreateIndexStmt create_index;
  DropTableStmt drop_table;
  InsertStmt insert;
  SelectStmt select;
  UpdateStmt update;
  DeleteStmt del;
  TxnStmt txn;
  SetStmt set;
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_AST_H_
