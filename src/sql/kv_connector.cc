#include "sql/kv_connector.h"

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/sysinfo.h"
#include "kv/keys.h"

namespace veloce::sql {

KvConnector::KvConnector(tenant::AuthorizedKvService* service, kv::KVCluster* cluster,
                         tenant::TenantCert cert, ProcessMode mode,
                         const obs::ObsContext& obs, std::string instance)
    : service_(service),
      cluster_(cluster),
      cert_(cert),
      mode_(mode),
      prefix_(kv::TenantPrefix(cert.tenant_id)) {
  metrics_ = obs.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::Labels labels = {{"tenant", std::to_string(cert_.tenant_id)}};
  if (!instance.empty()) labels.push_back({"sql_node", std::move(instance)});
  batches_c_ = metrics_->counter("veloce_sql_kv_batches_total", labels);
  marshaled_bytes_c_ = metrics_->counter("veloce_sql_marshaled_bytes_total", labels);
  marshal_cpu_ns_c_ = metrics_->counter("veloce_sql_marshal_cpu_ns_total", labels);
  range_cache_hits_c_ =
      metrics_->counter("veloce_sql_range_cache_hits_total", labels);
  range_cache_misses_c_ =
      metrics_->counter("veloce_sql_range_cache_misses_total", labels);
  range_cache_invalidations_c_ =
      metrics_->counter("veloce_sql_range_cache_invalidations_total", labels);
}

StatusOr<kv::BatchResponse> KvConnector::Send(kv::BatchRequest req) {
  req.trace = current_trace_;
  // Prefix all logical keys with the tenant prefix (Section 3.2.1: the
  // prefix is introduced automatically during query execution).
  for (auto& r : req.requests) {
    r.key = prefix_ + r.key;
    if (r.type == kv::RequestType::kScan) {
      // Empty logical end = to the end of the tenant keyspace.
      r.end_key = r.end_key.empty() ? PrefixEnd(prefix_) : prefix_ + r.end_key;
    }
  }
  if (req.ts.IsEmpty()) req.ts = cluster_->Now();
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, SendAddressed(req));
  // Strip the prefix from returned row keys before handing to SQL.
  for (auto& r : resp.responses) {
    for (auto& row : r.rows) {
      if (row.key.size() >= prefix_.size()) row.key.erase(0, prefix_.size());
    }
    if (!r.resume_key.empty() && r.resume_key.size() >= prefix_.size()) {
      r.resume_key.erase(0, prefix_.size());
    }
  }
  CountFeatures(req, resp);
  return resp;
}

std::optional<kv::RangeDescriptor> KvConnector::CachedRange(Slice key) {
  std::optional<kv::RangeDescriptor> desc = range_cache_.Lookup(key);
  if (desc.has_value()) {
    range_cache_hits_c_->Inc();
    return desc;
  }
  range_cache_misses_c_->Inc();
  auto fresh = cluster_->LookupRange(key);
  if (!fresh.ok()) return std::nullopt;
  range_cache_.Insert(*fresh);
  return *fresh;
}

StatusOr<kv::BatchResponse> KvConnector::SendAddressed(kv::BatchRequest req) {
  // Resolve through the client-side directory cache: when one cached range
  // covers every request key, attach its range id so the server can reject
  // a stale route with RangeKeyMismatch instead of silently re-resolving.
  // A mismatch invalidates the entry, refreshes from the directory, and
  // retries — the same retryable-redirect class the proxy applies to
  // lease-epoch mismatches — so cache staleness is always recoverable.
  // Batches no single range covers go unaddressed (range_id == 0), which
  // preserves the multi-range behaviour (scans, spanning write sets).
  for (int attempt = 0; attempt < 3; ++attempt) {
    req.range_id = 0;
    if (!req.requests.empty()) {
      std::optional<kv::RangeDescriptor> desc = CachedRange(req.requests[0].key);
      if (desc.has_value()) {
        bool covers = true;
        for (const auto& r : req.requests) {
          if (!desc->Contains(r.key)) {
            covers = false;
            break;
          }
        }
        if (covers) req.range_id = desc->range_id;
      }
    }
    StatusOr<kv::BatchResponse> resp = SendPrefixed(req);
    if (resp.ok() || !resp.status().IsRangeKeyMismatch() || req.range_id == 0) {
      return resp;
    }
    range_cache_.Invalidate(req.requests[0].key);
    range_cache_invalidations_c_->Inc();
  }
  // Defensive: the directory churned through three refreshes; fall back to
  // server-side resolution rather than retrying forever.
  req.range_id = 0;
  return SendPrefixed(req);
}

StatusOr<kv::BatchResponse> KvConnector::SendPrefixed(const kv::BatchRequest& req) {
  batches_c_->Inc();
  // The Traditional (colocated) deployment is not marshal-free: DistSQL
  // pushes scan (and downstream filter/aggregate) operators to the nodes
  // holding the data, so scans process locally — but point operations whose
  // range leaseholder lives on a *different* KV node are remote RPCs in
  // both deployments (the paper's explanation for TPC-C and Q9 parity).
  bool needs_marshal = mode_ == ProcessMode::kSeparateProcess;
  if (!needs_marshal) {
    for (const auto& r : req.requests) {
      if (r.type == kv::RequestType::kScan) continue;  // DistSQL-local
      // The leaseholder check routes through the directory cache (filled on
      // miss); a stale entry can only mispredict the marshal *cost* — the
      // correctness of routing is the server's, via range addressing.
      std::optional<kv::RangeDescriptor> range = CachedRange(r.key);
      if (range.has_value() && range->leaseholder != home_node_) {
        needs_marshal = true;
        break;
      }
    }
  }
  if (!needs_marshal) {
    const Nanos cpu0 = ThreadCpuNanos();
    auto resp = service_->Send(cert_, req);
    const Nanos cpu = ThreadCpuNanos() - cpu0;
    std::lock_guard<std::mutex> l(acct_mu_);
    kv_cpu_nanos_ += cpu;
    return resp;
  }
  // Cross-process / cross-node: pay the real serialize/deserialize cost
  // both ways, plus the per-byte integrity/framing work a real transport
  // does (pgwire over TLS / gRPC checksums every record). The marshaling
  // CPU stays on the SQL side of the boundary.
  Nanos marshal_cpu = 0;
  Nanos kv_cpu = 0;
  uint64_t marshaled = 0;
  Nanos marshal0 = ThreadCpuNanos();
  const std::string wire_req = req.Encode();
  marshaled += wire_req.size();
  const uint32_t req_crc = crc32c::Value(wire_req.data(), wire_req.size());
  if (crc32c::Value(wire_req.data(), wire_req.size()) != req_crc) {
    return Status::Corruption("request frame checksum mismatch");
  }
  VELOCE_ASSIGN_OR_RETURN(kv::BatchRequest decoded_req,
                          kv::BatchRequest::Decode(wire_req));
  // The trace pointer never crosses the wire; re-attach it on the far side
  // the way a real RPC would propagate trace ids.
  decoded_req.trace = req.trace;
  marshal_cpu += ThreadCpuNanos() - marshal0;
  const Nanos cpu0 = ThreadCpuNanos();
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, service_->Send(cert_, decoded_req));
  kv_cpu += ThreadCpuNanos() - cpu0;
  marshal0 = ThreadCpuNanos();
  const std::string wire_resp = resp.Encode();
  marshaled += wire_resp.size();
  const uint32_t resp_crc = crc32c::Value(wire_resp.data(), wire_resp.size());
  if (crc32c::Value(wire_resp.data(), wire_resp.size()) != resp_crc) {
    return Status::Corruption("response frame checksum mismatch");
  }
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse decoded,
                          kv::BatchResponse::Decode(wire_resp));
  // The production KV API wraps each returned KV pair in its own message
  // envelope (proto per row); re-frame row-by-row to pay that per-row
  // marshal/verify/alloc cost — the dominant term for large scans (Fig 6's
  // 2.3x on TPC-H Q1).
  for (auto& r : decoded.responses) {
    for (auto& row : r.rows) {
      std::string envelope;
      envelope.reserve(row.key.size() + row.value.size() + 16);
      PutLengthPrefixed(&envelope, row.key);
      PutLengthPrefixed(&envelope, row.value);
      std::string framed;
      PutFixed32(&framed, crc32c::Mask(crc32c::Value(envelope.data(), envelope.size())));
      framed.append(envelope);
      marshaled += framed.size();
      // Receiver side: verify and re-materialize the row.
      Slice in(framed);
      uint32_t masked = 0;
      GetFixed32(&in, &masked);
      if (crc32c::Unmask(masked) != crc32c::Value(in.data(), in.size())) {
        return Status::Corruption("row envelope checksum mismatch");
      }
      Slice key_part, value_part;
      if (!GetLengthPrefixed(&in, &key_part) || !GetLengthPrefixed(&in, &value_part)) {
        return Status::Corruption("bad row envelope");
      }
      row.key = key_part.ToString();
      row.value = value_part.ToString();
    }
  }
  marshal_cpu += ThreadCpuNanos() - marshal0;
  {
    std::lock_guard<std::mutex> l(acct_mu_);
    marshaled_bytes_ += marshaled;
    kv_cpu_nanos_ += kv_cpu;
  }
  marshaled_bytes_c_->Inc(marshaled);
  marshal_cpu_ns_c_->Inc(static_cast<uint64_t>(marshal_cpu));
  if (req.trace != nullptr) req.trace->AddDuration("marshal", marshal_cpu);
  return decoded;
}

void KvConnector::CountFeatures(const kv::BatchRequest& req,
                                const kv::BatchResponse& resp) {
  const bool read_only = req.IsReadOnly();
  std::lock_guard<std::mutex> l(acct_mu_);
  if (read_only) {
    features_.read_batches += 1;
    features_.read_requests += static_cast<double>(req.requests.size());
    features_.read_bytes += static_cast<double>(resp.PayloadBytes());
  } else {
    features_.write_batches += 1;
    features_.write_requests += static_cast<double>(req.requests.size());
    features_.write_bytes += static_cast<double>(req.PayloadBytes());
  }
}

std::unique_ptr<TenantTxn> KvConnector::BeginTransaction(int32_t priority) {
  // The transaction's batches carry already-prefixed keys (Transaction
  // tracks intent keys in prefixed form for resolution); route them through
  // the marshal/authorize path and count features.
  auto sender = [this](const kv::BatchRequest& req) -> StatusOr<kv::BatchResponse> {
    VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, SendAddressed(req));
    CountFeatures(req, resp);
    return resp;
  };
  auto txn = std::make_unique<kv::Transaction>(cluster_, cert_.tenant_id, priority,
                                               std::move(sender), txn_options_);
  return std::make_unique<TenantTxn>(std::move(txn), prefix_);
}

}  // namespace veloce::sql
