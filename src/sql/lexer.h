#ifndef VELOCE_SQL_LEXER_H_
#define VELOCE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace veloce::sql {

enum class TokenType {
  kKeyword,     // normalized upper-case
  kIdentifier,  // normalized lower-case (or quoted verbatim)
  kInt,
  kFloat,
  kString,      // 'literal' with '' escaping
  kParam,       // $N
  kSymbol,      // operators and punctuation, e.g. "=", "<=", "(", ","
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalized
  size_t offset = 0;  // position in the input (error messages)
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively from
/// the dialect's keyword set; everything else alphanumeric is an identifier.
StatusOr<std::vector<Token>> Lex(const std::string& sql);

}  // namespace veloce::sql

#endif  // VELOCE_SQL_LEXER_H_
