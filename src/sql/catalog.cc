#include "sql/catalog.h"

#include "common/codec.h"

namespace veloce::sql {

namespace {

std::string DescKey(TableId id) {
  std::string key = "sys/desc/";
  OrderedPutUint64(&key, id);
  return key;
}

std::string NameKey(const std::string& name) { return "sys/descname/" + name; }

constexpr char kIdSeqKey[] = "sys/desc_id_seq";

}  // namespace

StatusOr<TableId> Catalog::AllocateTableId() {
  // Transactional read-modify-write on the id sequence.
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto txn = connector_->BeginTransaction();
    std::optional<std::string> cur;
    VELOCE_RETURN_IF_ERROR(txn->Get(kIdSeqKey, &cur));
    uint64_t next = 100;  // table ids start at 100 (below reserved for system)
    if (cur.has_value()) {
      Slice in(*cur);
      if (!GetFixed64(&in, &next)) return Status::Corruption("bad id sequence");
    }
    std::string updated;
    PutFixed64(&updated, next + 1);
    Status s = txn->Put(kIdSeqKey, updated);
    if (s.IsWriteIntentError()) continue;
    VELOCE_RETURN_IF_ERROR(s);
    s = txn->Commit();
    if (s.IsTransactionRetry() || s.code() == Code::kTransactionAborted) continue;
    VELOCE_RETURN_IF_ERROR(s);
    return next;
  }
  return Status::TransactionRetry("could not allocate table id");
}

Status Catalog::PersistDescriptor(const TableDescriptor& desc) {
  kv::BatchRequest req;
  std::string id_value;
  PutFixed64(&id_value, desc.id);
  req.AddPut(DescKey(desc.id), desc.Encode());
  req.AddPut(NameKey(desc.name), id_value);
  return connector_->Send(req).status();
}

StatusOr<TableDescriptor> Catalog::CreateTable(const TableDescriptor& proto) {
  std::lock_guard<std::mutex> l(mu_);
  // Reject duplicates.
  {
    kv::BatchRequest req;
    req.AddGet(NameKey(proto.name));
    VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector_->Send(req));
    if (resp.responses[0].found) {
      return Status::AlreadyExists("table already exists: " + proto.name);
    }
  }
  TableDescriptor desc = proto;
  VELOCE_ASSIGN_OR_RETURN(desc.id, AllocateTableId());
  // Assign column ids by position if unset.
  for (size_t i = 0; i < desc.columns.size(); ++i) {
    if (desc.columns[i].id == 0) desc.columns[i].id = static_cast<uint32_t>(i + 1);
  }
  desc.primary.id = kPrimaryIndexId;
  if (desc.primary.name.empty()) desc.primary.name = "primary";
  VELOCE_RETURN_IF_ERROR(PersistDescriptor(desc));
  cache_[desc.name] = desc;
  return desc;
}

StatusOr<TableDescriptor> Catalog::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = cache_.find(name);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  kv::BatchRequest req;
  req.AddGet(NameKey(name));
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector_->Send(req));
  if (!resp.responses[0].found) return Status::NotFound("no such table: " + name);
  Slice in(resp.responses[0].value);
  uint64_t id = 0;
  if (!GetFixed64(&in, &id)) return Status::Corruption("bad table name entry");

  kv::BatchRequest desc_req;
  desc_req.AddGet(DescKey(id));
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse desc_resp, connector_->Send(desc_req));
  if (!desc_resp.responses[0].found) {
    return Status::Corruption("dangling table name entry: " + name);
  }
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc,
                          TableDescriptor::Decode(desc_resp.responses[0].value));
  cache_[name] = desc;
  return desc;
}

StatusOr<TableDescriptor> Catalog::GetTableById(TableId id) {
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [name, desc] : cache_) {
    if (desc.id == id) {
      ++cache_hits_;
      return desc;
    }
  }
  kv::BatchRequest req;
  req.AddGet(DescKey(id));
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector_->Send(req));
  if (!resp.responses[0].found) {
    return Status::NotFound("no table with id " + std::to_string(id));
  }
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc,
                          TableDescriptor::Decode(resp.responses[0].value));
  cache_[desc.name] = desc;
  return desc;
}

StatusOr<std::vector<std::string>> Catalog::ListTables() {
  kv::BatchRequest req;
  req.AddScan("sys/descname/", PrefixEnd("sys/descname/"), 0);
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector_->Send(req));
  std::vector<std::string> names;
  const std::string prefix = "sys/descname/";
  for (const auto& row : resp.responses[0].rows) {
    names.push_back(row.key.substr(prefix.size()));
  }
  return names;
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, [&]() -> StatusOr<TableDescriptor> {
    auto it = cache_.find(name);
    if (it != cache_.end()) return it->second;
    kv::BatchRequest req;
    req.AddGet(NameKey(name));
    VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector_->Send(req));
    if (!resp.responses[0].found) return Status::NotFound("no such table: " + name);
    Slice in(resp.responses[0].value);
    uint64_t id = 0;
    if (!GetFixed64(&in, &id)) return Status::Corruption("bad table name entry");
    kv::BatchRequest dreq;
    dreq.AddGet(DescKey(id));
    VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse dresp, connector_->Send(dreq));
    if (!dresp.responses[0].found) return Status::Corruption("dangling name entry");
    return TableDescriptor::Decode(dresp.responses[0].value);
  }());

  // Delete the data (primary + all secondary indexes), then the metadata.
  kv::BatchRequest scan;
  const std::string data_prefix = [&] {
    std::string p = "tbl";
    OrderedPutUint64(&p, desc.id);
    return p;
  }();
  scan.AddScan(data_prefix, PrefixEnd(data_prefix), 0);
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse rows, connector_->Send(scan));
  kv::BatchRequest del;
  for (const auto& row : rows.responses[0].rows) del.AddDelete(row.key);
  del.AddDelete(DescKey(desc.id));
  del.AddDelete(NameKey(name));
  VELOCE_RETURN_IF_ERROR(connector_->Send(del).status());
  cache_.erase(name);
  return Status::OK();
}

StatusOr<IndexDescriptor> Catalog::CreateIndex(
    const std::string& table_name, const std::string& index_name,
    const std::vector<std::string>& column_names) {
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, GetTable(table_name));
  std::lock_guard<std::mutex> l(mu_);
  if (desc.FindIndex(index_name) != nullptr) {
    return Status::AlreadyExists("index already exists: " + index_name);
  }
  IndexDescriptor idx;
  idx.name = index_name;
  IndexId max_id = kPrimaryIndexId;
  for (const auto& existing : desc.secondaries) max_id = std::max(max_id, existing.id);
  idx.id = max_id + 1;
  for (const auto& col_name : column_names) {
    const ColumnDescriptor* col = desc.FindColumn(col_name);
    if (col == nullptr) return Status::NotFound("no such column: " + col_name);
    idx.column_ids.push_back(col->id);
  }
  desc.secondaries.push_back(idx);
  VELOCE_RETURN_IF_ERROR(PersistDescriptor(desc));
  cache_[desc.name] = desc;
  return idx;
}

void Catalog::InvalidateCache() {
  std::lock_guard<std::mutex> l(mu_);
  cache_.clear();
}

}  // namespace veloce::sql
