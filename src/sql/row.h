#ifndef VELOCE_SQL_ROW_H_
#define VELOCE_SQL_ROW_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/schema.h"

namespace veloce::sql {

/// A row as a vector of datums positionally aligned with
/// TableDescriptor::columns.
using Row = std::vector<Datum>;

/// Key/value codecs mapping table rows onto the tenant's logical KV
/// keyspace (before tenant prefixing):
///
///   primary row:     tbl . table_id . index_id(0) . pk datums   -> row value
///   secondary index: tbl . table_id . index_id    . idx datums . pk datums -> empty
///
/// All key components use order-preserving encodings so KV range scans
/// produce index order.

/// Prefix of all keys of (table, index).
std::string IndexPrefix(TableId table, IndexId index);

/// Encodes the primary-key KV key for `row`.
std::string EncodePrimaryKey(const TableDescriptor& desc, const Row& row);
/// Encodes a primary-key KV key from explicit PK datums (point lookups).
std::string EncodePrimaryKeyFromDatums(const TableDescriptor& desc,
                                       const std::vector<Datum>& pk_values);

/// Encodes the row value (all non-PK columns, tagged by column id).
std::string EncodeRowValue(const TableDescriptor& desc, const Row& row);

/// Decodes a primary KV pair back into a full row.
Status DecodeRow(const TableDescriptor& desc, Slice key, Slice value, Row* row);

/// Encodes the KV key for a secondary index entry of `row`.
std::string EncodeSecondaryKey(const TableDescriptor& desc,
                               const IndexDescriptor& index, const Row& row);

/// Extracts the PK datums from a secondary index key (for the index join
/// back to the primary row).
Status DecodeSecondaryKeyPk(const TableDescriptor& desc, const IndexDescriptor& index,
                            Slice key, std::vector<Datum>* pk_values);

}  // namespace veloce::sql

#endif  // VELOCE_SQL_ROW_H_
