#include "sql/pushdown.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/codec.h"
#include "common/logging.h"

namespace veloce::sql {

// ---------------------------------------------------------------------------
// PushdownExpr
// ---------------------------------------------------------------------------

void PushdownExpr::Encode(std::string* dst) const {
  dst->push_back(static_cast<char>(kind));
  switch (kind) {
    case Kind::kLiteral:
      literal.EncodeValue(dst);
      break;
    case Kind::kColumn:
      PutVarint32(dst, column_id);
      break;
    case Kind::kBinary:
      dst->push_back(static_cast<char>(op));
      left->Encode(dst);
      right->Encode(dst);
      break;
    case Kind::kStar:
      break;
  }
}

StatusOr<std::unique_ptr<PushdownExpr>> PushdownExpr::Decode(Slice* in) {
  if (in->empty()) return Status::Corruption("bad pushdown expr");
  auto e = std::make_unique<PushdownExpr>();
  e->kind = static_cast<Kind>((*in)[0]);
  in->RemovePrefix(1);
  switch (e->kind) {
    case Kind::kLiteral:
      VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(in, &e->literal));
      break;
    case Kind::kColumn:
      if (!GetVarint32(in, &e->column_id)) {
        return Status::Corruption("bad pushdown expr column");
      }
      break;
    case Kind::kBinary: {
      if (in->empty()) return Status::Corruption("bad pushdown expr op");
      e->op = static_cast<BinOp>((*in)[0]);
      in->RemovePrefix(1);
      switch (e->op) {
        case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul:
        case BinOp::kDiv: case BinOp::kMod:
          break;
        default:
          return Status::Corruption("non-arithmetic pushdown expr op");
      }
      VELOCE_ASSIGN_OR_RETURN(e->left, Decode(in));
      VELOCE_ASSIGN_OR_RETURN(e->right, Decode(in));
      break;
    }
    case Kind::kStar:
      break;
    default:
      return Status::Corruption("unknown pushdown expr kind");
  }
  return e;
}

StatusOr<Datum> PushdownExpr::Eval(
    const std::vector<std::pair<uint32_t, Datum>>& cols) const {
  switch (kind) {
    case Kind::kLiteral:
      return literal;
    case Kind::kColumn:
      for (const auto& [id, d] : cols) {
        if (id == column_id) return d;
      }
      return Datum::Null();  // missing column = NULL, matching DecodeRow
    case Kind::kBinary: {
      VELOCE_ASSIGN_OR_RETURN(Datum l, left->Eval(cols));
      VELOCE_ASSIGN_OR_RETURN(Datum r, right->Eval(cols));
      return EvalArith(op, l, r);
    }
    case Kind::kStar:
      return Status::Internal("'*' evaluated as pushdown expr");
  }
  return Status::Internal("unhandled pushdown expr kind");
}

// ---------------------------------------------------------------------------
// PushdownSpec
// ---------------------------------------------------------------------------

std::string PushdownSpec::Encode() const {
  std::string out;
  PutVarint64(&out, filters.size());
  for (const auto& filter : filters) {
    PutVarint32(&out, filter.column_id);
    out.push_back(static_cast<char>(filter.op));
    filter.value.EncodeValue(&out);
  }
  PutVarint64(&out, projection.size());
  for (uint32_t col : projection) PutVarint32(&out, col);
  // The aggregation fragment is appended only when present, so specs
  // without one keep the original (frozen) encoding.
  if (has_aggregation()) {
    PutVarint64(&out, group_by.size());
    for (uint32_t col : group_by) PutVarint32(&out, col);
    PutVarint64(&out, aggregates.size());
    for (const auto& agg : aggregates) {
      out.push_back(static_cast<char>(agg.func));
      agg.input->Encode(&out);
    }
  }
  return out;
}

StatusOr<PushdownSpec> PushdownSpec::Decode(Slice data) {
  PushdownSpec spec;
  uint64_t num_filters = 0;
  if (!GetVarint64(&data, &num_filters)) {
    return Status::Corruption("bad pushdown spec");
  }
  for (uint64_t i = 0; i < num_filters; ++i) {
    PushdownFilter filter;
    if (!GetVarint32(&data, &filter.column_id) || data.empty()) {
      return Status::Corruption("bad pushdown filter");
    }
    filter.op = static_cast<PushdownOp>(data[0]);
    data.RemovePrefix(1);
    VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&data, &filter.value));
    spec.filters.push_back(std::move(filter));
  }
  uint64_t num_projection = 0;
  if (!GetVarint64(&data, &num_projection)) {
    return Status::Corruption("bad pushdown projection");
  }
  for (uint64_t i = 0; i < num_projection; ++i) {
    uint32_t col = 0;
    if (!GetVarint32(&data, &col)) {
      return Status::Corruption("bad pushdown projection column");
    }
    spec.projection.push_back(col);
  }
  if (data.empty()) return spec;  // no aggregation fragment
  uint64_t num_group = 0;
  if (!GetVarint64(&data, &num_group)) {
    return Status::Corruption("bad pushdown group-by");
  }
  for (uint64_t i = 0; i < num_group; ++i) {
    uint32_t col = 0;
    if (!GetVarint32(&data, &col)) {
      return Status::Corruption("bad pushdown group-by column");
    }
    spec.group_by.push_back(col);
  }
  uint64_t num_aggs = 0;
  if (!GetVarint64(&data, &num_aggs)) {
    return Status::Corruption("bad pushdown aggregates");
  }
  for (uint64_t i = 0; i < num_aggs; ++i) {
    if (data.empty()) return Status::Corruption("bad pushdown aggregate");
    PushdownAggregate agg;
    agg.func = static_cast<AggFunc>(data[0]);
    data.RemovePrefix(1);
    VELOCE_ASSIGN_OR_RETURN(agg.input, PushdownExpr::Decode(&data));
    spec.aggregates.push_back(std::move(agg));
  }
  return spec;
}

PushdownSpec MakeFilterSpec(const ScanConstraints& plan,
                            const std::vector<uint32_t>* needed_columns,
                            const TableDescriptor& desc) {
  PushdownSpec spec;
  for (const auto& f : plan.kv_filters) {
    PushdownFilter filter;
    filter.column_id = f.column_id;
    filter.value = f.value;
    switch (f.op) {
      case BinOp::kEq: filter.op = PushdownOp::kEq; break;
      case BinOp::kNe: filter.op = PushdownOp::kNe; break;
      case BinOp::kLt: filter.op = PushdownOp::kLt; break;
      case BinOp::kLe: filter.op = PushdownOp::kLe; break;
      case BinOp::kGt: filter.op = PushdownOp::kGt; break;
      case BinOp::kGe: filter.op = PushdownOp::kGe; break;
      default: continue;  // kv_filters only ever holds comparisons
    }
    spec.filters.push_back(std::move(filter));
  }
  if (needed_columns != nullptr) {
    for (uint32_t col_id : *needed_columns) {
      if (!desc.IsPrimaryKeyColumn(col_id)) spec.projection.push_back(col_id);
    }
    // Needed columns arrive in reference order with repeats; the projected
    // row value must keep the row codec's ascending-id column order or the
    // decoders' merge walk drops everything after the first inversion.
    std::sort(spec.projection.begin(), spec.projection.end());
    spec.projection.erase(
        std::unique(spec.projection.begin(), spec.projection.end()),
        spec.projection.end());
    // A filter's column must survive projection on the KV side; it does,
    // because filters evaluate before projection in EvaluatePushdown.
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Partial-aggregate row codec
// ---------------------------------------------------------------------------

std::string EncodePartialAggRow(const std::vector<Datum>& group_values,
                                const std::vector<AggState>& states) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(group_values.size()));
  for (const Datum& d : group_values) d.EncodeValue(&out);
  PutVarint32(&out, static_cast<uint32_t>(states.size()));
  for (const AggState& st : states) {
    PutVarint64(&out, st.count);
    PutFixed64(&out, static_cast<uint64_t>(st.isum));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(st.sum));
    std::memcpy(&bits, &st.sum, sizeof(bits));
    PutFixed64(&out, bits);
    out.push_back(st.sum_is_int ? 1 : 0);
    out.push_back(st.has_minmax ? 1 : 0);
    if (st.has_minmax) {
      st.min.EncodeValue(&out);
      st.max.EncodeValue(&out);
    }
  }
  return out;
}

Status DecodePartialAggRow(Slice in, std::vector<Datum>* group_values,
                           std::vector<AggState>* states) {
  group_values->clear();
  states->clear();
  uint32_t num_group = 0;
  if (!GetVarint32(&in, &num_group)) return Status::Corruption("bad partial row");
  for (uint32_t i = 0; i < num_group; ++i) {
    Datum d;
    VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&in, &d));
    group_values->push_back(std::move(d));
  }
  uint32_t num_states = 0;
  if (!GetVarint32(&in, &num_states)) return Status::Corruption("bad partial row");
  for (uint32_t i = 0; i < num_states; ++i) {
    AggState st;
    uint64_t isum_bits = 0, sum_bits = 0;
    if (!GetVarint64(&in, &st.count) || !GetFixed64(&in, &isum_bits) ||
        !GetFixed64(&in, &sum_bits) || in.size() < 2) {
      return Status::Corruption("bad partial agg state");
    }
    st.isum = static_cast<int64_t>(isum_bits);
    std::memcpy(&st.sum, &sum_bits, sizeof(st.sum));
    st.sum_is_int = in[0] != 0;
    st.has_minmax = in[1] != 0;
    in.RemovePrefix(2);
    if (st.has_minmax) {
      VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&in, &st.min));
      VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&in, &st.max));
    }
    states->push_back(std::move(st));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// KV-side evaluators
// ---------------------------------------------------------------------------

namespace {

/// Decodes a column-id-tagged row value (see EncodeRowValue in row.cc) into
/// a flat (id, datum) list. Small column counts make linear lookup faster
/// than a map.
Status DecodeRowColumns(Slice row_value,
                        std::vector<std::pair<uint32_t, Datum>>* cols) {
  cols->clear();
  uint32_t count = 0;
  if (!GetVarint32(&row_value, &count)) return Status::Corruption("bad row value");
  cols->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t col_id = 0;
    if (!GetVarint32(&row_value, &col_id)) {
      return Status::Corruption("bad row value col");
    }
    Datum d;
    VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&row_value, &d));
    cols->emplace_back(col_id, std::move(d));
  }
  return Status::OK();
}

const Datum* FindColumn(const std::vector<std::pair<uint32_t, Datum>>& cols,
                        uint32_t id) {
  for (const auto& [cid, d] : cols) {
    if (cid == id) return &d;
  }
  return nullptr;
}

/// Filters: a missing column is NULL; any comparison with NULL is unknown
/// and rejects the row (matching WHERE semantics for simple conjuncts).
bool PassesFilters(const PushdownSpec& spec,
                   const std::vector<std::pair<uint32_t, Datum>>& cols) {
  for (const auto& filter : spec.filters) {
    const Datum* d = FindColumn(cols, filter.column_id);
    if (d == nullptr || d->is_null() || filter.value.is_null()) return false;
    const int c = d->Compare(filter.value);
    bool keep = false;
    switch (filter.op) {
      case PushdownOp::kEq: keep = c == 0; break;
      case PushdownOp::kNe: keep = c != 0; break;
      case PushdownOp::kLt: keep = c < 0; break;
      case PushdownOp::kLe: keep = c <= 0; break;
      case PushdownOp::kGt: keep = c > 0; break;
      case PushdownOp::kGe: keep = c >= 0; break;
    }
    if (!keep) return false;
  }
  return true;
}

/// Applies projection, re-encoding only the requested columns (empty
/// projection = pass the original value through).
std::string ProjectValue(const PushdownSpec& spec, Slice row_value,
                         const std::vector<std::pair<uint32_t, Datum>>& cols) {
  if (spec.projection.empty()) return row_value.ToString();
  std::string out;
  uint32_t kept = 0;
  for (uint32_t col : spec.projection) {
    if (FindColumn(cols, col) != nullptr) ++kept;
  }
  PutVarint32(&out, kept);
  for (uint32_t col : spec.projection) {
    const Datum* d = FindColumn(cols, col);
    if (d == nullptr) continue;
    PutVarint32(&out, col);
    d->EncodeValue(&out);
  }
  return out;
}

}  // namespace

StatusOr<std::optional<std::string>> EvaluatePushdown(Slice row_value,
                                                      Slice spec_bytes) {
  VELOCE_ASSIGN_OR_RETURN(PushdownSpec spec, PushdownSpec::Decode(spec_bytes));
  std::vector<std::pair<uint32_t, Datum>> cols;
  VELOCE_RETURN_IF_ERROR(DecodeRowColumns(row_value, &cols));
  if (!PassesFilters(spec, cols)) return std::optional<std::string>();
  return std::optional<std::string>(ProjectValue(spec, row_value, cols));
}

StatusOr<std::vector<kv::MvccScanEntry>> EvaluatePushdownFragment(
    std::vector<kv::MvccScanEntry> rows, Slice spec_bytes) {
  // The whole point of the batch entry point: the spec decodes once per
  // range segment instead of once per row.
  VELOCE_ASSIGN_OR_RETURN(PushdownSpec spec, PushdownSpec::Decode(spec_bytes));
  std::vector<kv::MvccScanEntry> out;
  std::vector<std::pair<uint32_t, Datum>> cols;

  if (!spec.has_aggregation()) {
    out.reserve(rows.size());
    for (auto& row : rows) {
      VELOCE_RETURN_IF_ERROR(DecodeRowColumns(row.value, &cols));
      if (!PassesFilters(spec, cols)) continue;
      std::string value = ProjectValue(spec, row.value, cols);
      out.push_back({std::move(row.key), std::move(value)});
    }
    return out;
  }

  // Aggregation fragment: per-group partial states over this segment.
  // std::map keyed by the ordered group-key encoding keeps the output
  // deterministic (the SQL-side merge is order-independent anyway).
  struct Group {
    std::string first_key;
    std::vector<Datum> group_values;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;
  for (auto& row : rows) {
    VELOCE_RETURN_IF_ERROR(DecodeRowColumns(row.value, &cols));
    if (!PassesFilters(spec, cols)) continue;
    std::string key;
    std::vector<Datum> group_values;
    group_values.reserve(spec.group_by.size());
    for (uint32_t col_id : spec.group_by) {
      const Datum* d = FindColumn(cols, col_id);
      Datum v = d != nullptr ? *d : Datum::Null();
      v.EncodeKey(&key);
      group_values.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Group& group = it->second;
    if (inserted) {
      group.first_key = row.key;
      group.group_values = std::move(group_values);
      group.states.resize(spec.aggregates.size());
    }
    for (size_t i = 0; i < spec.aggregates.size(); ++i) {
      const PushdownAggregate& agg = spec.aggregates[i];
      AggState& st = group.states[i];
      if (agg.input->kind == PushdownExpr::Kind::kStar) {
        st.Accumulate(Datum::Int(1), AggFunc::kCount);
        continue;
      }
      VELOCE_ASSIGN_OR_RETURN(Datum v, agg.input->Eval(cols));
      if (agg.func == AggFunc::kCount) {
        if (!v.is_null()) st.Accumulate(v, AggFunc::kCount);
      } else {
        st.Accumulate(v, agg.func);
      }
    }
  }
  out.reserve(groups.size());
  for (auto& [key, group] : groups) {
    out.push_back({std::move(group.first_key),
                   EncodePartialAggRow(group.group_values, group.states)});
  }
  return out;
}

void InstallPushdownHook(kv::KVCluster* cluster) {
  cluster->set_scan_pushdown_hook(
      [](Slice row_value, Slice spec) { return EvaluatePushdown(row_value, spec); });
  cluster->set_scan_fragment_hook([](std::vector<kv::MvccScanEntry> rows, Slice spec) {
    return EvaluatePushdownFragment(std::move(rows), spec);
  });
}

}  // namespace veloce::sql
