#include "sql/pushdown.h"

#include <map>

#include "common/codec.h"

namespace veloce::sql {

std::string PushdownSpec::Encode() const {
  std::string out;
  PutVarint64(&out, filters.size());
  for (const auto& filter : filters) {
    PutVarint32(&out, filter.column_id);
    out.push_back(static_cast<char>(filter.op));
    filter.value.EncodeValue(&out);
  }
  PutVarint64(&out, projection.size());
  for (uint32_t col : projection) PutVarint32(&out, col);
  return out;
}

StatusOr<PushdownSpec> PushdownSpec::Decode(Slice data) {
  PushdownSpec spec;
  uint64_t num_filters = 0;
  if (!GetVarint64(&data, &num_filters)) {
    return Status::Corruption("bad pushdown spec");
  }
  for (uint64_t i = 0; i < num_filters; ++i) {
    PushdownFilter filter;
    if (!GetVarint32(&data, &filter.column_id) || data.empty()) {
      return Status::Corruption("bad pushdown filter");
    }
    filter.op = static_cast<PushdownOp>(data[0]);
    data.RemovePrefix(1);
    VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&data, &filter.value));
    spec.filters.push_back(std::move(filter));
  }
  uint64_t num_projection = 0;
  if (!GetVarint64(&data, &num_projection)) {
    return Status::Corruption("bad pushdown projection");
  }
  for (uint64_t i = 0; i < num_projection; ++i) {
    uint32_t col = 0;
    if (!GetVarint32(&data, &col)) {
      return Status::Corruption("bad pushdown projection column");
    }
    spec.projection.push_back(col);
  }
  return spec;
}

StatusOr<std::optional<std::string>> EvaluatePushdown(Slice row_value, Slice spec_bytes) {
  VELOCE_ASSIGN_OR_RETURN(PushdownSpec spec, PushdownSpec::Decode(spec_bytes));
  // Decode the column-id-tagged row value (see EncodeRowValue in row.cc).
  Slice in = row_value;
  uint32_t count = 0;
  if (!GetVarint32(&in, &count)) return Status::Corruption("bad row value");
  std::map<uint32_t, Datum> columns;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t col_id = 0;
    if (!GetVarint32(&in, &col_id)) return Status::Corruption("bad row value col");
    Datum d;
    VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&in, &d));
    columns[col_id] = std::move(d);
  }

  // Filters: a missing column is NULL; any comparison with NULL is unknown
  // and rejects the row (matching WHERE semantics for simple conjuncts).
  for (const auto& filter : spec.filters) {
    auto it = columns.find(filter.column_id);
    if (it == columns.end() || it->second.is_null() || filter.value.is_null()) {
      return std::optional<std::string>();
    }
    const int c = it->second.Compare(filter.value);
    bool keep = false;
    switch (filter.op) {
      case PushdownOp::kEq: keep = c == 0; break;
      case PushdownOp::kNe: keep = c != 0; break;
      case PushdownOp::kLt: keep = c < 0; break;
      case PushdownOp::kLe: keep = c <= 0; break;
      case PushdownOp::kGt: keep = c > 0; break;
      case PushdownOp::kGe: keep = c >= 0; break;
    }
    if (!keep) return std::optional<std::string>();
  }

  if (spec.projection.empty()) {
    return std::optional<std::string>(row_value.ToString());
  }
  // Projection: re-encode only the requested columns.
  std::string out;
  uint32_t kept = 0;
  for (uint32_t col : spec.projection) {
    if (columns.count(col)) ++kept;
  }
  PutVarint32(&out, kept);
  for (uint32_t col : spec.projection) {
    auto it = columns.find(col);
    if (it == columns.end()) continue;
    PutVarint32(&out, col);
    it->second.EncodeValue(&out);
  }
  return std::optional<std::string>(std::move(out));
}

void InstallPushdownHook(kv::KVCluster* cluster) {
  cluster->set_scan_pushdown_hook(
      [](Slice row_value, Slice spec) { return EvaluatePushdown(row_value, spec); });
}

}  // namespace veloce::sql
