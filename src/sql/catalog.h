#ifndef VELOCE_SQL_CATALOG_H_
#define VELOCE_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sql/kv_connector.h"
#include "sql/schema.h"

namespace veloce::sql {

/// Per-tenant schema catalog: the SQL layer's system.descriptor keyspace.
/// Each SQL node instantiates its own Catalog over its KvConnector; the
/// backing state lives in the tenant's portion of the shared KV keyspace,
/// so every node of the tenant sees the same schema and a cold-starting
/// node's first action is reading descriptors from here (Section 3.2.5).
///
/// Layout (logical keys, before tenant prefixing):
///   sys/desc/<table_id ordered>   -> TableDescriptor
///   sys/descname/<name>           -> table_id (fixed64)
///   sys/desc_id_seq               -> next table id (fixed64)
class Catalog {
 public:
  explicit Catalog(KvConnector* connector) : connector_(connector) {}

  /// Creates a table from a prototype carrying name/columns/primary key;
  /// ids are assigned here.
  StatusOr<TableDescriptor> CreateTable(const TableDescriptor& proto);

  StatusOr<TableDescriptor> GetTable(const std::string& name);
  StatusOr<TableDescriptor> GetTableById(TableId id);
  StatusOr<std::vector<std::string>> ListTables();
  Status DropTable(const std::string& name);

  /// Registers a secondary index (the executor backfills existing rows).
  StatusOr<IndexDescriptor> CreateIndex(const std::string& table_name,
                                        const std::string& index_name,
                                        const std::vector<std::string>& column_names);

  /// Drops the in-memory descriptor cache (tests; schema-change pickup).
  void InvalidateCache();
  /// Number of KV reads served from cache since construction (stats).
  uint64_t cache_hits() const { return cache_hits_; }

 private:
  Status PersistDescriptor(const TableDescriptor& desc);
  StatusOr<TableId> AllocateTableId();

  KvConnector* connector_;
  std::mutex mu_;
  std::map<std::string, TableDescriptor> cache_;  // by name
  uint64_t cache_hits_ = 0;
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_CATALOG_H_
