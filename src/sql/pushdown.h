#ifndef VELOCE_SQL_PUSHDOWN_H_
#define VELOCE_SQL_PUSHDOWN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "kv/cluster.h"
#include "sql/datum.h"

namespace veloce::sql {

/// Row-filter and projection push-down (the paper's future-work items,
/// Section 8): the SQL layer serializes simple predicates and a needed-
/// column list into an opaque spec carried on the scan request; the KV
/// node evaluates them against each visible row so filtered rows and
/// unused columns never cross the SQL/KV boundary.
///
/// Restrictions (by design, mirroring what a first production cut would
/// ship): predicates are conjunctions of `column <op> constant` over
/// non-primary-key columns; projection lists non-PK column ids (PK values
/// travel in the key regardless).

enum class PushdownOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct PushdownFilter {
  uint32_t column_id = 0;
  PushdownOp op = PushdownOp::kEq;
  Datum value;
};

struct PushdownSpec {
  std::vector<PushdownFilter> filters;
  /// Non-PK column ids to keep in returned row values; empty = all.
  std::vector<uint32_t> projection;

  bool empty() const { return filters.empty() && projection.empty(); }

  std::string Encode() const;
  static StatusOr<PushdownSpec> Decode(Slice data);
};

/// The KV-side evaluator: applies a decoded spec to one row value (the
/// column-id-tagged datum encoding of sql/row.h). Returns nullopt when a
/// filter rejects the row, otherwise the (possibly projected) value.
StatusOr<std::optional<std::string>> EvaluatePushdown(Slice row_value, Slice spec);

/// Registers the evaluator on a KV cluster. In production SQL and KV ship
/// in one binary, so the KV node links the same row codec; this mirrors
/// that. Idempotent.
void InstallPushdownHook(kv::KVCluster* cluster);

}  // namespace veloce::sql

#endif  // VELOCE_SQL_PUSHDOWN_H_
