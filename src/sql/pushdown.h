#ifndef VELOCE_SQL_PUSHDOWN_H_
#define VELOCE_SQL_PUSHDOWN_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "kv/cluster.h"
#include "sql/datum.h"
#include "sql/eval.h"

namespace veloce::sql {

/// Row-filter, projection and partial-aggregation push-down (the paper's
/// future-work items, Section 8): the SQL layer serializes simple
/// predicates, a needed-column list, and — for eligible aggregation
/// fragments — group-by columns plus aggregate expressions into an opaque
/// spec carried on the scan request. The KV node evaluates them against
/// the visible rows so filtered rows, unused columns, and (for fragments)
/// everything but per-group partial aggregate states never cross the
/// SQL/KV boundary.
///
/// Restrictions (by design, mirroring what a first production cut would
/// ship): predicates are conjunctions of `column <op> constant` over
/// non-primary-key columns; projection and group-by list non-PK column ids
/// (PK values travel in the key regardless); aggregate inputs are
/// arithmetic over non-PK columns and constants.

enum class PushdownOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct PushdownFilter {
  uint32_t column_id = 0;
  PushdownOp op = PushdownOp::kEq;
  Datum value;
};

/// Expression tree evaluable at the KV node over one decoded row's non-PK
/// columns. A strict subset of sql/ast.h's Expr, pre-resolved to column
/// ids so the KV side needs no catalog.
struct PushdownExpr {
  enum class Kind : uint8_t { kLiteral = 0, kColumn = 1, kBinary = 2, kStar = 3 };
  Kind kind = Kind::kLiteral;
  Datum literal;                    // kLiteral
  uint32_t column_id = 0;           // kColumn
  BinOp op = BinOp::kAdd;           // kBinary: + - * / % only
  std::unique_ptr<PushdownExpr> left, right;

  void Encode(std::string* dst) const;
  static StatusOr<std::unique_ptr<PushdownExpr>> Decode(Slice* in);
  /// Evaluates over a decoded row (id -> datum; missing columns are NULL).
  /// Arithmetic semantics are EvalArith's — identical to the SQL engines.
  StatusOr<Datum> Eval(const std::vector<std::pair<uint32_t, Datum>>& cols) const;
};

/// One aggregate of a pushed fragment. `input` is kStar for COUNT(*).
struct PushdownAggregate {
  AggFunc func = AggFunc::kCount;
  std::unique_ptr<PushdownExpr> input;
};

struct PushdownSpec {
  std::vector<PushdownFilter> filters;
  /// Non-PK column ids to keep in returned row values; empty = all.
  std::vector<uint32_t> projection;
  /// Aggregation fragment (empty = plain filter/projection): group-by
  /// column ids (non-PK) and aggregates. When set, the scan returns one
  /// entry per group per range segment instead of row data — the key is
  /// the group's first input row key and the value is a partial-aggregate
  /// row (EncodePartialAggRow) the SQL side merges.
  std::vector<uint32_t> group_by;
  std::vector<PushdownAggregate> aggregates;

  bool has_aggregation() const { return !group_by.empty() || !aggregates.empty(); }
  bool empty() const {
    return filters.empty() && projection.empty() && !has_aggregation();
  }

  std::string Encode() const;
  static StatusOr<PushdownSpec> Decode(Slice data);
};

/// Builds the filter+projection spec for a scan from the shared constraint
/// extraction, replicating both engines' KV traffic byte-for-byte:
/// `kv_filters` in WHERE order plus the non-PK needed columns.
PushdownSpec MakeFilterSpec(const ScanConstraints& plan,
                            const std::vector<uint32_t>* needed_columns,
                            const TableDescriptor& desc);

/// Partial-aggregate row codec: the per-group payload of a pushed
/// aggregation fragment (group datums + serialized AggStates).
std::string EncodePartialAggRow(const std::vector<Datum>& group_values,
                                const std::vector<AggState>& states);
Status DecodePartialAggRow(Slice in, std::vector<Datum>* group_values,
                           std::vector<AggState>* states);

/// The per-row KV-side evaluator: applies a decoded spec to one row value
/// (the column-id-tagged datum encoding of sql/row.h). Returns nullopt when
/// a filter rejects the row, otherwise the (possibly projected) value.
/// Aggregation fragments are ignored here (see EvaluatePushdownFragment).
StatusOr<std::optional<std::string>> EvaluatePushdown(Slice row_value, Slice spec);

/// The batch KV-side evaluator: decodes the spec once, then runs filters,
/// projection and — when the spec carries an aggregation fragment —
/// per-group partial aggregation over one range segment's rows. Without a
/// fragment this returns exactly the rows the per-row evaluator keeps.
StatusOr<std::vector<kv::MvccScanEntry>> EvaluatePushdownFragment(
    std::vector<kv::MvccScanEntry> rows, Slice spec);

/// Registers both evaluators on a KV cluster. In production SQL and KV
/// ship in one binary, so the KV node links the same row codec; this
/// mirrors that. Idempotent.
void InstallPushdownHook(kv::KVCluster* cluster);

}  // namespace veloce::sql

#endif  // VELOCE_SQL_PUSHDOWN_H_
