#ifndef VELOCE_SQL_EVAL_H_
#define VELOCE_SQL_EVAL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/kv_connector.h"
#include "sql/row.h"
#include "sql/schema.h"

namespace veloce::sql {

// Shared expression-evaluation machinery used by the row engine
// (executor.cc), the vectorized engine (vec/), and the KV-side pushdown
// fragment evaluator (pushdown.cc). Both engines must agree bit-for-bit on
// these semantics — the randomized differential test in
// tests/sql_vec_test.cc holds them to it.

/// One table bound into a query: alias -> descriptor + column offset
/// within the concatenated (joined) row.
struct Binding {
  std::string alias;  // effective name for qualification
  TableDescriptor desc;
  size_t offset = 0;  // column offset within the concatenated row
};

struct EvalContext {
  const std::vector<Binding>* bindings = nullptr;
  const Row* row = nullptr;
  const std::vector<Datum>* params = nullptr;
  /// Pre-computed aggregate results (group evaluation phase only).
  const std::map<const Expr*, Datum>* agg_values = nullptr;
};

/// SQL integer arithmetic wraps in two's complement (no UB on overflow).
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}
inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
}
inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
}

/// WHERE truthiness: NULL is false, numbers by != 0, strings by non-empty.
bool Truthy(const Datum& d);

/// Resolves `[qualifier.]name` to a position in the concatenated row.
StatusOr<int> ResolveColumn(const std::vector<Binding>& bindings,
                            const std::string& qualifier, const std::string& name);

/// Row-at-a-time expression evaluation (the row engine's interpreter, also
/// used by the vectorized engine for per-group output rows).
StatusOr<Datum> Eval(const Expr& expr, const EvalContext& ctx);

/// The arithmetic half of EvalBinary (+ - * / %) over already-evaluated
/// operands: NULL-propagating, int+int stays int (wrapping) except
/// division, strings concatenate under +, everything else coerces through
/// AsDouble. Shared with the KV-side fragment evaluator.
StatusOr<Datum> EvalArith(BinOp op, const Datum& left, const Datum& right);

void CollectConjuncts(const Expr* expr, std::vector<const Expr*>* out);
void CollectAggregates(const Expr* expr, std::vector<const Expr*>* out);
void CollectColumnNames(const Expr* expr, std::vector<std::string>* out);
bool HasAggregate(const Expr* expr);

/// Bind-time validation: every column reference must resolve and every $N
/// parameter must be bound, even when no rows flow.
Status ValidateExpr(const Expr* expr, const std::vector<Binding>& bindings,
                    const std::vector<Datum>* params);

/// Output column name for a select item without an explicit alias.
std::string DeriveColumnName(const Expr& expr, const std::string& alias);

/// Projection push-down input for single-table queries: collects the ids of
/// every column the statement references. Returns false (projection
/// disabled) when a referenced name doesn't resolve against `desc` and
/// isn't an output alias (ORDER BY may name one).
bool CollectNeededColumns(const SelectStmt& stmt, const TableDescriptor& desc,
                          std::vector<uint32_t>* needed);

/// One `left_expr = right_column` ON conjunct, where left_expr is evaluable
/// against the bindings established before the joined table.
struct JoinEquiPair {
  const Expr* left_expr = nullptr;
  uint32_t right_col_id = 0;
};

/// Splits ON conjuncts into equi pairs against `right` and residual
/// conjuncts that re-evaluate over the combined row.
void ExtractJoinEquis(const std::vector<const Expr*>& on_conjuncts,
                      const TableDescriptor& right, const std::string& right_alias,
                      std::vector<JoinEquiPair>* equis,
                      std::vector<const Expr*>* residual);

/// Running state for one aggregate within one group. Also the unit of
/// KV-side partial aggregation: partial states from different ranges merge
/// with Merge() before Result() finishes them.
struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Datum min, max;
  bool has_minmax = false;

  void Accumulate(const Datum& v, AggFunc func);
  void Merge(const AggState& other);
  Datum Result(AggFunc func) const;
};

/// Reads either through the session transaction or the non-transactional
/// connector path.
struct Reader {
  TenantTxn* txn;
  KvConnector* connector;

  Status Get(const std::string& key, std::optional<std::string>* value);
  Status Scan(const std::string& start, const std::string& end, uint64_t limit,
              std::vector<kv::MvccScanEntry>* rows,
              const std::string& pushdown_spec = std::string());
};

/// Primary-key span + KV-side filter extraction from WHERE conjuncts, the
/// single source of truth for both engines (the spans and pushdown specs
/// they emit must be byte-identical so their KV traffic matches).
///
/// Only conjuncts on the scanned table itself participate: a qualified
/// reference to another binding's alias never constrains this scan.
struct ScanConstraints {
  /// Full PK equality: `start` is the exact row key (point get).
  bool point = false;
  std::string start, end;
  /// Equality constants by column id (for the secondary-index path).
  std::map<uint32_t, Datum> eq;
  /// PK prefix length covered by `eq`.
  size_t eq_cols = 0;
  /// `column <op> constant` conjuncts on non-PK columns, in WHERE order —
  /// the KV-side filter list (pairs with pushdown.h's PushdownFilter).
  struct KvFilter {
    uint32_t column_id = 0;
    BinOp op = BinOp::kEq;
    Datum value;
  };
  std::vector<KvFilter> kv_filters;
  /// Conjuncts NOT exactly enforced by the span or kv_filters; the caller
  /// must re-evaluate them SQL-side (the row engine re-runs the whole
  /// WHERE, so it ignores this; the vectorized engine requires it empty
  /// before pushing aggregation below the scan).
  std::vector<const Expr*> unhandled;
};

ScanConstraints BuildScanConstraints(const TableDescriptor& desc,
                                     const std::string& alias, const Expr* where,
                                     const std::vector<Datum>* params);

}  // namespace veloce::sql

#endif  // VELOCE_SQL_EVAL_H_
