#include "sql/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/codec.h"
#include "common/logging.h"
#include "sql/pushdown.h"

namespace veloce::sql {

// ---------------------------------------------------------------------------
// Evaluation machinery
// ---------------------------------------------------------------------------

struct Executor::Binding {
  std::string alias;  // effective name for qualification
  TableDescriptor desc;
  size_t offset = 0;  // column offset within the concatenated row
};

struct Executor::EvalContext {
  const std::vector<Binding>* bindings = nullptr;
  const Row* row = nullptr;
  const std::vector<Datum>* params = nullptr;
  /// Pre-computed aggregate results (group evaluation phase only).
  const std::map<const Expr*, Datum>* agg_values = nullptr;
};

namespace {

using Binding = Executor::Binding;

StatusOr<int> ResolveColumn(const std::vector<Binding>& bindings,
                            const std::string& qualifier, const std::string& name) {
  int found = -1;
  for (const auto& binding : bindings) {
    if (!qualifier.empty() && binding.alias != qualifier) continue;
    const ColumnDescriptor* col = binding.desc.FindColumn(name);
    if (col == nullptr) continue;
    const int pos = static_cast<int>(binding.offset) + binding.desc.ColumnIndex(col->id);
    if (found != -1) {
      return Status::InvalidArgument("ambiguous column reference: " + name);
    }
    found = pos;
  }
  if (found == -1) return Status::NotFound("no such column: " + name);
  return found;
}

bool Truthy(const Datum& d) {
  switch (d.kind()) {
    case TypeKind::kNull: return false;
    case TypeKind::kBool: return d.bool_value();
    case TypeKind::kInt: return d.int_value() != 0;
    case TypeKind::kDouble: return d.double_value() != 0;
    case TypeKind::kString: return !d.string_value().empty();
  }
  return false;
}

StatusOr<Datum> Eval(const Expr& expr, const Executor::EvalContext& ctx);

StatusOr<Datum> EvalBinary(const Expr& expr, const Executor::EvalContext& ctx) {
  // AND/OR get short-circuit + 3-valued-ish treatment (NULL == false).
  if (expr.op == BinOp::kAnd || expr.op == BinOp::kOr) {
    VELOCE_ASSIGN_OR_RETURN(Datum left, Eval(*expr.left, ctx));
    const bool lval = Truthy(left);
    if (expr.op == BinOp::kAnd && !lval) return Datum::Bool(false);
    if (expr.op == BinOp::kOr && lval) return Datum::Bool(true);
    VELOCE_ASSIGN_OR_RETURN(Datum right, Eval(*expr.right, ctx));
    return Datum::Bool(Truthy(right));
  }
  VELOCE_ASSIGN_OR_RETURN(Datum left, Eval(*expr.left, ctx));
  VELOCE_ASSIGN_OR_RETURN(Datum right, Eval(*expr.right, ctx));
  switch (expr.op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe: {
      if (left.is_null() || right.is_null()) return Datum::Null();
      const int c = left.Compare(right);
      switch (expr.op) {
        case BinOp::kEq: return Datum::Bool(c == 0);
        case BinOp::kNe: return Datum::Bool(c != 0);
        case BinOp::kLt: return Datum::Bool(c < 0);
        case BinOp::kLe: return Datum::Bool(c <= 0);
        case BinOp::kGt: return Datum::Bool(c > 0);
        default: return Datum::Bool(c >= 0);
      }
    }
    case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul:
    case BinOp::kDiv: case BinOp::kMod: {
      if (left.is_null() || right.is_null()) return Datum::Null();
      if (expr.op == BinOp::kAdd && left.kind() == TypeKind::kString &&
          right.kind() == TypeKind::kString) {
        return Datum::String(left.string_value() + right.string_value());
      }
      const bool both_int =
          left.kind() == TypeKind::kInt && right.kind() == TypeKind::kInt;
      if (both_int && expr.op != BinOp::kDiv) {
        const int64_t a = left.int_value(), b = right.int_value();
        switch (expr.op) {
          case BinOp::kAdd: return Datum::Int(a + b);
          case BinOp::kSub: return Datum::Int(a - b);
          case BinOp::kMul: return Datum::Int(a * b);
          case BinOp::kMod:
            if (b == 0) return Status::InvalidArgument("modulo by zero");
            return Datum::Int(a % b);
          default: break;
        }
      }
      const double a = left.AsDouble(), b = right.AsDouble();
      switch (expr.op) {
        case BinOp::kAdd: return Datum::Double(a + b);
        case BinOp::kSub: return Datum::Double(a - b);
        case BinOp::kMul: return Datum::Double(a * b);
        case BinOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Datum::Double(a / b);
        case BinOp::kMod:
          return Status::InvalidArgument("modulo on non-integers");
        default: break;
      }
      break;
    }
    default: break;
  }
  return Status::Internal("unhandled binary operator");
}

StatusOr<Datum> Eval(const Expr& expr, const Executor::EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumnRef: {
      VELOCE_ASSIGN_OR_RETURN(
          int pos, ResolveColumn(*ctx.bindings, expr.table_name, expr.column_name));
      return (*ctx.row)[static_cast<size_t>(pos)];
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, ctx);
    case Expr::Kind::kNot: {
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*expr.child, ctx));
      return Datum::Bool(!Truthy(v));
    }
    case Expr::Kind::kIsNull: {
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*expr.child, ctx));
      return Datum::Bool(expr.is_not ? !v.is_null() : v.is_null());
    }
    case Expr::Kind::kParam: {
      if (ctx.params == nullptr ||
          expr.param_index < 1 ||
          static_cast<size_t>(expr.param_index) > ctx.params->size()) {
        return Status::InvalidArgument("missing parameter $" +
                                       std::to_string(expr.param_index));
      }
      return (*ctx.params)[static_cast<size_t>(expr.param_index - 1)];
    }
    case Expr::Kind::kAggregate: {
      if (ctx.agg_values == nullptr) {
        return Status::InvalidArgument("aggregate outside of aggregation context");
      }
      auto it = ctx.agg_values->find(&expr);
      if (it == ctx.agg_values->end()) {
        return Status::Internal("aggregate value not computed");
      }
      return it->second;
    }
    case Expr::Kind::kStar:
      return Status::InvalidArgument("'*' outside COUNT(*)");
  }
  return Status::Internal("unhandled expression kind");
}

void CollectConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kBinary && expr->op == BinOp::kAnd) {
    CollectConjuncts(expr->left.get(), out);
    CollectConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

void CollectAggregates(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kAggregate) {
    out->push_back(expr);
    return;  // no nested aggregates
  }
  CollectAggregates(expr->left.get(), out);
  CollectAggregates(expr->right.get(), out);
  CollectAggregates(expr->child.get(), out);
}

// Bind-time validation: every column reference must resolve and every $N
// parameter must be bound, even when no rows flow (real databases error at
// plan time, not per row).
Status ValidateExpr(const Expr* expr, const std::vector<Binding>& bindings,
                    const std::vector<Datum>* params) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == Expr::Kind::kColumnRef) {
    return ResolveColumn(bindings, expr->table_name, expr->column_name).status();
  }
  if (expr->kind == Expr::Kind::kParam) {
    const size_t bound = params == nullptr ? 0 : params->size();
    if (expr->param_index < 1 || static_cast<size_t>(expr->param_index) > bound) {
      return Status::InvalidArgument("missing parameter $" +
                                     std::to_string(expr->param_index));
    }
    return Status::OK();
  }
  VELOCE_RETURN_IF_ERROR(ValidateExpr(expr->left.get(), bindings, params));
  VELOCE_RETURN_IF_ERROR(ValidateExpr(expr->right.get(), bindings, params));
  return ValidateExpr(expr->child.get(), bindings, params);
}

void CollectColumnNames(const Expr* expr, std::vector<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kColumnRef) out->push_back(expr->column_name);
  CollectColumnNames(expr->left.get(), out);
  CollectColumnNames(expr->right.get(), out);
  CollectColumnNames(expr->child.get(), out);
}

bool HasAggregate(const Expr* expr) {
  std::vector<const Expr*> aggs;
  CollectAggregates(expr, &aggs);
  return !aggs.empty();
}

/// Running state for one aggregate within one group.
struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Datum min, max;
  bool has_minmax = false;

  void Accumulate(const Datum& v, AggFunc func) {
    if (func == AggFunc::kCount) {
      ++count;  // null-ness handled by the caller for COUNT(expr)
      return;
    }
    if (v.is_null()) return;
    ++count;
    if (func == AggFunc::kSum || func == AggFunc::kAvg) {
      if (v.kind() == TypeKind::kInt) {
        isum += v.int_value();
      } else {
        sum_is_int = false;
      }
      sum += v.AsDouble();
    } else if (func == AggFunc::kMin || func == AggFunc::kMax) {
      if (!has_minmax) {
        min = max = v;
        has_minmax = true;
      } else {
        if (v.Compare(min) < 0) min = v;
        if (v.Compare(max) > 0) max = v;
      }
    }
  }

  Datum Result(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount: return Datum::Int(static_cast<int64_t>(count));
      case AggFunc::kSum:
        if (count == 0) return Datum::Null();
        return sum_is_int ? Datum::Int(isum) : Datum::Double(sum);
      case AggFunc::kAvg:
        if (count == 0) return Datum::Null();
        return Datum::Double(sum / static_cast<double>(count));
      case AggFunc::kMin: return has_minmax ? min : Datum::Null();
      case AggFunc::kMax: return has_minmax ? max : Datum::Null();
      case AggFunc::kNone: break;
    }
    return Datum::Null();
  }
};

/// Reads either through the session transaction or the non-transactional
/// connector path.
struct Reader {
  TenantTxn* txn;
  KvConnector* connector;

  Status Get(const std::string& key, std::optional<std::string>* value) {
    if (txn != nullptr) return txn->Get(key, value);
    kv::BatchRequest req;
    req.AddGet(key);
    VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector->Send(req));
    if (resp.responses[0].found) {
      *value = std::move(resp.responses[0].value);
    } else {
      value->reset();
    }
    return Status::OK();
  }

  Status Scan(const std::string& start, const std::string& end, uint64_t limit,
              std::vector<kv::MvccScanEntry>* rows,
              const std::string& pushdown_spec = std::string()) {
    if (txn != nullptr) return txn->Scan(start, end, limit, rows);
    kv::BatchRequest req;
    if (pushdown_spec.empty()) {
      req.AddScan(start, end, limit);
    } else {
      req.AddScanWithPushdown(start, end, limit, pushdown_spec);
    }
    VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector->Send(req));
    *rows = std::move(resp.responses[0].rows);
    return Status::OK();
  }
};

std::string DeriveColumnName(const Expr& expr, const std::string& alias) {
  if (!alias.empty()) return alias;
  switch (expr.kind) {
    case Expr::Kind::kColumnRef: return expr.column_name;
    case Expr::Kind::kAggregate:
      switch (expr.agg) {
        case AggFunc::kCount: return "count";
        case AggFunc::kSum: return "sum";
        case AggFunc::kAvg: return "avg";
        case AggFunc::kMin: return "min";
        case AggFunc::kMax: return "max";
        default: return "agg";
      }
    default: return "?column?";
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ResultSet
// ---------------------------------------------------------------------------

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += columns[i];
    out += (i + 1 < columns.size()) ? " | " : "\n";
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += row[i].ToString();
      out += (i + 1 < row.size()) ? " | " : "\n";
    }
  }
  if (columns.empty()) {
    out += "(" + std::to_string(rows_affected) + " rows affected)\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::Execute(const Statement& stmt, TenantTxn* txn,
                                      const std::vector<Datum>* params) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable:
      return ExecCreateTable(stmt.create_table);
    case Statement::Kind::kCreateIndex:
      return ExecCreateIndex(stmt.create_index, txn);
    case Statement::Kind::kDropTable:
      return ExecDropTable(stmt.drop_table);
    case Statement::Kind::kSelect:
      return ExecSelect(stmt.select, txn, params);
    case Statement::Kind::kInsert:
    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete: {
      // DML needs a transaction. Use the session's, or an implicit one
      // with a small retry loop for serializability conflicts.
      if (txn != nullptr) {
        if (stmt.kind == Statement::Kind::kInsert) return ExecInsert(stmt.insert, txn, params);
        if (stmt.kind == Statement::Kind::kUpdate) return ExecUpdate(stmt.update, txn, params);
        return ExecDelete(stmt.del, txn, params);
      }
      Status last = Status::OK();
      for (int attempt = 0; attempt < 5; ++attempt) {
        auto implicit = connector_->BeginTransaction();
        StatusOr<ResultSet> result =
            stmt.kind == Statement::Kind::kInsert
                ? ExecInsert(stmt.insert, implicit.get(), params)
                : stmt.kind == Statement::Kind::kUpdate
                      ? ExecUpdate(stmt.update, implicit.get(), params)
                      : ExecDelete(stmt.del, implicit.get(), params);
        if (!result.ok()) {
          (void)implicit->Rollback();
          last = result.status();
          if (last.IsWriteIntentError() || last.IsTransactionRetry() ||
              last.code() == Code::kTransactionAborted) {
            continue;
          }
          return last;
        }
        Status commit = implicit->Commit();
        if (commit.ok()) return result;
        last = commit;
        if (!commit.IsTransactionRetry() &&
            commit.code() != Code::kTransactionAborted) {
          return commit;
        }
      }
      return last.ok() ? Status::TransactionRetry("implicit txn retries exhausted")
                       : last;
    }
    case Statement::Kind::kTxn:
      return Status::InvalidArgument("transaction control handled by the session");
    case Statement::Kind::kSet:
      return Status::InvalidArgument("SET handled by the session");
  }
  return Status::Internal("unhandled statement kind");
}

StatusOr<ResultSet> Executor::ExecCreateTable(const CreateTableStmt& stmt) {
  TableDescriptor proto;
  proto.name = stmt.table;
  std::vector<std::string> pk = stmt.primary_key;
  for (const auto& col_def : stmt.columns) {
    ColumnDescriptor col;
    col.name = col_def.name;
    col.type = col_def.type;
    col.nullable = !col_def.not_null;
    proto.columns.push_back(col);
    if (col_def.primary_key) pk.push_back(col_def.name);
  }
  if (pk.empty()) {
    return Status::InvalidArgument("table requires a PRIMARY KEY: " + stmt.table);
  }
  // Assign column ids now so the primary index can reference them.
  for (size_t i = 0; i < proto.columns.size(); ++i) {
    proto.columns[i].id = static_cast<uint32_t>(i + 1);
  }
  for (const auto& name : pk) {
    const ColumnDescriptor* col = proto.FindColumn(name);
    if (col == nullptr) {
      return Status::InvalidArgument("primary key column not found: " + name);
    }
    proto.primary.column_ids.push_back(col->id);
    // PK columns are implicitly NOT NULL.
    proto.columns[static_cast<size_t>(proto.ColumnIndex(col->id))].nullable = false;
  }
  auto created = catalog_->CreateTable(proto);
  if (!created.ok() && created.status().code() == Code::kAlreadyExists &&
      stmt.if_not_exists) {
    return ResultSet{};
  }
  VELOCE_RETURN_IF_ERROR(created.status());
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCreateIndex(const CreateIndexStmt& stmt,
                                              TenantTxn* txn) {
  VELOCE_ASSIGN_OR_RETURN(IndexDescriptor idx,
                          catalog_->CreateIndex(stmt.table, stmt.index, stmt.columns));
  // Backfill existing rows.
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  std::vector<Row> rows;
  VELOCE_RETURN_IF_ERROR(ScanTable(desc, nullptr, txn, nullptr, &rows));
  kv::BatchRequest backfill;
  for (const Row& row : rows) {
    backfill.AddPut(EncodeSecondaryKey(desc, idx, row), "");
  }
  if (!backfill.requests.empty()) {
    VELOCE_RETURN_IF_ERROR(connector_->Send(backfill).status());
  }
  ResultSet result;
  result.rows_affected = rows.size();
  return result;
}

StatusOr<ResultSet> Executor::ExecDropTable(const DropTableStmt& stmt) {
  VELOCE_RETURN_IF_ERROR(catalog_->DropTable(stmt.table));
  return ResultSet{};
}

// --- scanning ---------------------------------------------------------------

Status Executor::ScanTable(const TableDescriptor& desc, const Expr* where,
                           TenantTxn* txn, const std::vector<Datum>* params,
                           std::vector<Row>* rows,
                           const std::vector<uint32_t>* needed_columns) {
  Reader reader{txn, connector_};
  // Extract primary-key constraints from the WHERE conjuncts.
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);

  // For constraint extraction, literal/param-only expressions can be
  // evaluated without a row.
  EvalContext const_ctx;
  std::vector<Binding> no_bindings;
  Row empty_row;
  const_ctx.bindings = &no_bindings;
  const_ctx.row = &empty_row;
  const_ctx.params = params;

  auto constant_value = [&](const Expr& e) -> std::optional<Datum> {
    if (e.kind == Expr::Kind::kLiteral) return e.literal;
    if (e.kind == Expr::Kind::kParam) {
      auto v = Eval(e, const_ctx);
      if (v.ok()) return *v;
    }
    return std::nullopt;
  };

  std::map<uint32_t, Datum> eq;  // column id -> constant
  struct RangeBound {
    std::optional<Datum> lower, upper;
    bool lower_inclusive = true, upper_inclusive = true;
  };
  std::map<uint32_t, RangeBound> ranges;
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::kBinary) continue;
    const Expr* col_side = nullptr;
    const Expr* val_side = nullptr;
    BinOp op = c->op;
    if (c->left->kind == Expr::Kind::kColumnRef) {
      col_side = c->left.get();
      val_side = c->right.get();
    } else if (c->right->kind == Expr::Kind::kColumnRef) {
      col_side = c->right.get();
      val_side = c->left.get();
      // Flip the comparison: 5 < a  ==  a > 5.
      switch (op) {
        case BinOp::kLt: op = BinOp::kGt; break;
        case BinOp::kLe: op = BinOp::kGe; break;
        case BinOp::kGt: op = BinOp::kLt; break;
        case BinOp::kGe: op = BinOp::kLe; break;
        default: break;
      }
    } else {
      continue;
    }
    const ColumnDescriptor* col = desc.FindColumn(col_side->column_name);
    if (col == nullptr) continue;
    auto value = constant_value(*val_side);
    if (!value.has_value()) continue;
    if (op == BinOp::kEq) {
      eq.emplace(col->id, *value);
    } else if (op == BinOp::kLt || op == BinOp::kLe) {
      auto& bound = ranges[col->id];
      bound.upper = *value;
      bound.upper_inclusive = op == BinOp::kLe;
    } else if (op == BinOp::kGt || op == BinOp::kGe) {
      auto& bound = ranges[col->id];
      bound.lower = *value;
      bound.lower_inclusive = op == BinOp::kGe;
    }
  }

  // Build the tightest primary-key span: equality prefix, then one range.
  std::string start = IndexPrefix(desc.id, kPrimaryIndexId);
  size_t eq_cols = 0;
  for (uint32_t col_id : desc.primary.column_ids) {
    auto it = eq.find(col_id);
    if (it == eq.end()) break;
    it->second.EncodeKey(&start);
    ++eq_cols;
  }
  if (eq_cols == desc.primary.column_ids.size()) {
    // Full PK: point lookup.
    std::optional<std::string> value;
    VELOCE_RETURN_IF_ERROR(reader.Get(start, &value));
    if (value.has_value()) {
      Row row;
      VELOCE_RETURN_IF_ERROR(DecodeRow(desc, start, *value, &row));
      rows->push_back(std::move(row));
    }
    return Status::OK();
  }

  std::string end = PrefixEnd(start);
  // Range constraint on the first unconstrained PK column tightens further.
  if (eq_cols < desc.primary.column_ids.size()) {
    const uint32_t next_col = desc.primary.column_ids[eq_cols];
    auto it = ranges.find(next_col);
    if (it != ranges.end()) {
      if (it->second.lower.has_value()) {
        std::string bound = start;
        it->second.lower->EncodeKey(&bound);
        if (!it->second.lower_inclusive) bound.push_back('\xFF');
        if (bound > start) start = bound;
      }
      if (it->second.upper.has_value()) {
        std::string bound = IndexPrefix(desc.id, kPrimaryIndexId);
        // Rebuild the eq prefix, then the upper bound datum.
        {
          std::string tmp = IndexPrefix(desc.id, kPrimaryIndexId);
          size_t i = 0;
          for (uint32_t col_id : desc.primary.column_ids) {
            if (i >= eq_cols) break;
            eq.find(col_id)->second.EncodeKey(&tmp);
            ++i;
          }
          bound = tmp;
        }
        it->second.upper->EncodeKey(&bound);
        if (it->second.upper_inclusive) bound = PrefixEnd(bound);
        if (bound < end) end = bound;
      }
    }
  }

  // No useful PK constraint and a secondary index matches? Use an index
  // scan + lookup join back to the primary index.
  if (eq_cols == 0) {
    for (const auto& index : desc.secondaries) {
      if (index.column_ids.empty()) continue;
      auto it = eq.find(index.column_ids[0]);
      if (it == eq.end()) continue;
      // Build the index span over the leading equality columns.
      std::string idx_start = IndexPrefix(desc.id, index.id);
      for (uint32_t col_id : index.column_ids) {
        auto eq_it = eq.find(col_id);
        if (eq_it == eq.end()) break;
        eq_it->second.EncodeKey(&idx_start);
      }
      std::vector<kv::MvccScanEntry> entries;
      VELOCE_RETURN_IF_ERROR(
          reader.Scan(idx_start, PrefixEnd(idx_start), 0, &entries));
      for (const auto& entry : entries) {
        std::vector<Datum> pk;
        VELOCE_RETURN_IF_ERROR(DecodeSecondaryKeyPk(desc, index, entry.key, &pk));
        const std::string pk_key = EncodePrimaryKeyFromDatums(desc, pk);
        std::optional<std::string> value;
        VELOCE_RETURN_IF_ERROR(reader.Get(pk_key, &value));
        if (!value.has_value()) continue;  // index entry racing a delete
        Row row;
        VELOCE_RETURN_IF_ERROR(DecodeRow(desc, pk_key, *value, &row));
        rows->push_back(std::move(row));
      }
      return Status::OK();
    }
  }

  // Row-filter / projection push-down (DESIGN.md Section 6): eligible
  // residual conjuncts and the needed-column list travel with the scan and
  // evaluate at the KV node. Only for non-transactional reads (txn scans
  // must observe their own intents through the txn path).
  std::string pushdown_spec;
  if (pushdown_enabled_ && txn == nullptr) {
    PushdownSpec spec;
    for (const Expr* c : conjuncts) {
      if (c->kind != Expr::Kind::kBinary) continue;
      const Expr* col_side = nullptr;
      const Expr* val_side = nullptr;
      BinOp op = c->op;
      if (c->left->kind == Expr::Kind::kColumnRef) {
        col_side = c->left.get();
        val_side = c->right.get();
      } else if (c->right->kind == Expr::Kind::kColumnRef) {
        col_side = c->right.get();
        val_side = c->left.get();
        switch (op) {
          case BinOp::kLt: op = BinOp::kGt; break;
          case BinOp::kLe: op = BinOp::kGe; break;
          case BinOp::kGt: op = BinOp::kLt; break;
          case BinOp::kGe: op = BinOp::kLe; break;
          default: break;
        }
      } else {
        continue;
      }
      const ColumnDescriptor* col = desc.FindColumn(col_side->column_name);
      if (col == nullptr || desc.IsPrimaryKeyColumn(col->id)) continue;
      auto value = constant_value(*val_side);
      if (!value.has_value()) continue;
      PushdownFilter filter;
      filter.column_id = col->id;
      filter.value = *value;
      switch (op) {
        case BinOp::kEq: filter.op = PushdownOp::kEq; break;
        case BinOp::kNe: filter.op = PushdownOp::kNe; break;
        case BinOp::kLt: filter.op = PushdownOp::kLt; break;
        case BinOp::kLe: filter.op = PushdownOp::kLe; break;
        case BinOp::kGt: filter.op = PushdownOp::kGt; break;
        case BinOp::kGe: filter.op = PushdownOp::kGe; break;
        default: continue;
      }
      spec.filters.push_back(std::move(filter));
    }
    if (needed_columns != nullptr) {
      for (uint32_t col_id : *needed_columns) {
        if (!desc.IsPrimaryKeyColumn(col_id)) spec.projection.push_back(col_id);
      }
      // A filter's column must survive projection on the KV side; it does,
      // because filters evaluate before projection in EvaluatePushdown.
    }
    if (!spec.empty()) pushdown_spec = spec.Encode();
  }

  std::vector<kv::MvccScanEntry> entries;
  VELOCE_RETURN_IF_ERROR(reader.Scan(start, end, 0, &entries, pushdown_spec));
  rows->reserve(entries.size());
  for (const auto& entry : entries) {
    Row row;
    VELOCE_RETURN_IF_ERROR(DecodeRow(desc, entry.key, entry.value, &row));
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

// --- SELECT ------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecSelect(const SelectStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  ResultSet result;
  std::vector<Binding> bindings;
  std::vector<Row> current;  // concatenated rows

  if (!stmt.table.empty()) {
    VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
    Binding base;
    base.alias = stmt.table_alias.empty() ? stmt.table : stmt.table_alias;
    base.desc = desc;
    base.offset = 0;
    bindings.push_back(base);
    // Projection push-down input: for single-table queries with an explicit
    // select list, only the referenced columns need to leave the KV node.
    std::vector<uint32_t> needed;
    const std::vector<uint32_t>* needed_ptr = nullptr;
    if (pushdown_enabled_ && stmt.joins.empty() && !stmt.items.empty()) {
      std::vector<std::string> names;
      for (const auto& item : stmt.items) CollectColumnNames(item.expr.get(), &names);
      CollectColumnNames(stmt.where.get(), &names);
      for (const auto& g : stmt.group_by) CollectColumnNames(g.get(), &names);
      for (const auto& ob : stmt.order_by) CollectColumnNames(ob.expr.get(), &names);
      bool all_resolved = true;
      for (const auto& name : names) {
        const ColumnDescriptor* col = desc.FindColumn(name);
        if (col == nullptr) {
          // ORDER BY may name an output alias; that's fine — but a name we
          // can't resolve conservatively disables the projection.
          bool is_alias = false;
          for (const auto& item : stmt.items) {
            if (item.alias == name) is_alias = true;
          }
          if (!is_alias) all_resolved = false;
          continue;
        }
        needed.push_back(col->id);
      }
      if (all_resolved) needed_ptr = &needed;
    }
    VELOCE_RETURN_IF_ERROR(
        ScanTable(desc, stmt.where.get(), txn, params, &current, needed_ptr));
  } else {
    current.push_back(Row{});  // table-less SELECT evaluates one row
  }

  // Joins, left to right.
  Reader reader{txn, connector_};
  for (const auto& join : stmt.joins) {
    VELOCE_ASSIGN_OR_RETURN(TableDescriptor right, catalog_->GetTable(join.table));
    Binding rb;
    rb.alias = join.alias.empty() ? join.table : join.alias;
    rb.desc = right;
    rb.offset = bindings.empty() ? 0 : bindings.back().offset +
                                          bindings.back().desc.columns.size();
    // Extract equi-conjuncts left-side-expr = right-column.
    std::vector<const Expr*> on_conjuncts;
    CollectConjuncts(join.on.get(), &on_conjuncts);
    struct EquiPair {
      const Expr* left_expr;     // evaluable against current bindings
      uint32_t right_col_id;
    };
    std::vector<EquiPair> equis;
    std::vector<const Expr*> residual;
    for (const Expr* c : on_conjuncts) {
      bool matched = false;
      if (c->kind == Expr::Kind::kBinary && c->op == BinOp::kEq) {
        for (int flip = 0; flip < 2 && !matched; ++flip) {
          const Expr* maybe_right = flip == 0 ? c->right.get() : c->left.get();
          const Expr* maybe_left = flip == 0 ? c->left.get() : c->right.get();
          if (maybe_right->kind != Expr::Kind::kColumnRef) continue;
          if (!maybe_right->table_name.empty() && maybe_right->table_name != rb.alias) {
            continue;
          }
          const ColumnDescriptor* rcol = right.FindColumn(maybe_right->column_name);
          if (rcol == nullptr) continue;
          // The other side must be evaluable against the current bindings
          // (no references to the new table).
          if (maybe_left->kind == Expr::Kind::kColumnRef &&
              maybe_left->table_name == rb.alias) {
            continue;
          }
          equis.push_back({maybe_left, rcol->id});
          matched = true;
        }
      }
      if (!matched) residual.push_back(c);
    }

    // Index join if the equi columns cover the right table's PK in order.
    bool index_join = equis.size() == right.primary.column_ids.size();
    std::vector<const Expr*> pk_exprs(right.primary.column_ids.size(), nullptr);
    if (index_join) {
      for (size_t i = 0; i < right.primary.column_ids.size(); ++i) {
        for (const auto& pair : equis) {
          if (pair.right_col_id == right.primary.column_ids[i]) {
            pk_exprs[i] = pair.left_expr;
            break;
          }
        }
        if (pk_exprs[i] == nullptr) {
          index_join = false;
          break;
        }
      }
    }

    std::vector<Row> joined;
    if (index_join) {
      // Per-row KV point lookups (the Q9 plan shape).
      for (const Row& row : current) {
        EvalContext ctx{&bindings, &row, params, nullptr};
        std::vector<Datum> pk_values;
        bool null_key = false;
        for (const Expr* e : pk_exprs) {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          pk_values.push_back(std::move(v));
        }
        if (null_key) continue;
        const std::string key = EncodePrimaryKeyFromDatums(right, pk_values);
        std::optional<std::string> value;
        VELOCE_RETURN_IF_ERROR(reader.Get(key, &value));
        if (!value.has_value()) continue;
        Row right_row;
        VELOCE_RETURN_IF_ERROR(DecodeRow(right, key, *value, &right_row));
        Row combined = row;
        combined.insert(combined.end(), right_row.begin(), right_row.end());
        joined.push_back(std::move(combined));
      }
    } else {
      // Hash join (or nested loop when no equi columns exist).
      std::vector<Row> right_rows;
      VELOCE_RETURN_IF_ERROR(ScanTable(right, nullptr, txn, params, &right_rows));
      if (!equis.empty()) {
        std::multimap<std::string, const Row*> table;
        for (const Row& rrow : right_rows) {
          std::string key;
          for (const auto& pair : equis) {
            const int pos = right.ColumnIndex(pair.right_col_id);
            rrow[static_cast<size_t>(pos)].EncodeKey(&key);
          }
          table.emplace(std::move(key), &rrow);
        }
        for (const Row& row : current) {
          EvalContext ctx{&bindings, &row, params, nullptr};
          std::string key;
          bool null_key = false;
          for (const auto& pair : equis) {
            VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*pair.left_expr, ctx));
            if (v.is_null()) {
              null_key = true;
              break;
            }
            v.EncodeKey(&key);
          }
          if (null_key) continue;
          auto [lo, hi] = table.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            Row combined = row;
            combined.insert(combined.end(), it->second->begin(), it->second->end());
            joined.push_back(std::move(combined));
          }
        }
      } else {
        for (const Row& row : current) {
          for (const Row& rrow : right_rows) {
            Row combined = row;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            joined.push_back(std::move(combined));
          }
        }
      }
    }
    bindings.push_back(rb);
    current = std::move(joined);
    // Apply residual ON conjuncts.
    if (!residual.empty()) {
      std::vector<Row> filtered;
      for (Row& row : current) {
        EvalContext ctx{&bindings, &row, params, nullptr};
        bool keep = true;
        for (const Expr* c : residual) {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*c, ctx));
          if (!Truthy(v)) {
            keep = false;
            break;
          }
        }
        if (keep) filtered.push_back(std::move(row));
      }
      current = std::move(filtered);
    }
  }

  // Bind-time validation over the complete binding set (so errors surface
  // even when the tables are empty). ORDER BY is excluded: it resolves
  // against output column names below.
  for (const auto& item : stmt.items) {
    VELOCE_RETURN_IF_ERROR(ValidateExpr(item.expr.get(), bindings, params));
  }
  VELOCE_RETURN_IF_ERROR(ValidateExpr(stmt.where.get(), bindings, params));
  for (const auto& g : stmt.group_by) {
    VELOCE_RETURN_IF_ERROR(ValidateExpr(g.get(), bindings, params));
  }

  // WHERE (the PK-pushed conjuncts re-evaluate harmlessly).
  if (stmt.where != nullptr) {
    std::vector<Row> filtered;
    for (Row& row : current) {
      EvalContext ctx{&bindings, &row, params, nullptr};
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*stmt.where, ctx));
      if (Truthy(v)) filtered.push_back(std::move(row));
    }
    current = std::move(filtered);
  }

  // Determine projection items.
  std::vector<SelectItem> items;
  if (stmt.items.empty()) {
    // SELECT *: one column per bound table column.
    for (const auto& binding : bindings) {
      for (const auto& col : binding.desc.columns) {
        SelectItem item;
        item.expr = Expr::Column(binding.alias, col.name);
        item.alias = col.name;
        items.push_back(std::move(item));
      }
    }
  } else {
    for (const auto& item : stmt.items) {
      SelectItem copy;
      // Non-owning alias copy; expressions are borrowed via raw pointer
      // below, so shallow references suffice. We must not deep-copy Exprs;
      // instead remember pointers.
      copy.alias = item.alias;
      copy.expr = nullptr;
      items.push_back(std::move(copy));
    }
  }

  // For borrowed expressions, build a parallel pointer list.
  std::vector<const Expr*> item_exprs;
  std::vector<std::string> item_names;
  if (stmt.items.empty()) {
    for (auto& item : items) {
      item_exprs.push_back(item.expr.get());
      item_names.push_back(item.alias);
    }
  } else {
    for (const auto& item : stmt.items) {
      item_exprs.push_back(item.expr.get());
      item_names.push_back(DeriveColumnName(*item.expr, item.alias));
    }
  }
  result.columns = item_names;

  // Aggregation?
  bool any_agg = !stmt.group_by.empty();
  for (const Expr* e : item_exprs) {
    if (HasAggregate(e)) any_agg = true;
  }

  // Resolve ORDER BY items up front: each is either an output column
  // (by name/alias or 1-based ordinal) or — for non-aggregated queries —
  // an arbitrary expression over the input row (standard SQL allows
  // ordering by non-projected columns).
  struct SortKey {
    int output_idx = -1;        // >= 0: sort by this output column
    const Expr* expr = nullptr; // else: evaluate against the input row
    bool desc = false;
  };
  std::vector<SortKey> sort_keys;
  for (const auto& ob : stmt.order_by) {
    SortKey key;
    key.desc = ob.desc;
    if (ob.expr->kind == Expr::Kind::kColumnRef) {
      // Match output columns by (possibly qualified) name: `ORDER BY n.name`
      // matches the output column "name" derived from n.name.
      for (size_t i = 0; i < item_names.size(); ++i) {
        if (item_names[i] == ob.expr->column_name) {
          key.output_idx = static_cast<int>(i);
          break;
        }
      }
    } else if (ob.expr->kind == Expr::Kind::kLiteral &&
               ob.expr->literal.kind() == TypeKind::kInt) {
      const int idx = static_cast<int>(ob.expr->literal.int_value()) - 1;
      if (idx < 0 || idx >= static_cast<int>(item_names.size())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      key.output_idx = idx;
    }
    if (key.output_idx < 0) {
      key.expr = ob.expr.get();
      VELOCE_RETURN_IF_ERROR(ValidateExpr(key.expr, bindings, params));
    }
    sort_keys.push_back(key);
  }
  const bool needs_input_keys = [&] {
    for (const auto& key : sort_keys) {
      if (key.expr != nullptr) return true;
    }
    return false;
  }();

  std::vector<Row> output;
  std::vector<Row> input_sort_values;  // parallel to output, expr-key values
  if (any_agg) {
    if (needs_input_keys) {
      return Status::InvalidArgument(
          "ORDER BY must name an output column in aggregated queries");
    }
    // Group rows by the GROUP BY key.
    struct Group {
      Row representative;
      std::map<const Expr*, AggState> states;
      std::vector<Datum> key_values;
    };
    std::map<std::string, Group> groups;
    std::vector<const Expr*> agg_nodes;
    for (const Expr* e : item_exprs) CollectAggregates(e, &agg_nodes);

    for (const Row& row : current) {
      EvalContext ctx{&bindings, &row, params, nullptr};
      std::string key;
      std::vector<Datum> key_values;
      for (const auto& g : stmt.group_by) {
        VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*g, ctx));
        v.EncodeKey(&key);
        key_values.push_back(std::move(v));
      }
      Group& group = groups[key];
      if (group.representative.empty() && !row.empty()) group.representative = row;
      group.key_values = key_values;
      for (const Expr* agg : agg_nodes) {
        AggState& state = group.states[agg];
        if (agg->child->kind == Expr::Kind::kStar) {
          state.Accumulate(Datum::Int(1), AggFunc::kCount);
        } else {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*agg->child, ctx));
          if (agg->agg == AggFunc::kCount) {
            if (!v.is_null()) state.Accumulate(v, AggFunc::kCount);
          } else {
            state.Accumulate(v, agg->agg);
          }
        }
      }
    }
    // Aggregates over an empty input with no GROUP BY produce one row.
    if (groups.empty() && stmt.group_by.empty()) {
      groups[""] = Group{};
    }
    for (auto& [key, group] : groups) {
      std::map<const Expr*, Datum> agg_values;
      for (const Expr* agg : agg_nodes) {
        agg_values[agg] = group.states[agg].Result(agg->agg);
      }
      const Row& rep = group.representative;
      EvalContext ctx{&bindings, &rep, params, &agg_values};
      Row out_row;
      for (const Expr* e : item_exprs) {
        VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
        out_row.push_back(std::move(v));
      }
      output.push_back(std::move(out_row));
    }
  } else {
    for (const Row& row : current) {
      EvalContext ctx{&bindings, &row, params, nullptr};
      Row out_row;
      for (const Expr* e : item_exprs) {
        VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
        out_row.push_back(std::move(v));
      }
      output.push_back(std::move(out_row));
      if (needs_input_keys) {
        Row keys;
        for (const auto& key : sort_keys) {
          if (key.expr == nullptr) {
            keys.push_back(Datum::Null());  // placeholder; output idx used
          } else {
            VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*key.expr, ctx));
            keys.push_back(std::move(v));
          }
        }
        input_sort_values.push_back(std::move(keys));
      }
    }
  }

  // ORDER BY: sort by output columns and/or pre-evaluated input keys.
  if (!sort_keys.empty()) {
    std::vector<size_t> order(output.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < sort_keys.size(); ++k) {
        const SortKey& key = sort_keys[k];
        const Datum& va = key.output_idx >= 0
                              ? output[a][static_cast<size_t>(key.output_idx)]
                              : input_sort_values[a][k];
        const Datum& vb = key.output_idx >= 0
                              ? output[b][static_cast<size_t>(key.output_idx)]
                              : input_sort_values[b][k];
        const int c = va.Compare(vb);
        if (c != 0) return key.desc ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(output.size());
    for (size_t idx : order) sorted.push_back(std::move(output[idx]));
    output = std::move(sorted);
  }

  if (stmt.limit >= 0 && output.size() > static_cast<size_t>(stmt.limit)) {
    output.resize(static_cast<size_t>(stmt.limit));
  }
  result.rows = std::move(output);
  return result;
}

// --- DML ----------------------------------------------------------------------

Status Executor::WriteRow(const TableDescriptor& desc, const Row& row, TenantTxn* txn,
                          bool check_duplicate) {
  const std::string pk = EncodePrimaryKey(desc, row);
  std::optional<std::string> existing;
  VELOCE_RETURN_IF_ERROR(txn->Get(pk, &existing));
  if (existing.has_value()) {
    if (check_duplicate) {
      return Status::AlreadyExists("duplicate primary key in " + desc.name);
    }
    // Upsert over an existing row: retire stale secondary entries.
    Row old_row;
    VELOCE_RETURN_IF_ERROR(DecodeRow(desc, pk, *existing, &old_row));
    for (const auto& index : desc.secondaries) {
      const std::string old_key = EncodeSecondaryKey(desc, index, old_row);
      const std::string new_key = EncodeSecondaryKey(desc, index, row);
      if (old_key != new_key) {
        VELOCE_RETURN_IF_ERROR(txn->Delete(old_key));
      }
    }
  }
  VELOCE_RETURN_IF_ERROR(txn->Put(pk, EncodeRowValue(desc, row)));
  for (const auto& index : desc.secondaries) {
    VELOCE_RETURN_IF_ERROR(txn->Put(EncodeSecondaryKey(desc, index, row), ""));
  }
  return Status::OK();
}

Status Executor::DeleteRow(const TableDescriptor& desc, const Row& row, TenantTxn* txn) {
  VELOCE_RETURN_IF_ERROR(txn->Delete(EncodePrimaryKey(desc, row)));
  for (const auto& index : desc.secondaries) {
    VELOCE_RETURN_IF_ERROR(txn->Delete(EncodeSecondaryKey(desc, index, row)));
  }
  return Status::OK();
}

StatusOr<ResultSet> Executor::ExecInsert(const InsertStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  // Resolve target column positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < desc.columns.size(); ++i) positions.push_back(static_cast<int>(i));
  } else {
    for (const auto& name : stmt.columns) {
      const ColumnDescriptor* col = desc.FindColumn(name);
      if (col == nullptr) return Status::NotFound("no such column: " + name);
      positions.push_back(desc.ColumnIndex(col->id));
    }
  }

  std::vector<Binding> no_bindings;
  Row empty_row;
  EvalContext ctx{&no_bindings, &empty_row, params, nullptr};
  ResultSet result;
  for (const auto& value_row : stmt.values) {
    if (value_row.size() != positions.size()) {
      return Status::InvalidArgument("INSERT value count mismatch");
    }
    Row row(desc.columns.size(), Datum::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*value_row[i], ctx));
      row[static_cast<size_t>(positions[i])] = std::move(v);
    }
    // NOT NULL enforcement.
    for (size_t i = 0; i < desc.columns.size(); ++i) {
      if (!desc.columns[i].nullable && row[i].is_null()) {
        return Status::InvalidArgument("null value in non-nullable column " +
                                       desc.columns[i].name);
      }
    }
    VELOCE_RETURN_IF_ERROR(WriteRow(desc, row, txn, /*check_duplicate=*/!stmt.upsert));
    ++result.rows_affected;
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecUpdate(const UpdateStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  std::vector<Binding> bindings;
  Binding base;
  base.alias = stmt.table;
  base.desc = desc;
  bindings.push_back(base);

  for (const auto& [col_name, expr] : stmt.assignments) {
    if (desc.FindColumn(col_name) == nullptr) {
      return Status::NotFound("no such column: " + col_name);
    }
    VELOCE_RETURN_IF_ERROR(ValidateExpr(expr.get(), bindings, params));
  }
  VELOCE_RETURN_IF_ERROR(ValidateExpr(stmt.where.get(), bindings, params));

  std::vector<Row> rows;
  VELOCE_RETURN_IF_ERROR(ScanTable(desc, stmt.where.get(), txn, params, &rows));

  ResultSet result;
  for (const Row& old_row : rows) {
    EvalContext ctx{&bindings, &old_row, params, nullptr};
    if (stmt.where != nullptr) {
      VELOCE_ASSIGN_OR_RETURN(Datum keep, Eval(*stmt.where, ctx));
      if (!Truthy(keep)) continue;
    }
    Row new_row = old_row;
    for (const auto& [col_name, expr] : stmt.assignments) {
      const ColumnDescriptor* col = desc.FindColumn(col_name);
      if (col == nullptr) return Status::NotFound("no such column: " + col_name);
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*expr, ctx));
      if (!col->nullable && v.is_null()) {
        return Status::InvalidArgument("null value in non-nullable column " + col_name);
      }
      new_row[static_cast<size_t>(desc.ColumnIndex(col->id))] = std::move(v);
    }
    const bool pk_changed =
        EncodePrimaryKey(desc, old_row) != EncodePrimaryKey(desc, new_row);
    if (pk_changed) {
      VELOCE_RETURN_IF_ERROR(DeleteRow(desc, old_row, txn));
      VELOCE_RETURN_IF_ERROR(WriteRow(desc, new_row, txn, /*check_duplicate=*/true));
    } else {
      VELOCE_RETURN_IF_ERROR(WriteRow(desc, new_row, txn, /*check_duplicate=*/false));
    }
    ++result.rows_affected;
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecDelete(const DeleteStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  std::vector<Binding> bindings;
  Binding base;
  base.alias = stmt.table;
  base.desc = desc;
  bindings.push_back(base);

  VELOCE_RETURN_IF_ERROR(ValidateExpr(stmt.where.get(), bindings, params));

  std::vector<Row> rows;
  VELOCE_RETURN_IF_ERROR(ScanTable(desc, stmt.where.get(), txn, params, &rows));
  ResultSet result;
  for (const Row& row : rows) {
    EvalContext ctx{&bindings, &row, params, nullptr};
    if (stmt.where != nullptr) {
      VELOCE_ASSIGN_OR_RETURN(Datum keep, Eval(*stmt.where, ctx));
      if (!Truthy(keep)) continue;
    }
    VELOCE_RETURN_IF_ERROR(DeleteRow(desc, row, txn));
    ++result.rows_affected;
  }
  return result;
}

}  // namespace veloce::sql
