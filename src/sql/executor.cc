#include "sql/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/codec.h"
#include "common/logging.h"
#include "sql/pushdown.h"
#include "sql/vec/vec_exec.h"

namespace veloce::sql {

// The expression interpreter, scan-constraint extraction, AggState, and
// Reader all live in sql/eval.{h,cc} — shared with the vectorized engine
// (sql/vec/) and the KV-side pushdown evaluator (sql/pushdown.cc).

// ---------------------------------------------------------------------------
// ResultSet
// ---------------------------------------------------------------------------

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += columns[i];
    out += (i + 1 < columns.size()) ? " | " : "\n";
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += row[i].ToString();
      out += (i + 1 < row.size()) ? " | " : "\n";
    }
  }
  if (columns.empty()) {
    out += "(" + std::to_string(rows_affected) + " rows affected)\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(Catalog* catalog, KvConnector* connector,
                   const obs::ObsContext& obs)
    : catalog_(catalog), connector_(connector) {
  const obs::Labels tenant{
      {"tenant", std::to_string(connector != nullptr ? connector->tenant_id() : 0)}};
  obs::MetricsRegistry* metrics = obs.metrics_or_noop();
  rows_scanned_c_ = metrics->counter("veloce_sql_rows_scanned_total", tenant);
  batches_c_ = metrics->counter("veloce_sql_batches_total", tenant);
  obs::Labels vec_labels = tenant, row_labels = tenant;
  vec_labels.emplace_back("engine", "vectorized");
  row_labels.emplace_back("engine", "row");
  engine_vec_c_ = metrics->counter("veloce_sql_exec_engine_total", vec_labels);
  engine_row_c_ = metrics->counter("veloce_sql_exec_engine_total", row_labels);
}

StatusOr<ResultSet> Executor::Execute(const Statement& stmt, TenantTxn* txn,
                                      const std::vector<Datum>* params) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable:
      return ExecCreateTable(stmt.create_table);
    case Statement::Kind::kCreateIndex:
      return ExecCreateIndex(stmt.create_index, txn);
    case Statement::Kind::kDropTable:
      return ExecDropTable(stmt.drop_table);
    case Statement::Kind::kSelect:
      return DispatchSelect(stmt.select, txn, params);
    case Statement::Kind::kInsert:
    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete: {
      // DML needs a transaction. Use the session's, or an implicit one
      // with a small retry loop for serializability conflicts.
      if (txn != nullptr) {
        if (stmt.kind == Statement::Kind::kInsert) return ExecInsert(stmt.insert, txn, params);
        if (stmt.kind == Statement::Kind::kUpdate) return ExecUpdate(stmt.update, txn, params);
        return ExecDelete(stmt.del, txn, params);
      }
      Status last = Status::OK();
      for (int attempt = 0; attempt < 5; ++attempt) {
        auto implicit = connector_->BeginTransaction();
        StatusOr<ResultSet> result =
            stmt.kind == Statement::Kind::kInsert
                ? ExecInsert(stmt.insert, implicit.get(), params)
                : stmt.kind == Statement::Kind::kUpdate
                      ? ExecUpdate(stmt.update, implicit.get(), params)
                      : ExecDelete(stmt.del, implicit.get(), params);
        if (!result.ok()) {
          (void)implicit->Rollback();
          last = result.status();
          // Lease-epoch mismatch is a pre-apply routing rejection: the
          // lease moved (or expired) under us; a fresh attempt reaches the
          // new leaseholder.
          if (last.IsWriteIntentError() || last.IsTransactionRetry() ||
              last.IsLeaseEpochMismatch() ||
              last.code() == Code::kTransactionAborted) {
            continue;
          }
          return last;
        }
        Status commit = implicit->Commit();
        if (commit.ok()) return result;
        last = commit;
        if (!commit.IsTransactionRetry() && !commit.IsLeaseEpochMismatch() &&
            commit.code() != Code::kTransactionAborted) {
          return commit;
        }
      }
      return last.ok() ? Status::TransactionRetry("implicit txn retries exhausted")
                       : last;
    }
    case Statement::Kind::kTxn:
      return Status::InvalidArgument("transaction control handled by the session");
    case Statement::Kind::kSet:
      return Status::InvalidArgument("SET handled by the session");
  }
  return Status::Internal("unhandled statement kind");
}

// Engine dispatch (docs/SQL_EXEC.md): non-transactional SELECTs try the
// vectorized engine first; NotSupported from its planner means "not
// covered", and the statement re-runs on the row engine. Any other status
// (including real errors) is final — both engines implement identical
// semantics, so there is no second try that could change the answer.
StatusOr<ResultSet> Executor::DispatchSelect(const SelectStmt& stmt, TenantTxn* txn,
                                             const std::vector<Datum>* params) {
  if (engine_ != ExecEngine::kRow && txn == nullptr) {
    vec::VecExecutor vexec(catalog_, connector_, pushdown_enabled_);
    StatusOr<ResultSet> result = vexec.ExecSelect(stmt, params);
    rows_scanned_c_->Inc(vexec.rows_scanned());
    batches_c_->Inc(vexec.batches());
    if (result.ok() || result.status().code() != Code::kNotSupported) {
      last_select_engine_ = "vectorized";
      engine_vec_c_->Inc();
      return result;
    }
    if (engine_ == ExecEngine::kVectorized) return result.status();
  } else if (engine_ == ExecEngine::kVectorized) {
    return Status::NotSupported(
        "vectorized engine does not cover transactional reads");
  }
  last_select_engine_ = "row";
  engine_row_c_->Inc();
  return ExecSelect(stmt, txn, params);
}

StatusOr<ResultSet> Executor::ExecCreateTable(const CreateTableStmt& stmt) {
  TableDescriptor proto;
  proto.name = stmt.table;
  std::vector<std::string> pk = stmt.primary_key;
  for (const auto& col_def : stmt.columns) {
    ColumnDescriptor col;
    col.name = col_def.name;
    col.type = col_def.type;
    col.nullable = !col_def.not_null;
    proto.columns.push_back(col);
    if (col_def.primary_key) pk.push_back(col_def.name);
  }
  if (pk.empty()) {
    return Status::InvalidArgument("table requires a PRIMARY KEY: " + stmt.table);
  }
  // Assign column ids now so the primary index can reference them.
  for (size_t i = 0; i < proto.columns.size(); ++i) {
    proto.columns[i].id = static_cast<uint32_t>(i + 1);
  }
  for (const auto& name : pk) {
    const ColumnDescriptor* col = proto.FindColumn(name);
    if (col == nullptr) {
      return Status::InvalidArgument("primary key column not found: " + name);
    }
    proto.primary.column_ids.push_back(col->id);
    // PK columns are implicitly NOT NULL.
    proto.columns[static_cast<size_t>(proto.ColumnIndex(col->id))].nullable = false;
  }
  auto created = catalog_->CreateTable(proto);
  if (!created.ok() && created.status().code() == Code::kAlreadyExists &&
      stmt.if_not_exists) {
    return ResultSet{};
  }
  VELOCE_RETURN_IF_ERROR(created.status());
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCreateIndex(const CreateIndexStmt& stmt,
                                              TenantTxn* txn) {
  VELOCE_ASSIGN_OR_RETURN(IndexDescriptor idx,
                          catalog_->CreateIndex(stmt.table, stmt.index, stmt.columns));
  // Backfill existing rows.
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  std::vector<Row> rows;
  VELOCE_RETURN_IF_ERROR(ScanTable(desc, desc.name, nullptr, txn, nullptr, &rows));
  kv::BatchRequest backfill;
  for (const Row& row : rows) {
    backfill.AddPut(EncodeSecondaryKey(desc, idx, row), "");
  }
  if (!backfill.requests.empty()) {
    VELOCE_RETURN_IF_ERROR(connector_->Send(backfill).status());
  }
  ResultSet result;
  result.rows_affected = rows.size();
  return result;
}

StatusOr<ResultSet> Executor::ExecDropTable(const DropTableStmt& stmt) {
  VELOCE_RETURN_IF_ERROR(catalog_->DropTable(stmt.table));
  return ResultSet{};
}

// --- scanning ---------------------------------------------------------------

Status Executor::ScanTable(const TableDescriptor& desc, const std::string& alias,
                           const Expr* where, TenantTxn* txn,
                           const std::vector<Datum>* params, std::vector<Row>* rows,
                           const std::vector<uint32_t>* needed_columns) {
  Reader reader{txn, connector_};
  const ScanConstraints plan = BuildScanConstraints(desc, alias, where, params);

  if (plan.point) {
    // Full PK: point lookup.
    std::optional<std::string> value;
    VELOCE_RETURN_IF_ERROR(reader.Get(plan.start, &value));
    if (value.has_value()) {
      Row row;
      VELOCE_RETURN_IF_ERROR(DecodeRow(desc, plan.start, *value, &row));
      rows->push_back(std::move(row));
      rows_scanned_c_->Inc();
    }
    return Status::OK();
  }

  // No useful PK constraint and a secondary index matches? Use an index
  // scan + lookup join back to the primary index.
  if (plan.eq_cols == 0) {
    for (const auto& index : desc.secondaries) {
      if (index.column_ids.empty()) continue;
      auto it = plan.eq.find(index.column_ids[0]);
      if (it == plan.eq.end()) continue;
      // Build the index span over the leading equality columns.
      std::string idx_start = IndexPrefix(desc.id, index.id);
      for (uint32_t col_id : index.column_ids) {
        auto eq_it = plan.eq.find(col_id);
        if (eq_it == plan.eq.end()) break;
        eq_it->second.EncodeKey(&idx_start);
      }
      std::vector<kv::MvccScanEntry> entries;
      VELOCE_RETURN_IF_ERROR(
          reader.Scan(idx_start, PrefixEnd(idx_start), 0, &entries));
      for (const auto& entry : entries) {
        std::vector<Datum> pk;
        VELOCE_RETURN_IF_ERROR(DecodeSecondaryKeyPk(desc, index, entry.key, &pk));
        const std::string pk_key = EncodePrimaryKeyFromDatums(desc, pk);
        std::optional<std::string> value;
        VELOCE_RETURN_IF_ERROR(reader.Get(pk_key, &value));
        if (!value.has_value()) continue;  // index entry racing a delete
        Row row;
        VELOCE_RETURN_IF_ERROR(DecodeRow(desc, pk_key, *value, &row));
        rows->push_back(std::move(row));
        rows_scanned_c_->Inc();
      }
      return Status::OK();
    }
  }

  // Row-filter / projection push-down (DESIGN.md Section 6): eligible
  // residual conjuncts and the needed-column list travel with the scan and
  // evaluate at the KV node. Only for non-transactional reads (txn scans
  // must observe their own intents through the txn path).
  std::string pushdown_spec;
  if (pushdown_enabled_ && txn == nullptr) {
    PushdownSpec spec = MakeFilterSpec(plan, needed_columns, desc);
    if (!spec.empty()) pushdown_spec = spec.Encode();
  }

  std::vector<kv::MvccScanEntry> entries;
  VELOCE_RETURN_IF_ERROR(reader.Scan(plan.start, plan.end, 0, &entries, pushdown_spec));
  rows->reserve(entries.size());
  for (const auto& entry : entries) {
    Row row;
    VELOCE_RETURN_IF_ERROR(DecodeRow(desc, entry.key, entry.value, &row));
    rows->push_back(std::move(row));
  }
  rows_scanned_c_->Inc(entries.size());
  return Status::OK();
}

// --- SELECT ------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecSelect(const SelectStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  ResultSet result;
  std::vector<Binding> bindings;
  std::vector<Row> current;  // concatenated rows

  if (!stmt.table.empty()) {
    VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
    Binding base;
    base.alias = stmt.table_alias.empty() ? stmt.table : stmt.table_alias;
    base.desc = desc;
    base.offset = 0;
    bindings.push_back(base);
    // Projection push-down input: for single-table queries with an explicit
    // select list, only the referenced columns need to leave the KV node.
    std::vector<uint32_t> needed;
    const std::vector<uint32_t>* needed_ptr = nullptr;
    if (pushdown_enabled_ && stmt.joins.empty() && !stmt.items.empty() &&
        CollectNeededColumns(stmt, desc, &needed)) {
      needed_ptr = &needed;
    }
    VELOCE_RETURN_IF_ERROR(ScanTable(desc, base.alias, stmt.where.get(), txn,
                                     params, &current, needed_ptr));
  } else {
    current.push_back(Row{});  // table-less SELECT evaluates one row
  }

  // Joins, left to right.
  Reader reader{txn, connector_};
  for (const auto& join : stmt.joins) {
    VELOCE_ASSIGN_OR_RETURN(TableDescriptor right, catalog_->GetTable(join.table));
    Binding rb;
    rb.alias = join.alias.empty() ? join.table : join.alias;
    rb.desc = right;
    rb.offset = bindings.empty() ? 0 : bindings.back().offset +
                                          bindings.back().desc.columns.size();
    // Extract equi-conjuncts left-side-expr = right-column.
    std::vector<const Expr*> on_conjuncts;
    CollectConjuncts(join.on.get(), &on_conjuncts);
    std::vector<JoinEquiPair> equis;
    std::vector<const Expr*> residual;
    ExtractJoinEquis(on_conjuncts, right, rb.alias, &equis, &residual);

    // Index join if the equi columns cover the right table's PK in order.
    bool index_join = equis.size() == right.primary.column_ids.size();
    std::vector<const Expr*> pk_exprs(right.primary.column_ids.size(), nullptr);
    if (index_join) {
      for (size_t i = 0; i < right.primary.column_ids.size(); ++i) {
        for (const auto& pair : equis) {
          if (pair.right_col_id == right.primary.column_ids[i]) {
            pk_exprs[i] = pair.left_expr;
            break;
          }
        }
        if (pk_exprs[i] == nullptr) {
          index_join = false;
          break;
        }
      }
    }

    std::vector<Row> joined;
    if (index_join) {
      // Per-row KV point lookups (the Q9 plan shape).
      for (const Row& row : current) {
        EvalContext ctx{&bindings, &row, params, nullptr};
        std::vector<Datum> pk_values;
        bool null_key = false;
        for (const Expr* e : pk_exprs) {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          pk_values.push_back(std::move(v));
        }
        if (null_key) continue;
        const std::string key = EncodePrimaryKeyFromDatums(right, pk_values);
        std::optional<std::string> value;
        VELOCE_RETURN_IF_ERROR(reader.Get(key, &value));
        if (!value.has_value()) continue;
        Row right_row;
        VELOCE_RETURN_IF_ERROR(DecodeRow(right, key, *value, &right_row));
        Row combined = row;
        combined.insert(combined.end(), right_row.begin(), right_row.end());
        joined.push_back(std::move(combined));
      }
    } else {
      // Hash join (or nested loop when no equi columns exist).
      std::vector<Row> right_rows;
      VELOCE_RETURN_IF_ERROR(
          ScanTable(right, rb.alias, nullptr, txn, params, &right_rows));
      if (!equis.empty()) {
        std::multimap<std::string, const Row*> table;
        for (const Row& rrow : right_rows) {
          std::string key;
          for (const auto& pair : equis) {
            const int pos = right.ColumnIndex(pair.right_col_id);
            rrow[static_cast<size_t>(pos)].EncodeKey(&key);
          }
          table.emplace(std::move(key), &rrow);
        }
        for (const Row& row : current) {
          EvalContext ctx{&bindings, &row, params, nullptr};
          std::string key;
          bool null_key = false;
          for (const auto& pair : equis) {
            VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*pair.left_expr, ctx));
            if (v.is_null()) {
              null_key = true;
              break;
            }
            v.EncodeKey(&key);
          }
          if (null_key) continue;
          auto [lo, hi] = table.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            Row combined = row;
            combined.insert(combined.end(), it->second->begin(), it->second->end());
            joined.push_back(std::move(combined));
          }
        }
      } else {
        for (const Row& row : current) {
          for (const Row& rrow : right_rows) {
            Row combined = row;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            joined.push_back(std::move(combined));
          }
        }
      }
    }
    bindings.push_back(rb);
    current = std::move(joined);
    // Apply residual ON conjuncts.
    if (!residual.empty()) {
      std::vector<Row> filtered;
      for (Row& row : current) {
        EvalContext ctx{&bindings, &row, params, nullptr};
        bool keep = true;
        for (const Expr* c : residual) {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*c, ctx));
          if (!Truthy(v)) {
            keep = false;
            break;
          }
        }
        if (keep) filtered.push_back(std::move(row));
      }
      current = std::move(filtered);
    }
  }

  // Bind-time validation over the complete binding set (so errors surface
  // even when the tables are empty). ORDER BY is excluded: it resolves
  // against output column names below.
  for (const auto& item : stmt.items) {
    VELOCE_RETURN_IF_ERROR(ValidateExpr(item.expr.get(), bindings, params));
  }
  VELOCE_RETURN_IF_ERROR(ValidateExpr(stmt.where.get(), bindings, params));
  for (const auto& g : stmt.group_by) {
    VELOCE_RETURN_IF_ERROR(ValidateExpr(g.get(), bindings, params));
  }

  // WHERE (the PK-pushed conjuncts re-evaluate harmlessly).
  if (stmt.where != nullptr) {
    std::vector<Row> filtered;
    for (Row& row : current) {
      EvalContext ctx{&bindings, &row, params, nullptr};
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*stmt.where, ctx));
      if (Truthy(v)) filtered.push_back(std::move(row));
    }
    current = std::move(filtered);
  }

  // Determine projection items. SELECT * expands to one column per bound
  // table column (owned expressions); otherwise items are borrowed.
  std::vector<ExprPtr> star_exprs;
  std::vector<const Expr*> item_exprs;
  std::vector<std::string> item_names;
  if (stmt.items.empty()) {
    for (const auto& binding : bindings) {
      for (const auto& col : binding.desc.columns) {
        star_exprs.push_back(Expr::Column(binding.alias, col.name));
        item_exprs.push_back(star_exprs.back().get());
        item_names.push_back(col.name);
      }
    }
  } else {
    for (const auto& item : stmt.items) {
      item_exprs.push_back(item.expr.get());
      item_names.push_back(DeriveColumnName(*item.expr, item.alias));
    }
  }
  result.columns = item_names;

  // Aggregation?
  bool any_agg = !stmt.group_by.empty();
  for (const Expr* e : item_exprs) {
    if (HasAggregate(e)) any_agg = true;
  }

  // Resolve ORDER BY items up front: each is either an output column
  // (by name/alias or 1-based ordinal) or — for non-aggregated queries —
  // an arbitrary expression over the input row (standard SQL allows
  // ordering by non-projected columns).
  struct SortKey {
    int output_idx = -1;        // >= 0: sort by this output column
    const Expr* expr = nullptr; // else: evaluate against the input row
    bool desc = false;
  };
  std::vector<SortKey> sort_keys;
  for (const auto& ob : stmt.order_by) {
    SortKey key;
    key.desc = ob.desc;
    if (ob.expr->kind == Expr::Kind::kColumnRef) {
      // Match output columns by (possibly qualified) name: `ORDER BY n.name`
      // matches the output column "name" derived from n.name.
      for (size_t i = 0; i < item_names.size(); ++i) {
        if (item_names[i] == ob.expr->column_name) {
          key.output_idx = static_cast<int>(i);
          break;
        }
      }
    } else if (ob.expr->kind == Expr::Kind::kLiteral &&
               ob.expr->literal.kind() == TypeKind::kInt) {
      const int idx = static_cast<int>(ob.expr->literal.int_value()) - 1;
      if (idx < 0 || idx >= static_cast<int>(item_names.size())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      key.output_idx = idx;
    }
    if (key.output_idx < 0) {
      key.expr = ob.expr.get();
      VELOCE_RETURN_IF_ERROR(ValidateExpr(key.expr, bindings, params));
    }
    sort_keys.push_back(key);
  }
  const bool needs_input_keys = [&] {
    for (const auto& key : sort_keys) {
      if (key.expr != nullptr) return true;
    }
    return false;
  }();

  std::vector<Row> output;
  std::vector<Row> input_sort_values;  // parallel to output, expr-key values
  if (any_agg) {
    if (needs_input_keys) {
      return Status::InvalidArgument(
          "ORDER BY must name an output column in aggregated queries");
    }
    // Group rows by the GROUP BY key.
    struct Group {
      Row representative;
      std::map<const Expr*, AggState> states;
      std::vector<Datum> key_values;
    };
    std::map<std::string, Group> groups;
    std::vector<const Expr*> agg_nodes;
    for (const Expr* e : item_exprs) CollectAggregates(e, &agg_nodes);

    for (const Row& row : current) {
      EvalContext ctx{&bindings, &row, params, nullptr};
      std::string key;
      std::vector<Datum> key_values;
      for (const auto& g : stmt.group_by) {
        VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*g, ctx));
        v.EncodeKey(&key);
        key_values.push_back(std::move(v));
      }
      Group& group = groups[key];
      if (group.representative.empty() && !row.empty()) group.representative = row;
      group.key_values = key_values;
      for (const Expr* agg : agg_nodes) {
        AggState& state = group.states[agg];
        if (agg->child->kind == Expr::Kind::kStar) {
          state.Accumulate(Datum::Int(1), AggFunc::kCount);
        } else {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*agg->child, ctx));
          if (agg->agg == AggFunc::kCount) {
            if (!v.is_null()) state.Accumulate(v, AggFunc::kCount);
          } else {
            state.Accumulate(v, agg->agg);
          }
        }
      }
    }
    // Aggregates over an empty input with no GROUP BY produce one row.
    if (groups.empty() && stmt.group_by.empty()) {
      groups[""] = Group{};
    }
    for (auto& [key, group] : groups) {
      std::map<const Expr*, Datum> agg_values;
      for (const Expr* agg : agg_nodes) {
        agg_values[agg] = group.states[agg].Result(agg->agg);
      }
      const Row& rep = group.representative;
      EvalContext ctx{&bindings, &rep, params, &agg_values};
      Row out_row;
      for (const Expr* e : item_exprs) {
        VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
        out_row.push_back(std::move(v));
      }
      output.push_back(std::move(out_row));
    }
  } else {
    for (const Row& row : current) {
      EvalContext ctx{&bindings, &row, params, nullptr};
      Row out_row;
      for (const Expr* e : item_exprs) {
        VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
        out_row.push_back(std::move(v));
      }
      output.push_back(std::move(out_row));
      if (needs_input_keys) {
        Row keys;
        for (const auto& key : sort_keys) {
          if (key.expr == nullptr) {
            keys.push_back(Datum::Null());  // placeholder; output idx used
          } else {
            VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*key.expr, ctx));
            keys.push_back(std::move(v));
          }
        }
        input_sort_values.push_back(std::move(keys));
      }
    }
  }

  // ORDER BY: sort by output columns and/or pre-evaluated input keys.
  if (!sort_keys.empty()) {
    std::vector<size_t> order(output.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < sort_keys.size(); ++k) {
        const SortKey& key = sort_keys[k];
        const Datum& va = key.output_idx >= 0
                              ? output[a][static_cast<size_t>(key.output_idx)]
                              : input_sort_values[a][k];
        const Datum& vb = key.output_idx >= 0
                              ? output[b][static_cast<size_t>(key.output_idx)]
                              : input_sort_values[b][k];
        const int c = va.Compare(vb);
        if (c != 0) return key.desc ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(output.size());
    for (size_t idx : order) sorted.push_back(std::move(output[idx]));
    output = std::move(sorted);
  }

  if (stmt.limit >= 0 && output.size() > static_cast<size_t>(stmt.limit)) {
    output.resize(static_cast<size_t>(stmt.limit));
  }
  result.rows = std::move(output);
  return result;
}

// --- DML ----------------------------------------------------------------------

Status Executor::WriteRow(const TableDescriptor& desc, const Row& row, TenantTxn* txn,
                          bool check_duplicate) {
  const std::string pk = EncodePrimaryKey(desc, row);
  std::optional<std::string> existing;
  VELOCE_RETURN_IF_ERROR(txn->Get(pk, &existing));
  if (existing.has_value()) {
    if (check_duplicate) {
      return Status::AlreadyExists("duplicate primary key in " + desc.name);
    }
    // Upsert over an existing row: retire stale secondary entries.
    Row old_row;
    VELOCE_RETURN_IF_ERROR(DecodeRow(desc, pk, *existing, &old_row));
    for (const auto& index : desc.secondaries) {
      const std::string old_key = EncodeSecondaryKey(desc, index, old_row);
      const std::string new_key = EncodeSecondaryKey(desc, index, row);
      if (old_key != new_key) {
        VELOCE_RETURN_IF_ERROR(txn->Delete(old_key));
      }
    }
  }
  VELOCE_RETURN_IF_ERROR(txn->Put(pk, EncodeRowValue(desc, row)));
  for (const auto& index : desc.secondaries) {
    VELOCE_RETURN_IF_ERROR(txn->Put(EncodeSecondaryKey(desc, index, row), ""));
  }
  return Status::OK();
}

Status Executor::DeleteRow(const TableDescriptor& desc, const Row& row, TenantTxn* txn) {
  VELOCE_RETURN_IF_ERROR(txn->Delete(EncodePrimaryKey(desc, row)));
  for (const auto& index : desc.secondaries) {
    VELOCE_RETURN_IF_ERROR(txn->Delete(EncodeSecondaryKey(desc, index, row)));
  }
  return Status::OK();
}

StatusOr<ResultSet> Executor::ExecInsert(const InsertStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  // Resolve target column positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < desc.columns.size(); ++i) positions.push_back(static_cast<int>(i));
  } else {
    for (const auto& name : stmt.columns) {
      const ColumnDescriptor* col = desc.FindColumn(name);
      if (col == nullptr) return Status::NotFound("no such column: " + name);
      positions.push_back(desc.ColumnIndex(col->id));
    }
  }

  std::vector<Binding> no_bindings;
  Row empty_row;
  EvalContext ctx{&no_bindings, &empty_row, params, nullptr};
  ResultSet result;
  for (const auto& value_row : stmt.values) {
    if (value_row.size() != positions.size()) {
      return Status::InvalidArgument("INSERT value count mismatch");
    }
    Row row(desc.columns.size(), Datum::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*value_row[i], ctx));
      row[static_cast<size_t>(positions[i])] = std::move(v);
    }
    // NOT NULL enforcement.
    for (size_t i = 0; i < desc.columns.size(); ++i) {
      if (!desc.columns[i].nullable && row[i].is_null()) {
        return Status::InvalidArgument("null value in non-nullable column " +
                                       desc.columns[i].name);
      }
    }
    VELOCE_RETURN_IF_ERROR(WriteRow(desc, row, txn, /*check_duplicate=*/!stmt.upsert));
    ++result.rows_affected;
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecUpdate(const UpdateStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  std::vector<Binding> bindings;
  Binding base;
  base.alias = stmt.table;
  base.desc = desc;
  bindings.push_back(base);

  for (const auto& [col_name, expr] : stmt.assignments) {
    if (desc.FindColumn(col_name) == nullptr) {
      return Status::NotFound("no such column: " + col_name);
    }
    VELOCE_RETURN_IF_ERROR(ValidateExpr(expr.get(), bindings, params));
  }
  VELOCE_RETURN_IF_ERROR(ValidateExpr(stmt.where.get(), bindings, params));

  std::vector<Row> rows;
  VELOCE_RETURN_IF_ERROR(
      ScanTable(desc, stmt.table, stmt.where.get(), txn, params, &rows));

  ResultSet result;
  for (const Row& old_row : rows) {
    EvalContext ctx{&bindings, &old_row, params, nullptr};
    if (stmt.where != nullptr) {
      VELOCE_ASSIGN_OR_RETURN(Datum keep, Eval(*stmt.where, ctx));
      if (!Truthy(keep)) continue;
    }
    Row new_row = old_row;
    for (const auto& [col_name, expr] : stmt.assignments) {
      const ColumnDescriptor* col = desc.FindColumn(col_name);
      if (col == nullptr) return Status::NotFound("no such column: " + col_name);
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*expr, ctx));
      if (!col->nullable && v.is_null()) {
        return Status::InvalidArgument("null value in non-nullable column " + col_name);
      }
      new_row[static_cast<size_t>(desc.ColumnIndex(col->id))] = std::move(v);
    }
    const bool pk_changed =
        EncodePrimaryKey(desc, old_row) != EncodePrimaryKey(desc, new_row);
    if (pk_changed) {
      VELOCE_RETURN_IF_ERROR(DeleteRow(desc, old_row, txn));
      VELOCE_RETURN_IF_ERROR(WriteRow(desc, new_row, txn, /*check_duplicate=*/true));
    } else {
      VELOCE_RETURN_IF_ERROR(WriteRow(desc, new_row, txn, /*check_duplicate=*/false));
    }
    ++result.rows_affected;
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecDelete(const DeleteStmt& stmt, TenantTxn* txn,
                                         const std::vector<Datum>* params) {
  VELOCE_ASSIGN_OR_RETURN(TableDescriptor desc, catalog_->GetTable(stmt.table));
  std::vector<Binding> bindings;
  Binding base;
  base.alias = stmt.table;
  base.desc = desc;
  bindings.push_back(base);

  VELOCE_RETURN_IF_ERROR(ValidateExpr(stmt.where.get(), bindings, params));

  std::vector<Row> rows;
  VELOCE_RETURN_IF_ERROR(
      ScanTable(desc, stmt.table, stmt.where.get(), txn, params, &rows));
  ResultSet result;
  for (const Row& row : rows) {
    EvalContext ctx{&bindings, &row, params, nullptr};
    if (stmt.where != nullptr) {
      VELOCE_ASSIGN_OR_RETURN(Datum keep, Eval(*stmt.where, ctx));
      if (!Truthy(keep)) continue;
    }
    VELOCE_RETURN_IF_ERROR(DeleteRow(desc, row, txn));
    ++result.rows_affected;
  }
  return result;
}

}  // namespace veloce::sql
