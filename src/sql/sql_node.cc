#include "sql/sql_node.h"

#include "sql/pushdown.h"

namespace veloce::sql {

SqlNode::SqlNode(uint64_t id, Options options, Clock* clock)
    : id_(id), options_(options), clock_(clock) {
  (void)clock_;
}

Status SqlNode::StartProcess() {
  if (state_ != State::kCold) {
    return Status::InvalidArgument("process already started");
  }
  state_ = State::kWarm;
  return Status::OK();
}

Status SqlNode::StampTenant(tenant::AuthorizedKvService* service,
                            kv::KVCluster* cluster, tenant::TenantCert cert,
                            const std::vector<std::string>& warmup_tables) {
  if (state_ != State::kWarm) {
    return Status::InvalidArgument("node is not in the pre-warmed state");
  }
  cert_ = cert;
  // Every SQL node ships the row codec the KV nodes use for push-down
  // evaluation (SQL and KV build from one binary, as in production).
  InstallPushdownHook(cluster);
  connector_ = std::make_unique<KvConnector>(service, cluster, cert, options_.mode,
                                             options_.obs, std::to_string(id_));
  catalog_ = std::make_unique<Catalog>(connector_.get());
  // Blocking cold-start reads: fetch the application schema (the paper's
  // system.descriptor reads). Missing tables are fine — a fresh tenant has
  // no schema yet.
  for (const auto& table : warmup_tables) {
    (void)catalog_->GetTable(table);
  }
  state_ = State::kReady;
  return Status::OK();
}

void SqlNode::StartDraining() {
  if (state_ == State::kReady) state_ = State::kDraining;
}

void SqlNode::Undrain() {
  if (state_ == State::kDraining) state_ = State::kReady;
}

void SqlNode::Stop() {
  sessions_.clear();
  state_ = State::kStopped;
}

StatusOr<Session*> SqlNode::NewSession() {
  if (state_ != State::kReady) {
    return Status::Unavailable("SQL node is not ready");
  }
  const uint64_t id = next_session_id_++;
  auto session = std::make_unique<Session>(id, catalog_.get(), connector_.get(),
                                           options_.obs);
  Session* ptr = session.get();
  sessions_[id] = std::move(session);
  return ptr;
}

StatusOr<Session*> SqlNode::RestoreSession(Slice serialized, uint64_t revival_token) {
  if (state_ != State::kReady) {
    return Status::Unavailable("SQL node is not ready");
  }
  const uint64_t id = next_session_id_++;
  VELOCE_ASSIGN_OR_RETURN(
      std::unique_ptr<Session> session,
      Session::Restore(id, catalog_.get(), connector_.get(), serialized,
                       revival_token, options_.obs));
  Session* ptr = session.get();
  sessions_[id] = std::move(session);
  return ptr;
}

Status SqlNode::CloseSession(uint64_t session_id) {
  if (sessions_.erase(session_id) == 0) {
    return Status::NotFound("no such session");
  }
  return Status::OK();
}

Session* SqlNode::GetSession(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

}  // namespace veloce::sql
