#ifndef VELOCE_SQL_SQL_NODE_H_
#define VELOCE_SQL_SQL_NODE_H_

#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "sql/catalog.h"
#include "sql/session.h"

namespace veloce::sql {

/// One tenant SQL "process" — the unit the serverless control plane scales.
///
/// Life cycle (Section 4.3.1):
///   kCold     allocated pod, no process running
///   kWarm     process started, TCP listener open, no tenant assigned —
///             the pre-warmed state that halves cold start latency
///   kReady    stamped with a tenant certificate, serving sessions
///   kDraining excess capacity: existing connections finish or migrate
///   kStopped  shut down
///
/// Every SQL node is single-tenant; the cross-tenant sharing happens one
/// layer down, in the shared KV nodes.
class SqlNode {
 public:
  enum class State { kCold, kWarm, kReady, kDraining, kStopped };

  struct Options {
    ProcessMode mode = ProcessMode::kSeparateProcess;
    int vcpus = 4;  ///< the paper's fixed SQL node shape (4 vCPU / 12 GB)
    /// Telemetry injection shared by the node's connector and sessions
    /// (series labelled sql_node=<id>); default no-op.
    obs::ObsContext obs;
  };

  SqlNode(uint64_t id, Options options, Clock* clock);

  uint64_t id() const { return id_; }
  State state() const { return state_; }
  int vcpus() const { return options_.vcpus; }
  kv::TenantId tenant_id() const {
    return connector_ != nullptr ? connector_->tenant_id() : 0;
  }

  /// kCold -> kWarm: the process boots and opens its listener before any
  /// tenant is known.
  Status StartProcess();

  /// kWarm -> kReady: tenant certificate "arrives on the filesystem"; the
  /// node connects to the KV layer as that tenant. `warmup_tables` are read
  /// from system.descriptor immediately (the blocking cold-start reads the
  /// multi-region optimization targets).
  Status StampTenant(tenant::AuthorizedKvService* service, kv::KVCluster* cluster,
                     tenant::TenantCert cert,
                     const std::vector<std::string>& warmup_tables = {});

  void StartDraining();
  /// kDraining -> kReady: the autoscaler reuses draining nodes before
  /// pulling from the warm pool (Section 4.2.3).
  void Undrain();
  void Stop();

  StatusOr<Session*> NewSession();
  /// Restores a migrated session from its serialized form.
  StatusOr<Session*> RestoreSession(Slice serialized, uint64_t revival_token);
  Status CloseSession(uint64_t session_id);
  Session* GetSession(uint64_t session_id);
  size_t num_sessions() const { return sessions_.size(); }

  Catalog* catalog() { return catalog_.get(); }
  KvConnector* connector() { return connector_.get(); }

  /// Measured SQL-layer CPU consumed by this node (directly measurable in
  /// production because the process is single-tenant). Benches add via
  /// AddSqlCpu; sims charge their virtual CPUs and mirror here.
  void AddSqlCpu(Nanos cpu) { sql_cpu_ += cpu; }
  Nanos sql_cpu() const { return sql_cpu_; }

 private:
  const uint64_t id_;
  Options options_;
  Clock* clock_;
  State state_ = State::kCold;
  tenant::TenantCert cert_;
  std::unique_ptr<KvConnector> connector_;
  std::unique_ptr<Catalog> catalog_;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  Nanos sql_cpu_ = 0;
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_SQL_NODE_H_
