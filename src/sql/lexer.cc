#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace veloce::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const auto* keywords = new std::set<std::string>{
      "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
      "DELETE", "CREATE", "TABLE", "INDEX", "DROP", "PRIMARY", "KEY", "NOT",
      "NULL", "AND", "OR", "GROUP", "BY", "ORDER", "ASC", "DESC", "LIMIT",
      "JOIN", "INNER", "ON", "AS", "COUNT", "SUM", "AVG", "MIN", "MAX",
      "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "INT", "INT64", "BIGINT",
      "FLOAT", "DOUBLE", "DECIMAL", "STRING", "TEXT", "VARCHAR", "BOOL",
      "BOOLEAN", "TRUE", "FALSE", "IS", "IF", "EXISTS", "UPSERT", "DISTINCT",
  };
  return *keywords;
}

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        for (char& ch : word) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        tok.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) || sql[j] == '.')) {
        if (sql[j] == '.') is_float = true;
        ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        is_float = true;
        ++j;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInt;
      tok.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escape
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      i = j;
    } else if (c == '"') {
      // Quoted identifier.
      size_t j = i + 1;
      std::string value;
      while (j < n && sql[j] != '"') value.push_back(sql[j++]);
      if (j >= n) {
        return Status::InvalidArgument("unterminated quoted identifier");
      }
      tok.type = TokenType::kIdentifier;
      tok.text = std::move(value);
      i = j + 1;
    } else if (c == '$') {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j == i + 1) return Status::InvalidArgument("bad parameter reference");
      tok.type = TokenType::kParam;
      tok.text = sql.substr(i + 1, j - i - 1);
      i = j;
    } else {
      // Multi-char operators first.
      static const char* two_char[] = {"<=", ">=", "!=", "<>"};
      bool matched = false;
      for (const char* op : two_char) {
        if (i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1]) {
          tok.type = TokenType::kSymbol;
          tok.text = op;
          if (tok.text == "<>") tok.text = "!=";
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string singles = "+-*/%=<>(),.;";
        if (singles.find(c) == std::string::npos) {
          return Status::InvalidArgument(std::string("unexpected character '") + c +
                                         "' at offset " + std::to_string(i));
        }
        tok.type = TokenType::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace veloce::sql
