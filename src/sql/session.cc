#include "sql/session.h"

#include <cctype>

#include "common/codec.h"

namespace veloce::sql {

Session::Session(uint64_t id, Catalog* catalog, KvConnector* connector,
                 const obs::ObsContext& obs)
    : id_(id),
      catalog_(catalog),
      connector_(connector),
      obs_(obs),
      executor_(catalog, connector, obs) {
  statements_c_ = obs_.metrics_or_noop()->counter(
      "veloce_sql_statements_total",
      {{"tenant", std::to_string(connector != nullptr ? connector->tenant_id() : 0)}});
}

StatusOr<ResultSet> Session::Execute(const std::string& sql,
                                     const std::vector<Datum>& params) {
  statements_c_->Inc();
  if (!obs_.tracing_enabled()) return ExecuteStmt(sql, params);
  // One trace per statement: stages below (marshal, admission_queue,
  // replication, storage_*) attach to it via the connector/transaction.
  obs::TraceContext trace(obs_.clock_or_real(), sql.substr(0, 96));
  connector_->set_current_trace(&trace);
  if (txn_ != nullptr) txn_->raw()->set_trace(&trace);
  StatusOr<ResultSet> result = ExecuteStmt(sql, params);
  connector_->set_current_trace(nullptr);
  // The statement may have opened or closed the transaction; re-read it.
  if (txn_ != nullptr) txn_->raw()->set_trace(nullptr);
  obs_.traces->Finish(trace);
  return result;
}

StatusOr<ResultSet> Session::ExecuteStmt(const std::string& sql,
                                         const std::vector<Datum>& params) {
  VELOCE_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, Parse(sql));
  ++statements_executed_;
  switch (stmt->kind) {
    case Statement::Kind::kTxn:
      switch (stmt->txn.kind) {
        case TxnStmt::Kind::kBegin: {
          if (txn_ != nullptr) {
            return Status::InvalidArgument("transaction already open");
          }
          // `SET txn_mode = classic|fast` picks the commit path for
          // explicit transactions (docs/TXN.md). Default: fast (buffered
          // writes, pipelining, 1PC, parallel commit).
          auto mode = settings_.find("txn_mode");
          kv::TxnOptions opts;
          if (mode != settings_.end()) {
            std::string value = mode->second;
            for (char& c : value) c = static_cast<char>(std::tolower(c));
            if (value == "classic") opts = kv::TxnOptions::Classic();
          }
          connector_->set_txn_options(opts);
          txn_ = connector_->BeginTransaction();
          return ResultSet{};
        }
        case TxnStmt::Kind::kCommit: {
          if (txn_ == nullptr) {
            return Status::InvalidArgument("no transaction to commit");
          }
          Status s = txn_->Commit();
          txn_.reset();
          VELOCE_RETURN_IF_ERROR(s);
          return ResultSet{};
        }
        case TxnStmt::Kind::kRollback: {
          if (txn_ == nullptr) {
            return Status::InvalidArgument("no transaction to roll back");
          }
          Status s = txn_->Rollback();
          txn_.reset();
          VELOCE_RETURN_IF_ERROR(s);
          return ResultSet{};
        }
      }
      return Status::Internal("unhandled txn statement");
    case Statement::Kind::kSet:
      SetSetting(stmt->set.name, stmt->set.value);
      return ResultSet{};
    default: {
      // The paper's future-work push-down ships behind a session setting.
      // (Setting values arrive normalized by the lexer, so compare
      // case-insensitively: `SET kv_pushdown = on` stores "ON".)
      auto pushdown = settings_.find("kv_pushdown");
      bool enabled = false;
      if (pushdown != settings_.end()) {
        std::string value = pushdown->second;
        for (char& c : value) c = static_cast<char>(std::tolower(c));
        enabled = value == "on" || value == "true" || value == "1";
      }
      executor_.set_pushdown_enabled(enabled);
      // Engine selection (docs/SQL_EXEC.md): `SET vectorize = on|off|force`.
      // Default (unset) is on — vectorized when eligible, row otherwise.
      auto vectorize = settings_.find("vectorize");
      ExecEngine engine = ExecEngine::kAuto;
      if (vectorize != settings_.end()) {
        std::string value = vectorize->second;
        for (char& c : value) c = static_cast<char>(std::tolower(c));
        if (value == "off" || value == "false" || value == "0") {
          engine = ExecEngine::kRow;
        } else if (value == "force") {
          engine = ExecEngine::kVectorized;
        }
      }
      executor_.set_engine(engine);
      StatusOr<ResultSet> result = executor_.Execute(*stmt, txn_.get(), &params);
      if (!result.ok() && txn_ != nullptr &&
          (result.status().code() == Code::kTransactionAborted ||
           result.status().IsTransactionRetry())) {
        // The explicit transaction is dead; discard it so the client can
        // BEGIN again after observing the retryable error.
        (void)txn_->Rollback();
        txn_.reset();
      }
      return result;
    }
  }
}

Status Session::Prepare(const std::string& name, const std::string& sql) {
  // Validate eagerly so errors surface at prepare time.
  VELOCE_RETURN_IF_ERROR(Parse(sql).status());
  prepared_[name] = sql;
  return Status::OK();
}

StatusOr<ResultSet> Session::ExecutePrepared(const std::string& name,
                                             const std::vector<Datum>& params) {
  auto it = prepared_.find(name);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement named " + name);
  }
  return Execute(it->second, params);
}

StatusOr<std::string> Session::GetSetting(const std::string& name) const {
  auto it = settings_.find(name);
  if (it == settings_.end()) return Status::NotFound("no setting " + name);
  return it->second;
}

StatusOr<std::string> Session::Serialize(uint64_t revival_token) const {
  if (!idle()) {
    return Status::InvalidArgument("cannot serialize a session with an open txn");
  }
  std::string out;
  PutFixed64(&out, revival_token);
  PutVarint64(&out, settings_.size());
  for (const auto& [key, value] : settings_) {
    PutLengthPrefixed(&out, key);
    PutLengthPrefixed(&out, value);
  }
  PutVarint64(&out, prepared_.size());
  for (const auto& [name, sql] : prepared_) {
    PutLengthPrefixed(&out, name);
    PutLengthPrefixed(&out, sql);
  }
  return out;
}

StatusOr<std::unique_ptr<Session>> Session::Restore(uint64_t id, Catalog* catalog,
                                                    KvConnector* connector,
                                                    Slice serialized,
                                                    uint64_t expected_token,
                                                    const obs::ObsContext& obs) {
  uint64_t token = 0;
  if (!GetFixed64(&serialized, &token)) {
    return Status::Corruption("bad serialized session");
  }
  if (token != expected_token) {
    return Status::Unauthorized("revival token mismatch");
  }
  auto session = std::make_unique<Session>(id, catalog, connector, obs);
  uint64_t num_settings = 0;
  if (!GetVarint64(&serialized, &num_settings)) {
    return Status::Corruption("bad serialized session settings");
  }
  for (uint64_t i = 0; i < num_settings; ++i) {
    Slice key, value;
    if (!GetLengthPrefixed(&serialized, &key) ||
        !GetLengthPrefixed(&serialized, &value)) {
      return Status::Corruption("bad serialized setting");
    }
    session->settings_[key.ToString()] = value.ToString();
  }
  uint64_t num_prepared = 0;
  if (!GetVarint64(&serialized, &num_prepared)) {
    return Status::Corruption("bad serialized prepared statements");
  }
  for (uint64_t i = 0; i < num_prepared; ++i) {
    Slice name, sql;
    if (!GetLengthPrefixed(&serialized, &name) || !GetLengthPrefixed(&serialized, &sql)) {
      return Status::Corruption("bad serialized prepared statement");
    }
    session->prepared_[name.ToString()] = sql.ToString();
  }
  return session;
}

}  // namespace veloce::sql
