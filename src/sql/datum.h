#ifndef VELOCE_SQL_DATUM_H_
#define VELOCE_SQL_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/slice.h"
#include "common/status.h"

namespace veloce::sql {

enum class TypeKind : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,     // INT / INT64 / BIGINT
  kDouble = 3,  // FLOAT / DOUBLE / DECIMAL (approximated)
  kString = 4,  // STRING / TEXT / VARCHAR
};

std::string_view TypeName(TypeKind kind);

/// A SQL value. NULL is its own kind. Comparison follows SQL ordering with
/// NULL sorting first (the index ordering convention).
class Datum {
 public:
  Datum() : kind_(TypeKind::kNull) {}
  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) {
    Datum d;
    d.kind_ = TypeKind::kBool;
    d.value_ = v;
    return d;
  }
  static Datum Int(int64_t v) {
    Datum d;
    d.kind_ = TypeKind::kInt;
    d.value_ = v;
    return d;
  }
  static Datum Double(double v) {
    Datum d;
    d.kind_ = TypeKind::kDouble;
    d.value_ = v;
    return d;
  }
  static Datum String(std::string v) {
    Datum d;
    d.kind_ = TypeKind::kString;
    d.value_ = std::move(v);
    return d;
  }

  TypeKind kind() const { return kind_; }
  bool is_null() const { return kind_ == TypeKind::kNull; }

  bool bool_value() const { return std::get<bool>(value_); }
  int64_t int_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const std::string& string_value() const { return std::get<std::string>(value_); }

  /// Numeric value as double (int or double kinds).
  double AsDouble() const;

  /// Three-way compare. NULL < everything; cross numeric kinds compare by
  /// value; other cross-kind comparisons order by kind (never produced by
  /// well-typed plans).
  int Compare(const Datum& other) const;

  bool operator==(const Datum& other) const { return Compare(other) == 0; }
  bool operator<(const Datum& other) const { return Compare(other) < 0; }

  std::string ToString() const;

  /// Order-preserving key encoding (for index keys).
  void EncodeKey(std::string* dst) const;
  static Status DecodeKey(Slice* input, Datum* out);

  /// Compact (non-ordered) value encoding (for row values).
  void EncodeValue(std::string* dst) const;
  static Status DecodeValue(Slice* input, Datum* out);

 private:
  TypeKind kind_;
  std::variant<bool, int64_t, double, std::string> value_;
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_DATUM_H_
