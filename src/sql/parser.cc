#include "sql/parser.h"

#include "sql/lexer.h"

namespace veloce::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::unique_ptr<Statement>> ParseStatement();

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t idx = pos_ + static_cast<size_t>(ahead);
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool AtKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool AtSymbol(const char* sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool EatKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool EatSymbol(const char* sym) {
    if (!AtSymbol(sym)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (EatKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + kw);
  }
  Status ExpectSymbol(const char* sym) {
    if (EatSymbol(sym)) return Status::OK();
    return Error(std::string("expected '") + sym + "'");
  }
  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) return Error("expected identifier");
    return Advance().text;
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("syntax error: " + msg + " near offset " +
                                   std::to_string(Peek().offset) +
                                   (Peek().text.empty() ? "" : " ('" + Peek().text + "')"));
  }

  StatusOr<CreateTableStmt> ParseCreateTable();
  StatusOr<CreateIndexStmt> ParseCreateIndex();
  StatusOr<InsertStmt> ParseInsert(bool upsert);
  StatusOr<SelectStmt> ParseSelect();
  StatusOr<UpdateStmt> ParseUpdate();
  StatusOr<DeleteStmt> ParseDelete();

  StatusOr<TypeKind> ParseType();
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }
  StatusOr<ExprPtr> ParseOr();
  StatusOr<ExprPtr> ParseAnd();
  StatusOr<ExprPtr> ParseNot();
  StatusOr<ExprPtr> ParseComparison();
  StatusOr<ExprPtr> ParseAdditive();
  StatusOr<ExprPtr> ParseMultiplicative();
  StatusOr<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<TypeKind> Parser::ParseType() {
  if (Peek().type != TokenType::kKeyword) return Error("expected type name");
  const std::string type_name = Advance().text;
  TypeKind kind;
  if (type_name == "INT" || type_name == "INT64" || type_name == "BIGINT") {
    kind = TypeKind::kInt;
  } else if (type_name == "FLOAT" || type_name == "DOUBLE" || type_name == "DECIMAL") {
    kind = TypeKind::kDouble;
  } else if (type_name == "STRING" || type_name == "TEXT" || type_name == "VARCHAR") {
    kind = TypeKind::kString;
  } else if (type_name == "BOOL" || type_name == "BOOLEAN") {
    kind = TypeKind::kBool;
  } else {
    return Error("unknown type " + type_name);
  }
  // Optional length like VARCHAR(16) is accepted and ignored.
  if (EatSymbol("(")) {
    while (!AtSymbol(")") && Peek().type != TokenType::kEnd) Advance();
    VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  return kind;
}

StatusOr<CreateTableStmt> Parser::ParseCreateTable() {
  CreateTableStmt stmt;
  if (EatKeyword("IF")) {
    VELOCE_RETURN_IF_ERROR(ExpectKeyword("NOT"));
    VELOCE_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    stmt.if_not_exists = true;
  }
  VELOCE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  VELOCE_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    if (EatKeyword("PRIMARY")) {
      VELOCE_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      VELOCE_RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        VELOCE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.primary_key.push_back(std::move(col));
        if (!EatSymbol(",")) break;
      }
      VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      ColumnDef col;
      VELOCE_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      VELOCE_ASSIGN_OR_RETURN(col.type, ParseType());
      while (true) {
        if (EatKeyword("NOT")) {
          VELOCE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.not_null = true;
        } else if (EatKeyword("PRIMARY")) {
          VELOCE_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          col.primary_key = true;
          col.not_null = true;
        } else {
          break;
        }
      }
      stmt.columns.push_back(std::move(col));
    }
    if (!EatSymbol(",")) break;
  }
  VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

StatusOr<CreateIndexStmt> Parser::ParseCreateIndex() {
  CreateIndexStmt stmt;
  VELOCE_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier());
  VELOCE_RETURN_IF_ERROR(ExpectKeyword("ON"));
  VELOCE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  VELOCE_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    VELOCE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    stmt.columns.push_back(std::move(col));
    if (!EatSymbol(",")) break;
  }
  VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

StatusOr<InsertStmt> Parser::ParseInsert(bool upsert) {
  InsertStmt stmt;
  stmt.upsert = upsert;
  VELOCE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  VELOCE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (EatSymbol("(")) {
    while (true) {
      VELOCE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.columns.push_back(std::move(col));
      if (!EatSymbol(",")) break;
    }
    VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  VELOCE_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  while (true) {
    VELOCE_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> row;
    while (true) {
      VELOCE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
      if (!EatSymbol(",")) break;
    }
    VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.values.push_back(std::move(row));
    if (!EatSymbol(",")) break;
  }
  return stmt;
}

StatusOr<SelectStmt> Parser::ParseSelect() {
  SelectStmt stmt;
  (void)EatKeyword("DISTINCT");  // accepted, treated as no-op at this scale
  // Select list.
  if (EatSymbol("*")) {
    // SELECT * — leave items empty.
  } else {
    while (true) {
      SelectItem item;
      VELOCE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (EatKeyword("AS")) {
        VELOCE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
      stmt.items.push_back(std::move(item));
      if (!EatSymbol(",")) break;
    }
  }
  if (EatKeyword("FROM")) {
    VELOCE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (EatKeyword("AS")) {
      VELOCE_ASSIGN_OR_RETURN(stmt.table_alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      stmt.table_alias = Advance().text;
    }
    while (true) {
      if (EatKeyword("JOIN")) {
        // plain JOIN
      } else if (AtKeyword("INNER") && Peek(1).type == TokenType::kKeyword &&
                 Peek(1).text == "JOIN") {
        Advance();  // INNER
        Advance();  // JOIN
      } else {
        break;
      }
      JoinClause join;
      VELOCE_ASSIGN_OR_RETURN(join.table, ExpectIdentifier());
      if (EatKeyword("AS")) {
        VELOCE_ASSIGN_OR_RETURN(join.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        join.alias = Advance().text;
      }
      VELOCE_RETURN_IF_ERROR(ExpectKeyword("ON"));
      VELOCE_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt.joins.push_back(std::move(join));
    }
  }
  if (EatKeyword("WHERE")) {
    VELOCE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (EatKeyword("GROUP")) {
    VELOCE_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      VELOCE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.group_by.push_back(std::move(e));
      if (!EatSymbol(",")) break;
    }
  }
  if (EatKeyword("ORDER")) {
    VELOCE_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      OrderByItem item;
      VELOCE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (EatKeyword("DESC")) {
        item.desc = true;
      } else {
        (void)EatKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
      if (!EatSymbol(",")) break;
    }
  }
  if (EatKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInt) return Error("expected integer after LIMIT");
    stmt.limit = std::stoll(Advance().text);
  }
  return stmt;
}

StatusOr<UpdateStmt> Parser::ParseUpdate() {
  UpdateStmt stmt;
  VELOCE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  VELOCE_RETURN_IF_ERROR(ExpectKeyword("SET"));
  while (true) {
    VELOCE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    VELOCE_RETURN_IF_ERROR(ExpectSymbol("="));
    VELOCE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt.assignments.emplace_back(std::move(col), std::move(e));
    if (!EatSymbol(",")) break;
  }
  if (EatKeyword("WHERE")) {
    VELOCE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

StatusOr<DeleteStmt> Parser::ParseDelete() {
  DeleteStmt stmt;
  VELOCE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  VELOCE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (EatKeyword("WHERE")) {
    VELOCE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

StatusOr<ExprPtr> Parser::ParseOr() {
  VELOCE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (EatKeyword("OR")) {
    VELOCE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::Binary(BinOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseAnd() {
  VELOCE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (EatKeyword("AND")) {
    VELOCE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::Binary(BinOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseNot() {
  if (EatKeyword("NOT")) {
    VELOCE_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kNot;
    e->child = std::move(child);
    return e;
  }
  return ParseComparison();
}

StatusOr<ExprPtr> Parser::ParseComparison() {
  VELOCE_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  if (EatKeyword("IS")) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kIsNull;
    e->is_not = EatKeyword("NOT");
    VELOCE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    e->child = std::move(left);
    return e;
  }
  struct OpMap {
    const char* sym;
    BinOp op;
  };
  static const OpMap ops[] = {{"=", BinOp::kEq}, {"!=", BinOp::kNe},
                              {"<=", BinOp::kLe}, {">=", BinOp::kGe},
                              {"<", BinOp::kLt},  {">", BinOp::kGt}};
  for (const auto& [sym, op] : ops) {
    if (AtSymbol(sym)) {
      Advance();
      VELOCE_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::Binary(op, std::move(left), std::move(right));
    }
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseAdditive() {
  VELOCE_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (AtSymbol("+") || AtSymbol("-")) {
    const BinOp op = Peek().text == "+" ? BinOp::kAdd : BinOp::kSub;
    Advance();
    VELOCE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = Expr::Binary(op, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseMultiplicative() {
  VELOCE_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  while (AtSymbol("*") || AtSymbol("/") || AtSymbol("%")) {
    const BinOp op = Peek().text == "*" ? BinOp::kMul
                     : Peek().text == "/" ? BinOp::kDiv
                                          : BinOp::kMod;
    Advance();
    VELOCE_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
    left = Expr::Binary(op, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInt: {
      Advance();
      return Expr::Literal(Datum::Int(std::stoll(tok.text)));
    }
    case TokenType::kFloat: {
      Advance();
      return Expr::Literal(Datum::Double(std::stod(tok.text)));
    }
    case TokenType::kString: {
      Advance();
      return Expr::Literal(Datum::String(tok.text));
    }
    case TokenType::kParam: {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kParam;
      e->param_index = std::stoi(tok.text);
      return e;
    }
    case TokenType::kSymbol: {
      if (EatSymbol("(")) {
        VELOCE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
        return inner;
      }
      if (EatSymbol("-")) {  // unary minus
        VELOCE_ASSIGN_OR_RETURN(ExprPtr child, ParsePrimary());
        return Expr::Binary(BinOp::kSub, Expr::Literal(Datum::Int(0)),
                            std::move(child));
      }
      if (AtSymbol("*")) {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kStar;
        return e;
      }
      return Error("unexpected symbol in expression");
    }
    case TokenType::kKeyword: {
      if (tok.text == "TRUE" || tok.text == "FALSE") {
        Advance();
        return Expr::Literal(Datum::Bool(tok.text == "TRUE"));
      }
      if (tok.text == "NULL") {
        Advance();
        return Expr::Literal(Datum::Null());
      }
      // Aggregates.
      static const std::pair<const char*, AggFunc> aggs[] = {
          {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
          {"AVG", AggFunc::kAvg},     {"MIN", AggFunc::kMin},
          {"MAX", AggFunc::kMax}};
      for (const auto& [name, func] : aggs) {
        if (tok.text == name) {
          Advance();
          VELOCE_RETURN_IF_ERROR(ExpectSymbol("("));
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kAggregate;
          e->agg = func;
          VELOCE_ASSIGN_OR_RETURN(e->child, ParseExpr());
          VELOCE_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
      }
      return Error("unexpected keyword in expression");
    }
    case TokenType::kIdentifier: {
      Advance();
      std::string first = tok.text;
      if (EatSymbol(".")) {
        VELOCE_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier());
        return Expr::Column(std::move(first), std::move(second));
      }
      return Expr::Column("", std::move(first));
    }
    case TokenType::kEnd:
      return Error("unexpected end of statement");
  }
  return Error("unexpected token");
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseStatement() {
  auto stmt = std::make_unique<Statement>();
  if (EatKeyword("CREATE")) {
    if (EatKeyword("TABLE")) {
      stmt->kind = Statement::Kind::kCreateTable;
      VELOCE_ASSIGN_OR_RETURN(stmt->create_table, ParseCreateTable());
    } else if (EatKeyword("INDEX")) {
      stmt->kind = Statement::Kind::kCreateIndex;
      VELOCE_ASSIGN_OR_RETURN(stmt->create_index, ParseCreateIndex());
    } else {
      return Error("expected TABLE or INDEX after CREATE");
    }
  } else if (EatKeyword("DROP")) {
    VELOCE_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    stmt->kind = Statement::Kind::kDropTable;
    VELOCE_ASSIGN_OR_RETURN(stmt->drop_table.table, ExpectIdentifier());
  } else if (EatKeyword("INSERT")) {
    stmt->kind = Statement::Kind::kInsert;
    VELOCE_ASSIGN_OR_RETURN(stmt->insert, ParseInsert(false));
  } else if (EatKeyword("UPSERT")) {
    stmt->kind = Statement::Kind::kInsert;
    VELOCE_ASSIGN_OR_RETURN(stmt->insert, ParseInsert(true));
  } else if (EatKeyword("SELECT")) {
    stmt->kind = Statement::Kind::kSelect;
    VELOCE_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
  } else if (EatKeyword("UPDATE")) {
    stmt->kind = Statement::Kind::kUpdate;
    VELOCE_ASSIGN_OR_RETURN(stmt->update, ParseUpdate());
  } else if (EatKeyword("DELETE")) {
    stmt->kind = Statement::Kind::kDelete;
    VELOCE_ASSIGN_OR_RETURN(stmt->del, ParseDelete());
  } else if (EatKeyword("BEGIN")) {
    (void)EatKeyword("TRANSACTION");
    stmt->kind = Statement::Kind::kTxn;
    stmt->txn.kind = TxnStmt::Kind::kBegin;
  } else if (EatKeyword("COMMIT")) {
    stmt->kind = Statement::Kind::kTxn;
    stmt->txn.kind = TxnStmt::Kind::kCommit;
  } else if (EatKeyword("ROLLBACK")) {
    stmt->kind = Statement::Kind::kTxn;
    stmt->txn.kind = TxnStmt::Kind::kRollback;
  } else if (EatKeyword("SET")) {
    stmt->kind = Statement::Kind::kSet;
    VELOCE_ASSIGN_OR_RETURN(stmt->set.name, ExpectIdentifier());
    VELOCE_RETURN_IF_ERROR(ExpectSymbol("="));
    // Value: any single token.
    if (Peek().type == TokenType::kEnd) return Error("expected SET value");
    stmt->set.value = Advance().text;
  } else {
    return Error("expected a statement");
  }
  (void)EatSymbol(";");
  if (Peek().type != TokenType::kEnd) return Error("trailing tokens after statement");
  return stmt;
}

}  // namespace

StatusOr<std::unique_ptr<Statement>> Parse(const std::string& sql) {
  VELOCE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace veloce::sql
