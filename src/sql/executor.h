#ifndef VELOCE_SQL_EXECUTOR_H_
#define VELOCE_SQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/obs_context.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/eval.h"
#include "sql/kv_connector.h"
#include "sql/row.h"

namespace veloce::sql {

/// Result of executing one statement.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  uint64_t rows_affected = 0;

  std::string ToString() const;  ///< ascii table (examples / debugging)
};

/// Which execution engine handles SELECTs (docs/SQL_EXEC.md).
enum class ExecEngine {
  kAuto,        ///< vectorized when eligible, row engine otherwise (default)
  kRow,         ///< row engine only
  kVectorized,  ///< vectorized only; ineligible statements fail NotSupported
};

/// Executes parsed statements against the tenant's keyspace. DML always
/// runs inside a transaction (the session supplies an explicit one, or the
/// executor opens an implicit per-statement transaction); reads outside a
/// transaction go through the non-transactional fast path at the current
/// timestamp.
///
/// SELECT execution is two-engine (docs/SQL_EXEC.md): non-transactional
/// reads dispatch to the vectorized columnar engine (sql/vec/) and fall
/// back per-statement to the interpreted row engine for anything the
/// vectorized planner does not cover (DML, transactional reads, plans it
/// rejects). Planning is deliberately simple but shaped like the real
/// system:
///  * WHERE conjuncts on a primary-key prefix become point gets or range
///    scans (index-constrained scans are "pushed down" in the sense that
///    only the constrained keyspan crosses the KV boundary);
///  * joins use an index join (per-row KV lookups) when the ON clause
///    covers the right table's primary key — the remote-lookup plan TPC-H
///    Q9 runs in the paper — and a hash join otherwise;
///  * with kv_pushdown enabled, eligible filter+project+partial-aggregate
///    fragments evaluate KV-side (sql/pushdown.h), so full-scan
///    aggregation no longer pays the per-row KV->SQL marshaling cost in
///    Serverless mode (the TPC-H Q1 effect).
class Executor {
 public:
  Executor(Catalog* catalog, KvConnector* connector,
           const obs::ObsContext& obs = {});

  /// Enables row-filter/projection/partial-aggregate push-down (DESIGN.md
  /// Section 6) for eligible scans: single-table, non-transactional reads
  /// whose residual predicates are `column <op> constant` conjuncts on
  /// non-PK columns.
  void set_pushdown_enabled(bool enabled) { pushdown_enabled_ = enabled; }
  bool pushdown_enabled() const { return pushdown_enabled_; }

  void set_engine(ExecEngine engine) { engine_ = engine; }
  ExecEngine engine() const { return engine_; }
  /// Engine that executed the most recent SELECT: "vectorized", "row", or
  /// "" before any SELECT ran (tests/benches).
  const std::string& last_select_engine() const { return last_select_engine_; }

  /// Executes `stmt`. If `txn` is null, DML opens and commits an implicit
  /// transaction (the caller retries on TransactionRetry). `params` binds
  /// $N placeholders.
  StatusOr<ResultSet> Execute(const Statement& stmt, TenantTxn* txn,
                              const std::vector<Datum>* params = nullptr);

 private:
  StatusOr<ResultSet> ExecCreateTable(const CreateTableStmt& stmt);
  StatusOr<ResultSet> ExecCreateIndex(const CreateIndexStmt& stmt, TenantTxn* txn);
  StatusOr<ResultSet> ExecDropTable(const DropTableStmt& stmt);
  StatusOr<ResultSet> ExecInsert(const InsertStmt& stmt, TenantTxn* txn,
                                 const std::vector<Datum>* params);
  StatusOr<ResultSet> DispatchSelect(const SelectStmt& stmt, TenantTxn* txn,
                                     const std::vector<Datum>* params);
  StatusOr<ResultSet> ExecSelect(const SelectStmt& stmt, TenantTxn* txn,
                                 const std::vector<Datum>* params);
  StatusOr<ResultSet> ExecUpdate(const UpdateStmt& stmt, TenantTxn* txn,
                                 const std::vector<Datum>* params);
  StatusOr<ResultSet> ExecDelete(const DeleteStmt& stmt, TenantTxn* txn,
                                 const std::vector<Datum>* params);

  /// Scans `desc` rows satisfying the PK constraints derivable from
  /// `where` (point get / prefix scan / full scan). `alias` is the
  /// binding name `where` qualifies the table's columns with. Remaining
  /// filtering happens at a higher level. `needed_columns` (nullable)
  /// lists the column ids the caller will read — the projection push-down
  /// input.
  Status ScanTable(const TableDescriptor& desc, const std::string& alias,
                   const Expr* where, TenantTxn* txn,
                   const std::vector<Datum>* params, std::vector<Row>* rows,
                   const std::vector<uint32_t>* needed_columns = nullptr);

  Status WriteRow(const TableDescriptor& desc, const Row& row, TenantTxn* txn,
                  bool check_duplicate);
  Status DeleteRow(const TableDescriptor& desc, const Row& row, TenantTxn* txn);

  Catalog* catalog_;
  KvConnector* connector_;
  bool pushdown_enabled_ = false;
  ExecEngine engine_ = ExecEngine::kAuto;
  std::string last_select_engine_;

  // Executor-level observability (docs/OBSERVABILITY.md).
  obs::Counter* rows_scanned_c_ = nullptr;   // veloce_sql_rows_scanned_total
  obs::Counter* batches_c_ = nullptr;        // veloce_sql_batches_total
  obs::Counter* engine_vec_c_ = nullptr;     // veloce_sql_exec_engine_total{engine=vectorized}
  obs::Counter* engine_row_c_ = nullptr;     // veloce_sql_exec_engine_total{engine=row}
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_EXECUTOR_H_
