#ifndef VELOCE_SQL_SCHEMA_H_
#define VELOCE_SQL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/datum.h"

namespace veloce::sql {

using TableId = uint64_t;
using IndexId = uint32_t;
constexpr IndexId kPrimaryIndexId = 0;

struct ColumnDescriptor {
  uint32_t id = 0;  ///< stable column id (position-independent)
  std::string name;
  TypeKind type = TypeKind::kInt;
  bool nullable = true;
};

struct IndexDescriptor {
  IndexId id = kPrimaryIndexId;
  std::string name;
  /// Column ids in index order.
  std::vector<uint32_t> column_ids;
};

/// A table's schema: columns, the primary index, and secondary indexes.
/// Persisted in the tenant's system.descriptor keyspace; every SQL node of
/// the tenant reads the same descriptors (the rows a multi-region cold
/// start must fetch before serving queries).
struct TableDescriptor {
  TableId id = 0;
  std::string name;
  std::vector<ColumnDescriptor> columns;
  IndexDescriptor primary;                  ///< id == kPrimaryIndexId
  std::vector<IndexDescriptor> secondaries;

  const ColumnDescriptor* FindColumn(const std::string& col_name) const;
  const ColumnDescriptor* FindColumnById(uint32_t col_id) const;
  int ColumnIndex(uint32_t col_id) const;  ///< position in `columns`, -1 if absent
  bool IsPrimaryKeyColumn(uint32_t col_id) const;
  const IndexDescriptor* FindIndex(const std::string& index_name) const;

  std::string Encode() const;
  static StatusOr<TableDescriptor> Decode(Slice data);
};

}  // namespace veloce::sql

#endif  // VELOCE_SQL_SCHEMA_H_
