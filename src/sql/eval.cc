#include "sql/eval.h"

#include "common/codec.h"
#include "common/logging.h"

namespace veloce::sql {

StatusOr<int> ResolveColumn(const std::vector<Binding>& bindings,
                            const std::string& qualifier, const std::string& name) {
  int found = -1;
  for (const auto& binding : bindings) {
    if (!qualifier.empty() && binding.alias != qualifier) continue;
    const ColumnDescriptor* col = binding.desc.FindColumn(name);
    if (col == nullptr) continue;
    const int pos = static_cast<int>(binding.offset) + binding.desc.ColumnIndex(col->id);
    if (found != -1) {
      return Status::InvalidArgument("ambiguous column reference: " + name);
    }
    found = pos;
  }
  if (found == -1) return Status::NotFound("no such column: " + name);
  return found;
}

bool Truthy(const Datum& d) {
  switch (d.kind()) {
    case TypeKind::kNull: return false;
    case TypeKind::kBool: return d.bool_value();
    case TypeKind::kInt: return d.int_value() != 0;
    case TypeKind::kDouble: return d.double_value() != 0;
    case TypeKind::kString: return !d.string_value().empty();
  }
  return false;
}

StatusOr<Datum> EvalArith(BinOp op, const Datum& left, const Datum& right) {
  if (left.is_null() || right.is_null()) return Datum::Null();
  if (op == BinOp::kAdd && left.kind() == TypeKind::kString &&
      right.kind() == TypeKind::kString) {
    return Datum::String(left.string_value() + right.string_value());
  }
  const bool both_int =
      left.kind() == TypeKind::kInt && right.kind() == TypeKind::kInt;
  if (both_int && op != BinOp::kDiv) {
    const int64_t a = left.int_value(), b = right.int_value();
    switch (op) {
      case BinOp::kAdd: return Datum::Int(WrapAdd(a, b));
      case BinOp::kSub: return Datum::Int(WrapSub(a, b));
      case BinOp::kMul: return Datum::Int(WrapMul(a, b));
      case BinOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        if (b == -1) return Datum::Int(0);  // INT64_MIN % -1 traps in hardware
        return Datum::Int(a % b);
      default: break;
    }
  }
  const double a = left.AsDouble(), b = right.AsDouble();
  switch (op) {
    case BinOp::kAdd: return Datum::Double(a + b);
    case BinOp::kSub: return Datum::Double(a - b);
    case BinOp::kMul: return Datum::Double(a * b);
    case BinOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Datum::Double(a / b);
    case BinOp::kMod:
      return Status::InvalidArgument("modulo on non-integers");
    default: break;
  }
  return Status::Internal("unhandled binary operator");
}

namespace {

StatusOr<Datum> EvalBinary(const Expr& expr, const EvalContext& ctx) {
  // AND/OR get short-circuit + 3-valued-ish treatment (NULL == false).
  if (expr.op == BinOp::kAnd || expr.op == BinOp::kOr) {
    VELOCE_ASSIGN_OR_RETURN(Datum left, Eval(*expr.left, ctx));
    const bool lval = Truthy(left);
    if (expr.op == BinOp::kAnd && !lval) return Datum::Bool(false);
    if (expr.op == BinOp::kOr && lval) return Datum::Bool(true);
    VELOCE_ASSIGN_OR_RETURN(Datum right, Eval(*expr.right, ctx));
    return Datum::Bool(Truthy(right));
  }
  VELOCE_ASSIGN_OR_RETURN(Datum left, Eval(*expr.left, ctx));
  VELOCE_ASSIGN_OR_RETURN(Datum right, Eval(*expr.right, ctx));
  switch (expr.op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe: {
      if (left.is_null() || right.is_null()) return Datum::Null();
      const int c = left.Compare(right);
      switch (expr.op) {
        case BinOp::kEq: return Datum::Bool(c == 0);
        case BinOp::kNe: return Datum::Bool(c != 0);
        case BinOp::kLt: return Datum::Bool(c < 0);
        case BinOp::kLe: return Datum::Bool(c <= 0);
        case BinOp::kGt: return Datum::Bool(c > 0);
        default: return Datum::Bool(c >= 0);
      }
    }
    case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul:
    case BinOp::kDiv: case BinOp::kMod:
      return EvalArith(expr.op, left, right);
    default: break;
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

StatusOr<Datum> Eval(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumnRef: {
      VELOCE_ASSIGN_OR_RETURN(
          int pos, ResolveColumn(*ctx.bindings, expr.table_name, expr.column_name));
      // A position beyond the row happens only for the synthetic empty
      // group of a no-GROUP-BY aggregate over zero rows; read it as NULL.
      if (static_cast<size_t>(pos) >= ctx.row->size()) return Datum::Null();
      return (*ctx.row)[static_cast<size_t>(pos)];
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, ctx);
    case Expr::Kind::kNot: {
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*expr.child, ctx));
      return Datum::Bool(!Truthy(v));
    }
    case Expr::Kind::kIsNull: {
      VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*expr.child, ctx));
      return Datum::Bool(expr.is_not ? !v.is_null() : v.is_null());
    }
    case Expr::Kind::kParam: {
      if (ctx.params == nullptr ||
          expr.param_index < 1 ||
          static_cast<size_t>(expr.param_index) > ctx.params->size()) {
        return Status::InvalidArgument("missing parameter $" +
                                       std::to_string(expr.param_index));
      }
      return (*ctx.params)[static_cast<size_t>(expr.param_index - 1)];
    }
    case Expr::Kind::kAggregate: {
      if (ctx.agg_values == nullptr) {
        return Status::InvalidArgument("aggregate outside of aggregation context");
      }
      auto it = ctx.agg_values->find(&expr);
      if (it == ctx.agg_values->end()) {
        return Status::Internal("aggregate value not computed");
      }
      return it->second;
    }
    case Expr::Kind::kStar:
      return Status::InvalidArgument("'*' outside COUNT(*)");
  }
  return Status::Internal("unhandled expression kind");
}

void CollectConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kBinary && expr->op == BinOp::kAnd) {
    CollectConjuncts(expr->left.get(), out);
    CollectConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

void CollectAggregates(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kAggregate) {
    out->push_back(expr);
    return;  // no nested aggregates
  }
  CollectAggregates(expr->left.get(), out);
  CollectAggregates(expr->right.get(), out);
  CollectAggregates(expr->child.get(), out);
}

Status ValidateExpr(const Expr* expr, const std::vector<Binding>& bindings,
                    const std::vector<Datum>* params) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == Expr::Kind::kColumnRef) {
    return ResolveColumn(bindings, expr->table_name, expr->column_name).status();
  }
  if (expr->kind == Expr::Kind::kParam) {
    const size_t bound = params == nullptr ? 0 : params->size();
    if (expr->param_index < 1 || static_cast<size_t>(expr->param_index) > bound) {
      return Status::InvalidArgument("missing parameter $" +
                                     std::to_string(expr->param_index));
    }
    return Status::OK();
  }
  VELOCE_RETURN_IF_ERROR(ValidateExpr(expr->left.get(), bindings, params));
  VELOCE_RETURN_IF_ERROR(ValidateExpr(expr->right.get(), bindings, params));
  return ValidateExpr(expr->child.get(), bindings, params);
}

void CollectColumnNames(const Expr* expr, std::vector<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kColumnRef) out->push_back(expr->column_name);
  CollectColumnNames(expr->left.get(), out);
  CollectColumnNames(expr->right.get(), out);
  CollectColumnNames(expr->child.get(), out);
}

bool HasAggregate(const Expr* expr) {
  std::vector<const Expr*> aggs;
  CollectAggregates(expr, &aggs);
  return !aggs.empty();
}

std::string DeriveColumnName(const Expr& expr, const std::string& alias) {
  if (!alias.empty()) return alias;
  switch (expr.kind) {
    case Expr::Kind::kColumnRef: return expr.column_name;
    case Expr::Kind::kAggregate:
      switch (expr.agg) {
        case AggFunc::kCount: return "count";
        case AggFunc::kSum: return "sum";
        case AggFunc::kAvg: return "avg";
        case AggFunc::kMin: return "min";
        case AggFunc::kMax: return "max";
        default: return "agg";
      }
    default: return "?column?";
  }
}

bool CollectNeededColumns(const SelectStmt& stmt, const TableDescriptor& desc,
                          std::vector<uint32_t>* needed) {
  std::vector<std::string> names;
  for (const auto& item : stmt.items) CollectColumnNames(item.expr.get(), &names);
  CollectColumnNames(stmt.where.get(), &names);
  for (const auto& g : stmt.group_by) CollectColumnNames(g.get(), &names);
  for (const auto& ob : stmt.order_by) CollectColumnNames(ob.expr.get(), &names);
  bool all_resolved = true;
  for (const auto& name : names) {
    const ColumnDescriptor* col = desc.FindColumn(name);
    if (col == nullptr) {
      // ORDER BY may name an output alias; that's fine — but a name we
      // can't resolve conservatively disables the projection.
      bool is_alias = false;
      for (const auto& item : stmt.items) {
        if (item.alias == name) is_alias = true;
      }
      if (!is_alias) all_resolved = false;
      continue;
    }
    needed->push_back(col->id);
  }
  return all_resolved;
}

void ExtractJoinEquis(const std::vector<const Expr*>& on_conjuncts,
                      const TableDescriptor& right, const std::string& right_alias,
                      std::vector<JoinEquiPair>* equis,
                      std::vector<const Expr*>* residual) {
  for (const Expr* c : on_conjuncts) {
    bool matched = false;
    if (c->kind == Expr::Kind::kBinary && c->op == BinOp::kEq) {
      for (int flip = 0; flip < 2 && !matched; ++flip) {
        const Expr* maybe_right = flip == 0 ? c->right.get() : c->left.get();
        const Expr* maybe_left = flip == 0 ? c->left.get() : c->right.get();
        if (maybe_right->kind != Expr::Kind::kColumnRef) continue;
        if (!maybe_right->table_name.empty() && maybe_right->table_name != right_alias) {
          continue;
        }
        const ColumnDescriptor* rcol = right.FindColumn(maybe_right->column_name);
        if (rcol == nullptr) continue;
        // The other side must be evaluable against the current bindings
        // (no references to the new table).
        if (maybe_left->kind == Expr::Kind::kColumnRef &&
            maybe_left->table_name == right_alias) {
          continue;
        }
        equis->push_back({maybe_left, rcol->id});
        matched = true;
      }
    }
    if (!matched) residual->push_back(c);
  }
}

// ---------------------------------------------------------------------------
// AggState
// ---------------------------------------------------------------------------

void AggState::Accumulate(const Datum& v, AggFunc func) {
  if (func == AggFunc::kCount) {
    ++count;  // null-ness handled by the caller for COUNT(expr)
    return;
  }
  if (v.is_null()) return;
  ++count;
  if (func == AggFunc::kSum || func == AggFunc::kAvg) {
    if (v.kind() == TypeKind::kInt) {
      isum = WrapAdd(isum, v.int_value());
    } else {
      sum_is_int = false;
    }
    sum += v.AsDouble();
  } else if (func == AggFunc::kMin || func == AggFunc::kMax) {
    if (!has_minmax) {
      min = max = v;
      has_minmax = true;
    } else {
      if (v.Compare(min) < 0) min = v;
      if (v.Compare(max) > 0) max = v;
    }
  }
}

void AggState::Merge(const AggState& other) {
  count += other.count;
  isum = WrapAdd(isum, other.isum);
  sum += other.sum;
  sum_is_int = sum_is_int && other.sum_is_int;
  if (other.has_minmax) {
    if (!has_minmax) {
      min = other.min;
      max = other.max;
      has_minmax = true;
    } else {
      if (other.min.Compare(min) < 0) min = other.min;
      if (other.max.Compare(max) > 0) max = other.max;
    }
  }
}

Datum AggState::Result(AggFunc func) const {
  switch (func) {
    case AggFunc::kCount: return Datum::Int(static_cast<int64_t>(count));
    case AggFunc::kSum:
      if (count == 0) return Datum::Null();
      return sum_is_int ? Datum::Int(isum) : Datum::Double(sum);
    case AggFunc::kAvg:
      if (count == 0) return Datum::Null();
      return Datum::Double(sum / static_cast<double>(count));
    case AggFunc::kMin: return has_minmax ? min : Datum::Null();
    case AggFunc::kMax: return has_minmax ? max : Datum::Null();
    case AggFunc::kNone: break;
  }
  return Datum::Null();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Status Reader::Get(const std::string& key, std::optional<std::string>* value) {
  if (txn != nullptr) return txn->Get(key, value);
  kv::BatchRequest req;
  req.AddGet(key);
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector->Send(req));
  if (resp.responses[0].found) {
    *value = std::move(resp.responses[0].value);
  } else {
    value->reset();
  }
  return Status::OK();
}

Status Reader::Scan(const std::string& start, const std::string& end, uint64_t limit,
                    std::vector<kv::MvccScanEntry>* rows,
                    const std::string& pushdown_spec) {
  if (txn != nullptr) return txn->Scan(start, end, limit, rows);
  kv::BatchRequest req;
  if (pushdown_spec.empty()) {
    req.AddScan(start, end, limit);
  } else {
    req.AddScanWithPushdown(start, end, limit, pushdown_spec);
  }
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, connector->Send(req));
  *rows = std::move(resp.responses[0].rows);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scan constraint extraction
// ---------------------------------------------------------------------------

ScanConstraints BuildScanConstraints(const TableDescriptor& desc,
                                     const std::string& alias, const Expr* where,
                                     const std::vector<Datum>* params) {
  ScanConstraints out;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);

  // Literal/param-only expressions can be evaluated without a row.
  std::vector<Binding> no_bindings;
  Row empty_row;
  EvalContext const_ctx;
  const_ctx.bindings = &no_bindings;
  const_ctx.row = &empty_row;
  const_ctx.params = params;
  auto constant_value = [&](const Expr& e) -> std::optional<Datum> {
    if (e.kind == Expr::Kind::kLiteral) return e.literal;
    if (e.kind == Expr::Kind::kParam) {
      auto v = Eval(e, const_ctx);
      if (v.ok()) return *v;
    }
    return std::nullopt;
  };

  // Parse each conjunct into `column <op> constant` where possible.
  struct Parsed {
    const Expr* conjunct;
    const ColumnDescriptor* col;
    BinOp op;
    Datum value;
  };
  std::vector<Parsed> parsed;
  for (const Expr* c : conjuncts) {
    bool ok = false;
    if (c->kind == Expr::Kind::kBinary) {
      const Expr* col_side = nullptr;
      const Expr* val_side = nullptr;
      BinOp op = c->op;
      if (c->left->kind == Expr::Kind::kColumnRef) {
        col_side = c->left.get();
        val_side = c->right.get();
      } else if (c->right->kind == Expr::Kind::kColumnRef) {
        col_side = c->right.get();
        val_side = c->left.get();
        // Flip the comparison: 5 < a  ==  a > 5.
        switch (op) {
          case BinOp::kLt: op = BinOp::kGt; break;
          case BinOp::kLe: op = BinOp::kGe; break;
          case BinOp::kGt: op = BinOp::kLt; break;
          case BinOp::kGe: op = BinOp::kLe; break;
          default: break;
        }
      }
      // Only references to the scanned table itself constrain this scan; a
      // reference qualified with another binding's alias must not (it used
      // to, silently corrupting join queries that reuse column names).
      if (col_side != nullptr &&
          (col_side->table_name.empty() || col_side->table_name == alias)) {
        const ColumnDescriptor* col = desc.FindColumn(col_side->column_name);
        if (col != nullptr) {
          auto value = constant_value(*val_side);
          if (value.has_value()) {
            parsed.push_back({c, col, op, std::move(*value)});
            ok = true;
          }
        }
      }
    }
    if (!ok) out.unhandled.push_back(c);
  }

  // Span inputs: equality constants (first conjunct wins) and one range
  // bound per column (last conjunct wins), matching the row engine's
  // historical behavior exactly.
  struct RangeBound {
    std::optional<Datum> lower, upper;
    bool lower_inclusive = true, upper_inclusive = true;
  };
  std::map<uint32_t, RangeBound> ranges;
  for (const Parsed& p : parsed) {
    if (p.op == BinOp::kEq) {
      out.eq.emplace(p.col->id, p.value);
    } else if (p.op == BinOp::kLt || p.op == BinOp::kLe) {
      auto& bound = ranges[p.col->id];
      bound.upper = p.value;
      bound.upper_inclusive = p.op == BinOp::kLe;
    } else if (p.op == BinOp::kGt || p.op == BinOp::kGe) {
      auto& bound = ranges[p.col->id];
      bound.lower = p.value;
      bound.lower_inclusive = p.op == BinOp::kGe;
    }
  }

  // Build the tightest primary-key span: equality prefix, then one range.
  std::string eq_prefix = IndexPrefix(desc.id, kPrimaryIndexId);
  for (uint32_t col_id : desc.primary.column_ids) {
    auto it = out.eq.find(col_id);
    if (it == out.eq.end()) break;
    it->second.EncodeKey(&eq_prefix);
    ++out.eq_cols;
  }
  out.start = eq_prefix;
  if (out.eq_cols == desc.primary.column_ids.size()) {
    out.point = true;  // full PK: point lookup, `start` is the row key
  } else {
    out.end = PrefixEnd(eq_prefix);
    // Range constraint on the first unconstrained PK column tightens further.
    const uint32_t next_col = desc.primary.column_ids[out.eq_cols];
    auto it = ranges.find(next_col);
    if (it != ranges.end()) {
      if (it->second.lower.has_value()) {
        std::string bound = eq_prefix;
        it->second.lower->EncodeKey(&bound);
        if (!it->second.lower_inclusive) bound = PrefixEnd(bound);
        if (bound > out.start) out.start = bound;
      }
      if (it->second.upper.has_value()) {
        std::string bound = eq_prefix;
        it->second.upper->EncodeKey(&bound);
        if (it->second.upper_inclusive) bound = PrefixEnd(bound);
        if (bound < out.end) out.end = bound;
      }
    }
  }

  // Classify parsed conjuncts: non-PK comparisons become KV-side filters;
  // PK conjuncts are enforced only if the span provably covers them.
  auto pk_position = [&](uint32_t col_id) -> int {
    for (size_t i = 0; i < desc.primary.column_ids.size(); ++i) {
      if (desc.primary.column_ids[i] == col_id) return static_cast<int>(i);
    }
    return -1;
  };
  for (Parsed& p : parsed) {
    const int pk_pos = pk_position(p.col->id);
    if (pk_pos < 0) {
      switch (p.op) {
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
        case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
          out.kv_filters.push_back({p.col->id, p.op, std::move(p.value)});
          continue;
        default:
          break;
      }
      out.unhandled.push_back(p.conjunct);
      continue;
    }
    bool enforced = false;
    if (p.op == BinOp::kEq && static_cast<size_t>(pk_pos) < out.eq_cols) {
      const Datum& used = out.eq.find(p.col->id)->second;
      enforced = !p.value.is_null() && used.Compare(p.value) == 0;
    } else if (!out.point && static_cast<size_t>(pk_pos) == out.eq_cols) {
      auto it = ranges.find(p.col->id);
      if (it != ranges.end()) {
        if ((p.op == BinOp::kLt || p.op == BinOp::kLe) &&
            it->second.upper.has_value()) {
          enforced = it->second.upper->Compare(p.value) == 0 &&
                     it->second.upper_inclusive == (p.op == BinOp::kLe);
        } else if ((p.op == BinOp::kGt || p.op == BinOp::kGe) &&
                   it->second.lower.has_value()) {
          enforced = it->second.lower->Compare(p.value) == 0 &&
                     it->second.lower_inclusive == (p.op == BinOp::kGe);
        }
      }
    }
    if (!enforced) out.unhandled.push_back(p.conjunct);
  }
  return out;
}

}  // namespace veloce::sql
