#include "sql/datum.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/codec.h"

namespace veloce::sql {

std::string_view TypeName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull: return "NULL";
    case TypeKind::kBool: return "BOOL";
    case TypeKind::kInt: return "INT";
    case TypeKind::kDouble: return "DOUBLE";
    case TypeKind::kString: return "STRING";
  }
  return "?";
}

double Datum::AsDouble() const {
  switch (kind_) {
    case TypeKind::kInt: return static_cast<double>(int_value());
    case TypeKind::kDouble: return double_value();
    case TypeKind::kBool: return bool_value() ? 1 : 0;
    default: return 0;
  }
}

int Datum::Compare(const Datum& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool numeric = (kind_ == TypeKind::kInt || kind_ == TypeKind::kDouble) &&
                       (other.kind_ == TypeKind::kInt || other.kind_ == TypeKind::kDouble);
  if (numeric) {
    if (kind_ == TypeKind::kInt && other.kind_ == TypeKind::kInt) {
      const int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case TypeKind::kBool: {
      const int a = bool_value(), b = other.bool_value();
      return a - b;
    }
    case TypeKind::kString:
      return Slice(string_value()).Compare(Slice(other.string_value()));
    default:
      return 0;
  }
}

std::string Datum::ToString() const {
  switch (kind_) {
    case TypeKind::kNull: return "NULL";
    case TypeKind::kBool: return bool_value() ? "true" : "false";
    case TypeKind::kInt: return std::to_string(int_value());
    case TypeKind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_value());
      return buf;
    }
    case TypeKind::kString: return string_value();
  }
  return "?";
}

void Datum::EncodeKey(std::string* dst) const {
  dst->push_back(static_cast<char>(kind_));
  switch (kind_) {
    case TypeKind::kNull: break;
    case TypeKind::kBool: dst->push_back(bool_value() ? 1 : 0); break;
    case TypeKind::kInt: OrderedPutInt64(dst, int_value()); break;
    case TypeKind::kDouble: OrderedPutDouble(dst, double_value()); break;
    case TypeKind::kString: OrderedPutString(dst, string_value()); break;
  }
}

Status Datum::DecodeKey(Slice* input, Datum* out) {
  if (input->empty()) return Status::Corruption("empty datum key");
  const TypeKind kind = static_cast<TypeKind>((*input)[0]);
  input->RemovePrefix(1);
  switch (kind) {
    case TypeKind::kNull:
      *out = Datum::Null();
      return Status::OK();
    case TypeKind::kBool: {
      if (input->empty()) return Status::Corruption("bad bool key");
      *out = Datum::Bool((*input)[0] != 0);
      input->RemovePrefix(1);
      return Status::OK();
    }
    case TypeKind::kInt: {
      int64_t v;
      if (!OrderedGetInt64(input, &v)) return Status::Corruption("bad int key");
      *out = Datum::Int(v);
      return Status::OK();
    }
    case TypeKind::kDouble: {
      double v;
      if (!OrderedGetDouble(input, &v)) return Status::Corruption("bad double key");
      *out = Datum::Double(v);
      return Status::OK();
    }
    case TypeKind::kString: {
      std::string v;
      if (!OrderedGetString(input, &v)) return Status::Corruption("bad string key");
      *out = Datum::String(std::move(v));
      return Status::OK();
    }
  }
  return Status::Corruption("unknown datum kind in key");
}

void Datum::EncodeValue(std::string* dst) const {
  dst->push_back(static_cast<char>(kind_));
  switch (kind_) {
    case TypeKind::kNull: break;
    case TypeKind::kBool: dst->push_back(bool_value() ? 1 : 0); break;
    case TypeKind::kInt: PutVarint64(dst, static_cast<uint64_t>(int_value())); break;
    case TypeKind::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      const double v = double_value();
      std::memcpy(&bits, &v, sizeof(bits));
      PutFixed64(dst, bits);
      break;
    }
    case TypeKind::kString: PutLengthPrefixed(dst, string_value()); break;
  }
}

Status Datum::DecodeValue(Slice* input, Datum* out) {
  if (input->empty()) return Status::Corruption("empty datum value");
  const TypeKind kind = static_cast<TypeKind>((*input)[0]);
  input->RemovePrefix(1);
  switch (kind) {
    case TypeKind::kNull:
      *out = Datum::Null();
      return Status::OK();
    case TypeKind::kBool: {
      if (input->empty()) return Status::Corruption("bad bool value");
      *out = Datum::Bool((*input)[0] != 0);
      input->RemovePrefix(1);
      return Status::OK();
    }
    case TypeKind::kInt: {
      uint64_t v;
      if (!GetVarint64(input, &v)) return Status::Corruption("bad int value");
      *out = Datum::Int(static_cast<int64_t>(v));
      return Status::OK();
    }
    case TypeKind::kDouble: {
      uint64_t bits;
      if (!GetFixed64(input, &bits)) return Status::Corruption("bad double value");
      double v;
      std::memcpy(&v, &bits, sizeof(v));
      *out = Datum::Double(v);
      return Status::OK();
    }
    case TypeKind::kString: {
      Slice v;
      if (!GetLengthPrefixed(input, &v)) return Status::Corruption("bad string value");
      *out = Datum::String(v.ToString());
      return Status::OK();
    }
  }
  return Status::Corruption("unknown datum kind in value");
}

}  // namespace veloce::sql
