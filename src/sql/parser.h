#ifndef VELOCE_SQL_PARSER_H_
#define VELOCE_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace veloce::sql {

/// Parses one SQL statement (a trailing semicolon is allowed). Recursive
/// descent over the dialect described in ast.h: CREATE TABLE/INDEX, DROP
/// TABLE, INSERT/UPSERT, SELECT (joins, WHERE, GROUP BY, aggregates, ORDER
/// BY, LIMIT), UPDATE, DELETE, BEGIN/COMMIT/ROLLBACK, SET.
StatusOr<std::unique_ptr<Statement>> Parse(const std::string& sql);

}  // namespace veloce::sql

#endif  // VELOCE_SQL_PARSER_H_
