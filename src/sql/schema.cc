#include "sql/schema.h"

#include "common/codec.h"

namespace veloce::sql {

const ColumnDescriptor* TableDescriptor::FindColumn(const std::string& col_name) const {
  for (const auto& col : columns) {
    if (col.name == col_name) return &col;
  }
  return nullptr;
}

const ColumnDescriptor* TableDescriptor::FindColumnById(uint32_t col_id) const {
  for (const auto& col : columns) {
    if (col.id == col_id) return &col;
  }
  return nullptr;
}

int TableDescriptor::ColumnIndex(uint32_t col_id) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].id == col_id) return static_cast<int>(i);
  }
  return -1;
}

bool TableDescriptor::IsPrimaryKeyColumn(uint32_t col_id) const {
  for (uint32_t id : primary.column_ids) {
    if (id == col_id) return true;
  }
  return false;
}

const IndexDescriptor* TableDescriptor::FindIndex(const std::string& index_name) const {
  for (const auto& idx : secondaries) {
    if (idx.name == index_name) return &idx;
  }
  return nullptr;
}

namespace {

void EncodeIndex(std::string* out, const IndexDescriptor& idx) {
  PutVarint32(out, idx.id);
  PutLengthPrefixed(out, idx.name);
  PutVarint64(out, idx.column_ids.size());
  for (uint32_t id : idx.column_ids) PutVarint32(out, id);
}

bool DecodeIndex(Slice* in, IndexDescriptor* idx) {
  Slice name;
  uint64_t num_cols = 0;
  if (!GetVarint32(in, &idx->id) || !GetLengthPrefixed(in, &name) ||
      !GetVarint64(in, &num_cols)) {
    return false;
  }
  idx->name = name.ToString();
  idx->column_ids.clear();
  for (uint64_t i = 0; i < num_cols; ++i) {
    uint32_t id;
    if (!GetVarint32(in, &id)) return false;
    idx->column_ids.push_back(id);
  }
  return true;
}

}  // namespace

std::string TableDescriptor::Encode() const {
  std::string out;
  PutVarint64(&out, id);
  PutLengthPrefixed(&out, name);
  PutVarint64(&out, columns.size());
  for (const auto& col : columns) {
    PutVarint32(&out, col.id);
    PutLengthPrefixed(&out, col.name);
    out.push_back(static_cast<char>(col.type));
    out.push_back(col.nullable ? 1 : 0);
  }
  EncodeIndex(&out, primary);
  PutVarint64(&out, secondaries.size());
  for (const auto& idx : secondaries) EncodeIndex(&out, idx);
  return out;
}

StatusOr<TableDescriptor> TableDescriptor::Decode(Slice data) {
  TableDescriptor desc;
  Slice name;
  uint64_t num_cols = 0;
  if (!GetVarint64(&data, &desc.id) || !GetLengthPrefixed(&data, &name) ||
      !GetVarint64(&data, &num_cols)) {
    return Status::Corruption("bad table descriptor");
  }
  desc.name = name.ToString();
  for (uint64_t i = 0; i < num_cols; ++i) {
    ColumnDescriptor col;
    Slice col_name;
    if (!GetVarint32(&data, &col.id) || !GetLengthPrefixed(&data, &col_name) ||
        data.size() < 2) {
      return Status::Corruption("bad column descriptor");
    }
    col.name = col_name.ToString();
    col.type = static_cast<TypeKind>(data[0]);
    col.nullable = data[1] != 0;
    data.RemovePrefix(2);
    desc.columns.push_back(std::move(col));
  }
  uint64_t num_secondaries = 0;
  if (!DecodeIndex(&data, &desc.primary) || !GetVarint64(&data, &num_secondaries)) {
    return Status::Corruption("bad index descriptors");
  }
  for (uint64_t i = 0; i < num_secondaries; ++i) {
    IndexDescriptor idx;
    if (!DecodeIndex(&data, &idx)) return Status::Corruption("bad secondary index");
    desc.secondaries.push_back(std::move(idx));
  }
  return desc;
}

}  // namespace veloce::sql
