#include "sql/vec/vec_exec.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/codec.h"
#include "sql/pushdown.h"
#include "sql/vec/column_batch.h"
#include "sql/vec/vec_expr.h"

namespace veloce::sql::vec {

namespace {

// Plan-time rejection: the statement re-runs on the row engine, which
// either covers the shape or reproduces the exact user-facing error.
Status NotCovered(const char* what) {
  return Status::NotSupported(std::string("vectorized engine: ") + what);
}

// Resolves every column reference under `expr` against `bindings`,
// recording node -> concatenated-row position (== batch column index).
Status BindExpr(const Expr* expr, const std::vector<Binding>& bindings,
                std::map<const Expr*, int>* positions) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == Expr::Kind::kColumnRef) {
    VELOCE_ASSIGN_OR_RETURN(
        int pos, ResolveColumn(bindings, expr->table_name, expr->column_name));
    (*positions)[expr] = pos;
    return Status::OK();
  }
  VELOCE_RETURN_IF_ERROR(BindExpr(expr->left.get(), bindings, positions));
  VELOCE_RETURN_IF_ERROR(BindExpr(expr->right.get(), bindings, positions));
  return BindExpr(expr->child.get(), bindings, positions);
}

// Validates and binds in one step; any failure rejects the plan.
Status ValidateAndBind(const Expr* expr, const std::vector<Binding>& bindings,
                       const std::vector<Datum>* params,
                       std::map<const Expr*, int>* positions) {
  VELOCE_RETURN_IF_ERROR(ValidateExpr(expr, bindings, params));
  return BindExpr(expr, bindings, positions);
}

// Converts an aggregate input to the KV-evaluable expression subset:
// constants (params fold at plan time), non-PK column refs of the scanned
// table, arithmetic over those, and `*` (COUNT(*)).
bool ToPushdownExpr(const Expr& e, const TableDescriptor& desc,
                    const std::string& alias, const std::vector<Datum>* params,
                    std::unique_ptr<PushdownExpr>* out) {
  auto node = std::make_unique<PushdownExpr>();
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      node->kind = PushdownExpr::Kind::kLiteral;
      node->literal = e.literal;
      break;
    case Expr::Kind::kParam: {
      if (params == nullptr || e.param_index < 1 ||
          static_cast<size_t>(e.param_index) > params->size()) {
        return false;
      }
      node->kind = PushdownExpr::Kind::kLiteral;
      node->literal = (*params)[static_cast<size_t>(e.param_index - 1)];
      break;
    }
    case Expr::Kind::kColumnRef: {
      if (!e.table_name.empty() && e.table_name != alias) return false;
      const ColumnDescriptor* col = desc.FindColumn(e.column_name);
      if (col == nullptr || desc.IsPrimaryKeyColumn(col->id)) return false;
      node->kind = PushdownExpr::Kind::kColumn;
      node->column_id = col->id;
      break;
    }
    case Expr::Kind::kBinary: {
      if (e.op != BinOp::kAdd && e.op != BinOp::kSub && e.op != BinOp::kMul &&
          e.op != BinOp::kDiv && e.op != BinOp::kMod) {
        return false;
      }
      node->kind = PushdownExpr::Kind::kBinary;
      node->op = e.op;
      if (!ToPushdownExpr(*e.left, desc, alias, params, &node->left) ||
          !ToPushdownExpr(*e.right, desc, alias, params, &node->right)) {
        return false;
      }
      break;
    }
    case Expr::Kind::kStar:
      node->kind = PushdownExpr::Kind::kStar;
      break;
    default:
      return false;
  }
  *out = std::move(node);
  return true;
}

// True when every column reference outside aggregate arguments resolves to
// a grouping column — the precondition for evaluating output expressions
// against a representative row that carries only the group values.
bool NonAggRefsCovered(const Expr* e, const std::map<const Expr*, int>& positions,
                       const std::set<int>& group_positions) {
  if (e == nullptr) return true;
  if (e->kind == Expr::Kind::kAggregate) return true;  // input feeds AggState
  if (e->kind == Expr::Kind::kColumnRef) {
    auto it = positions.find(e);
    return it != positions.end() && group_positions.count(it->second) > 0;
  }
  return NonAggRefsCovered(e->left.get(), positions, group_positions) &&
         NonAggRefsCovered(e->right.get(), positions, group_positions) &&
         NonAggRefsCovered(e->child.get(), positions, group_positions);
}

// Column-at-a-time accumulation of one aggregate input into the flat group
// state array (`states[g * stride + a]`), `gidx` giving each selected row's
// group. Semantics mirror the scalar AggState::Accumulate caller exactly
// (null handling, int-sum wrapping, non-int inputs contributing AsDouble);
// the win is skipping the per-row Datum boxing for the hot SUM/AVG/COUNT
// cases.
void AccumulateColumn(const Vec& in, AggFunc func, const SelVector& sel,
                      const std::vector<uint32_t>& gidx, AggState* states,
                      size_t stride, size_t a) {
  if (in.is_const || func == AggFunc::kMin || func == AggFunc::kMax) {
    for (size_t k = 0; k < sel.size(); ++k) {
      Datum v = in.DatumAt(sel[k]);
      if (func == AggFunc::kCount) {
        if (!v.is_null()) states[gidx[k] * stride + a].Accumulate(v, func);
      } else {
        states[gidx[k] * stride + a].Accumulate(v, func);
      }
    }
    return;
  }
  const ColumnVector& col = *in.col();
  if (func == AggFunc::kCount) {
    for (size_t k = 0; k < sel.size(); ++k) {
      if (!col.IsNull(sel[k])) ++states[gidx[k] * stride + a].count;
    }
    return;
  }
  // kSum / kAvg. The no-null variants drop the per-row null load+branch;
  // one memchr over the column's null bytes decides which loop runs.
  const bool no_nulls =
      std::memchr(col.nulls.data(), 1, col.nulls.size()) == nullptr;
  switch (col.type) {
    case TypeKind::kInt:
      if (no_nulls) {
        for (size_t k = 0; k < sel.size(); ++k) {
          AggState& st = states[gidx[k] * stride + a];
          const int64_t v = col.IntAt(sel[k]);
          ++st.count;
          st.isum = WrapAdd(st.isum, v);
          st.sum += static_cast<double>(v);
        }
        break;
      }
      for (size_t k = 0; k < sel.size(); ++k) {
        const uint32_t i = sel[k];
        if (col.IsNull(i)) continue;
        AggState& st = states[gidx[k] * stride + a];
        const int64_t v = col.IntAt(i);
        ++st.count;
        st.isum = WrapAdd(st.isum, v);
        st.sum += static_cast<double>(v);
      }
      break;
    case TypeKind::kDouble:
      if (no_nulls) {
        for (size_t k = 0; k < sel.size(); ++k) {
          AggState& st = states[gidx[k] * stride + a];
          ++st.count;
          st.sum_is_int = false;
          st.sum += col.DoubleAt(sel[k]);
        }
        break;
      }
      for (size_t k = 0; k < sel.size(); ++k) {
        const uint32_t i = sel[k];
        if (col.IsNull(i)) continue;
        AggState& st = states[gidx[k] * stride + a];
        ++st.count;
        st.sum_is_int = false;
        st.sum += col.DoubleAt(i);
      }
      break;
    default:  // kBool, kString: non-int kinds contribute Datum::AsDouble.
      for (size_t k = 0; k < sel.size(); ++k) {
        const uint32_t i = sel[k];
        if (col.IsNull(i)) continue;
        AggState& st = states[gidx[k] * stride + a];
        ++st.count;
        st.sum_is_int = false;
        st.sum += col.AsDoubleAt(i);
      }
      break;
  }
}

// Group identity fast path: the hash-identity bytes of most grouping
// tuples fit in 16 bytes (tags + fixed-width scalars / short strings), so
// they pack into two words hashed and compared without touching a
// std::string. Tuples that don't fit fall back to the byte-string map; the
// routing is a deterministic function of the tuple value (same value, same
// encoding, same map), so group identity is preserved across both maps.
struct PackedKey {
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint32_t len = 0;  // bytes used; disambiguates zero padding (NULL tags)
  bool operator==(const PackedKey& o) const {
    return lo == o.lo && hi == o.hi && len == o.len;
  }
};

struct PackedKeyHash {
  size_t operator()(const PackedKey& k) const {
    uint64_t h = (k.lo * 0x9E3779B97F4A7C15ULL) ^
                 (k.hi * 0xC2B2AE3D27D4EB4FULL) ^ k.len;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

// Appends the same bytes AppendHashKeyAt would (tag + payload) into the
// 16-byte packed buffer; false when they don't fit.
bool AppendPackedKeyAt(const Vec& gv, uint32_t i, unsigned char* buf,
                       uint32_t* used) {
  if (gv.IsNullAt(i)) {
    if (*used + 1 > 16) return false;
    buf[(*used)++] = 0;
    return true;
  }
  const TypeKind t = gv.static_type();
  if (t == TypeKind::kString) {
    const std::string_view s = gv.StringAt(i);
    if (*used + 2 + s.size() > 16) return false;
    buf[(*used)++] = static_cast<unsigned char>(1 + static_cast<int>(t));
    buf[(*used)++] = static_cast<unsigned char>(s.size());
    std::memcpy(buf + *used, s.data(), s.size());
    *used += static_cast<uint32_t>(s.size());
    return true;
  }
  if (*used + 9 > 16) return false;
  buf[(*used)++] = static_cast<unsigned char>(1 + static_cast<int>(t));
  if (t == TypeKind::kDouble) {
    const double v = gv.DoubleAt(i);
    std::memcpy(buf + *used, &v, 8);
  } else if (t == TypeKind::kBool) {  // 8-byte int64 payload, bools as 0/1
    const int64_t v =
        gv.is_const ? (gv.const_val.bool_value() ? 1 : 0) : gv.col()->IntAt(i);
    std::memcpy(buf + *used, &v, 8);
  } else {  // kInt
    const int64_t v = gv.IntAt(i);
    std::memcpy(buf + *used, &v, 8);
  }
  *used += 8;
  return true;
}

}  // namespace

StatusOr<ResultSet> VecExecutor::ExecSelect(const SelectStmt& stmt,
                                            const std::vector<Datum>* params) {
  // ---- plan: bindings ------------------------------------------------------
  if (stmt.table.empty()) return NotCovered("table-less SELECT");
  StatusOr<TableDescriptor> base_desc = catalog_->GetTable(stmt.table);
  if (!base_desc.ok()) return NotCovered("unresolvable table");

  std::vector<Binding> bindings;
  Binding base;
  base.alias = stmt.table_alias.empty() ? stmt.table : stmt.table_alias;
  base.desc = std::move(base_desc).value();
  base.offset = 0;
  bindings.push_back(std::move(base));

  std::map<const Expr*, int> positions;

  struct JoinPlan {
    Binding binding;
    std::vector<JoinEquiPair> equis;
    std::vector<const Expr*> residual;
  };
  std::vector<JoinPlan> join_plans;
  for (const auto& join : stmt.joins) {
    StatusOr<TableDescriptor> right = catalog_->GetTable(join.table);
    if (!right.ok()) return NotCovered("unresolvable join table");
    JoinPlan jp;
    jp.binding.alias = join.alias.empty() ? join.table : join.alias;
    jp.binding.desc = std::move(right).value();
    jp.binding.offset =
        bindings.back().offset + bindings.back().desc.columns.size();
    std::vector<const Expr*> on_conjuncts;
    CollectConjuncts(join.on.get(), &on_conjuncts);
    ExtractJoinEquis(on_conjuncts, jp.binding.desc, jp.binding.alias, &jp.equis,
                     &jp.residual);
    // No equi columns -> nested-loop join; covered but left to the row
    // engine (rare shape, not worth a kernel).
    if (jp.equis.empty()) return NotCovered("non-equi join");
    // Equi columns covering the right PK run as per-row index lookups in
    // the row engine (the Q9 remote-lookup plan). Keep that plan shape —
    // a hash join here would turn point reads into a full scan.
    bool index_join = jp.equis.size() == jp.binding.desc.primary.column_ids.size();
    if (index_join) {
      for (uint32_t pk_col : jp.binding.desc.primary.column_ids) {
        bool found = false;
        for (const auto& pair : jp.equis) {
          if (pair.right_col_id == pk_col) found = true;
        }
        if (!found) {
          index_join = false;
          break;
        }
      }
    }
    if (index_join) return NotCovered("index join");
    // Probe expressions evaluate over the rows bound so far.
    for (const auto& pair : jp.equis) {
      if (HasAggregate(pair.left_expr)) return NotCovered("aggregate in ON");
      if (!ValidateAndBind(pair.left_expr, bindings, params, &positions).ok()) {
        return NotCovered("unresolvable ON expression");
      }
    }
    bindings.push_back(jp.binding);
    for (const Expr* c : jp.residual) {
      if (HasAggregate(c)) return NotCovered("aggregate in ON");
      if (!ValidateAndBind(c, bindings, params, &positions).ok()) {
        return NotCovered("unresolvable ON expression");
      }
    }
    join_plans.push_back(std::move(jp));
  }

  // ---- plan: projection, aggregation, ordering -----------------------------
  std::vector<ExprPtr> star_exprs;
  std::vector<const Expr*> item_exprs;
  std::vector<std::string> item_names;
  if (stmt.items.empty()) {
    for (const auto& binding : bindings) {
      for (const auto& col : binding.desc.columns) {
        star_exprs.push_back(Expr::Column(binding.alias, col.name));
        item_exprs.push_back(star_exprs.back().get());
        item_names.push_back(col.name);
      }
    }
  } else {
    for (const auto& item : stmt.items) {
      item_exprs.push_back(item.expr.get());
      item_names.push_back(DeriveColumnName(*item.expr, item.alias));
    }
  }

  for (const Expr* e : item_exprs) {
    if (!ValidateAndBind(e, bindings, params, &positions).ok()) {
      return NotCovered("unresolvable select item");
    }
  }
  if (stmt.where != nullptr) {
    if (HasAggregate(stmt.where.get())) return NotCovered("aggregate in WHERE");
    if (!ValidateAndBind(stmt.where.get(), bindings, params, &positions).ok()) {
      return NotCovered("unresolvable WHERE");
    }
  }
  for (const auto& g : stmt.group_by) {
    if (HasAggregate(g.get())) return NotCovered("aggregate in GROUP BY");
    if (!ValidateAndBind(g.get(), bindings, params, &positions).ok()) {
      return NotCovered("unresolvable GROUP BY");
    }
  }

  bool any_agg = !stmt.group_by.empty();
  for (const Expr* e : item_exprs) {
    if (HasAggregate(e)) any_agg = true;
  }
  std::vector<const Expr*> agg_nodes;
  for (const Expr* e : item_exprs) CollectAggregates(e, &agg_nodes);
  for (const Expr* agg : agg_nodes) {
    if (agg->child == nullptr) return NotCovered("aggregate without input");
    if (HasAggregate(agg->child.get())) return NotCovered("nested aggregate");
    if (agg->child->kind != Expr::Kind::kStar &&
        !ValidateAndBind(agg->child.get(), bindings, params, &positions).ok()) {
      return NotCovered("unresolvable aggregate input");
    }
  }

  // ORDER BY resolution mirrors the row engine: output column by name or
  // 1-based ordinal, else an input-row expression (non-aggregated only).
  struct SortKey {
    int output_idx = -1;
    const Expr* expr = nullptr;
    bool desc = false;
  };
  std::vector<SortKey> sort_keys;
  for (const auto& ob : stmt.order_by) {
    SortKey key;
    key.desc = ob.desc;
    if (ob.expr->kind == Expr::Kind::kColumnRef) {
      for (size_t i = 0; i < item_names.size(); ++i) {
        if (item_names[i] == ob.expr->column_name) {
          key.output_idx = static_cast<int>(i);
          break;
        }
      }
    } else if (ob.expr->kind == Expr::Kind::kLiteral &&
               ob.expr->literal.kind() == TypeKind::kInt) {
      const int idx = static_cast<int>(ob.expr->literal.int_value()) - 1;
      if (idx < 0 || idx >= static_cast<int>(item_names.size())) {
        return NotCovered("ORDER BY position out of range");
      }
      key.output_idx = idx;
    }
    if (key.output_idx < 0) {
      if (any_agg) return NotCovered("ORDER BY expression in aggregated query");
      key.expr = ob.expr.get();
      if (HasAggregate(key.expr)) return NotCovered("aggregate in ORDER BY");
      if (!ValidateAndBind(key.expr, bindings, params, &positions).ok()) {
        return NotCovered("unresolvable ORDER BY expression");
      }
    }
    sort_keys.push_back(key);
  }
  bool needs_input_keys = false;
  for (const auto& key : sort_keys) {
    if (key.expr != nullptr) needs_input_keys = true;
  }

  // ---- plan: base scan -----------------------------------------------------
  const TableDescriptor& desc = bindings[0].desc;
  const std::string& base_alias = bindings[0].alias;
  const ScanConstraints plan =
      BuildScanConstraints(desc, base_alias, stmt.where.get(), params);
  // Point gets and secondary-index scans are the row engine's specialty —
  // batching buys nothing at 0-or-1 (or few) rows per lookup.
  if (plan.point) return NotCovered("point lookup");
  if (plan.eq_cols == 0) {
    for (const auto& index : desc.secondaries) {
      if (!index.column_ids.empty() &&
          plan.eq.find(index.column_ids[0]) != plan.eq.end()) {
        return NotCovered("secondary index scan");
      }
    }
  }

  ResultSet result;
  result.columns = item_names;
  std::vector<Row> output;
  std::vector<Row> input_sort_values;  // parallel to output, expr sort keys

  // ---- aggregation fragment push-down --------------------------------------
  // Eligible when the whole WHERE is enforced KV-side (span + filters, no
  // unhandled residue), grouping is by stored non-PK columns, aggregate
  // inputs are KV-evaluable, and output expressions read nothing but group
  // columns outside their aggregates. The scan then returns per-group
  // partial AggStates per range segment instead of rows.
  bool fragment_done = false;
  if (pushdown_enabled_ && stmt.joins.empty() && any_agg &&
      plan.unhandled.empty()) {
    bool pushable = true;
    std::vector<uint32_t> group_ids;
    std::vector<int> group_cols;
    std::set<int> group_positions;
    for (const auto& g : stmt.group_by) {
      const Expr* e = g.get();
      if (e->kind != Expr::Kind::kColumnRef) {
        pushable = false;
        break;
      }
      const int pos = positions.at(e);
      const ColumnDescriptor& col = desc.columns[static_cast<size_t>(pos)];
      if (desc.IsPrimaryKeyColumn(col.id)) {
        pushable = false;  // PK values travel in the key, not the row value
        break;
      }
      group_ids.push_back(col.id);
      group_cols.push_back(pos);
      group_positions.insert(pos);
    }
    std::vector<PushdownAggregate> push_aggs;
    if (pushable) {
      for (const Expr* agg : agg_nodes) {
        PushdownAggregate pa;
        pa.func = agg->agg;
        if (!ToPushdownExpr(*agg->child, desc, base_alias, params, &pa.input)) {
          pushable = false;
          break;
        }
        push_aggs.push_back(std::move(pa));
      }
    }
    if (pushable) {
      for (const Expr* e : item_exprs) {
        if (!NonAggRefsCovered(e, positions, group_positions)) {
          pushable = false;
          break;
        }
      }
    }
    if (pushable) {
      PushdownSpec spec = MakeFilterSpec(plan, nullptr, desc);
      spec.group_by = group_ids;
      spec.aggregates = std::move(push_aggs);
      Reader reader{nullptr, connector_};
      std::vector<kv::MvccScanEntry> entries;
      VELOCE_RETURN_IF_ERROR(
          reader.Scan(plan.start, plan.end, 0, &entries, spec.Encode()));
      rows_scanned_ += entries.size();

      // Merge per-segment partial states; the map over encoded group keys
      // reproduces the row engine's group output order.
      struct FragGroup {
        std::vector<Datum> values;
        std::vector<AggState> states;
      };
      std::map<std::string, FragGroup> groups;
      for (const auto& entry : entries) {
        std::vector<Datum> values;
        std::vector<AggState> states;
        VELOCE_RETURN_IF_ERROR(
            DecodePartialAggRow(Slice(entry.value), &values, &states));
        if (values.size() != group_ids.size() ||
            states.size() != agg_nodes.size()) {
          return Status::Corruption("partial aggregate arity mismatch");
        }
        std::string key;
        for (const Datum& v : values) v.EncodeKey(&key);
        auto [it, inserted] = groups.try_emplace(std::move(key));
        if (inserted) {
          it->second.values = std::move(values);
          it->second.states = std::move(states);
        } else {
          for (size_t i = 0; i < states.size(); ++i) {
            it->second.states[i].Merge(states[i]);
          }
        }
      }
      if (groups.empty() && stmt.group_by.empty()) {
        groups.try_emplace("", FragGroup{{}, std::vector<AggState>(
                                                agg_nodes.size())});
      }
      for (auto& [key, group] : groups) {
        Row rep(desc.columns.size(), Datum::Null());
        for (size_t i = 0; i < group_cols.size(); ++i) {
          rep[static_cast<size_t>(group_cols[i])] = group.values[i];
        }
        std::map<const Expr*, Datum> agg_values;
        for (size_t i = 0; i < agg_nodes.size(); ++i) {
          agg_values[agg_nodes[i]] = group.states[i].Result(agg_nodes[i]->agg);
        }
        EvalContext ctx{&bindings, &rep, params, &agg_values};
        Row out_row;
        for (const Expr* e : item_exprs) {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
          out_row.push_back(std::move(v));
        }
        output.push_back(std::move(out_row));
      }
      fragment_done = true;
    }
  }

  // ---- execute: scan -> batches --------------------------------------------
  if (!fragment_done) {
    // Projection push-down input: same condition — and therefore the same
    // scan request bytes — as the row engine.
    std::vector<uint32_t> needed;
    const std::vector<uint32_t>* needed_ptr = nullptr;
    if (pushdown_enabled_ && stmt.joins.empty() && !stmt.items.empty() &&
        CollectNeededColumns(stmt, desc, &needed)) {
      needed_ptr = &needed;
    }
    std::string spec_bytes;
    if (pushdown_enabled_) {
      PushdownSpec spec = MakeFilterSpec(plan, needed_ptr, desc);
      if (!spec.empty()) spec_bytes = spec.Encode();
    }
    Reader reader{nullptr, connector_};
    std::vector<kv::MvccScanEntry> entries;
    VELOCE_RETURN_IF_ERROR(
        reader.Scan(plan.start, plan.end, 0, &entries, spec_bytes));
    rows_scanned_ += entries.size();

    // Late materialization: every column the query can read was bound into
    // `positions` at plan time; everything else decodes as a NULL
    // placeholder. (Join equi columns on the build side are resolved by
    // column id, not through `positions` — added below.)
    size_t total_width = 0;
    std::vector<size_t> binding_offsets;
    for (const Binding& b : bindings) {
      binding_offsets.push_back(total_width);
      total_width += b.desc.columns.size();
    }
    std::vector<uint8_t> needed_mask(total_width, 0);
    for (const auto& [expr, p] : positions) {
      needed_mask[static_cast<size_t>(p)] = 1;
    }
    for (size_t j = 0; j < join_plans.size(); ++j) {
      const TableDescriptor& right = join_plans[j].binding.desc;
      for (const auto& pair : join_plans[j].equis) {
        const int ci = right.ColumnIndex(pair.right_col_id);
        needed_mask[binding_offsets[j + 1] + static_cast<size_t>(ci)] = 1;
      }
    }
    auto mask_for = [&](size_t binding_idx) {
      const size_t off = binding_offsets[binding_idx];
      const size_t width = bindings[binding_idx].desc.columns.size();
      return std::vector<uint8_t>(needed_mask.begin() + off,
                                  needed_mask.begin() + off + width);
    };

    std::vector<ColumnBatch> batches;
    std::vector<SelVector> sels;
    BatchDecoder decoder(desc, mask_for(0));
    size_t pos = 0;
    while (pos < entries.size()) {
      ColumnBatch batch;
      // NotSupported (stored kind != schema type) propagates: the row
      // engine decodes heterogeneous rows datum-by-datum.
      VELOCE_RETURN_IF_ERROR(decoder.NextBatch(&entries, &pos, &batch));
      if (batch.rows == 0) break;
      ++batches_;
      sels.push_back(FullSel(batch.rows));
      batches.push_back(std::move(batch));
    }
    std::vector<TypeKind> cur_types = decoder.column_types();

    // ---- execute: hash joins ----------------------------------------------
    for (const JoinPlan& jp : join_plans) {
      const TableDescriptor& right = jp.binding.desc;
      const ScanConstraints rplan =
          BuildScanConstraints(right, jp.binding.alias, nullptr, params);
      std::vector<kv::MvccScanEntry> rentries;
      VELOCE_RETURN_IF_ERROR(reader.Scan(rplan.start, rplan.end, 0, &rentries));
      rows_scanned_ += rentries.size();
      BatchDecoder rdecoder(right, mask_for(&jp - join_plans.data() + 1));
      std::vector<ColumnBatch> right_batches;
      size_t rpos = 0;
      while (rpos < rentries.size()) {
        ColumnBatch b;
        VELOCE_RETURN_IF_ERROR(rdecoder.NextBatch(&rentries, &rpos, &b));
        if (b.rows == 0) break;
        ++batches_;
        right_batches.push_back(std::move(b));
      }

      // Build side: encoded equi-column values -> row locators, insertion
      // order preserved per key (matches the row engine's multimap).
      std::vector<int> right_cols;
      for (const auto& pair : jp.equis) {
        right_cols.push_back(right.ColumnIndex(pair.right_col_id));
      }
      // Two-level table, same scheme as the aggregation's group identity:
      // keys whose hash-identity bytes fit 16 bytes go to the packed map,
      // the rest to the byte-string map. Routing is a deterministic
      // function of the key value, so build and probe always agree.
      using Locators = std::vector<std::pair<uint32_t, uint32_t>>;
      std::unordered_map<PackedKey, Locators, PackedKeyHash> packed_table;
      std::unordered_map<std::string, Locators> hash_table;
      for (uint32_t bi = 0; bi < right_batches.size(); ++bi) {
        const ColumnBatch& rb = right_batches[bi];
        std::vector<Vec> rvecs(right_cols.size());
        for (size_t k = 0; k < right_cols.size(); ++k) {
          rvecs[k].ref = &rb.cols[static_cast<size_t>(right_cols[k])];
        }
        for (uint32_t ri = 0; ri < rb.rows; ++ri) {
          uint64_t kb[2] = {0, 0};
          uint32_t used = 0;
          bool fits = true;
          for (const Vec& rv : rvecs) {
            if (!AppendPackedKeyAt(rv, ri, reinterpret_cast<unsigned char*>(kb),
                                   &used)) {
              fits = false;
              break;
            }
          }
          if (fits) {
            packed_table[PackedKey{kb[0], kb[1], used}].push_back({bi, ri});
          } else {
            std::string key;
            for (int c : right_cols) {
              rb.cols[static_cast<size_t>(c)].AppendHashKeyAt(ri, &key);
            }
            hash_table[std::move(key)].push_back({bi, ri});
          }
        }
      }

      std::vector<TypeKind> new_types = cur_types;
      for (const auto& col : right.columns) new_types.push_back(col.type);
      const size_t left_width = cur_types.size();

      // Probe side: left rows in order; a NULL key component never joins.
      std::vector<ColumnBatch> joined;
      std::vector<SelVector> joined_sels;
      ColumnBatch out;
      out.Init(new_types);
      auto flush = [&]() {
        if (out.rows == 0) return;
        joined_sels.push_back(FullSel(out.rows));
        joined.push_back(std::move(out));
        out = ColumnBatch();
        out.Init(new_types);
      };
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        const ColumnBatch& lb = batches[bi];
        const SelVector& lsel = sels[bi];
        if (lsel.empty()) continue;
        VecEvalCtx ctx{&lb, params, &positions};
        std::vector<Vec> keys(jp.equis.size());
        for (size_t k = 0; k < jp.equis.size(); ++k) {
          VELOCE_RETURN_IF_ERROR(
              EvalVec(*jp.equis[k].left_expr, ctx, lsel, &keys[k]));
        }
        std::string key;
        for (uint32_t li : lsel) {
          bool null_key = false;
          for (const Vec& kvec : keys) {
            if (kvec.IsNullAt(li)) {
              null_key = true;
              break;
            }
          }
          if (null_key) continue;
          uint64_t kb[2] = {0, 0};
          uint32_t used = 0;
          bool fits = true;
          for (const Vec& kvec : keys) {
            if (!AppendPackedKeyAt(kvec, li, reinterpret_cast<unsigned char*>(kb),
                                   &used)) {
              fits = false;
              break;
            }
          }
          const Locators* matches = nullptr;
          if (fits) {
            auto it = packed_table.find(PackedKey{kb[0], kb[1], used});
            if (it != packed_table.end()) matches = &it->second;
          } else {
            key.clear();
            for (const Vec& kvec : keys) kvec.AppendHashKeyAt(li, &key);
            auto it = hash_table.find(key);
            if (it != hash_table.end()) matches = &it->second;
          }
          if (matches == nullptr) continue;
          for (const auto& [rbi, rri] : *matches) {
            const ColumnBatch& rb = right_batches[rbi];
            for (size_t c = 0; c < left_width; ++c) {
              out.cols[c].AppendFrom(lb.cols[c], li);
            }
            for (size_t c = 0; c < rb.cols.size(); ++c) {
              out.cols[left_width + c].AppendFrom(rb.cols[c], rri);
            }
            ++out.rows;
            if (out.rows == kBatchSize) flush();
          }
        }
      }
      flush();
      batches = std::move(joined);
      sels = std::move(joined_sels);
      cur_types = std::move(new_types);

      // Residual ON conjuncts narrow the combined selection.
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        VecEvalCtx ctx{&batches[bi], params, &positions};
        for (const Expr* c : jp.residual) {
          VELOCE_RETURN_IF_ERROR(EvalFilter(*c, ctx, &sels[bi]));
        }
      }
    }

    // ---- execute: WHERE ----------------------------------------------------
    // Span- and KV-filter-enforced conjuncts re-evaluate harmlessly, like
    // the row engine re-running the full WHERE.
    if (stmt.where != nullptr) {
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        if (sels[bi].empty()) continue;
        VecEvalCtx ctx{&batches[bi], params, &positions};
        VELOCE_RETURN_IF_ERROR(EvalFilter(*stmt.where, ctx, &sels[bi]));
      }
    }

    // ---- execute: aggregation / projection ---------------------------------
    if (any_agg) {
      const size_t stride = agg_nodes.size();
      // Flat SoA group storage: representatives (first input row, read by
      // output expressions outside aggregates, like the row engine), the
      // ordered group-key bytes, and one contiguous AggState array indexed
      // g * stride + a.
      std::vector<Row> group_reps;
      std::vector<std::string> group_keys;  // parallel, encoded group values
      std::vector<AggState> states;
      std::unordered_map<PackedKey, uint32_t, PackedKeyHash> packed_ids;
      std::unordered_map<std::string, uint32_t> group_ids;  // oversized keys
      std::string key;
      std::vector<uint32_t> gidx;  // per selected row: its group index
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        const ColumnBatch& batch = batches[bi];
        const SelVector& sel = sels[bi];
        if (sel.empty()) continue;
        VecEvalCtx ctx{&batch, params, &positions};
        std::vector<Vec> group_vecs(stmt.group_by.size());
        for (size_t g = 0; g < stmt.group_by.size(); ++g) {
          VELOCE_RETURN_IF_ERROR(
              EvalVec(*stmt.group_by[g], ctx, sel, &group_vecs[g]));
        }
        std::vector<Vec> agg_inputs(agg_nodes.size());
        std::vector<bool> agg_is_star(agg_nodes.size(), false);
        for (size_t a = 0; a < agg_nodes.size(); ++a) {
          if (agg_nodes[a]->child->kind == Expr::Kind::kStar) {
            agg_is_star[a] = true;
          } else {
            VELOCE_RETURN_IF_ERROR(
                EvalVec(*agg_nodes[a]->child, ctx, sel, &agg_inputs[a]));
          }
        }
        gidx.clear();
        gidx.reserve(sel.size());
        // First input row of a new group, materialized once: the ordered
        // (EncodeKey) bytes only decide output order, not per-row identity.
        auto new_group = [&](uint32_t i) {
          std::string ordered;
          for (const Vec& gv : group_vecs) gv.EncodeKeyAt(i, &ordered);
          group_keys.push_back(std::move(ordered));
          Row rep;
          rep.reserve(batch.cols.size());
          for (const auto& col : batch.cols) rep.push_back(col.GetDatum(i));
          group_reps.push_back(std::move(rep));
          states.resize(states.size() + stride);
        };
        for (uint32_t i : sel) {
          uint64_t kb[2] = {0, 0};
          uint32_t used = 0;
          bool fits = true;
          for (const Vec& gv : group_vecs) {
            if (!AppendPackedKeyAt(gv, i, reinterpret_cast<unsigned char*>(kb),
                                   &used)) {
              fits = false;
              break;
            }
          }
          uint32_t g;
          if (fits) {
            const PackedKey pk{kb[0], kb[1], used};
            auto [it, inserted] = packed_ids.try_emplace(
                pk, static_cast<uint32_t>(group_reps.size()));
            if (inserted) new_group(i);
            g = it->second;
          } else {
            key.clear();
            for (const Vec& gv : group_vecs) gv.AppendHashKeyAt(i, &key);
            auto [it, inserted] = group_ids.try_emplace(
                key, static_cast<uint32_t>(group_reps.size()));
            if (inserted) new_group(i);
            g = it->second;
          }
          gidx.push_back(g);
        }
        for (size_t a = 0; a < agg_nodes.size(); ++a) {
          if (agg_is_star[a]) {
            // `Accumulate(Int(1), kCount)` is exactly ++count.
            for (size_t k = 0; k < gidx.size(); ++k) {
              ++states[gidx[k] * stride + a].count;
            }
          } else {
            AccumulateColumn(agg_inputs[a], agg_nodes[a]->agg, sel, gidx,
                             states.data(), stride, a);
          }
        }
      }
      // Aggregates over an empty input with no GROUP BY produce one row
      // (the representative stays empty; column refs evaluate to NULL).
      if (group_reps.empty() && stmt.group_by.empty()) {
        group_keys.emplace_back();
        group_reps.emplace_back();
        states.resize(stride);
      }
      // Emit in encoded-key order — the row engine iterates a std::map
      // keyed by the same bytes, so this reproduces its group order.
      std::vector<uint32_t> group_order(group_reps.size());
      for (uint32_t g = 0; g < group_order.size(); ++g) group_order[g] = g;
      std::sort(group_order.begin(), group_order.end(),
                [&](uint32_t x, uint32_t y) {
                  return group_keys[x] < group_keys[y];
                });
      for (uint32_t g : group_order) {
        std::map<const Expr*, Datum> agg_values;
        for (size_t a = 0; a < agg_nodes.size(); ++a) {
          agg_values[agg_nodes[a]] =
              states[g * stride + a].Result(agg_nodes[a]->agg);
        }
        EvalContext ctx{&bindings, &group_reps[g], params, &agg_values};
        Row out_row;
        for (const Expr* e : item_exprs) {
          VELOCE_ASSIGN_OR_RETURN(Datum v, Eval(*e, ctx));
          out_row.push_back(std::move(v));
        }
        output.push_back(std::move(out_row));
      }
    } else {
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        const ColumnBatch& batch = batches[bi];
        const SelVector& sel = sels[bi];
        if (sel.empty()) continue;
        VecEvalCtx ctx{&batch, params, &positions};
        std::vector<Vec> item_vecs(item_exprs.size());
        for (size_t k = 0; k < item_exprs.size(); ++k) {
          VELOCE_RETURN_IF_ERROR(EvalVec(*item_exprs[k], ctx, sel, &item_vecs[k]));
        }
        std::vector<Vec> key_vecs(sort_keys.size());
        if (needs_input_keys) {
          for (size_t k = 0; k < sort_keys.size(); ++k) {
            if (sort_keys[k].expr != nullptr) {
              VELOCE_RETURN_IF_ERROR(
                  EvalVec(*sort_keys[k].expr, ctx, sel, &key_vecs[k]));
            }
          }
        }
        for (uint32_t i : sel) {
          Row out_row;
          out_row.reserve(item_vecs.size());
          for (const Vec& v : item_vecs) out_row.push_back(v.DatumAt(i));
          output.push_back(std::move(out_row));
          if (needs_input_keys) {
            Row keys;
            keys.reserve(sort_keys.size());
            for (size_t k = 0; k < sort_keys.size(); ++k) {
              keys.push_back(sort_keys[k].expr == nullptr
                                 ? Datum::Null()
                                 : key_vecs[k].DatumAt(i));
            }
            input_sort_values.push_back(std::move(keys));
          }
        }
      }
    }
  }

  // ---- ORDER BY / LIMIT (identical to the row engine) ----------------------
  if (!sort_keys.empty()) {
    std::vector<size_t> order(output.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < sort_keys.size(); ++k) {
        const SortKey& key = sort_keys[k];
        const Datum& va = key.output_idx >= 0
                              ? output[a][static_cast<size_t>(key.output_idx)]
                              : input_sort_values[a][k];
        const Datum& vb = key.output_idx >= 0
                              ? output[b][static_cast<size_t>(key.output_idx)]
                              : input_sort_values[b][k];
        const int c = va.Compare(vb);
        if (c != 0) return key.desc ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(output.size());
    for (size_t idx : order) sorted.push_back(std::move(output[idx]));
    output = std::move(sorted);
  }
  if (stmt.limit >= 0 && output.size() > static_cast<size_t>(stmt.limit)) {
    output.resize(static_cast<size_t>(stmt.limit));
  }
  result.rows = std::move(output);
  return result;
}

}  // namespace veloce::sql::vec
