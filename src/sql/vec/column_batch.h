#ifndef VELOCE_SQL_VEC_COLUMN_BATCH_H_
#define VELOCE_SQL_VEC_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kv/mvcc.h"
#include "sql/row.h"
#include "sql/schema.h"

namespace veloce::sql::vec {

/// Rows per ColumnBatch. Large enough to amortize per-batch dispatch,
/// small enough to keep a batch's working set in L1/L2.
inline constexpr size_t kBatchSize = 1024;

/// Selection vector: indices of the rows still alive in a batch, sorted
/// ascending. Filters narrow the selection instead of materializing
/// filtered copies.
using SelVector = std::vector<uint32_t>;

/// Returns {0, 1, ..., n-1}.
SelVector FullSel(size_t n);

/// One typed column of a batch. Exactly one typed store is active,
/// selected by `type`; bools share the int store (0/1). `nulls` is always
/// sized to the column length, and null slots hold zero placeholders in
/// the typed store so kernels can touch them blindly.
struct ColumnVector {
  TypeKind type = TypeKind::kInt;  // static type; never kNull
  std::vector<int64_t> ints;       // kInt, kBool
  std::vector<double> doubles;     // kDouble
  std::vector<uint32_t> str_off;   // kString: offsets into arena
  std::vector<uint32_t> str_len;
  std::string arena;
  std::vector<uint8_t> nulls;      // 1 = SQL NULL

  size_t size() const { return nulls.size(); }
  bool IsNull(size_t i) const { return nulls[i] != 0; }

  void Init(TypeKind t);            // set type, clear all stores
  void Resize(size_t n);            // n slots, all NULL (for Set* filling)
  void Reserve(size_t n);           // reserve capacity in the active stores

  void AppendNull();
  void AppendInt(int64_t v);
  void AppendBool(bool v);
  void AppendDouble(double v);
  void AppendString(std::string_view s);

  void SetNull(size_t i) { nulls[i] = 1; }
  void SetInt(size_t i, int64_t v) { ints[i] = v; nulls[i] = 0; }
  void SetBool(size_t i, bool v) { ints[i] = v ? 1 : 0; nulls[i] = 0; }
  void SetDouble(size_t i, double v) { doubles[i] = v; nulls[i] = 0; }
  void SetString(size_t i, std::string_view s);

  int64_t IntAt(size_t i) const { return ints[i]; }
  bool BoolAt(size_t i) const { return ints[i] != 0; }
  double DoubleAt(size_t i) const { return doubles[i]; }
  std::string_view StringAt(size_t i) const {
    return std::string_view(arena).substr(str_off[i], str_len[i]);
  }
  /// Datum::AsDouble for a non-null slot (string -> 0, bool -> 0/1).
  double AsDoubleAt(size_t i) const;

  /// Materializes one slot as a Datum (null slot -> Null).
  Datum GetDatum(size_t i) const;
  /// Appends a slot by Datum. The datum's kind must be the column type or
  /// null (callers enforce; used when gathering join outputs).
  void AppendDatum(const Datum& d);
  /// Appends slot `i` of a same-typed column (join gather, no boxing).
  void AppendFrom(const ColumnVector& src, size_t i);
  /// Byte-identical to Datum::EncodeKey of GetDatum(i), without boxing.
  void EncodeKeyAt(size_t i, std::string* dst) const;
  /// Cheap injective encoding for hash identity only (grouping, join
  /// keys): raw fixed-width scalars / length-prefixed strings behind a
  /// null tag. NOT order-preserving and NOT the row engine's EncodeKey —
  /// never compare or persist these bytes.
  void AppendHashKeyAt(size_t i, std::string* dst) const;
};

/// A batch of rows in columnar layout. `cols` is positionally aligned with
/// the (possibly concatenated, for joins) table columns.
struct ColumnBatch {
  std::vector<ColumnVector> cols;
  size_t rows = 0;

  /// Initializes `cols` to the given column types with zero rows.
  void Init(const std::vector<TypeKind>& types);
};

/// Decodes primary-index MVCC scan entries into column batches: one typed
/// decode loop per batch, no per-row Row/Datum round trip. Returns
/// NotSupported when a stored datum kind disagrees with the schema column
/// type — the caller falls back to the row engine, which tolerates
/// heterogeneous rows.
class BatchDecoder {
 public:
  /// `needed` marks the column positions the query actually reads (empty =
  /// all). Unread non-PK columns are skipped, not decoded: their slots stay
  /// NULL. Late materialization is the columnar scan's structural advantage
  /// — the row engine always materializes full rows.
  explicit BatchDecoder(const TableDescriptor& desc,
                        const std::vector<uint8_t>& needed = {});

  /// Decodes entries[*pos..] into `batch` (at most kBatchSize rows),
  /// advancing *pos. `batch` is reinitialized each call. Consumes the
  /// decoded entries: their key/value buffers are released one by one while
  /// still cache-hot, which beats bulk-destroying the scan result later.
  Status NextBatch(std::vector<kv::MvccScanEntry>* entries, size_t* pos,
                   ColumnBatch* batch) const;

  const std::vector<TypeKind>& column_types() const { return types_; }

 private:
  Status DecodeKeyInto(Slice key, ColumnBatch* batch, size_t r) const;
  Status DecodeValueInto(Slice value, ColumnBatch* batch, size_t r) const;

  TableDescriptor desc_;
  std::string prefix_;
  std::vector<TypeKind> types_;    // per table column
  std::vector<int> pk_positions_;  // column position per PK key datum
  bool pk_wanted_ = true;          // any PK column in the needed set
  struct NonPkColumn {
    uint32_t id = 0;
    int pos = 0;
    TypeKind type = TypeKind::kInt;
    bool wanted = true;
  };
  std::vector<NonPkColumn> non_pk_;  // in row-value (ascending id) order
};

}  // namespace veloce::sql::vec

#endif  // VELOCE_SQL_VEC_COLUMN_BATCH_H_
