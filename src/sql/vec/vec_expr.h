#ifndef VELOCE_SQL_VEC_VEC_EXPR_H_
#define VELOCE_SQL_VEC_VEC_EXPR_H_

#include <map>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/eval.h"
#include "sql/vec/column_batch.h"

namespace veloce::sql::vec {

/// An evaluated expression over one batch: either a constant (every row
/// sees the same datum), a borrowed batch column, or an owned result
/// column. Owned columns are sized to the batch and only valid at the
/// selected rows.
struct Vec {
  bool is_const = false;
  Datum const_val;
  const ColumnVector* ref = nullptr;
  ColumnVector owned;

  const ColumnVector* col() const { return ref != nullptr ? ref : &owned; }
  /// Static result type. kNull only for constant NULL.
  TypeKind static_type() const {
    return is_const ? const_val.kind() : col()->type;
  }
  bool IsNullAt(uint32_t i) const {
    return is_const ? const_val.is_null() : col()->IsNull(i);
  }
  int64_t IntAt(uint32_t i) const {
    return is_const ? const_val.int_value() : col()->IntAt(i);
  }
  double DoubleAt(uint32_t i) const {
    return is_const ? const_val.double_value() : col()->DoubleAt(i);
  }
  double AsDoubleAt(uint32_t i) const {
    return is_const ? const_val.AsDouble() : col()->AsDoubleAt(i);
  }
  std::string_view StringAt(uint32_t i) const {
    return is_const ? std::string_view(const_val.string_value())
                    : col()->StringAt(i);
  }
  bool TruthyAt(uint32_t i) const;
  Datum DatumAt(uint32_t i) const {
    return is_const ? const_val : col()->GetDatum(i);
  }
  void EncodeKeyAt(uint32_t i, std::string* dst) const {
    if (is_const) {
      const_val.EncodeKey(dst);
    } else {
      col()->EncodeKeyAt(i, dst);
    }
  }
  /// Hash-identity bytes (see ColumnVector::AppendHashKeyAt) — injective,
  /// not ordered, not EncodeKey-compatible.
  void AppendHashKeyAt(uint32_t i, std::string* dst) const;

  void MakeConst(Datum d) {
    is_const = true;
    ref = nullptr;
    const_val = std::move(d);
  }
  /// Prepares `owned` with `t`-typed slots, all NULL, sized to n.
  ColumnVector* MakeOwned(TypeKind t, size_t n) {
    is_const = false;
    ref = nullptr;
    owned.Init(t);
    owned.Resize(n);
    return &owned;
  }
};

struct VecEvalCtx {
  const ColumnBatch* batch = nullptr;
  const std::vector<Datum>* params = nullptr;
  /// Column-ref resolution computed at plan time: expression node ->
  /// position in the batch (== position in the concatenated row).
  const std::map<const Expr*, int>* col_positions = nullptr;
};

/// Evaluates `expr` for the selected rows of the batch. Error/NULL/coercion
/// semantics match the scalar Eval in sql/eval.h exactly, including per-row
/// short-circuit of AND/OR (the right side only evaluates for rows the
/// left side doesn't decide — so data-dependent errors surface for the
/// same set of rows as in the row engine).
Status EvalVec(const Expr& expr, const VecEvalCtx& ctx, const SelVector& sel,
               Vec* out);

/// Evaluates `expr` as a filter, narrowing `sel` to the rows where it is
/// truthy. ANDs narrow sequentially; ORs evaluate the right side only over
/// rows the left side rejected.
Status EvalFilter(const Expr& expr, const VecEvalCtx& ctx, SelVector* sel);

}  // namespace veloce::sql::vec

#endif  // VELOCE_SQL_VEC_VEC_EXPR_H_
