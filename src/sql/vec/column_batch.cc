#include "sql/vec/column_batch.h"

#include <algorithm>
#include <cstring>

#include "common/codec.h"

namespace veloce::sql::vec {

SelVector FullSel(size_t n) {
  SelVector sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

// ---------------------------------------------------------------------------
// ColumnVector
// ---------------------------------------------------------------------------

void ColumnVector::Init(TypeKind t) {
  type = t;
  ints.clear();
  doubles.clear();
  str_off.clear();
  str_len.clear();
  arena.clear();
  nulls.clear();
}

void ColumnVector::Resize(size_t n) {
  nulls.assign(n, 1);
  switch (type) {
    case TypeKind::kInt:
    case TypeKind::kBool:
      ints.assign(n, 0);
      break;
    case TypeKind::kDouble:
      doubles.assign(n, 0);
      break;
    case TypeKind::kString:
      str_off.assign(n, 0);
      str_len.assign(n, 0);
      arena.clear();
      break;
    default:
      break;
  }
}

void ColumnVector::Reserve(size_t n) {
  nulls.reserve(n);
  switch (type) {
    case TypeKind::kInt:
    case TypeKind::kBool:
      ints.reserve(n);
      break;
    case TypeKind::kDouble:
      doubles.reserve(n);
      break;
    case TypeKind::kString:
      str_off.reserve(n);
      str_len.reserve(n);
      break;
    default:
      break;
  }
}

void ColumnVector::AppendNull() {
  nulls.push_back(1);
  switch (type) {
    case TypeKind::kInt:
    case TypeKind::kBool:
      ints.push_back(0);
      break;
    case TypeKind::kDouble:
      doubles.push_back(0);
      break;
    case TypeKind::kString:
      str_off.push_back(0);
      str_len.push_back(0);
      break;
    default:
      break;
  }
}

void ColumnVector::AppendInt(int64_t v) {
  ints.push_back(v);
  nulls.push_back(0);
}

void ColumnVector::AppendBool(bool v) {
  ints.push_back(v ? 1 : 0);
  nulls.push_back(0);
}

void ColumnVector::AppendDouble(double v) {
  doubles.push_back(v);
  nulls.push_back(0);
}

void ColumnVector::AppendString(std::string_view s) {
  str_off.push_back(static_cast<uint32_t>(arena.size()));
  str_len.push_back(static_cast<uint32_t>(s.size()));
  arena.append(s);
  nulls.push_back(0);
}

void ColumnVector::SetString(size_t i, std::string_view s) {
  str_off[i] = static_cast<uint32_t>(arena.size());
  str_len[i] = static_cast<uint32_t>(s.size());
  arena.append(s);
  nulls[i] = 0;
}

double ColumnVector::AsDoubleAt(size_t i) const {
  switch (type) {
    case TypeKind::kInt: return static_cast<double>(ints[i]);
    case TypeKind::kDouble: return doubles[i];
    case TypeKind::kBool: return ints[i] != 0 ? 1 : 0;
    default: return 0;  // strings coerce to 0, matching Datum::AsDouble
  }
}

Datum ColumnVector::GetDatum(size_t i) const {
  if (nulls[i] != 0) return Datum::Null();
  switch (type) {
    case TypeKind::kBool: return Datum::Bool(ints[i] != 0);
    case TypeKind::kInt: return Datum::Int(ints[i]);
    case TypeKind::kDouble: return Datum::Double(doubles[i]);
    case TypeKind::kString: return Datum::String(std::string(StringAt(i)));
    default: return Datum::Null();
  }
}

void ColumnVector::AppendDatum(const Datum& d) {
  if (d.is_null()) {
    AppendNull();
    return;
  }
  switch (type) {
    case TypeKind::kBool: AppendBool(d.bool_value()); break;
    case TypeKind::kInt: AppendInt(d.int_value()); break;
    case TypeKind::kDouble: AppendDouble(d.double_value()); break;
    case TypeKind::kString: AppendString(d.string_value()); break;
    default: AppendNull(); break;
  }
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.nulls[i] != 0) {
    AppendNull();
    return;
  }
  switch (type) {
    case TypeKind::kInt:
    case TypeKind::kBool:
      ints.push_back(src.ints[i]);
      nulls.push_back(0);
      break;
    case TypeKind::kDouble:
      doubles.push_back(src.doubles[i]);
      nulls.push_back(0);
      break;
    case TypeKind::kString:
      AppendString(src.StringAt(i));
      break;
    default:
      AppendNull();
      break;
  }
}

void ColumnVector::AppendHashKeyAt(size_t i, std::string* dst) const {
  if (nulls[i] != 0) {
    dst->push_back(0);
    return;
  }
  // Type tag: mixed-type keys (e.g. int probe against a double build
  // column) must never collide bitwise — EncodeKey separates them by its
  // kind byte, so the hash identity must too.
  dst->push_back(static_cast<char>(1 + static_cast<int>(type)));
  switch (type) {
    case TypeKind::kInt:
    case TypeKind::kBool:
      dst->append(reinterpret_cast<const char*>(&ints[i]), sizeof(int64_t));
      break;
    case TypeKind::kDouble:
      dst->append(reinterpret_cast<const char*>(&doubles[i]), sizeof(double));
      break;
    case TypeKind::kString: {
      const uint32_t len = str_len[i];
      dst->append(reinterpret_cast<const char*>(&len), sizeof(len));
      dst->append(arena.data() + str_off[i], len);
      break;
    }
    default:
      break;
  }
}

void ColumnVector::EncodeKeyAt(size_t i, std::string* dst) const {
  if (nulls[i] != 0) {
    dst->push_back(static_cast<char>(TypeKind::kNull));
    return;
  }
  dst->push_back(static_cast<char>(type));
  switch (type) {
    case TypeKind::kBool: dst->push_back(ints[i] != 0 ? 1 : 0); break;
    case TypeKind::kInt: OrderedPutInt64(dst, ints[i]); break;
    case TypeKind::kDouble: OrderedPutDouble(dst, doubles[i]); break;
    case TypeKind::kString: OrderedPutString(dst, StringAt(i)); break;
    default: break;
  }
}

// ---------------------------------------------------------------------------
// ColumnBatch
// ---------------------------------------------------------------------------

void ColumnBatch::Init(const std::vector<TypeKind>& types) {
  cols.resize(types.size());
  for (size_t i = 0; i < types.size(); ++i) cols[i].Init(types[i]);
  rows = 0;
}

// ---------------------------------------------------------------------------
// BatchDecoder
// ---------------------------------------------------------------------------

BatchDecoder::BatchDecoder(const TableDescriptor& desc,
                           const std::vector<uint8_t>& needed)
    : desc_(desc), prefix_(IndexPrefix(desc.id, kPrimaryIndexId)) {
  for (const auto& col : desc_.columns) types_.push_back(col.type);
  pk_wanted_ = false;
  for (uint32_t col_id : desc_.primary.column_ids) {
    const int pos = desc_.ColumnIndex(col_id);
    pk_positions_.push_back(pos);
    if (needed.empty() || (pos >= 0 && needed[static_cast<size_t>(pos)] != 0)) {
      pk_wanted_ = true;
    }
  }
  for (size_t i = 0; i < desc_.columns.size(); ++i) {
    const auto& col = desc_.columns[i];
    if (desc_.IsPrimaryKeyColumn(col.id)) continue;
    const bool wanted = needed.empty() || needed[i] != 0;
    non_pk_.push_back({col.id, static_cast<int>(i), col.type, wanted});
  }
}

namespace {

// Skips one EncodeValue-encoded datum of any kind.
bool SkipValueDatum(Slice* in) {
  if (in->empty()) return false;
  const TypeKind kind = static_cast<TypeKind>((*in)[0]);
  in->RemovePrefix(1);
  switch (kind) {
    case TypeKind::kNull:
      return true;
    case TypeKind::kBool:
      if (in->empty()) return false;
      in->RemovePrefix(1);
      return true;
    case TypeKind::kInt: {
      uint64_t v;
      return GetVarint64(in, &v);
    }
    case TypeKind::kDouble: {
      uint64_t v;
      return GetFixed64(in, &v);
    }
    case TypeKind::kString: {
      Slice v;
      return GetLengthPrefixed(in, &v);
    }
  }
  return false;
}

// Decodes one EncodeValue-encoded datum into slot `r` of the typed column
// (pre-sized by NextBatch, all-NULL). The stored kind must be the column
// type (or null); anything else is the fallback signal for the vectorized
// path.
Status DecodeValueDatumInto(Slice* in, ColumnVector* col, size_t r) {
  if (in->empty()) return Status::Corruption("empty datum value");
  const TypeKind kind = static_cast<TypeKind>((*in)[0]);
  in->RemovePrefix(1);
  if (kind == TypeKind::kNull) return Status::OK();  // slot is already NULL
  if (kind != col->type) {
    return Status::NotSupported("stored datum kind differs from column type");
  }
  switch (kind) {
    case TypeKind::kBool: {
      if (in->empty()) return Status::Corruption("bad bool value");
      col->SetBool(r, (*in)[0] != 0);
      in->RemovePrefix(1);
      return Status::OK();
    }
    case TypeKind::kInt: {
      uint64_t v;
      if (!GetVarint64(in, &v)) return Status::Corruption("bad int value");
      col->SetInt(r, static_cast<int64_t>(v));
      return Status::OK();
    }
    case TypeKind::kDouble: {
      uint64_t bits;
      if (!GetFixed64(in, &bits)) return Status::Corruption("bad double value");
      double v;
      static_assert(sizeof(v) == sizeof(bits));
      std::memcpy(&v, &bits, sizeof(v));
      col->SetDouble(r, v);
      return Status::OK();
    }
    case TypeKind::kString: {
      Slice v;
      if (!GetLengthPrefixed(in, &v)) return Status::Corruption("bad string value");
      col->SetString(r, std::string_view(v.data(), v.size()));
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown datum kind in value");
  }
}

}  // namespace

Status BatchDecoder::DecodeKeyInto(Slice key, ColumnBatch* batch,
                                   size_t r) const {
  if (!key.StartsWith(prefix_)) return Status::Corruption("row key prefix mismatch");
  // No PK column is read by the query: the scan span already proved the
  // prefix, so skip parsing the key datums and leave the NULL placeholders.
  if (!pk_wanted_) return Status::OK();
  key.RemovePrefix(prefix_.size());
  for (int pos : pk_positions_) {
    if (pos < 0) return Status::Corruption("unknown pk column");
    ColumnVector& col = batch->cols[static_cast<size_t>(pos)];
    if (key.empty()) return Status::Corruption("empty datum key");
    const TypeKind kind = static_cast<TypeKind>(key[0]);
    key.RemovePrefix(1);
    if (kind == TypeKind::kNull) continue;  // slot is already NULL
    if (kind != col.type) {
      return Status::NotSupported("stored key kind differs from column type");
    }
    switch (kind) {
      case TypeKind::kBool: {
        if (key.empty()) return Status::Corruption("bad bool key");
        col.SetBool(r, key[0] != 0);
        key.RemovePrefix(1);
        break;
      }
      case TypeKind::kInt: {
        int64_t v;
        if (!OrderedGetInt64(&key, &v)) return Status::Corruption("bad int key");
        col.SetInt(r, v);
        break;
      }
      case TypeKind::kDouble: {
        double v;
        if (!OrderedGetDouble(&key, &v)) return Status::Corruption("bad double key");
        col.SetDouble(r, v);
        break;
      }
      case TypeKind::kString: {
        std::string v;
        if (!OrderedGetString(&key, &v)) return Status::Corruption("bad string key");
        col.SetString(r, v);
        break;
      }
      default:
        return Status::Corruption("unknown datum kind in key");
    }
  }
  return Status::OK();
}

Status BatchDecoder::DecodeValueInto(Slice value, ColumnBatch* batch,
                                     size_t r) const {
  uint32_t count = 0;
  if (!GetVarint32(&value, &count)) return Status::Corruption("bad row value");
  // Row values store non-PK columns tagged by ascending column id, the same
  // order as non_pk_: a two-pointer merge finds missing (NULL) and unknown
  // (skipped) columns without a per-row map. Missing, unknown, and unread
  // columns need no writes at all — their slots are pre-initialized NULL.
  size_t vi = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t col_id = 0;
    if (!GetVarint32(&value, &col_id)) return Status::Corruption("bad row value col");
    while (vi < non_pk_.size() && non_pk_[vi].id < col_id) ++vi;
    if (vi < non_pk_.size() && non_pk_[vi].id == col_id) {
      if (non_pk_[vi].wanted) {
        VELOCE_RETURN_IF_ERROR(DecodeValueDatumInto(
            &value, &batch->cols[static_cast<size_t>(non_pk_[vi].pos)], r));
      } else if (!SkipValueDatum(&value)) {
        return Status::Corruption("bad row value datum");
      }
      ++vi;
    } else {
      // Unknown column id (dropped column): skip the datum.
      if (!SkipValueDatum(&value)) return Status::Corruption("bad row value datum");
    }
  }
  return Status::OK();
}

Status BatchDecoder::NextBatch(std::vector<kv::MvccScanEntry>* entries,
                               size_t* pos, ColumnBatch* batch) const {
  batch->Init(types_);
  const size_t n = std::min(entries->size() - *pos, kBatchSize);
  // Pre-size every column to all-NULL slots and fill by index: the decode
  // loop then only writes present, wanted datums — no per-value capacity
  // checks, and skipped columns cost nothing.
  for (auto& col : batch->cols) col.Resize(n);
  for (size_t r = 0; r < n; ++r) {
    kv::MvccScanEntry& entry = (*entries)[*pos + r];
    VELOCE_RETURN_IF_ERROR(DecodeKeyInto(entry.key, batch, r));
    VELOCE_RETURN_IF_ERROR(DecodeValueInto(entry.value, batch, r));
    // Consume the entry: releasing its buffers here, while their heap
    // blocks are still cache-hot, is measurably cheaper than bulk
    // destruction of the whole scan result afterwards.
    std::string().swap(entry.key);
    std::string().swap(entry.value);
  }
  *pos += n;
  batch->rows = n;
  return Status::OK();
}

}  // namespace veloce::sql::vec
