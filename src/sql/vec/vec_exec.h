#ifndef VELOCE_SQL_VEC_VEC_EXEC_H_
#define VELOCE_SQL_VEC_VEC_EXEC_H_

#include <cstdint>
#include <vector>

#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/kv_connector.h"

namespace veloce::sql::vec {

/// The vectorized (columnar, batch-at-a-time) SELECT engine: MVCC scan
/// entries decode directly into typed ColumnBatches, expressions evaluate
/// as column kernels over selection vectors, and aggregation / hash joins
/// operate batch-wise. Eligible filter+project+partial-aggregate fragments
/// additionally push below the scan (sql/pushdown.h). Semantics are
/// bit-identical to the interpreted row engine — the dispatcher treats the
/// two as interchangeable and the randomized differential test in
/// tests/sql_vec_test.cc enforces it.
class VecExecutor {
 public:
  VecExecutor(Catalog* catalog, KvConnector* connector, bool pushdown_enabled)
      : catalog_(catalog),
        connector_(connector),
        pushdown_enabled_(pushdown_enabled) {}

  /// Plans and executes a non-transactional SELECT. NotSupported means
  /// "not covered by this engine" — the dispatcher re-runs the statement
  /// on the row engine (which also reproduces exact error messages for
  /// statements this engine declines at plan time). Any other status is
  /// final: for covered statements both engines return the same rows, and
  /// runtime errors carry the same status code (messages may differ when
  /// batch evaluation surfaces a different failing row first).
  StatusOr<ResultSet> ExecSelect(const SelectStmt& stmt,
                                 const std::vector<Datum>* params);

  /// Rows (or, for pushed aggregation fragments, partial-aggregate rows)
  /// received from the KV layer.
  uint64_t rows_scanned() const { return rows_scanned_; }
  /// Column batches decoded from KV scan entries.
  uint64_t batches() const { return batches_; }

 private:
  Catalog* catalog_;
  KvConnector* connector_;
  bool pushdown_enabled_;
  uint64_t rows_scanned_ = 0;
  uint64_t batches_ = 0;
};

}  // namespace veloce::sql::vec

#endif  // VELOCE_SQL_VEC_VEC_EXEC_H_
