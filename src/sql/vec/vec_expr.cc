#include "sql/vec/vec_expr.h"

#include <algorithm>

#include "common/logging.h"

namespace veloce::sql::vec {

bool Vec::TruthyAt(uint32_t i) const {
  if (is_const) return Truthy(const_val);
  const ColumnVector* c = col();
  if (c->IsNull(i)) return false;
  switch (c->type) {
    case TypeKind::kBool:
    case TypeKind::kInt:
      return c->ints[i] != 0;
    case TypeKind::kDouble:
      return c->doubles[i] != 0;
    case TypeKind::kString:
      return c->str_len[i] != 0;
    default:
      return false;
  }
}

void Vec::AppendHashKeyAt(uint32_t i, std::string* dst) const {
  if (!is_const) {
    col()->AppendHashKeyAt(i, dst);
    return;
  }
  if (const_val.is_null()) {
    dst->push_back(0);
    return;
  }
  dst->push_back(static_cast<char>(1 + static_cast<int>(const_val.kind())));
  switch (const_val.kind()) {
    case TypeKind::kBool: {
      const int64_t v = const_val.bool_value() ? 1 : 0;
      dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case TypeKind::kInt: {
      const int64_t v = const_val.int_value();
      dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case TypeKind::kDouble: {
      const double v = const_val.double_value();
      dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case TypeKind::kString: {
      const std::string& s = const_val.string_value();
      const uint32_t len = static_cast<uint32_t>(s.size());
      dst->append(reinterpret_cast<const char*>(&len), sizeof(len));
      dst->append(s);
      break;
    }
    default:
      break;
  }
}

namespace {

// Scalar comparison mirroring EvalBinary's comparison arm.
Datum CompareScalar(BinOp op, const Datum& l, const Datum& r) {
  if (l.is_null() || r.is_null()) return Datum::Null();
  const int c = l.Compare(r);
  switch (op) {
    case BinOp::kEq: return Datum::Bool(c == 0);
    case BinOp::kNe: return Datum::Bool(c != 0);
    case BinOp::kLt: return Datum::Bool(c < 0);
    case BinOp::kLe: return Datum::Bool(c <= 0);
    case BinOp::kGt: return Datum::Bool(c > 0);
    default: return Datum::Bool(c >= 0);
  }
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

Status EvalCompareVec(BinOp op, const Vec& l, const Vec& r, const SelVector& sel,
                      size_t n, Vec* out) {
  ColumnVector* res = out->MakeOwned(TypeKind::kBool, n);
  // A constant NULL operand nulls every row; the all-NULL result stands.
  if ((l.is_const && l.const_val.is_null()) ||
      (r.is_const && r.const_val.is_null())) {
    return Status::OK();
  }
  const TypeKind lt = l.static_type(), rt = r.static_type();
  enum class Path { kIntInt, kNum, kStr, kBoolBool, kCross } path;
  int cross_sign = 0;
  const bool l_num = lt == TypeKind::kInt || lt == TypeKind::kDouble;
  const bool r_num = rt == TypeKind::kInt || rt == TypeKind::kDouble;
  if (lt == TypeKind::kInt && rt == TypeKind::kInt) {
    path = Path::kIntInt;
  } else if (l_num && r_num) {
    path = Path::kNum;
  } else if (lt == TypeKind::kString && rt == TypeKind::kString) {
    path = Path::kStr;
  } else if (lt == TypeKind::kBool && rt == TypeKind::kBool) {
    path = Path::kBoolBool;
  } else {
    // Cross-kind (never produced by well-typed plans): Datum::Compare
    // orders by kind ordinal, so the sign is a plan-time constant.
    path = Path::kCross;
    cross_sign = static_cast<int>(lt) < static_cast<int>(rt) ? -1 : 1;
  }
  for (uint32_t i : sel) {
    if (l.IsNullAt(i) || r.IsNullAt(i)) continue;  // stays NULL
    int c = 0;
    switch (path) {
      case Path::kIntInt: {
        const int64_t a = l.IntAt(i), b = r.IntAt(i);
        c = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case Path::kNum: {
        const double a = l.AsDoubleAt(i), b = r.AsDoubleAt(i);
        c = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case Path::kStr: {
        const std::string_view a = l.StringAt(i), b = r.StringAt(i);
        c = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case Path::kBoolBool: {
        c = static_cast<int>(l.IntAt(i) != 0) - static_cast<int>(r.IntAt(i) != 0);
        break;
      }
      case Path::kCross:
        c = cross_sign;
        break;
    }
    bool v = false;
    switch (op) {
      case BinOp::kEq: v = c == 0; break;
      case BinOp::kNe: v = c != 0; break;
      case BinOp::kLt: v = c < 0; break;
      case BinOp::kLe: v = c <= 0; break;
      case BinOp::kGt: v = c > 0; break;
      default: v = c >= 0; break;
    }
    res->SetBool(i, v);
  }
  return Status::OK();
}

Status EvalArithVec(BinOp op, const Vec& l, const Vec& r, const SelVector& sel,
                    size_t n, Vec* out) {
  // NULL-propagation: a constant NULL operand nulls the whole column.
  if ((l.is_const && l.const_val.is_null()) ||
      (r.is_const && r.const_val.is_null())) {
    out->MakeConst(Datum::Null());
    return Status::OK();
  }
  const TypeKind lt = l.static_type(), rt = r.static_type();
  if (op == BinOp::kAdd && lt == TypeKind::kString && rt == TypeKind::kString) {
    ColumnVector* res = out->MakeOwned(TypeKind::kString, n);
    for (uint32_t i : sel) {
      if (l.IsNullAt(i) || r.IsNullAt(i)) continue;
      const std::string_view a = l.StringAt(i), b = r.StringAt(i);
      res->str_off[i] = static_cast<uint32_t>(res->arena.size());
      res->str_len[i] = static_cast<uint32_t>(a.size() + b.size());
      res->arena.append(a);
      res->arena.append(b);
      res->nulls[i] = 0;
    }
    return Status::OK();
  }
  const bool both_int = lt == TypeKind::kInt && rt == TypeKind::kInt;
  if (both_int && op != BinOp::kDiv) {
    ColumnVector* res = out->MakeOwned(TypeKind::kInt, n);
    for (uint32_t i : sel) {
      if (l.IsNullAt(i) || r.IsNullAt(i)) continue;
      const int64_t a = l.IntAt(i), b = r.IntAt(i);
      switch (op) {
        case BinOp::kAdd: res->SetInt(i, WrapAdd(a, b)); break;
        case BinOp::kSub: res->SetInt(i, WrapSub(a, b)); break;
        case BinOp::kMul: res->SetInt(i, WrapMul(a, b)); break;
        case BinOp::kMod:
          if (b == 0) return Status::InvalidArgument("modulo by zero");
          // INT64_MIN % -1 traps in hardware.
          res->SetInt(i, b == -1 ? 0 : a % b);
          break;
        default:
          return Status::Internal("unhandled binary operator");
      }
    }
    return Status::OK();
  }
  if (op == BinOp::kMod) {
    // Errors only for rows where both operands are non-null (NULL wins the
    // type check in the scalar evaluator because the null check runs first).
    out->MakeOwned(TypeKind::kDouble, n);
    for (uint32_t i : sel) {
      if (l.IsNullAt(i) || r.IsNullAt(i)) continue;
      return Status::InvalidArgument("modulo on non-integers");
    }
    return Status::OK();
  }
  ColumnVector* res = out->MakeOwned(TypeKind::kDouble, n);
  for (uint32_t i : sel) {
    if (l.IsNullAt(i) || r.IsNullAt(i)) continue;
    const double a = l.AsDoubleAt(i), b = r.AsDoubleAt(i);
    switch (op) {
      case BinOp::kAdd: res->SetDouble(i, a + b); break;
      case BinOp::kSub: res->SetDouble(i, a - b); break;
      case BinOp::kMul: res->SetDouble(i, a * b); break;
      case BinOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        res->SetDouble(i, a / b);
        break;
      default:
        return Status::Internal("unhandled binary operator");
    }
  }
  return Status::OK();
}

// AND/OR with per-row short-circuit: the right side evaluates only over
// rows the left side doesn't decide, so data-dependent right-side errors
// fire for exactly the rows the row engine would reach.
Status EvalAndOrVec(const Expr& expr, const VecEvalCtx& ctx, const SelVector& sel,
                    Vec* out) {
  Vec l;
  VELOCE_RETURN_IF_ERROR(EvalVec(*expr.left, ctx, sel, &l));
  ColumnVector* res = out->MakeOwned(TypeKind::kBool, ctx.batch->rows);
  SelVector need_right;
  const bool is_and = expr.op == BinOp::kAnd;
  for (uint32_t i : sel) {
    const bool lv = l.TruthyAt(i);
    if (is_and && !lv) {
      res->SetBool(i, false);
    } else if (!is_and && lv) {
      res->SetBool(i, true);
    } else {
      need_right.push_back(i);
    }
  }
  if (!need_right.empty()) {
    Vec r;
    VELOCE_RETURN_IF_ERROR(EvalVec(*expr.right, ctx, need_right, &r));
    for (uint32_t i : need_right) res->SetBool(i, r.TruthyAt(i));
  }
  return Status::OK();
}

}  // namespace

Status EvalVec(const Expr& expr, const VecEvalCtx& ctx, const SelVector& sel,
               Vec* out) {
  const size_t n = ctx.batch->rows;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      out->MakeConst(expr.literal);
      return Status::OK();
    case Expr::Kind::kParam: {
      if (ctx.params == nullptr || expr.param_index < 1 ||
          static_cast<size_t>(expr.param_index) > ctx.params->size()) {
        return Status::InvalidArgument("missing parameter $" +
                                       std::to_string(expr.param_index));
      }
      out->MakeConst((*ctx.params)[static_cast<size_t>(expr.param_index - 1)]);
      return Status::OK();
    }
    case Expr::Kind::kColumnRef: {
      auto it = ctx.col_positions->find(&expr);
      if (it == ctx.col_positions->end() ||
          static_cast<size_t>(it->second) >= ctx.batch->cols.size()) {
        return Status::Internal("unresolved column in vectorized plan");
      }
      out->is_const = false;
      out->ref = &ctx.batch->cols[static_cast<size_t>(it->second)];
      return Status::OK();
    }
    case Expr::Kind::kNot: {
      Vec v;
      VELOCE_RETURN_IF_ERROR(EvalVec(*expr.child, ctx, sel, &v));
      if (v.is_const) {
        out->MakeConst(Datum::Bool(!Truthy(v.const_val)));
        return Status::OK();
      }
      ColumnVector* res = out->MakeOwned(TypeKind::kBool, n);
      for (uint32_t i : sel) res->SetBool(i, !v.TruthyAt(i));
      return Status::OK();
    }
    case Expr::Kind::kIsNull: {
      Vec v;
      VELOCE_RETURN_IF_ERROR(EvalVec(*expr.child, ctx, sel, &v));
      if (v.is_const) {
        const bool null = v.const_val.is_null();
        out->MakeConst(Datum::Bool(expr.is_not ? !null : null));
        return Status::OK();
      }
      ColumnVector* res = out->MakeOwned(TypeKind::kBool, n);
      for (uint32_t i : sel) {
        const bool null = v.IsNullAt(i);
        res->SetBool(i, expr.is_not ? !null : null);
      }
      return Status::OK();
    }
    case Expr::Kind::kBinary: {
      if (expr.op == BinOp::kAnd || expr.op == BinOp::kOr) {
        return EvalAndOrVec(expr, ctx, sel, out);
      }
      Vec l, r;
      VELOCE_RETURN_IF_ERROR(EvalVec(*expr.left, ctx, sel, &l));
      VELOCE_RETURN_IF_ERROR(EvalVec(*expr.right, ctx, sel, &r));
      if (l.is_const && r.is_const) {
        // Fold once — but only when rows are selected, so a constant error
        // (1/0) fires exactly when the row engine would reach it.
        if (sel.empty()) {
          out->MakeConst(Datum::Null());
          return Status::OK();
        }
        if (IsComparison(expr.op)) {
          out->MakeConst(CompareScalar(expr.op, l.const_val, r.const_val));
          return Status::OK();
        }
        VELOCE_ASSIGN_OR_RETURN(Datum v, EvalArith(expr.op, l.const_val, r.const_val));
        out->MakeConst(std::move(v));
        return Status::OK();
      }
      if (IsComparison(expr.op)) return EvalCompareVec(expr.op, l, r, sel, n, out);
      return EvalArithVec(expr.op, l, r, sel, n, out);
    }
    case Expr::Kind::kAggregate:
      // Aggregates are computed by the executor's aggregation operator and
      // never reach batch-level evaluation.
      return Status::Internal("aggregate in vectorized batch expression");
    case Expr::Kind::kStar:
      return Status::InvalidArgument("'*' outside COUNT(*)");
  }
  return Status::Internal("unhandled expression kind");
}

Status EvalFilter(const Expr& expr, const VecEvalCtx& ctx, SelVector* sel) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == BinOp::kAnd) {
    VELOCE_RETURN_IF_ERROR(EvalFilter(*expr.left, ctx, sel));
    return EvalFilter(*expr.right, ctx, sel);
  }
  if (expr.kind == Expr::Kind::kBinary && expr.op == BinOp::kOr) {
    SelVector kept_left = *sel;
    VELOCE_RETURN_IF_ERROR(EvalFilter(*expr.left, ctx, &kept_left));
    // rest = sel \ kept_left (both sorted).
    SelVector rest;
    rest.reserve(sel->size() - kept_left.size());
    size_t k = 0;
    for (uint32_t i : *sel) {
      if (k < kept_left.size() && kept_left[k] == i) {
        ++k;
      } else {
        rest.push_back(i);
      }
    }
    VELOCE_RETURN_IF_ERROR(EvalFilter(*expr.right, ctx, &rest));
    // Merge the two sorted survivor lists.
    SelVector merged;
    merged.reserve(kept_left.size() + rest.size());
    std::merge(kept_left.begin(), kept_left.end(), rest.begin(), rest.end(),
               std::back_inserter(merged));
    *sel = std::move(merged);
    return Status::OK();
  }
  Vec v;
  VELOCE_RETURN_IF_ERROR(EvalVec(expr, ctx, *sel, &v));
  SelVector kept;
  kept.reserve(sel->size());
  for (uint32_t i : *sel) {
    if (v.TruthyAt(i)) kept.push_back(i);
  }
  *sel = std::move(kept);
  return Status::OK();
}

}  // namespace veloce::sql::vec
