#include "sql/row.h"

#include "common/codec.h"
#include "common/logging.h"

namespace veloce::sql {

std::string IndexPrefix(TableId table, IndexId index) {
  std::string out = "tbl";
  OrderedPutUint64(&out, table);
  OrderedPutUint64(&out, index);
  return out;
}

std::string EncodePrimaryKey(const TableDescriptor& desc, const Row& row) {
  std::string out = IndexPrefix(desc.id, kPrimaryIndexId);
  for (uint32_t col_id : desc.primary.column_ids) {
    const int pos = desc.ColumnIndex(col_id);
    VELOCE_CHECK(pos >= 0);
    row[static_cast<size_t>(pos)].EncodeKey(&out);
  }
  return out;
}

std::string EncodePrimaryKeyFromDatums(const TableDescriptor& desc,
                                       const std::vector<Datum>& pk_values) {
  VELOCE_CHECK(pk_values.size() == desc.primary.column_ids.size());
  std::string out = IndexPrefix(desc.id, kPrimaryIndexId);
  for (const Datum& d : pk_values) d.EncodeKey(&out);
  return out;
}

std::string EncodeRowValue(const TableDescriptor& desc, const Row& row) {
  std::string out;
  uint32_t count = 0;
  for (const auto& col : desc.columns) {
    if (!desc.IsPrimaryKeyColumn(col.id)) ++count;
  }
  PutVarint32(&out, count);
  for (size_t i = 0; i < desc.columns.size(); ++i) {
    const auto& col = desc.columns[i];
    if (desc.IsPrimaryKeyColumn(col.id)) continue;
    PutVarint32(&out, col.id);
    row[i].EncodeValue(&out);
  }
  return out;
}

Status DecodeRow(const TableDescriptor& desc, Slice key, Slice value, Row* row) {
  row->assign(desc.columns.size(), Datum::Null());
  // Key: strip the table/index prefix, then decode PK datums in order.
  const std::string prefix = IndexPrefix(desc.id, kPrimaryIndexId);
  if (!key.StartsWith(prefix)) return Status::Corruption("row key prefix mismatch");
  key.RemovePrefix(prefix.size());
  for (uint32_t col_id : desc.primary.column_ids) {
    Datum d;
    VELOCE_RETURN_IF_ERROR(Datum::DecodeKey(&key, &d));
    const int pos = desc.ColumnIndex(col_id);
    if (pos < 0) return Status::Corruption("unknown pk column");
    (*row)[static_cast<size_t>(pos)] = std::move(d);
  }
  // Value: column-id tagged datums.
  uint32_t count = 0;
  if (!GetVarint32(&value, &count)) return Status::Corruption("bad row value");
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t col_id = 0;
    if (!GetVarint32(&value, &col_id)) return Status::Corruption("bad row value col");
    Datum d;
    VELOCE_RETURN_IF_ERROR(Datum::DecodeValue(&value, &d));
    const int pos = desc.ColumnIndex(col_id);
    // Unknown column ids are skipped (schema may have dropped the column).
    if (pos >= 0) (*row)[static_cast<size_t>(pos)] = std::move(d);
  }
  return Status::OK();
}

std::string EncodeSecondaryKey(const TableDescriptor& desc,
                               const IndexDescriptor& index, const Row& row) {
  std::string out = IndexPrefix(desc.id, index.id);
  for (uint32_t col_id : index.column_ids) {
    const int pos = desc.ColumnIndex(col_id);
    VELOCE_CHECK(pos >= 0);
    row[static_cast<size_t>(pos)].EncodeKey(&out);
  }
  for (uint32_t col_id : desc.primary.column_ids) {
    const int pos = desc.ColumnIndex(col_id);
    VELOCE_CHECK(pos >= 0);
    row[static_cast<size_t>(pos)].EncodeKey(&out);
  }
  return out;
}

Status DecodeSecondaryKeyPk(const TableDescriptor& desc, const IndexDescriptor& index,
                            Slice key, std::vector<Datum>* pk_values) {
  const std::string prefix = IndexPrefix(desc.id, index.id);
  if (!key.StartsWith(prefix)) return Status::Corruption("index key prefix mismatch");
  key.RemovePrefix(prefix.size());
  Datum d;
  for (size_t i = 0; i < index.column_ids.size(); ++i) {
    VELOCE_RETURN_IF_ERROR(Datum::DecodeKey(&key, &d));
  }
  pk_values->clear();
  for (size_t i = 0; i < desc.primary.column_ids.size(); ++i) {
    VELOCE_RETURN_IF_ERROR(Datum::DecodeKey(&key, &d));
    pk_values->push_back(std::move(d));
  }
  return Status::OK();
}

}  // namespace veloce::sql
