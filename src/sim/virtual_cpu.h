#ifndef VELOCE_SIM_VIRTUAL_CPU_H_
#define VELOCE_SIM_VIRTUAL_CPU_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "obs/obs_context.h"
#include "sim/event_loop.h"

namespace veloce::sim {

/// Models the CPU of one node (VM) under simulation.
///
/// This is the stand-in for the Go runtime instrumentation the paper relies
/// on (Section 5.1.3): tasks are single-threaded units of work with a known
/// CPU demand; the scheduler shares `vcpus` processors among runnable tasks
/// (processor sharing, quantized). It exposes exactly the signals admission
/// control and the autoscaler consume in production:
///  * the runnable queue length (tasks waiting beyond available vCPUs),
///    sampled by the CPU slot controller at 1000 Hz;
///  * cumulative busy cpu-nanoseconds, total and per tenant, which metric
///    scrapers diff over their polling window.
class VirtualCpu {
 public:
  using TaskId = uint64_t;

  /// quantum is the scheduling granularity; smaller is more precise and
  /// slower to simulate. `obs` wires the CPU's `veloce_sim_*` series into a
  /// shared registry (null metrics = private registry); `instance`
  /// distinguishes CPUs sharing a registry (exported as label node=...).
  VirtualCpu(EventLoop* loop, int vcpus, Nanos quantum = kMilli,
             const obs::ObsContext& obs = {}, std::string instance = "");

  VirtualCpu(const VirtualCpu&) = delete;
  VirtualCpu& operator=(const VirtualCpu&) = delete;

  /// Submits a task that needs `cpu_demand` nanoseconds of CPU. `on_done`
  /// fires on the event loop when the task finishes. Tenant attribution is
  /// by the caller-supplied id (0 = system / untracked).
  TaskId Submit(uint64_t tenant_id, Nanos cpu_demand, std::function<void()> on_done);

  int vcpus() const { return vcpus_; }
  /// Number of tasks currently wanting CPU.
  int active_tasks() const { return static_cast<int>(tasks_.size()); }
  /// Tasks beyond the processor count — the scheduler's runnable queue.
  int runnable_queue_length() const {
    const int extra = active_tasks() - vcpus_;
    return extra > 0 ? extra : 0;
  }

  /// Cumulative busy cpu-nanoseconds since construction.
  Nanos total_busy() const { return total_busy_; }
  /// Cumulative busy cpu-nanoseconds attributed to `tenant_id`.
  Nanos tenant_busy(uint64_t tenant_id) const;

  /// Average utilization in [0, 1] over [since, now] given a previous
  /// total_busy() snapshot taken at `since`.
  double UtilizationSince(Nanos since, Nanos busy_snapshot) const;

 private:
  struct Task {
    uint64_t tenant_id;
    Nanos remaining;
    std::function<void()> on_done;
  };

  void EnsureTicking();
  void Tick(Nanos elapsed);

  EventLoop* loop_;
  const int vcpus_;
  const Nanos quantum_;
  bool ticking_ = false;
  Nanos last_tick_ = 0;
  TaskId next_id_ = 1;
  std::map<TaskId, Task> tasks_;
  Nanos total_busy_ = 0;
  std::unordered_map<uint64_t, Nanos> tenant_busy_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::HistogramMetric* runnable_h_ = nullptr;  ///< per-tick queue samples
  obs::MetricsRegistry::CallbackToken gauge_cb_;
};

}  // namespace veloce::sim

#endif  // VELOCE_SIM_VIRTUAL_CPU_H_
