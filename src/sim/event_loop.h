#ifndef VELOCE_SIM_EVENT_LOOP_H_
#define VELOCE_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace veloce::sim {

/// Single-threaded discrete-event loop with its own simulated clock.
///
/// The serverless control plane experiments (autoscaler windows, 10-minute
/// drains, hours of production load, cross-region RTTs) are all functions of
/// time; running them against this loop reproduces the paper's behaviour in
/// milliseconds of real time. Determinism: events at the same instant fire
/// in scheduling order.
class EventLoop {
 public:
  explicit EventLoop(Nanos start_time = 0) : clock_(start_time) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The loop's clock; components running under simulation receive this.
  Clock* clock() { return &clock_; }
  Nanos Now() const { return clock_.Now(); }

  /// Schedules `fn` to run `delay` nanoseconds from now (>= 0).
  void Schedule(Nanos delay, std::function<void()> fn) {
    ScheduleAt(Now() + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (clamped to now).
  void ScheduleAt(Nanos when, std::function<void()> fn) {
    if (when < Now()) when = Now();
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  void RunUntil(Nanos deadline);

  /// Runs events for `delta` nanoseconds from the current time.
  void RunFor(Nanos delta) { RunUntil(Now() + delta); }

  /// Runs a single event if one is pending; returns false when idle.
  bool Step();

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Nanos when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  ManualClock clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Repeating timer helper: reschedules `fn` every `period` until Cancel().
/// `fn` observes the loop's clock; the first firing is one period from
/// Start().
class PeriodicTask {
 public:
  PeriodicTask(EventLoop* loop, Nanos period, std::function<void()> fn);
  ~PeriodicTask() { Cancel(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Cancel() { *alive_ = false; }

 private:
  void Arm();

  EventLoop* loop_;
  Nanos period_;
  std::function<void()> fn_;
  std::shared_ptr<bool> alive_;
};

}  // namespace veloce::sim

#endif  // VELOCE_SIM_EVENT_LOOP_H_
