#ifndef VELOCE_SIM_FAULTY_MESH_H_
#define VELOCE_SIM_FAULTY_MESH_H_

#include <cstdint>
#include <set>
#include <utility>

#include "common/clock.h"
#include "common/random.h"
#include "kv/replica_transport.h"

namespace veloce::sim {

/// Per-link fault probabilities for a FaultyMesh. Probabilities apply
/// independently per message; delays are uniform in
/// [delay_base, delay_base + delay_jitter].
struct MeshProfile {
  double drop = 0.0;     ///< message lost in flight (replica stays behind)
  double dup = 0.0;      ///< message delivered twice (idempotent apply)
  double reorder = 0.0;  ///< message deferred; arrives later via catch-up
  Nanos delay_base = 0;
  Nanos delay_jitter = 0;
};

/// Seeded network fault mesh over the node graph: the chaos-injecting
/// ReplicaTransport. Lives beside RegionTopology as the "unreliable" half
/// of the network model — RegionTopology prices healthy links, FaultyMesh
/// decides whether and how messages traverse them at all.
///
/// Faults compose from two layers, checked in order:
///  1. A directed partition set (PartitionLink / Isolate): blocked links
///     deliver nothing — heartbeats and replication both fail. Asymmetric
///     (gray) partitions are just one direction blocked.
///  2. A probabilistic profile (drop / duplicate / reorder / delay) drawn
///     from a PRNG seeded via DeriveSeed, so one scenario seed fixes the
///     whole fault trajectory.
///
/// Drop and reorder both surface as deliver=false: the cluster's catch-up
/// replay later delivers the same records in order, which is exactly how a
/// TCP-like stream resolves loss and reordering — retransmission with
/// in-order delivery, never out-of-order apply. ack always equals deliver
/// (this mesh models a lossy network, not a lying one; see the broken
/// transport in the linearizability self-test for the latter).
class FaultyMesh final : public kv::ReplicaTransport {
 public:
  explicit FaultyMesh(uint64_t seed)
      : rng_(DeriveSeed(seed, "mesh")) {}

  void set_profile(const MeshProfile& profile) { profile_ = profile; }
  const MeshProfile& profile() const { return profile_; }

  /// Blocks the directed link from → to (messages that way vanish).
  void PartitionLink(uint32_t from, uint32_t to) {
    blocked_.insert({from, to});
  }
  /// Blocks both directions between every pair (node, other).
  void Isolate(uint32_t node, uint32_t cluster_size) {
    for (uint32_t other = 0; other < cluster_size; ++other) {
      if (other == node) continue;
      blocked_.insert({node, other});
      blocked_.insert({other, node});
    }
  }
  void HealLink(uint32_t from, uint32_t to) { blocked_.erase({from, to}); }
  void HealAll() { blocked_.clear(); }
  bool Blocked(uint32_t from, uint32_t to) const {
    return blocked_.count({from, to}) > 0;
  }

  kv::LinkDecision DeliverReplication(uint32_t from, uint32_t to,
                                      uint64_t log_index) override;
  bool DeliverHeartbeat(uint32_t from, uint32_t to) override;

  struct Stats {
    uint64_t delivered = 0;
    uint64_t dropped = 0;    ///< probabilistic drop or reorder-deferral
    uint64_t duplicated = 0;
    uint64_t delayed = 0;
    uint64_t blocked = 0;    ///< killed by the partition set
  };
  const Stats& stats() const { return stats_; }

 private:
  Random rng_;
  MeshProfile profile_;
  std::set<std::pair<uint32_t, uint32_t>> blocked_;
  Stats stats_;
};

}  // namespace veloce::sim

#endif  // VELOCE_SIM_FAULTY_MESH_H_
