#include "sim/event_loop.h"

#include <memory>

namespace veloce::sim {

void EventLoop::Run() {
  while (Step()) {
  }
}

bool EventLoop::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the function object must be moved out,
  // so copy the metadata and const_cast the payload (safe: popped next).
  Event& top = const_cast<Event&>(queue_.top());
  const Nanos when = top.when;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  clock_.SetTime(when);
  fn();
  return true;
}

void EventLoop::RunUntil(Nanos deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (Now() < deadline) clock_.SetTime(deadline);
}

PeriodicTask::PeriodicTask(EventLoop* loop, Nanos period, std::function<void()> fn)
    : loop_(loop), period_(period), fn_(std::move(fn)),
      alive_(std::make_shared<bool>(false)) {}

void PeriodicTask::Start() {
  *alive_ = true;
  Arm();
}

void PeriodicTask::Arm() {
  std::shared_ptr<bool> alive = alive_;
  loop_->Schedule(period_, [this, alive]() {
    if (!*alive) return;
    fn_();
    if (*alive) Arm();
  });
}

}  // namespace veloce::sim
