#ifndef VELOCE_SIM_SIM_EXECUTOR_H_
#define VELOCE_SIM_SIM_EXECUTOR_H_

#include <deque>
#include <functional>
#include <memory>

#include "common/clock.h"
#include "sim/event_loop.h"
#include "storage/background.h"

namespace veloce::sim {

/// Deterministic storage::BackgroundExecutor that runs engine background
/// work (flushes, compactions) as discrete events on a sim::EventLoop.
///
/// Tasks land in an owned FIFO; each Schedule() also posts a loop event
/// `service_delay` nanoseconds out that pops and runs exactly one task.
/// Because the loop fires same-instant events in scheduling order, a run of
/// the same workload replays background work identically — this is what
/// keeps the paper-figure benches (`bench_fig5`, `bench_fig8`,
/// `bench_table1_noisy_neighbor`) bit-deterministic with background
/// flush/compaction enabled.
///
/// A stalled writer (single-threaded sim: it cannot block) assists via
/// RunQueued(), which drains the FIFO inline; the already-posted loop
/// events then find the queue empty and no-op. Loop events capture only the
/// shared queue state, so they stay safe even if the executor or the
/// engines die before the loop drains.
class SimExecutor final : public storage::BackgroundExecutor {
 public:
  explicit SimExecutor(EventLoop* loop, Nanos service_delay = 0)
      : loop_(loop), service_delay_(service_delay),
        state_(std::make_shared<State>()) {}

  void Schedule(std::function<void()> fn) override {
    state_->queue.push_back(std::move(fn));
    auto state = state_;
    loop_->Schedule(service_delay_, [state] {
      if (state->queue.empty()) return;  // drained by a stall assist
      auto task = std::move(state->queue.front());
      state->queue.pop_front();
      task();
    });
  }

  /// Backoff-delayed work (bg-error retries) goes straight onto the loop,
  /// bypassing the FIFO: a stall assist must not run a retry early and
  /// defeat its backoff. Engine closures are token-guarded, so posting them
  /// directly keeps the capture-no-executor-state safety property above.
  void ScheduleAfter(uint64_t delay_ns, std::function<void()> fn) override {
    loop_->Schedule(service_delay_ + static_cast<Nanos>(delay_ns), std::move(fn));
  }

  bool single_threaded() const override { return true; }

  size_t RunQueued() override {
    size_t ran = 0;
    while (!state_->queue.empty()) {
      auto task = std::move(state_->queue.front());
      state_->queue.pop_front();
      task();
      ++ran;
    }
    return ran;
  }

  size_t queue_depth() const override { return state_->queue.size(); }

 private:
  struct State {
    std::deque<std::function<void()>> queue;
  };

  EventLoop* loop_;
  const Nanos service_delay_;
  std::shared_ptr<State> state_;
};

}  // namespace veloce::sim

#endif  // VELOCE_SIM_SIM_EXECUTOR_H_
