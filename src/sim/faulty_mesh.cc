#include "sim/faulty_mesh.h"

namespace veloce::sim {

kv::LinkDecision FaultyMesh::DeliverReplication(uint32_t from, uint32_t to,
                                                uint64_t log_index) {
  (void)log_index;
  kv::LinkDecision d;
  if (Blocked(from, to)) {
    stats_.blocked++;
    d.deliver = false;
    d.ack = false;
    return d;
  }
  // Drop and reorder collapse to the same observable outcome (the entry
  // arrives later, in order, via catch-up replay), but are drawn separately
  // so profiles can dial them independently.
  if (rng_.Bernoulli(profile_.drop) || rng_.Bernoulli(profile_.reorder)) {
    stats_.dropped++;
    d.deliver = false;
    d.ack = false;
    return d;
  }
  if (rng_.Bernoulli(profile_.dup)) {
    stats_.duplicated++;
    d.copies = 2;
  }
  if (profile_.delay_base > 0 || profile_.delay_jitter > 0) {
    d.delay = profile_.delay_base;
    if (profile_.delay_jitter > 0) {
      d.delay += static_cast<Nanos>(
          rng_.Uniform(static_cast<uint64_t>(profile_.delay_jitter) + 1));
    }
    if (d.delay > 0) stats_.delayed++;
  }
  stats_.delivered++;
  return d;
}

bool FaultyMesh::DeliverHeartbeat(uint32_t from, uint32_t to) {
  if (Blocked(from, to)) {
    stats_.blocked++;
    return false;
  }
  // Heartbeats ride the same lossy links as replication traffic.
  if (rng_.Bernoulli(profile_.drop)) {
    stats_.dropped++;
    return false;
  }
  stats_.delivered++;
  return true;
}

}  // namespace veloce::sim
