#include "sim/virtual_cpu.h"

#include <vector>

#include "common/logging.h"

namespace veloce::sim {

VirtualCpu::VirtualCpu(EventLoop* loop, int vcpus, Nanos quantum,
                       const obs::ObsContext& obs, std::string instance)
    : loop_(loop), vcpus_(vcpus), quantum_(quantum) {
  VELOCE_CHECK(vcpus > 0);
  VELOCE_CHECK(quantum > 0);
  metrics_ = obs.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::Labels labels;
  if (!instance.empty()) labels.push_back({"node", std::move(instance)});
  runnable_h_ = metrics_->histogram("veloce_sim_runnable_queue_samples", labels);
  gauge_cb_ = metrics_->AddCollectCallback([this, labels] {
    metrics_->gauge("veloce_sim_active_tasks", labels)->Set(active_tasks());
    metrics_->gauge("veloce_sim_runnable_queue", labels)
        ->Set(runnable_queue_length());
    metrics_->gauge("veloce_sim_busy_seconds_total", labels)
        ->Set(static_cast<double>(total_busy_) / kSecond);
  });
}

VirtualCpu::TaskId VirtualCpu::Submit(uint64_t tenant_id, Nanos cpu_demand,
                                      std::function<void()> on_done) {
  const TaskId id = next_id_++;
  if (cpu_demand <= 0) {
    // Zero-cost tasks complete immediately (still via the loop for ordering).
    loop_->Schedule(0, std::move(on_done));
    return id;
  }
  tasks_.emplace(id, Task{tenant_id, cpu_demand, std::move(on_done)});
  EnsureTicking();
  return id;
}

Nanos VirtualCpu::tenant_busy(uint64_t tenant_id) const {
  auto it = tenant_busy_.find(tenant_id);
  return it == tenant_busy_.end() ? 0 : it->second;
}

double VirtualCpu::UtilizationSince(Nanos since, Nanos busy_snapshot) const {
  const Nanos window = loop_->Now() - since;
  if (window <= 0) return 0.0;
  const double capacity = static_cast<double>(window) * vcpus_;
  return static_cast<double>(total_busy_ - busy_snapshot) / capacity;
}

void VirtualCpu::EnsureTicking() {
  if (ticking_) return;
  ticking_ = true;
  last_tick_ = loop_->Now();
  loop_->Schedule(quantum_, [this]() { Tick(loop_->Now() - last_tick_); });
}

void VirtualCpu::Tick(Nanos elapsed) {
  last_tick_ = loop_->Now();
  runnable_h_->Record(runnable_queue_length());
  if (elapsed > 0 && !tasks_.empty()) {
    const int n = static_cast<int>(tasks_.size());
    // Processor sharing: each task runs at min(1 cpu, vcpus/n cpus).
    Nanos share = elapsed;
    if (n > vcpus_) {
      share = elapsed * vcpus_ / n;
      if (share <= 0) share = 1;
    }
    std::vector<std::function<void()>> done;
    for (auto it = tasks_.begin(); it != tasks_.end();) {
      Task& t = it->second;
      const Nanos used = t.remaining < share ? t.remaining : share;
      t.remaining -= used;
      total_busy_ += used;
      tenant_busy_[t.tenant_id] += used;
      if (t.remaining <= 0) {
        done.push_back(std::move(t.on_done));
        it = tasks_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& fn : done) {
      if (fn) loop_->Schedule(0, std::move(fn));
    }
  }
  if (tasks_.empty()) {
    ticking_ = false;
    return;
  }
  loop_->Schedule(quantum_, [this]() { Tick(loop_->Now() - last_tick_); });
}

}  // namespace veloce::sim
