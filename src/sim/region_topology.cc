#include "sim/region_topology.h"

#include <algorithm>

#include "common/logging.h"

namespace veloce::sim {

namespace {
std::pair<std::string, std::string> Key(const std::string& a, const std::string& b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

void RegionTopology::AddRegion(const std::string& name, Nanos intra_rtt) {
  if (HasRegion(name)) return;
  regions_.push_back(name);
  rtt_[Key(name, name)] = intra_rtt;
}

void RegionTopology::SetRtt(const std::string& a, const std::string& b, Nanos rtt) {
  VELOCE_CHECK(HasRegion(a)) << a;
  VELOCE_CHECK(HasRegion(b)) << b;
  rtt_[Key(a, b)] = rtt;
}

Nanos RegionTopology::Rtt(const std::string& a, const std::string& b) const {
  auto it = rtt_.find(Key(a, b));
  VELOCE_CHECK(it != rtt_.end()) << "no RTT for " << a << " <-> " << b;
  return it->second;
}

bool RegionTopology::HasRegion(const std::string& name) const {
  return std::find(regions_.begin(), regions_.end(), name) != regions_.end();
}

RegionTopology RegionTopology::PaperDefaults() {
  RegionTopology t;
  t.AddRegion("us-central1");
  t.AddRegion("europe-west1");
  t.AddRegion("asia-southeast1");
  t.SetRtt("us-central1", "europe-west1", 90 * kMilli);
  t.SetRtt("us-central1", "asia-southeast1", 160 * kMilli);
  t.SetRtt("europe-west1", "asia-southeast1", 230 * kMilli);
  return t;
}

}  // namespace veloce::sim
