#ifndef VELOCE_SIM_REGION_TOPOLOGY_H_
#define VELOCE_SIM_REGION_TOPOLOGY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace veloce::sim {

/// Inter-region network model: a symmetric RTT matrix over named regions.
/// Stands in for the real cross-continent links in the multi-region cold
/// start experiment (Fig 10b): cold start latency there is the number of
/// blocking cross-region round trips times these RTTs.
class RegionTopology {
 public:
  /// Adds a region; intra-region RTT defaults to `intra_rtt`.
  void AddRegion(const std::string& name, Nanos intra_rtt = kMilli / 2);

  /// Sets the RTT between two regions (stored symmetrically).
  void SetRtt(const std::string& a, const std::string& b, Nanos rtt);

  /// Round-trip time between regions; one hop of an RPC costs Rtt/2 each way.
  Nanos Rtt(const std::string& a, const std::string& b) const;
  Nanos OneWay(const std::string& a, const std::string& b) const {
    return Rtt(a, b) / 2;
  }

  const std::vector<std::string>& regions() const { return regions_; }
  bool HasRegion(const std::string& name) const;

  /// The three-region topology the paper's multi-region evaluation uses
  /// (asia-southeast1, europe-west1, us-central1) with representative RTTs.
  static RegionTopology PaperDefaults();

 private:
  std::vector<std::string> regions_;
  std::map<std::pair<std::string, std::string>, Nanos> rtt_;
};

}  // namespace veloce::sim

#endif  // VELOCE_SIM_REGION_TOPOLOGY_H_
