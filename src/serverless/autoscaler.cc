#include "serverless/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace veloce::serverless {

Autoscaler::Autoscaler(sim::EventLoop* loop, SqlNodePool* pool, Proxy* proxy,
                       CpuUsageFn usage_fn, Options options)
    : loop_(loop),
      pool_(pool),
      proxy_(proxy),
      usage_fn_(std::move(usage_fn)),
      options_(options) {}

void Autoscaler::WatchTenant(kv::TenantId tenant) { tenants_[tenant]; }

void Autoscaler::UnwatchTenant(kv::TenantId tenant) { tenants_.erase(tenant); }

void Autoscaler::Start() {
  scraper_ = std::make_unique<sim::PeriodicTask>(loop_, options_.scrape_interval,
                                                 [this] { Tick(); });
  scraper_->Start();
}

void Autoscaler::Stop() { scraper_.reset(); }

void Autoscaler::EnableKvScaling(kv::KVCluster* cluster,
                                 std::function<double()> utilization_fn) {
  kv_cluster_ = cluster;
  kv_utilization_fn_ = std::move(utilization_fn);
}

void Autoscaler::Tick() {
  const Nanos now = loop_->Now();
  if (kv_cluster_ != nullptr && kv_utilization_fn_) {
    // KV scaling reacts on sustained overload: a full window of hot
    // scrapes (KV nodes are stateful; adding one is expensive, so this is
    // deliberately much less twitchy than SQL scaling).
    const double util = kv_utilization_fn_();
    const int window_scrapes =
        static_cast<int>(options_.window / options_.scrape_interval);
    if (util > options_.kv_scale_up_utilization) {
      ++kv_hot_scrapes_;
    } else {
      kv_hot_scrapes_ = 0;
    }
    if (kv_hot_scrapes_ >= window_scrapes &&
        static_cast<int>(kv_cluster_->num_nodes()) < options_.max_kv_nodes) {
      (void)kv_cluster_->AddNode();
      (void)kv_cluster_->RebalanceReplicas();
      kv_cluster_->BalanceLeases();
      ++kv_nodes_added_;
      kv_hot_scrapes_ = 0;
    }
  }
  for (auto& [tenant, state] : tenants_) {
    const double usage = usage_fn_(tenant);
    state.samples.emplace_back(now, usage);
    while (!state.samples.empty() &&
           state.samples.front().first < now - options_.window) {
      state.samples.pop_front();
    }
    // Track the idle stretch for scale-to-zero.
    const bool active =
        usage > 0.001 || proxy_->ConnectionsForTenant(tenant) > 0;
    if (active) {
      state.zero_since = -1;
      state.suspended = false;
    } else if (state.zero_since < 0) {
      state.zero_since = now;
    }
    Reconcile(tenant, &state);
  }
}

double Autoscaler::AvgUsage(kv::TenantId tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.samples.empty()) return 0;
  double sum = 0;
  for (const auto& [t, v] : it->second.samples) sum += v;
  return sum / static_cast<double>(it->second.samples.size());
}

double Autoscaler::PeakUsage(kv::TenantId tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  double peak = 0;
  for (const auto& [t, v] : it->second.samples) peak = std::max(peak, v);
  return peak;
}

int Autoscaler::TargetNodes(kv::TenantId tenant) const {
  const double target_capacity =
      std::max(options_.avg_multiplier * AvgUsage(tenant),
               options_.peak_multiplier * PeakUsage(tenant));
  if (target_capacity <= 0.001) return 0;
  return static_cast<int>(
      std::ceil(target_capacity / static_cast<double>(options_.node_vcpus)));
}

int Autoscaler::CurrentNodes(kv::TenantId tenant) const {
  return static_cast<int>(pool_->NodesForTenant(tenant).size());
}

bool Autoscaler::suspended(kv::TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.suspended;
}

void Autoscaler::Reconcile(kv::TenantId tenant, TenantState* state) {
  const Nanos now = loop_->Now();
  int target = TargetNodes(tenant);

  // Scale to zero: only after a sustained idle period AND no connections.
  if (target == 0) {
    const bool idle_long_enough =
        state->zero_since >= 0 && now - state->zero_since >= options_.suspend_after;
    if (!idle_long_enough && CurrentNodes(tenant) > 0) {
      target = 1;  // keep one node while connections may come back
    } else if (idle_long_enough) {
      for (sql::SqlNode* node : pool_->NodesForTenant(tenant)) {
        pool_->StartDraining(node);
      }
      state->suspended = proxy_->ConnectionsForTenant(tenant) == 0;
      return;
    }
  }

  const int current = CurrentNodes(tenant) + state->acquisitions_inflight;
  if (target > current) {
    for (int i = 0; i < target - current; ++i) {
      ++state->acquisitions_inflight;
      pool_->Acquire(tenant, [this, tenant](StatusOr<sql::SqlNode*> node_or) {
        auto it = tenants_.find(tenant);
        if (it != tenants_.end()) --it->second.acquisitions_inflight;
        if (node_or.ok()) {
          // Spread existing connections onto the new node.
          proxy_->RebalanceTenant(tenant);
        }
      });
    }
  } else if (target < current && state->acquisitions_inflight == 0) {
    // Drain the nodes with the fewest connections; ignore single-node
    // jitter to avoid churn.
    int excess = current - target;
    if (excess <= 0) return;
    std::vector<sql::SqlNode*> nodes = pool_->NodesForTenant(tenant);
    std::sort(nodes.begin(), nodes.end(),
              [this](sql::SqlNode* a, sql::SqlNode* b) {
                return proxy_->ConnectionsOnNode(a) < proxy_->ConnectionsOnNode(b);
              });
    for (int i = 0; i < excess && i < static_cast<int>(nodes.size()); ++i) {
      pool_->StartDraining(nodes[static_cast<size_t>(i)]);
    }
    proxy_->RebalanceTenant(tenant);  // move connections off draining nodes
  }
}

}  // namespace veloce::serverless
