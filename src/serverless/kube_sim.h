#ifndef VELOCE_SERVERLESS_KUBE_SIM_H_
#define VELOCE_SERVERLESS_KUBE_SIM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/random.h"
#include "sim/event_loop.h"

namespace veloce::serverless {

using PodId = uint64_t;

/// Simulated Kubernetes substrate (the paper runs one K8s cluster per
/// region). It models exactly what the cold-start and autoscaling
/// experiments depend on: pod scheduling latency onto shared VMs, container
/// process start latency, and VM packing (many SQL pods per VM is what
/// amortizes the long tail of idle tenants, Section 4.2.1).
class KubeSim {
 public:
  struct Options {
    std::string region = "local";
    int vm_vcpus = 32;
    /// Pods (SQL nodes) packed per VM; oversubscribed like production.
    int pods_per_vm = 16;
    /// Scheduling + container create latency for a new pod.
    Nanos pod_create_latency = 2 * kSecond;
    /// Starting the SQL process inside an existing container (cold path).
    Nanos process_start_latency = 900 * kMilli;
    /// Uniform jitter added to both latencies (real pod/process start
    /// times vary with node load and image cache state).
    Nanos latency_jitter = 0;
    /// Seeds the jitter RNG; scenarios derive this from one scenario seed.
    uint64_t seed = 0xCAFEBABE;
  };

  struct Pod {
    PodId id = 0;
    uint64_t vm = 0;
    bool process_running = false;
  };

  KubeSim(sim::EventLoop* loop, Options options)
      : loop_(loop), options_(options), rng_(options.seed) {}

  const Options& options() const { return options_; }
  const std::string& region() const { return options_.region; }

  /// Schedules a pod; `on_ready` fires after the create latency.
  void CreatePod(std::function<void(PodId)> on_ready);

  /// Starts the process inside the pod (pre-warming step); `on_started`
  /// fires after the process start latency.
  void StartProcess(PodId pod, std::function<void()> on_started);

  void DeletePod(PodId pod);
  bool ProcessRunning(PodId pod) const;

  /// Fault hook: kills the pod abruptly (process and all). Unlike
  /// DeletePod (a graceful, orchestrated removal), KillPod notifies the
  /// failure listener so the node pool can react as it would to a real
  /// crashed container.
  void KillPod(PodId pod);
  /// Invoked synchronously from KillPod with the dying pod's id. One
  /// listener (the SQL node pool) is enough for the sim.
  void SetPodFailureListener(std::function<void(PodId)> listener) {
    failure_listener_ = std::move(listener);
  }

  size_t num_pods() const { return pods_.size(); }
  /// Number of VMs currently backing the pods (ceil(pods / pods_per_vm)).
  size_t num_vms() const {
    return (pods_.size() + options_.pods_per_vm - 1) /
           static_cast<size_t>(options_.pods_per_vm);
  }

 private:
  Nanos Jittered(Nanos base);

  sim::EventLoop* loop_;
  Options options_;
  Random rng_;
  std::map<PodId, Pod> pods_;
  PodId next_pod_id_ = 1;
  std::function<void(PodId)> failure_listener_;
};

}  // namespace veloce::serverless

#endif  // VELOCE_SERVERLESS_KUBE_SIM_H_
